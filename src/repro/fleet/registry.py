"""The fleet's device registry: membership, heartbeats, liveness.

Discovery (``repro.net.discovery``) answers *what exists on the LAN*;
the registry answers *what is alive right now and how busy it is*.  Each
registered device runs a heartbeat loop reporting its real queued
workload (the same ``w^j`` the Eq. 4 scheduler consumes) on a fixed
period.  A monitor process watches the report times: a device silent for
``heartbeat_timeout_ms`` is declared **down** and the registry fires its
``on_lost`` hook — there is no failure oracle; crashes are observed the
only way a distributed system can observe them, by missed heartbeats.
A device that starts answering again is marked **up** and ``on_join``
fires, letting the controller drain its admission queue onto the
recovered capacity.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Generator, List, Optional, Tuple

from repro.devices.profiles import DeviceSpec
from repro.fleet.config import FleetConfig
from repro.sim.kernel import Simulator

#: answers (queued_workload_mp, active_sessions) — optionally extended
#: to (queued_workload_mp, active_sessions, replay_generation) by
#: replay-enabled fleets and further to (..., titles) by planner-enabled
#: fleets advertising which titles the device currently serves — or None
#: when the device is silent (crashed, unplugged, off the network)
HeartbeatProbe = Callable[[], Optional[Tuple]]


@dataclass
class Heartbeat:
    """One liveness report from a service device."""

    time_ms: float
    queued_workload_mp: float
    active_sessions: int
    #: the replay-store generation this device's serving view reflects
    #: (0 when the fleet runs without the replay hub)
    replay_generation: int = 0
    #: titles of the sessions this device is serving right now, one entry
    #: per session — the planner's multicast candidate reads co-location
    #: (two viewers of one title on one LAN segment) from these
    titles: Tuple[str, ...] = ()


@dataclass
class RegisteredDevice:
    """Registry-side record of one pool member."""

    spec: DeviceSpec
    rtt_ms: float
    probe: HeartbeatProbe
    state: str = "up"                      # "up" | "down"
    last_heartbeat: Optional[Heartbeat] = None
    joins: int = 0
    losses: int = 0

    @property
    def name(self) -> str:
        return self.spec.name

    @property
    def queued_workload_mp(self) -> float:
        if self.last_heartbeat is None:
            return 0.0
        return self.last_heartbeat.queued_workload_mp


class DeviceRegistry:
    """Tracks pool membership and liveness through heartbeats."""

    def __init__(self, sim: Simulator, config: FleetConfig):
        self.sim = sim
        self.config = config
        self.devices: Dict[str, RegisteredDevice] = {}
        #: fired with the RegisteredDevice on membership transitions
        self.on_lost: Optional[Callable[[RegisteredDevice], None]] = None
        self.on_join: Optional[Callable[[RegisteredDevice], None]] = None
        self._monitor = sim.spawn(self._monitor_loop(), name="fleet.monitor")

    # -- membership ----------------------------------------------------------

    def register(
        self, spec: DeviceSpec, rtt_ms: float, probe: HeartbeatProbe
    ) -> RegisteredDevice:
        if spec.name in self.devices:
            return self.devices[spec.name]
        dev = RegisteredDevice(spec=spec, rtt_ms=rtt_ms, probe=probe)
        dev.joins = 1
        # Seed the record so a device is not declared dead before its
        # first scheduled beat.
        dev.last_heartbeat = Heartbeat(self.sim.now, 0.0, 0)
        self.devices[spec.name] = dev
        self.sim.spawn(
            self._heartbeat_loop(dev), name=f"fleet.hb.{spec.name}"
        )
        self.sim.tracer.record(
            self.sim.now, "fleet", "device_registered", device=spec.name
        )
        if self.on_join is not None:
            self.on_join(dev)
        return dev

    def up_devices(self) -> List[RegisteredDevice]:
        return [d for d in self.devices.values() if d.state == "up"]

    def colocation_groups(self) -> Dict[str, int]:
        """Viewers per title across the live pool, from heartbeat titles.

        A count of two or more means the planner's multicast candidate is
        viable: one rendered stream can serve every co-located viewer of
        that title.  Deterministic: sorted by title.
        """
        counts: Dict[str, int] = {}
        for dev in self.up_devices():
            hb = dev.last_heartbeat
            if hb is None:
                continue
            for title in hb.titles:
                counts[title] = counts.get(title, 0) + 1
        return dict(sorted(counts.items()))

    # -- liveness ------------------------------------------------------------

    def _heartbeat_loop(self, dev: RegisteredDevice) -> Generator:
        while True:
            yield self.config.heartbeat_interval_ms
            answer = dev.probe()
            if answer is None:
                continue  # silence; the monitor draws the conclusion
            workload, sessions = answer[0], answer[1]
            generation = answer[2] if len(answer) > 2 else 0
            titles = tuple(answer[3]) if len(answer) > 3 else ()
            dev.last_heartbeat = Heartbeat(
                self.sim.now, workload, sessions, generation, titles
            )
            if dev.state == "down":
                dev.state = "up"
                dev.joins += 1
                self.sim.tracer.record(
                    self.sim.now, "fleet", "device_up", device=dev.name
                )
                if self.on_join is not None:
                    self.on_join(dev)

    def _monitor_loop(self) -> Generator:
        interval = self.config.heartbeat_interval_ms
        timeout = self.config.heartbeat_timeout_ms
        while True:
            yield interval
            for dev in self.devices.values():
                if dev.state != "up" or dev.last_heartbeat is None:
                    continue
                if self.sim.now - dev.last_heartbeat.time_ms >= timeout:
                    dev.state = "down"
                    dev.losses += 1
                    self.sim.tracer.record(
                        self.sim.now, "fleet", "device_down", device=dev.name
                    )
                    if self.on_lost is not None:
                        self.on_lost(dev)
