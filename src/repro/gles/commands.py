"""The OpenGL ES 2.0 entry-point registry and command objects.

A :class:`GLCommand` is one intercepted call: a name plus concrete argument
values.  The :class:`CommandSpec` registry describes each entry point's
typed signature and the properties GBooster's machinery keys off:

* ``mutates_state`` — whether the call alters the GL context; such commands
  must be replicated to every service device to keep contexts consistent
  (paper §VI-B).
* ``is_draw`` — whether the call consumes buffered vertex-attribute pointers
  and performs rasterization work (drives the deferred-pointer flush of
  §IV-B and the GPU cost model).
* ``param`` kinds — in particular :attr:`ParamType.DEFERRED_POINTER` for
  ``glVertexAttribPointer``, whose payload length is unknown at intercept
  time.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple


class ParamType(enum.Enum):
    """Wire-level classification of a GL parameter."""

    INT = "int"              # 32-bit signed integer (also GLsizei, offsets)
    FLOAT = "float"          # 32-bit float
    ENUM = "enum"            # GLenum, serialized as uint32
    BOOL = "bool"            # GLboolean
    STRING = "string"        # NUL-terminated string (shader source, names)
    BLOB = "blob"            # pointer whose byte length is known at call time
    DEFERRED_POINTER = "deferred_pointer"  # length known only at draw time
    INT_ARRAY = "int_array"  # small fixed array of ints
    FLOAT_ARRAY = "float_array"  # small fixed array of floats


@dataclass(frozen=True)
class ParamSpec:
    """One parameter of an entry point."""

    name: str
    kind: ParamType


@dataclass(frozen=True)
class CommandSpec:
    """Static description of one GL ES entry point."""

    name: str
    params: Tuple[ParamSpec, ...]
    mutates_state: bool = False
    is_draw: bool = False
    creates_object: bool = False
    returns_value: bool = False

    @property
    def arity(self) -> int:
        return len(self.params)


@dataclass
class GLCommand:
    """A concrete intercepted call: entry point name + argument values.

    ``metadata`` carries simulation-side annotations that a real intercept
    layer would not see (e.g. the pixel coverage a draw will produce); the
    serializer never puts metadata on the wire.
    """

    name: str
    args: Tuple[Any, ...] = ()
    metadata: Dict[str, Any] = field(default_factory=dict)

    @property
    def spec(self) -> CommandSpec:
        return command_spec(self.name)

    def key(self) -> Tuple[str, Tuple[Any, ...]]:
        """Hashable identity used by the LRU command cache (§V-A)."""
        return (self.name, _freeze(self.args))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"GLCommand({self.name}, args={self.args!r})"


def _freeze(value: Any) -> Any:
    if isinstance(value, (list, tuple)):
        return tuple(_freeze(v) for v in value)
    if isinstance(value, bytearray):
        return bytes(value)
    return value


def _p(name: str, kind: ParamType) -> ParamSpec:
    return ParamSpec(name, kind)


I, F, E, B, S = (
    ParamType.INT,
    ParamType.FLOAT,
    ParamType.ENUM,
    ParamType.BOOL,
    ParamType.STRING,
)
BLOB = ParamType.BLOB
DEFER = ParamType.DEFERRED_POINTER
IA, FA = ParamType.INT_ARRAY, ParamType.FLOAT_ARRAY


def _spec(
    name: str,
    *params: Tuple[str, ParamType],
    mutates_state: bool = False,
    is_draw: bool = False,
    creates_object: bool = False,
    returns_value: bool = False,
) -> CommandSpec:
    return CommandSpec(
        name=name,
        params=tuple(_p(n, k) for n, k in params),
        mutates_state=mutates_state,
        is_draw=is_draw,
        creates_object=creates_object,
        returns_value=returns_value,
    )


_SPECS = [
    # -- object lifecycle -------------------------------------------------
    _spec("glGenBuffers", ("n", I), mutates_state=True, creates_object=True,
          returns_value=True),
    _spec("glDeleteBuffers", ("n", I), ("buffers", IA), mutates_state=True),
    _spec("glGenTextures", ("n", I), mutates_state=True, creates_object=True,
          returns_value=True),
    _spec("glDeleteTextures", ("n", I), ("textures", IA), mutates_state=True),
    _spec("glGenFramebuffers", ("n", I), mutates_state=True,
          creates_object=True, returns_value=True),
    _spec("glDeleteFramebuffers", ("n", I), ("framebuffers", IA),
          mutates_state=True),
    _spec("glGenRenderbuffers", ("n", I), mutates_state=True,
          creates_object=True, returns_value=True),
    _spec("glDeleteRenderbuffers", ("n", I), ("renderbuffers", IA),
          mutates_state=True),
    _spec("glCreateShader", ("type", E), mutates_state=True,
          creates_object=True, returns_value=True),
    _spec("glDeleteShader", ("shader", I), mutates_state=True),
    _spec("glCreateProgram", mutates_state=True, creates_object=True,
          returns_value=True),
    _spec("glDeleteProgram", ("program", I), mutates_state=True),
    # -- shader compilation -------------------------------------------------
    _spec("glShaderSource", ("shader", I), ("source", S), mutates_state=True),
    _spec("glCompileShader", ("shader", I), mutates_state=True),
    _spec("glAttachShader", ("program", I), ("shader", I), mutates_state=True),
    _spec("glDetachShader", ("program", I), ("shader", I), mutates_state=True),
    _spec("glLinkProgram", ("program", I), mutates_state=True),
    _spec("glUseProgram", ("program", I), mutates_state=True),
    _spec("glValidateProgram", ("program", I)),
    _spec("glGetShaderiv", ("shader", I), ("pname", E), returns_value=True),
    _spec("glGetProgramiv", ("program", I), ("pname", E), returns_value=True),
    _spec("glGetShaderInfoLog", ("shader", I), returns_value=True),
    _spec("glGetProgramInfoLog", ("program", I), returns_value=True),
    _spec("glBindAttribLocation", ("program", I), ("index", I), ("name", S),
          mutates_state=True),
    _spec("glGetAttribLocation", ("program", I), ("name", S),
          returns_value=True),
    _spec("glGetUniformLocation", ("program", I), ("name", S),
          returns_value=True),
    # -- buffers --------------------------------------------------------------
    _spec("glBindBuffer", ("target", E), ("buffer", I), mutates_state=True),
    _spec("glBufferData", ("target", E), ("size", I), ("data", BLOB),
          ("usage", E), mutates_state=True),
    _spec("glBufferSubData", ("target", E), ("offset", I), ("size", I),
          ("data", BLOB), mutates_state=True),
    # -- textures --------------------------------------------------------------
    _spec("glActiveTexture", ("texture", E), mutates_state=True),
    _spec("glBindTexture", ("target", E), ("texture", I), mutates_state=True),
    _spec("glTexImage2D", ("target", E), ("level", I), ("internalformat", E),
          ("width", I), ("height", I), ("border", I), ("format", E),
          ("type", E), ("pixels", BLOB), mutates_state=True),
    _spec("glTexSubImage2D", ("target", E), ("level", I), ("xoffset", I),
          ("yoffset", I), ("width", I), ("height", I), ("format", E),
          ("type", E), ("pixels", BLOB), mutates_state=True),
    _spec("glCompressedTexImage2D", ("target", E), ("level", I),
          ("internalformat", E), ("width", I), ("height", I), ("border", I),
          ("imageSize", I), ("data", BLOB), mutates_state=True),
    _spec("glTexParameteri", ("target", E), ("pname", E), ("param", I),
          mutates_state=True),
    _spec("glTexParameterf", ("target", E), ("pname", E), ("param", F),
          mutates_state=True),
    _spec("glGenerateMipmap", ("target", E), mutates_state=True),
    _spec("glPixelStorei", ("pname", E), ("param", I), mutates_state=True),
    # -- vertex attributes ------------------------------------------------------
    _spec("glEnableVertexAttribArray", ("index", I), mutates_state=True),
    _spec("glDisableVertexAttribArray", ("index", I), mutates_state=True),
    _spec("glVertexAttribPointer", ("index", I), ("size", I), ("type", E),
          ("normalized", B), ("stride", I), ("pointer", DEFER),
          mutates_state=True),
    _spec("glVertexAttrib1f", ("index", I), ("x", F), mutates_state=True),
    _spec("glVertexAttrib2f", ("index", I), ("x", F), ("y", F),
          mutates_state=True),
    _spec("glVertexAttrib3f", ("index", I), ("x", F), ("y", F), ("z", F),
          mutates_state=True),
    _spec("glVertexAttrib4f", ("index", I), ("x", F), ("y", F), ("z", F),
          ("w", F), mutates_state=True),
    # -- uniforms -----------------------------------------------------------------
    _spec("glUniform1i", ("location", I), ("v0", I), mutates_state=True),
    _spec("glUniform2i", ("location", I), ("v0", I), ("v1", I),
          mutates_state=True),
    _spec("glUniform1f", ("location", I), ("v0", F), mutates_state=True),
    _spec("glUniform2f", ("location", I), ("v0", F), ("v1", F),
          mutates_state=True),
    _spec("glUniform3f", ("location", I), ("v0", F), ("v1", F), ("v2", F),
          mutates_state=True),
    _spec("glUniform4f", ("location", I), ("v0", F), ("v1", F), ("v2", F),
          ("v3", F), mutates_state=True),
    _spec("glUniform1fv", ("location", I), ("count", I), ("value", FA),
          mutates_state=True),
    _spec("glUniform2fv", ("location", I), ("count", I), ("value", FA),
          mutates_state=True),
    _spec("glUniform3fv", ("location", I), ("count", I), ("value", FA),
          mutates_state=True),
    _spec("glUniform4fv", ("location", I), ("count", I), ("value", FA),
          mutates_state=True),
    _spec("glUniformMatrix2fv", ("location", I), ("count", I),
          ("transpose", B), ("value", FA), mutates_state=True),
    _spec("glUniformMatrix3fv", ("location", I), ("count", I),
          ("transpose", B), ("value", FA), mutates_state=True),
    _spec("glUniformMatrix4fv", ("location", I), ("count", I),
          ("transpose", B), ("value", FA), mutates_state=True),
    # -- fixed-function state ------------------------------------------------------
    _spec("glEnable", ("cap", E), mutates_state=True),
    _spec("glDisable", ("cap", E), mutates_state=True),
    _spec("glBlendFunc", ("sfactor", E), ("dfactor", E), mutates_state=True),
    _spec("glBlendEquation", ("mode", E), mutates_state=True),
    _spec("glDepthFunc", ("func", E), mutates_state=True),
    _spec("glDepthMask", ("flag", B), mutates_state=True),
    _spec("glDepthRangef", ("near", F), ("far", F), mutates_state=True),
    _spec("glCullFace", ("mode", E), mutates_state=True),
    _spec("glFrontFace", ("mode", E), mutates_state=True),
    _spec("glViewport", ("x", I), ("y", I), ("width", I), ("height", I),
          mutates_state=True),
    _spec("glScissor", ("x", I), ("y", I), ("width", I), ("height", I),
          mutates_state=True),
    _spec("glClearColor", ("red", F), ("green", F), ("blue", F),
          ("alpha", F), mutates_state=True),
    _spec("glClearDepthf", ("depth", F), mutates_state=True),
    _spec("glClearStencil", ("s", I), mutates_state=True),
    _spec("glColorMask", ("red", B), ("green", B), ("blue", B), ("alpha", B),
          mutates_state=True),
    _spec("glStencilFunc", ("func", E), ("ref", I), ("mask", I),
          mutates_state=True),
    _spec("glStencilOp", ("fail", E), ("zfail", E), ("zpass", E),
          mutates_state=True),
    _spec("glStencilMask", ("mask", I), mutates_state=True),
    _spec("glLineWidth", ("width", F), mutates_state=True),
    _spec("glPolygonOffset", ("factor", F), ("units", F), mutates_state=True),
    _spec("glSampleCoverage", ("value", F), ("invert", B), mutates_state=True),
    # -- framebuffers ----------------------------------------------------------------
    _spec("glBindFramebuffer", ("target", E), ("framebuffer", I),
          mutates_state=True),
    _spec("glBindRenderbuffer", ("target", E), ("renderbuffer", I),
          mutates_state=True),
    _spec("glFramebufferTexture2D", ("target", E), ("attachment", E),
          ("textarget", E), ("texture", I), ("level", I), mutates_state=True),
    _spec("glFramebufferRenderbuffer", ("target", E), ("attachment", E),
          ("renderbuffertarget", E), ("renderbuffer", I), mutates_state=True),
    _spec("glRenderbufferStorage", ("target", E), ("internalformat", E),
          ("width", I), ("height", I), mutates_state=True),
    _spec("glCheckFramebufferStatus", ("target", E), returns_value=True),
    # -- drawing ------------------------------------------------------------------------
    _spec("glClear", ("mask", E), is_draw=True),
    _spec("glDrawArrays", ("mode", E), ("first", I), ("count", I),
          is_draw=True),
    _spec("glDrawElements", ("mode", E), ("count", I), ("type", E),
          ("indices", BLOB), is_draw=True),
    # -- queries / sync -----------------------------------------------------------------
    _spec("glGetError", returns_value=True),
    _spec("glGetString", ("name", E), returns_value=True),
    _spec("glGetIntegerv", ("pname", E), returns_value=True),
    _spec("glGetFloatv", ("pname", E), returns_value=True),
    _spec("glGetBooleanv", ("pname", E), returns_value=True),
    _spec("glIsEnabled", ("cap", E), returns_value=True),
    _spec("glIsBuffer", ("buffer", I), returns_value=True),
    _spec("glIsTexture", ("texture", I), returns_value=True),
    _spec("glIsProgram", ("program", I), returns_value=True),
    _spec("glIsShader", ("shader", I), returns_value=True),
    _spec("glReadPixels", ("x", I), ("y", I), ("width", I), ("height", I),
          ("format", E), ("type", E), returns_value=True),
    _spec("glFlush"),
    _spec("glFinish"),
    _spec("glHint", ("target", E), ("mode", E), mutates_state=True),
]

COMMANDS: Dict[str, CommandSpec] = {spec.name: spec for spec in _SPECS}

# EGL entry points that the wrapper also interposes (§IV-A, §IV-C).
EGL_COMMANDS = (
    "eglSwapBuffers",
    "eglGetProcAddress",
    "eglMakeCurrent",
    "eglCreateWindowSurface",
    "eglDestroySurface",
)


def command_spec(name: str) -> CommandSpec:
    """Look up a spec; raises ``KeyError`` with a helpful message."""
    try:
        return COMMANDS[name]
    except KeyError:
        raise KeyError(
            f"{name!r} is not a registered OpenGL ES 2.0 entry point"
        ) from None


def make_command(
    name: str, *args: Any, metadata: Optional[Dict[str, Any]] = None
) -> GLCommand:
    """Build a validated :class:`GLCommand`.

    Argument count must match the spec's arity; kinds are validated at
    serialization time where the wire format needs them.
    """
    spec = command_spec(name)
    if len(args) != spec.arity:
        raise TypeError(
            f"{name} expects {spec.arity} arguments "
            f"({', '.join(p.name for p in spec.params)}), got {len(args)}"
        )
    return GLCommand(name=name, args=tuple(args), metadata=dict(metadata or {}))


def state_mutating_names() -> Tuple[str, ...]:
    """Names of all entry points flagged as state-mutating (§VI-B)."""
    return tuple(sorted(n for n, s in COMMANDS.items() if s.mutates_state))


def draw_names() -> Tuple[str, ...]:
    return tuple(sorted(n for n, s in COMMANDS.items() if s.is_draw))
