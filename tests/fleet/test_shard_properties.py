"""Property tests for the sharded fleet determinism contract.

Three guarantees, each asserted byte-for-byte:

1. ``shards=1`` reproduces the legacy single-kernel report digest —
   the sharded path is a strict generalization, not a rewrite;
2. at fixed ``(seed, shards)`` the merged digest is identical for any
   worker count — parallelism is transport, not semantics;
3. in a provisioned pool (no back-pressure anywhere) per-session frame
   digests are shard-count invariant — what a session renders does not
   depend on who shares its kernel.
"""

import pytest

from repro.experiments.fleet import run_fleet_point
from repro.experiments.fleet_shard import (
    plan_fleet_shards,
    run_sharded_fleet_point,
)
from repro.fleet import FleetConfig
from repro.sim.shard import ShardError

#: short fleet point used throughout — quiesces well inside the horizon
POINT = dict(n_sessions=32, n_devices=8, duration_ms=3_000.0, seed=0)

#: provisioned config: no device's service time exceeds the issue
#: period, so the pipeline gate never binds and issuance is
#: placement-independent
PROVISIONED = FleetConfig(serve_rate_hz=10.0, pipeline_depth=8)


class TestLegacyEquivalence:
    @pytest.mark.parametrize("crash", [False, True])
    def test_one_shard_reproduces_legacy_digest(self, crash):
        _, legacy = run_fleet_point(crash=crash, **POINT)
        _, report = run_sharded_fleet_point(
            shards=1, workers=1, crash=crash, **POINT
        )
        assert report["per_shard_digests"]["0"] == legacy["digest"]

    def test_one_shard_legacy_match_survives_window_choice(self):
        _, legacy = run_fleet_point(crash=False, **POINT)
        for window_ms in (250.0, 2_000.0):
            _, report = run_sharded_fleet_point(
                shards=1, workers=1, crash=False,
                window_ms=window_ms, **POINT
            )
            assert report["per_shard_digests"]["0"] == legacy["digest"]


class TestWorkerInvariance:
    def test_worker_count_is_transport_only(self):
        points = {}
        reports = {}
        for workers in (1, 2, 4):
            points[workers], reports[workers] = run_sharded_fleet_point(
                shards=4, workers=workers, crash=True, **POINT
            )
        digests = {p.digest for p in points.values()}
        assert len(digests) == 1
        session_digests = [
            r["session_digests"] for r in reports.values()
        ]
        assert session_digests[0] == session_digests[1] == session_digests[2]

    def test_same_seed_same_report(self):
        a, _ = run_sharded_fleet_point(
            shards=2, workers=1, crash=True, **POINT
        )
        b, _ = run_sharded_fleet_point(
            shards=2, workers=1, crash=True, **POINT
        )
        assert a.digest == b.digest

    def test_different_seed_different_report(self):
        spec = dict(POINT)
        spec.pop("seed")
        a, _ = run_sharded_fleet_point(
            seed=0, shards=2, workers=1, crash=False, **spec
        )
        b, _ = run_sharded_fleet_point(
            seed=7, shards=2, workers=1, crash=False, **spec
        )
        assert a.digest != b.digest


class TestShardCountInvariance:
    def test_frame_digests_invariant_across_shard_counts(self):
        spec = dict(
            n_sessions=32, n_devices=32, duration_ms=3_000.0, seed=0,
            crash=False, workers=1, config=PROVISIONED,
        )
        two, _ = run_sharded_fleet_point(shards=2, **spec)
        four, _ = run_sharded_fleet_point(shards=4, **spec)
        assert two.session_digests == four.session_digests
        assert len(two.session_digests) == 32
        assert two.frames == four.frames
        assert two.frames_lost == four.frames_lost == 0


class TestShardedFleetSemantics:
    def test_all_sessions_finish_despite_partitioned_admission(self):
        # Oversubscribed per-shard pools serialize their queues; the
        # horizon extension must still drive every session to a
        # terminal state with zero frame loss.
        point, _ = run_sharded_fleet_point(
            n_sessions=64, n_devices=8, duration_ms=3_000.0, seed=0,
            shards=4, workers=1, crash=False,
        )
        assert point.finished == 64
        assert point.frames_lost == 0
        assert point.rejected == 0

    def test_crash_lands_on_exactly_one_shard(self):
        jobs = plan_fleet_shards(
            n_sessions=32, n_devices=8, shards=4, seed=0,
            duration_ms=3_000.0, crash=True,
        )
        crashing = [job for job in jobs if job.crashes]
        assert len(crashing) == 1
        assert crashing[0].shard_id == 0  # owns global device 0
        at_ms, local_index, rejoin_ms = crashing[0].crashes[0]
        assert local_index == 0
        assert 0 < at_ms < rejoin_ms

    def test_plan_rejects_more_shards_than_devices(self):
        with pytest.raises(ShardError):
            plan_fleet_shards(
                n_sessions=32, n_devices=2, shards=4, seed=0,
                duration_ms=3_000.0,
            )

    def test_plan_rejects_more_shards_than_sessions(self):
        with pytest.raises(ShardError):
            plan_fleet_shards(
                n_sessions=2, n_devices=8, shards=4, seed=0,
                duration_ms=3_000.0,
            )
