"""Tests for repro.obs.merge: deterministic per-shard bank merging."""

from repro.obs.merge import (
    merge_metric_snapshots,
    merge_span_banks,
    span_bank,
)
from repro.obs.registry import MetricsRegistry
from repro.obs.spans import SpanRecorder


def _registry_snapshot(counter=0.0, gauge=0.0, samples=()):
    reg = MetricsRegistry()
    if counter:
        reg.counter("frames.total").inc(counter)
    if gauge:
        reg.gauge("queue.depth").set(gauge)
    hist = reg.histogram("frame.response_ms")
    for s in samples:
        hist.observe(s)
    return reg.snapshot()


class TestMergeMetricSnapshots:
    def test_counters_sum(self):
        merged = merge_metric_snapshots(
            [_registry_snapshot(counter=3), _registry_snapshot(counter=5)]
        )
        assert merged["counters"]["frames.total"] == 8

    def test_gauges_high_water(self):
        merged = merge_metric_snapshots(
            [_registry_snapshot(gauge=2), _registry_snapshot(gauge=9)]
        )
        assert merged["gauges"]["queue.depth"] == 9

    def test_histogram_count_and_extrema_exact(self):
        merged = merge_metric_snapshots([
            _registry_snapshot(samples=[1.0, 2.0, 3.0]),
            _registry_snapshot(samples=[10.0]),
        ])
        hist = merged["histograms"]["frame.response_ms"]
        assert hist["count"] == 4
        assert hist["min"] == 1.0
        assert hist["max"] == 10.0
        assert hist["mean"] == 4.0
        assert hist["approx"] is True

    def test_merge_is_input_order_independent(self):
        snaps = [
            _registry_snapshot(counter=1, gauge=4, samples=[1.0, 5.0]),
            _registry_snapshot(counter=2, gauge=3, samples=[2.0]),
        ]
        assert merge_metric_snapshots(snaps) == merge_metric_snapshots(
            list(reversed(snaps))
        )

    def test_empty_input(self):
        merged = merge_metric_snapshots([])
        assert merged == {"counters": {}, "gauges": {}, "histograms": {}}


class TestSpanBanks:
    def _bank(self, n):
        rec = SpanRecorder()
        for _ in range(n):
            rec.begin("pipeline", "frame.render").end()
        return span_bank(rec)

    def test_span_bank_counts(self):
        bank = self._bank(3)
        assert bank["total"] == 3
        assert bank["by_category"] == {"pipeline": 3}
        assert bank["by_name"] == {"pipeline.frame.render": 3}

    def test_merge_sums(self):
        merged = merge_span_banks([self._bank(2), self._bank(5)])
        assert merged["total"] == 7
        assert merged["by_category"]["pipeline"] == 7
        assert merged["dropped"] == 0
