"""Multi-user service sharing (§VIII extension)."""

import pytest

from repro.apps.games import CANDY_CRUSH, MODERN_COMBAT
from repro.core.config import GBoosterConfig
from repro.core.multiuser import (
    app_priority,
    run_multiuser_experiment,
    run_multiuser_session,
)
from repro.sim.resources import PriorityStore

DURATION = 30_000.0


class TestPriorityStore:
    def test_lowest_priority_value_first(self, sim):
        store = PriorityStore(sim)
        store.put("tolerant", priority=2.0)
        store.put("urgent", priority=0.0)
        store.put("mid", priority=1.0)
        got = []

        def consumer():
            for _ in range(3):
                item = yield store.get()
                got.append(item)

        sim.spawn(consumer())
        sim.run()
        assert got == ["urgent", "mid", "tolerant"]

    def test_fifo_within_priority(self, sim):
        store = PriorityStore(sim)
        for i in range(4):
            store.put(i, priority=1.0)
        got = []

        def consumer():
            for _ in range(4):
                got.append((yield store.get()))

        sim.spawn(consumer())
        sim.run()
        assert got == [0, 1, 2, 3]

    def test_blocked_getter_woken_by_put(self, sim):
        store = PriorityStore(sim)
        got = []

        def consumer():
            got.append((yield store.get()))

        def producer():
            yield 5.0
            store.put("late", priority=0.0)

        sim.spawn(consumer())
        sim.spawn(producer())
        sim.run()
        assert got == ["late"]

    def test_peek_all_sorted(self, sim):
        store = PriorityStore(sim)
        store.put("b", priority=1.0)
        store.put("a", priority=0.0)
        assert store.peek_all() == ["a", "b"]
        assert len(store) == 2


class TestAppPriority:
    def test_genre_ordering(self):
        assert app_priority(MODERN_COMBAT) < app_priority(CANDY_CRUSH)


@pytest.mark.slow
class TestMultiUser:
    @pytest.fixture(scope="class")
    def results(self):
        return run_multiuser_experiment(
            MODERN_COMBAT, CANDY_CRUSH, duration_ms=DURATION
        )

    def test_both_users_served_under_both_policies(self, results):
        for policy, result in results.items():
            for user in result.users:
                assert user.fps.frame_count > 100, (policy, user.app.name)

    def test_priority_cuts_interactive_response(self, results):
        """The §VIII motivation: the shooter must not wait behind the
        puzzle game's queued requests."""
        fcfs = results["fcfs"].by_genre("action")
        prio = results["priority"].by_genre("action")
        assert prio.mean_response_ms < fcfs.mean_response_ms * 0.75

    def test_priority_improves_interactive_fps(self, results):
        fcfs = results["fcfs"].by_genre("action")
        prio = results["priority"].by_genre("action")
        assert prio.fps.median_fps >= fcfs.fps.median_fps

    def test_tolerant_app_still_playable(self, results):
        """Priority must starve nobody: the puzzle game keeps a usable
        frame rate (the paper's 24 FPS playability floor)."""
        puzzle = results["priority"].by_genre("puzzle")
        assert puzzle.fps.median_fps >= 20.0

    def test_fcfs_is_fairer_but_slower_for_shooter(self, results):
        fcfs_gap = abs(
            results["fcfs"].users[0].fps.median_fps
            - results["fcfs"].users[1].fps.median_fps
        )
        prio_gap = abs(
            results["priority"].users[0].fps.median_fps
            - results["priority"].users[1].fps.median_fps
        )
        assert fcfs_gap <= prio_gap + 2.0

    def test_determinism(self):
        a = run_multiuser_session(
            [MODERN_COMBAT, CANDY_CRUSH], duration_ms=15_000.0, seed=7
        )
        b = run_multiuser_session(
            [MODERN_COMBAT, CANDY_CRUSH], duration_ms=15_000.0, seed=7
        )
        for ua, ub in zip(a.users, b.users):
            assert ua.fps.median_fps == ub.fps.median_fps

    def test_invalid_policy_rejected(self):
        with pytest.raises(ValueError):
            GBoosterConfig(service_queue_policy="lottery").validate()


@pytest.mark.slow
class TestSharedChannel:
    def test_shared_channel_never_beats_independent_radios(self):
        from repro.core.multiuser import run_multiuser_session
        from repro.apps.games import MODERN_COMBAT, GTA_SAN_ANDREAS

        independent = run_multiuser_session(
            [MODERN_COMBAT, GTA_SAN_ANDREAS], duration_ms=20_000.0,
        )
        contended = run_multiuser_session(
            [MODERN_COMBAT, GTA_SAN_ANDREAS], duration_ms=20_000.0,
            shared_wifi_channel=True,
        )
        for free, shared in zip(independent.users, contended.users):
            assert shared.fps.median_fps <= free.fps.median_fps + 2.0
            assert shared.mean_response_ms >= free.mean_response_ms - 5.0

    def test_shared_channel_sessions_still_complete(self):
        from repro.core.multiuser import run_multiuser_session
        from repro.apps.games import MODERN_COMBAT, CANDY_CRUSH

        result = run_multiuser_session(
            [MODERN_COMBAT, CANDY_CRUSH], duration_ms=20_000.0,
            shared_wifi_channel=True,
        )
        for user in result.users:
            assert user.fps.frame_count > 100
