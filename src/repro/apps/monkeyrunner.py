"""Scripted input playback (the paper's MonkeyRunner methodology).

§VII-E: "We utilize MonkeyRunner to generate same sets of touch events for
repeatable tests."  This module provides the equivalent: a serializable
input script (timed touch events), a recorder that captures a generated
session's events into a script, and a player that feeds a script to the
engine instead of the stochastic :class:`TouchGenerator` — so two runs see
*literally identical* input, not merely identically-distributed input.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Generator, List, Optional, Sequence, Union

from repro.apps.touch import TouchEvent
from repro.sim.kernel import Simulator

SCRIPT_VERSION = 1


@dataclass
class InputScript:
    """A recorded, replayable sequence of touch events."""

    events: List[TouchEvent] = field(default_factory=list)
    name: str = "script"

    def __len__(self) -> int:
        return len(self.events)

    @property
    def duration_ms(self) -> float:
        return self.events[-1].time_ms if self.events else 0.0

    def validate(self) -> None:
        last = -1.0
        for event in self.events:
            if event.time_ms < 0:
                raise ValueError(f"negative event time {event.time_ms}")
            if event.time_ms < last:
                raise ValueError("events must be time-ordered")
            last = event.time_ms

    # -- serialization ------------------------------------------------------

    def to_json(self) -> str:
        return json.dumps(
            {
                "version": SCRIPT_VERSION,
                "name": self.name,
                "events": [
                    [e.time_ms, e.x, e.y, e.strength] for e in self.events
                ],
            }
        )

    @classmethod
    def from_json(cls, text: str) -> "InputScript":
        payload = json.loads(text)
        if payload.get("version") != SCRIPT_VERSION:
            raise ValueError(
                f"unsupported script version {payload.get('version')!r}"
            )
        script = cls(
            name=payload.get("name", "script"),
            events=[
                TouchEvent(time_ms=t, x=x, y=y, strength=s)
                for t, x, y, s in payload["events"]
            ],
        )
        script.validate()
        return script

    def save(self, path: Union[str, Path]) -> None:
        Path(path).write_text(self.to_json())

    @classmethod
    def load(cls, path: Union[str, Path]) -> "InputScript":
        return cls.from_json(Path(path).read_text())

    # -- recording helpers -----------------------------------------------------

    @classmethod
    def record_from_generator(
        cls, spec, duration_ms: float, seed: int = 0, name: str = ""
    ) -> "InputScript":
        """Capture one stochastic session's touches into a fixed script."""
        from repro.apps.touch import TouchGenerator

        sim = Simulator(seed=seed)
        generator = TouchGenerator(sim, spec)
        sim.run(until=duration_ms)
        return cls(
            events=list(generator.events),
            name=name or f"{spec.short_name}-recorded",
        )


class ScriptedTouchPlayer:
    """Plays an :class:`InputScript` into an engine (TouchGenerator shape)."""

    def __init__(
        self,
        sim: Simulator,
        script: InputScript,
        on_touch: Optional[Callable[[TouchEvent], None]] = None,
        loop: bool = False,
    ):
        script.validate()
        self.sim = sim
        self.script = script
        self.on_touch = on_touch
        self.loop = loop
        self.events: List[TouchEvent] = []
        self._proc = sim.spawn(self._run(), name=f"script.{script.name}")

    def _run(self) -> Generator:
        if not self.script.events:
            return
        base = self.sim.now
        while True:
            for event in self.script.events:
                when = base + event.time_ms
                if when > self.sim.now:
                    yield when - self.sim.now
                played = TouchEvent(
                    time_ms=self.sim.now, x=event.x, y=event.y,
                    strength=event.strength,
                )
                self.events.append(played)
                if self.on_touch is not None:
                    self.on_touch(played)
            if not self.loop:
                return
            base = self.sim.now

    def count_in_window(self, start_ms: float, end_ms: float) -> int:
        return sum(1 for e in self.events if start_ms <= e.time_ms < end_ms)
