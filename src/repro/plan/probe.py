"""The probe-window evaluator: measure each candidate, don't guess.

For every viable candidate the probe models a short window of frames
(``config.planner_probe_frames``) and *records the measurements* into the
:mod:`repro.obs` time-series machinery — the same bank the SLO engine and
drift detector read — then scores the candidate from what landed in the
series.  Uplink bytes are not modelled at all: the probe runs the app's
actual command batches through a real :class:`CommandPipeline` (fusion
pass included when the plan transmits fused streams), so the byte column
in a plan decision is the same accounting the session would produce.

Everything is seeded through :class:`~repro.sim.random.RandomStream`
namespaces derived from ``(seed, backend)``, so a probe is byte-identical
across runs, worker counts and probe orderings.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.analysis.pipeline_model import (
    predict_local_fps,
    predict_offload,
    predict_service_stage_ms,
)
from repro.apps.base import CommandBatchBuilder, SceneState
from repro.codec.pipeline import (
    REPLAY_HEADER_BYTES,
    CommandPipeline,
    PipelineConfig,
)
from repro.obs.timeseries import TimeSeriesBank
from repro.plan.candidates import PlanCandidate, SessionContext
from repro.sim.random import RandomStream

# -- energy model (milliwatts, reference phone SoC/radio figures) ------------
#: WiFi transmit draw at full rate (§V-B: ~2 W) and its idle/listen floor
_WIFI_TX_MW = 2000.0
_WIFI_IDLE_MW = 280.0
#: Bluetooth draw (<0.1 W active)
_BT_TX_MW = 95.0
_BT_IDLE_MW = 18.0
#: local render draw: GPU at full tilt plus the game's CPU load
_GPU_ACTIVE_MW = 1400.0
_CPU_ACTIVE_MW = 600.0
#: residual client CPU while offloading (decode + dispatch)
_CPU_OFFLOAD_MW = 260.0
#: cloud gaming keeps the WiFi radio in receive for the video stream
_WIFI_RX_MW = 950.0
#: WAN uplink: input events only
_WAN_INPUT_BYTES = 160
#: multicast adds a small group-sync overhead per frame
_MULTICAST_SYNC_MS = 1.2


@dataclass
class ProbeStats:
    """Measured summary of one candidate's probe window."""

    backend: str
    frames: int
    mean_latency_ms: float
    worst_latency_ms: float
    mean_uplink_bytes: float
    mean_energy_mw: float
    score: float
    fused_dropped: int = 0

    def to_dict(self) -> Dict:
        return {
            "backend": self.backend,
            "frames": self.frames,
            "mean_latency_ms": round(self.mean_latency_ms, 4),
            "worst_latency_ms": round(self.worst_latency_ms, 4),
            "mean_uplink_bytes": round(self.mean_uplink_bytes, 2),
            "mean_energy_mw": round(self.mean_energy_mw, 2),
            "score": round(self.score, 6),
            "fused_dropped": self.fused_dropped,
        }


class ProbeRunner:
    """Evaluates candidates for one session context."""

    def __init__(
        self,
        ctx: SessionContext,
        seed: int = 0,
        bank: Optional[TimeSeriesBank] = None,
        telemetry=None,
    ):
        self.ctx = ctx
        self.seed = seed
        #: probe measurements live in an obs time-series bank; a 1 ms
        #: window puts every probe frame in its own window, so the score
        #: reads true per-frame samples rather than a sliding aggregate.
        #: A runner is single-use: the planner builds a fresh one for each
        #: probe cycle so replans never read a stale series.
        self.bank = bank or TimeSeriesBank(window_ms=1.0)
        self.telemetry = telemetry
        self._wire_cache: Dict[bool, List[Dict[str, float]]] = {}

    # -- measured uplink bytes ---------------------------------------------

    def _frame_wire(self, fused: bool) -> List[Dict[str, float]]:
        """Per-frame wire accounting from a real egress pipeline run.

        Returns one dict per probe frame with ``wire_bytes`` (nominal-
        stream scaled, like the client does), ``raw_bytes`` and
        ``fused_dropped``.  Cached per fusion setting — the local and
        offload candidates share the unfused run.
        """
        if fused in self._wire_cache:
            return self._wire_cache[fused]
        ctx = self.ctx
        rng = RandomStream(self.seed, f"plan.probe.stream.{int(fused)}")
        builder = CommandBatchBuilder(ctx.app, rng)
        scene = SceneState()
        pipeline = CommandPipeline(PipelineConfig(
            cache_enabled=ctx.config.cache_enabled,
            cache_capacity=ctx.config.cache_capacity,
            compression_enabled=ctx.config.compression_enabled,
            modelled_compression=False,
            fusion_enabled=fused,
        ))
        frames: List[Dict[str, float]] = []
        setup = builder.setup_commands()
        pipeline.process_frame(setup, frame_id=0)
        dt = 1.0 / ctx.app.target_fps
        for i in range(ctx.config.planner_probe_frames):
            if i % 7 == 3:
                scene.on_touch(0.8)
            scene.advance(dt)
            batch = builder.frame_commands(scene)
            egress = pipeline.process_frame(batch, frame_id=i + 1)
            emitted = egress.commands + egress.fused_dropped
            scale = ctx.app.nominal_commands_per_frame / max(1, emitted)
            frames.append({
                "wire_bytes": max(64.0, egress.wire_bytes * scale),
                "raw_bytes": egress.raw_bytes * scale,
                "fused_dropped": float(egress.fused_dropped),
            })
        self._wire_cache[fused] = frames
        return frames

    # -- per-backend frame models ------------------------------------------

    def _probe_frames(self, backend: str) -> List[Dict[str, float]]:
        """One (latency, uplink, energy) sample per probe frame."""
        ctx = self.ctx
        app, config = ctx.app, ctx.config
        rng = RandomStream(self.seed, f"plan.probe.{backend}")
        interval = 1000.0 / app.target_fps
        out: List[Dict[str, float]] = []

        if backend == "local":
            base = 1000.0 / predict_local_fps(app, ctx.user_device)
            fill_ms = (
                app.fill_mp_per_frame / ctx.user_device.gpu.fillrate_gpixels
            )
            busy = min(1.0, fill_ms / max(base, 1e-9))
            for _ in range(config.planner_probe_frames):
                latency = base * (1.0 + 0.04 * rng.random())
                energy = _CPU_ACTIVE_MW + _GPU_ACTIVE_MW * busy + _BT_IDLE_MW
                out.append({
                    "latency_ms": latency, "uplink_bytes": 0.0,
                    "energy_mw": energy,
                })
            return out

        if backend == "wan":
            model = ctx.wan.cloud_model()
            video_bytes = model.per_frame_bytes()
            rx_ms = video_bytes * 8 / (ctx.wifi_mbps * 1000.0)
            duty = min(1.0, rx_ms / interval)
            for _ in range(config.planner_probe_frames):
                jitter = rng.exponential(ctx.wan.jitter_ms / 2.0)
                latency = model.response_time_ms(app, jitter_ms=jitter)
                energy = (
                    _CPU_OFFLOAD_MW
                    + _WIFI_RX_MW * (0.4 + 0.6 * duty)
                    + _WIFI_IDLE_MW
                )
                out.append({
                    "latency_ms": latency,
                    "uplink_bytes": float(_WAN_INPUT_BYTES),
                    "energy_mw": energy,
                })
            return out

        # LAN offload family: bt / wifi / replay / multicast.
        fused = ctx.fusion_enabled
        wire = self._frame_wire(fused)
        pred = predict_offload(
            app, ctx.user_device, ctx.service_device, config=config
        )
        service_ms = pred.service_stage_ms
        if backend == "replay":
            # GPUReplay-style serve: the pinned interval skips decompress +
            # per-command replay (and x86 translation); fill + encode stay.
            full = predict_service_stage_ms(app, ctx.service_device, config)
            decode_side = (
                config.decompress_ms
                + app.nominal_commands_per_frame
                * config.replay_us_per_command / 1000.0
            ) / ctx.service_device.cpu.perf_index
            if not ctx.service_device.cpu.is_arm:
                decode_side += (
                    app.nominal_commands_per_frame
                    * config.es_translate_us_per_command / 1000.0
                ) / ctx.service_device.cpu.perf_index
            service_ms = max(0.1, full - decode_side) + config.replay_hit_ms
        if backend == "multicast":
            service_ms += _MULTICAST_SYNC_MS

        if backend == "bt":
            mbps, link_rtt_ms = ctx.bt_mbps, 2 * 4.0
            tx_mw, idle_mw = _BT_TX_MW, _BT_IDLE_MW
            loss = 0.004
        else:
            mbps, link_rtt_ms = ctx.wifi_mbps, 2 * 1.5
            tx_mw, idle_mw = _WIFI_TX_MW, _WIFI_IDLE_MW
            loss = ctx.wifi_loss

        for i in range(config.planner_probe_frames):
            bytes_up = wire[i]["wire_bytes"]
            if backend == "replay":
                bytes_up = REPLAY_HEADER_BYTES + max(
                    48.0, 0.04 * wire[i]["wire_bytes"]
                )
            if backend == "multicast":
                # One multicast stream serves every co-located viewer.
                bytes_up = bytes_up / ctx.colocated_viewers
            tx_ms = bytes_up * 8 / (mbps * 1000.0)
            retx_ms = loss * config.rto_ms
            stage = max(
                pred.cpu_stage_ms,
                service_ms,
                (link_rtt_ms + service_ms + tx_ms)
                / config.pipeline_depth(1),
                interval,
            )
            latency = stage + tx_ms + retx_ms + 0.5 * rng.random()
            duty = min(1.0, tx_ms / interval)
            energy = _CPU_OFFLOAD_MW + idle_mw + tx_mw * duty
            out.append({
                "latency_ms": latency,
                "uplink_bytes": bytes_up,
                "energy_mw": energy,
                "fused_dropped": wire[i].get("fused_dropped", 0.0),
            })
        return out

    # -- scoring ------------------------------------------------------------

    def probe(self, candidate: PlanCandidate) -> ProbeStats:
        """Measure one candidate and score it from the recorded series."""
        backend = candidate.backend
        config = self.ctx.config
        interval = 1000.0 / self.ctx.app.target_fps
        samples = self._probe_frames(backend)
        for i, s in enumerate(samples):
            t_ms = i * interval
            for name, key in (
                ("plan.frame_ms", "latency_ms"),
                ("plan.uplink_bytes", "uplink_bytes"),
                ("plan.energy_mw", "energy_mw"),
            ):
                self.bank.series(name, agg="mean", backend=backend).record(
                    t_ms, s[key]
                )
                if self.telemetry is not None:
                    self.telemetry.observe(name, s[key], backend=backend)

        def measured(name: str) -> List[float]:
            series = self.bank.series(name, agg="mean", backend=backend)
            return [v for _, v in series.points()]

        lat = measured("plan.frame_ms")
        up = measured("plan.uplink_bytes")
        mw = measured("plan.energy_mw")
        score = (
            config.planner_latency_weight * statistics.fmean(lat)
            + config.planner_bytes_weight * statistics.fmean(up) / 1024.0
            + config.planner_energy_weight * statistics.fmean(mw) / 1000.0
        )
        return ProbeStats(
            backend=backend,
            frames=len(samples),
            mean_latency_ms=statistics.fmean(lat),
            worst_latency_ms=max(lat),
            mean_uplink_bytes=statistics.fmean(up),
            mean_energy_mw=statistics.fmean(mw),
            score=score,
            fused_dropped=int(sum(s.get("fused_dropped", 0.0) for s in samples)),
        )
