"""Experiment R3: sharded fleet sweeps — many kernels, many cores.

The sharded twin of ``repro.experiments.fleet``: the same launch wave,
device pool and crash schedule, but partitioned over K independently
clocked kernels (``repro.sim.shard``) synchronized at control-plane
barriers and optionally fanned across worker processes.

Determinism contract (asserted by tests and the CI parallel-smoke job):

* at fixed ``(seed, shards)`` the merged report — and every per-session
  frame digest inside it — is **byte-identical for any** ``--workers N``;
* ``shards=1`` reproduces the legacy single-kernel
  :func:`~repro.experiments.fleet.run_fleet_point` report digest exactly;
* per-session *frame-content* digests are additionally shard-count
  invariant whenever the pool is provisioned (no backpressure), since
  what a session renders does not depend on who else shares its kernel.
"""

from __future__ import annotations

import hashlib
import json
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.apps.base import ApplicationSpec
from repro.apps.games import GAMES
from repro.experiments.fleet import (
    CRASH_AT_FRACTION,
    REJOIN_AT_FRACTION,
    make_fleet_pool,
)
from repro.fleet import FleetConfig
from repro.obs.merge import merge_metric_snapshots, merge_span_banks
from repro.sim.shard import (
    DEFAULT_WINDOW_MS,
    CoordinatorSummary,
    ShardError,
    ShardJob,
    ShardPlan,
    ShardResult,
    ShardSessionSpec,
    run_shards,
)


@dataclass
class ShardedFleetPoint:
    """Merged outcome of one sharded fleet run."""

    sessions_requested: int
    devices: int
    shards: int
    workers: int
    seed: int
    crash: bool
    offered: int
    admitted: int
    queued: int
    rejected: int
    dequeued: int
    waiting: int
    finished: int
    frames: int
    frames_lost: int
    frames_redispatched: int
    migrations: int
    crash_migrations: int
    peak_concurrent_observed: int
    barriers: int
    window_ms: float
    mean_wait_ms: float
    tier_response_ms: Dict[str, float] = field(default_factory=dict)
    #: sha256 over the merged report (workers-independent by construction)
    digest: str = ""
    #: per-session frame-content digests, sorted by (shard, session)
    session_digests: Dict[str, str] = field(default_factory=dict)
    invariant_violations: int = 0
    #: wall-clock seconds spent driving the shards (NOT part of the digest)
    wall_clock_s: float = 0.0

    @property
    def zero_loss(self) -> bool:
        return self.frames_lost == 0


def plan_fleet_shards(
    n_sessions: int,
    n_devices: int,
    shards: int,
    seed: int,
    duration_ms: float,
    crash: bool = True,
    arrival_spread_ms: float = 1_000.0,
    config: Optional[FleetConfig] = None,
    apps: Optional[Sequence[ApplicationSpec]] = None,
    arrival_offsets: Optional[Sequence[float]] = None,
    app_indices: Optional[Sequence[int]] = None,
) -> List[ShardJob]:
    """Partition one fleet point into per-shard jobs, round-robin by index.

    Sessions keep their global ids (``s000``, ``s001``, ...), apps keep
    the global Table II cycle, devices keep their global pool names, and
    the crash lands on whichever shard owns global device 0 — so the
    union of the shard jobs is exactly the single-kernel point.

    ``arrival_offsets`` replaces the uniform launch wave with an explicit
    open-ended schedule (``repro.fleet.arrivals`` curves): global session
    ``i`` arrives ``arrival_offsets[i]`` ms after bootstrap.  Offsets are
    assigned by global index at plan time, so the schedule — like the
    app cycle — is a pure function of the point, independent of shard
    and worker counts.  ``app_indices`` likewise overrides the default
    app cycle (a capacity-grid genre mix) per global session index.

    A zero-session point is a legitimate degenerate sweep input (capacity
    grids produce them): it plans empty shards and yields an
    empty-but-well-formed merged report instead of dividing the launch
    gap by zero.
    """
    if n_sessions < 0:
        raise ShardError(f"session count must be >= 0, got {n_sessions}")
    if shards > n_devices:
        raise ShardError(
            f"{shards} shards need at least as many devices, got {n_devices}"
        )
    if n_sessions and shards > n_sessions:
        raise ShardError(
            f"{shards} shards need at least as many sessions, got "
            f"{n_sessions}"
        )
    if arrival_offsets is not None:
        if len(arrival_offsets) != n_sessions:
            raise ShardError(
                f"{n_sessions} sessions need {n_sessions} arrival offsets, "
                f"got {len(arrival_offsets)}"
            )
        if any(b < a for a, b in zip(arrival_offsets, arrival_offsets[1:])):
            raise ShardError("arrival offsets must be sorted ascending")
        arrival_spread_ms = max([0.0, *arrival_offsets])
    if app_indices is not None and len(app_indices) != n_sessions:
        raise ShardError(
            f"{n_sessions} sessions need {n_sessions} app indices, "
            f"got {len(app_indices)}"
        )
    plan = ShardPlan(shards)
    pool = make_fleet_pool(n_devices)
    apps = list(apps or GAMES.values())
    # Guarded: a zero-session grid point must plan, not ZeroDivisionError.
    gap_ms = arrival_spread_ms / n_sessions if n_sessions else 0.0
    jobs: List[ShardJob] = []
    for shard in range(shards):
        sessions = [
            ShardSessionSpec(
                session_id=f"s{i:03d}",
                app_index=(
                    app_indices[i] if app_indices is not None
                    else i % len(apps)
                ),
                wave_index=i,
                arrival_offset_ms=(
                    arrival_offsets[i] if arrival_offsets is not None
                    else None
                ),
            )
            for i in plan.indices(shard, n_sessions)
        ]
        device_indices = plan.indices(shard, n_devices)
        crashes: List[Tuple[float, int, Optional[float]]] = []
        if crash and 0 in device_indices:
            crashes.append(
                (
                    duration_ms * CRASH_AT_FRACTION,
                    device_indices.index(0),
                    duration_ms * REJOIN_AT_FRACTION,
                )
            )
        jobs.append(
            ShardJob(
                shard_id=shard,
                shards=shards,
                seed=seed,
                pool=[pool[j] for j in device_indices],
                apps=apps,
                sessions=sessions,
                gap_ms=gap_ms,
                duration_ms=duration_ms,
                arrival_spread_ms=arrival_spread_ms,
                crashes=crashes,
                config=config,
            )
        )
    return jobs


def merge_shard_results(
    results: Sequence[ShardResult], summary: CoordinatorSummary
) -> Dict[str, Any]:
    """Fold per-shard reports into the fleet-level report, deterministically.

    Everything here is a pure function of the shard results and the
    coordinator summary — consumed in shard order, keyed sorted — so the
    digest at the bottom is stable across transports and worker counts.
    """
    ordered = sorted(results, key=lambda r: r.shard_id)
    tiers: Dict[str, Dict[str, float]] = {}
    for result in ordered:
        for tier, bucket in result.report["tiers"].items():
            agg = tiers.setdefault(
                tier,
                {
                    "sessions": 0, "frames": 0, "frames_lost": 0,
                    "migrations": 0, "response_weighted": 0.0,
                },
            )
            agg["sessions"] += bucket["sessions"]
            agg["frames"] += bucket["frames"]
            agg["frames_lost"] += bucket["frames_lost"]
            agg["migrations"] += bucket["migrations"]
            agg["response_weighted"] += (
                bucket["mean_response_ms"] * bucket["frames"]
            )
    per_tier = {
        tier: {
            "sessions": int(agg["sessions"]),
            "frames": int(agg["frames"]),
            "frames_lost": int(agg["frames_lost"]),
            "migrations": int(agg["migrations"]),
            "mean_response_ms": round(
                agg["response_weighted"] / agg["frames"], 4
            ) if agg["frames"] else 0.0,
        }
        for tier, agg in sorted(tiers.items())
    }
    admissions = [r.report["admission"] for r in ordered]
    # Wait samples are recorded only when a queued session is dequeued,
    # so the per-shard mean must be weighted by the dequeue count — not
    # admitted+queued, which overweights shards that admitted directly.
    wait_weights = [a["dequeued"] for a in admissions]
    total_waits = sum(wait_weights)
    mean_wait_ms = round(
        sum(
            a["mean_wait_ms"] * w
            for a, w in zip(admissions, wait_weights)
        ) / total_waits,
        4,
    ) if total_waits else 0.0
    # Session digests keyed in (shard, session) merge order.
    session_digests: Dict[str, str] = {}
    for result in ordered:
        for sid in sorted(result.session_digests):
            session_digests[sid] = result.session_digests[sid]
    merged: Dict[str, Any] = {
        "shards": len(ordered),
        "pool_devices": sum(r.report["pool_devices"] for r in ordered),
        "registered_devices": sum(
            r.report["registered_devices"] for r in ordered
        ),
        "capacity_mp_per_ms": round(
            sum(r.report["capacity_mp_per_ms"] for r in ordered), 4
        ),
        "admission": {
            "offered": sum(a["offered"] for a in admissions),
            "admitted": sum(a["admitted"] for a in admissions),
            "queued": sum(a["queued"] for a in admissions),
            "rejected": sum(a["rejected"] for a in admissions),
            "dequeued": sum(a["dequeued"] for a in admissions),
            "waiting": sum(a["waiting"] for a in admissions),
            "mean_wait_ms": mean_wait_ms,
        },
        "sessions": {
            "finished": sum(
                r.report["sessions"]["finished"] for r in ordered
            ),
            "active": sum(r.report["sessions"]["active"] for r in ordered),
            "peak_concurrent_observed": summary.peak_concurrent_observed,
        },
        "migrations": {
            "total": sum(r.report["migrations"]["total"] for r in ordered),
            "crash": sum(r.report["migrations"]["crash"] for r in ordered),
            "rebalance": sum(
                r.report["migrations"]["rebalance"] for r in ordered
            ),
            "frames_redispatched": sum(
                r.report["migrations"]["frames_redispatched"]
                for r in ordered
            ),
        },
        "tiers": per_tier,
        "barrier": {
            "count": summary.barriers,
            "window_ms": summary.window_ms,
        },
        "metrics": merge_metric_snapshots([r.metrics for r in ordered]),
        "spans": merge_span_banks([r.span_bank for r in ordered]),
        "session_digests": session_digests,
        "per_shard_digests": {
            str(r.shard_id): r.report["digest"] for r in ordered
        },
    }
    blob = json.dumps(merged, sort_keys=True).encode()
    merged["digest"] = hashlib.sha256(blob).hexdigest()
    return merged


def run_sharded_fleet_point(
    n_sessions: int = 64,
    n_devices: int = 8,
    duration_ms: float = 10_000.0,
    seed: int = 0,
    shards: int = 4,
    workers: int = 1,
    crash: bool = True,
    window_ms: float = DEFAULT_WINDOW_MS,
    config: Optional[FleetConfig] = None,
    arrival_spread_ms: float = 1_000.0,
    arrival_offsets: Optional[Sequence[float]] = None,
    app_indices: Optional[Sequence[int]] = None,
) -> Tuple[ShardedFleetPoint, Dict[str, Any]]:
    """One sharded fleet point; returns the merged point and report."""
    jobs = plan_fleet_shards(
        n_sessions=n_sessions, n_devices=n_devices, shards=shards,
        seed=seed, duration_ms=duration_ms, crash=crash,
        arrival_spread_ms=arrival_spread_ms, config=config,
        arrival_offsets=arrival_offsets, app_indices=app_indices,
    )
    started = time.perf_counter()
    results, summary = run_shards(
        jobs, workers=workers, window_ms=window_ms
    )
    wall_clock_s = time.perf_counter() - started
    report = merge_shard_results(results, summary)
    point = ShardedFleetPoint(
        sessions_requested=n_sessions,
        devices=n_devices,
        shards=shards,
        workers=workers,
        seed=seed,
        crash=crash,
        offered=report["admission"]["offered"],
        admitted=report["admission"]["admitted"],
        queued=report["admission"]["queued"],
        rejected=report["admission"]["rejected"],
        dequeued=report["admission"]["dequeued"],
        waiting=report["admission"]["waiting"],
        finished=report["sessions"]["finished"],
        frames=sum(t["frames"] for t in report["tiers"].values()),
        frames_lost=sum(
            t["frames_lost"] for t in report["tiers"].values()
        ),
        frames_redispatched=report["migrations"]["frames_redispatched"],
        migrations=report["migrations"]["total"],
        crash_migrations=report["migrations"]["crash"],
        peak_concurrent_observed=(
            report["sessions"]["peak_concurrent_observed"]
        ),
        barriers=report["barrier"]["count"],
        window_ms=window_ms,
        mean_wait_ms=report["admission"]["mean_wait_ms"],
        tier_response_ms={
            tier: t["mean_response_ms"]
            for tier, t in report["tiers"].items()
        },
        digest=report["digest"],
        session_digests=dict(report["session_digests"]),
        invariant_violations=sum(
            r.invariant_violations for r in results
        ),
        wall_clock_s=wall_clock_s,
    )
    return point, report


def run_sharded_fleet_sweep(
    session_counts: Sequence[int] = (16, 32, 64, 96),
    n_devices: int = 8,
    duration_ms: float = 10_000.0,
    seed: int = 0,
    shards: int = 4,
    workers: int = 1,
    crash: bool = True,
    window_ms: float = DEFAULT_WINDOW_MS,
) -> List[ShardedFleetPoint]:
    """Sweep session count over a fixed pool, sharded."""
    return [
        run_sharded_fleet_point(
            n_sessions=n, n_devices=n_devices, duration_ms=duration_ms,
            seed=seed, shards=shards, workers=workers, crash=crash,
            window_ms=window_ms,
        )[0]
        for n in session_counts
    ]


def format_sharded_points(points: Sequence[ShardedFleetPoint]) -> str:
    header = (
        f"{'sessions':>8} {'devices':>7} {'shards':>6} {'workers':>7} "
        f"{'admit':>5} {'queue':>5} {'reject':>6} {'migr':>4} {'lost':>4} "
        f"{'barriers':>8} {'wall s':>7} {'digest':>16}"
    )
    lines = [header]
    for p in points:
        lines.append(
            f"{p.sessions_requested:8d} {p.devices:7d} {p.shards:6d} "
            f"{p.workers:7d} {p.admitted:5d} {p.queued:5d} "
            f"{p.rejected:6d} {p.migrations:4d} {p.frames_lost:4d} "
            f"{p.barriers:8d} {p.wall_clock_s:7.2f} {p.digest[:16]:>16}"
        )
    return "\n".join(lines)
