"""The graphics-engine frame loop.

Models how a mobile game produces frames (§IV, §VI-A):

1. the game thread spends ``cpu_ms_per_frame`` building the frame (scaled
   by the device CPU's perf index), plus the GL driver-submission share
   when rendering locally, plus the offload data-path overhead (serialize,
   compress, decode) when a backend charges one;
2. the resulting command batch becomes a :class:`RenderRequest` submitted
   to a :class:`GraphicsBackend` (local GPU, GBooster client, or cloud);
3. ``SwapBuffer`` semantics come from the backend's ``max_pending``: a
   local double-buffered swap allows 2 frames in flight; GBooster's
   rewritten non-blocking swap allows 3 (the §VI-A internal buffer);
   a strict blocking swap (the ablation) allows 1;
4. vsync pacing caps the issue rate at the engine's target FPS.

Every frame yields a :class:`FrameRecord` carrying issue/presentation
timestamps and the exogenous signals (§V-B) — touch count, command count,
texture count, command diff — that the traffic predictor consumes.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Deque, Generator, List, Optional, Protocol

from repro.apps.base import ApplicationSpec, CommandBatchBuilder, SceneState
from repro.apps.touch import TouchEvent, TouchGenerator
from repro.codec.frames import FrameImage
from repro.devices.runtime import UserDeviceRuntime
from repro.gpu.model import RenderRequest
from repro.obs.spans import OpenSpan
from repro.sim.kernel import Event, Simulator

#: CPU time per frame spent inside the local GL driver stack submitting
#: work to the local GPU (fixed setup plus a per-command marshalling cost);
#: offloading replaces this with the client's own data-path overhead.
DRIVER_FIXED_MS = 1.0
DRIVER_PER_COMMAND_US = 6.0


def driver_submit_ms(nominal_commands: int) -> float:
    """Local GL driver submission cost per frame (reference CPU)."""
    return DRIVER_FIXED_MS + nominal_commands * DRIVER_PER_COMMAND_US / 1000.0


class GraphicsBackend(Protocol):
    """What the engine needs from a rendering destination."""

    #: How many rendering requests may be outstanding before the (possibly
    #: rewritten) SwapBuffer blocks the application.
    max_pending: int
    #: Whether frames render through the local GL driver (charges
    #: DRIVER_SUBMIT_MS on the engine's CPU stage).
    uses_local_driver: bool

    def submit(self, request: RenderRequest, frame: FrameImage) -> Event:
        """Dispatch a request; the event fires when the frame is displayed."""
        ...

    def cpu_overhead_ms(self, frame: FrameImage) -> float:
        """Extra per-frame CPU on the user device (serialize/compress/decode)."""
        ...


@dataclass
class FrameRecord:
    frame_id: int
    issued_at: float
    presented_at: Optional[float] = None
    command_count: int = 0
    nominal_command_count: int = 0
    texture_count: int = 0
    command_diff: int = 0
    change_fraction: float = 0.0
    touches_since_last: int = 0

    @property
    def response_time_ms(self) -> Optional[float]:
        if self.presented_at is None:
            return None
        return self.presented_at - self.issued_at


@dataclass
class EngineConfig:
    duration_ms: float = 60_000.0
    vsync_fps: Optional[float] = None      # default: spec.target_fps
    warmup_ms: float = 2_000.0             # excluded from metrics (menus)
    #: a MonkeyRunner-style InputScript replaces the stochastic touch
    #: generator when set (paper §VII-E repeatable tests).
    input_script: Optional[object] = None
    #: make frame *content* a pure function of (seed, frame index): the
    #: scene advances by the fixed vsync dt instead of realized wall time,
    #: and the stochastic touch generator is replaced by scripted per-frame
    #: touches.  Two backends that pace frames differently (local swap
    #: depth 2 vs offload depth 3) then issue identical command streams,
    #: which is what differential replay compares.
    deterministic_content: bool = False


class GameEngine:
    """Runs one application session on one user device."""

    def __init__(
        self,
        sim: Simulator,
        spec: ApplicationSpec,
        device: UserDeviceRuntime,
        backend: GraphicsBackend,
        config: Optional[EngineConfig] = None,
    ):
        self.sim = sim
        self.spec = spec
        self.device = device
        self.backend = backend
        self.config = config or EngineConfig()
        self.scene = SceneState()
        self.rng = sim.stream(f"engine.{spec.short_name}")
        self.builder = CommandBatchBuilder(spec, self.rng.fork("commands"))
        if self.config.input_script is not None:
            from repro.apps.monkeyrunner import ScriptedTouchPlayer

            self.touch = ScriptedTouchPlayer(
                sim, self.config.input_script, on_touch=self._on_touch,
                loop=True,
            )
        elif self.config.deterministic_content:
            # Content mode: touches are injected per frame inside the loop
            # (a pure function of the frame index) instead of by a
            # time-driven generator process, so two differently-paced runs
            # see identical input.  The stream name is reserved anyway so
            # downstream stream creation order matches the stochastic path.
            self.touch = None
            self._touch_rng = sim.stream(f"touch.{spec.short_name}")
        else:
            self.touch = TouchGenerator(
                sim, spec, on_touch=self._on_touch,
                rng=sim.stream(f"touch.{spec.short_name}"),
            )
        self.frames: List[FrameRecord] = []
        self.setup_commands = self.builder.setup_commands()
        self._touches_since_frame = 0
        self._prev_command_count = 0
        self._frame_id = 0
        self._inflight: Deque[Event] = deque()
        self.finished = sim.event(name=f"engine.{spec.short_name}.finished")
        self._proc = sim.spawn(self._run(), name=f"engine.{spec.short_name}")

    # -- touch handling -------------------------------------------------------

    def _on_touch(self, event: TouchEvent) -> None:
        self.scene.on_touch(event.strength)
        self._touches_since_frame += 1

    def _synthetic_touch(self, frame_id: int) -> None:
        """Deterministic-content input: touches keyed on the frame index.

        Every frame draws the same number of values from the touch stream
        regardless of outcome, so the stream stays in lockstep between runs
        that present different subsets of frames.
        """
        rng = self._touch_rng
        u = rng.random()
        strength = rng.uniform(0.6, 1.0)
        burst = (frame_id // 45) % 4 == 0
        if burst and u < 0.5:
            self.scene.on_touch(strength)
            self._touches_since_frame += 1

    # -- the frame loop ----------------------------------------------------------

    def _cpu_stage_ms(self, frame: FrameImage) -> float:
        perf = self.device.spec.cpu.perf_index
        stage = self.spec.cpu_ms_per_frame / perf
        if self.backend.uses_local_driver:
            stage += driver_submit_ms(self.spec.nominal_commands_per_frame) / perf
        stage += self.backend.cpu_overhead_ms(frame) / perf
        return stage

    def _run(self) -> Generator:
        sim = self.sim
        spec = self.spec
        vsync_fps = self.config.vsync_fps or spec.target_fps
        vsync_interval = 1000.0 / vsync_fps
        end_time = sim.now + self.config.duration_ms
        self.device.cpu.set_load("app_base", spec.cpu_base_load)
        last_issue = -vsync_interval
        frame_dt_s = vsync_interval / 1000.0

        while sim.now < end_time:
            # SwapBuffer semantics: block while the pending buffer is full.
            while len(self._inflight) >= self.backend.max_pending:
                oldest = self._inflight.popleft()
                yield oldest

            if self.config.deterministic_content:
                # Content mode: fixed dt and frame-indexed synthetic touches
                # keep the scene (and thus the command stream) a pure
                # function of (seed, frame index), independent of pacing.
                self._synthetic_touch(self._frame_id)
                self.scene.advance(frame_dt_s)
            else:
                # Scene evolves with wall time since the previous frame.
                self.scene.advance(
                    max(frame_dt_s, (sim.now - last_issue) / 1000.0)
                )
            frame_desc = FrameImage(
                width=spec.render_width,
                height=spec.render_height,
                change_fraction=self.scene.change_fraction(spec),
                detail=spec.detail,
            )

            # CPU stage: game logic + driver or offload overhead.  This runs
            # *inside* the frame interval (the game thread works while the
            # previous frame displays), so vsync pacing below only delays
            # the issue if CPU work finished early.
            # Stamp the frame's wire-propagated trace context at intercept:
            # the id is a pure function of (seed, session, frame), so every
            # downstream component — codec, transport, server, replay,
            # planner — attributes its work to the same causal identity.
            trace = (
                sim.causal.frame_trace(self._frame_id)
                if sim.causal is not None
                else None
            )
            trace_args = (
                {"trace_id": trace.trace_id} if trace is not None else {}
            )
            root_span = sim.spans.begin(
                "frame", "frame", track="engine", frame_id=self._frame_id,
                **trace_args,
            )
            intercept_span = sim.spans.begin(
                "app", "intercept", track="engine",
                frame_id=self._frame_id, parent=root_span, **trace_args,
            )
            if trace is not None:
                sim.causal.event(
                    "client", "intercept", trace=trace,
                    frame=self._frame_id,
                )
            stage_ms = self._cpu_stage_ms(frame_desc)
            yield stage_ms
            intercept_span.end()

            # Vsync pacing on issue rate.
            earliest = last_issue + vsync_interval
            if sim.now < earliest:
                yield earliest - sim.now

            commands = self.builder.frame_commands(self.scene)
            if sim.digests is not None:
                sim.digests.record_issue(self._frame_id, commands)
            record = FrameRecord(
                frame_id=self._frame_id,
                issued_at=sim.now,
                command_count=len(commands),
                nominal_command_count=spec.nominal_commands_per_frame,
                texture_count=max(
                    1,
                    int(
                        spec.textures_per_frame
                        * (0.5 + 0.5 * self.scene.activity)
                    ),
                ),
                command_diff=int(
                    spec.nominal_commands_per_frame
                    * self.scene.change_fraction(spec)
                    * self.rng.uniform(0.6, 1.4)
                ),
                change_fraction=frame_desc.change_fraction,
                touches_since_last=self._touches_since_frame,
            )
            self._touches_since_frame = 0
            self.frames.append(record)

            request = RenderRequest(
                request_id=self._frame_id,
                frame_id=self._frame_id,
                commands=commands,
                fill_megapixels=spec.fill_mp_per_frame
                * self.rng.uniform(0.92, 1.08),
                vertex_count=spec.nominal_commands_per_frame * 12,
                width=spec.render_width,
                height=spec.render_height,
                issued_at=sim.now,
                metadata={
                    "record": record,
                    "frame_span": root_span,
                    "trace": trace,
                },
            )
            completion = self.backend.submit(request, frame_desc)
            self._bind_presentation(completion, record, root_span, trace)
            self._inflight.append(completion)
            # CPU load accounting (§VII-G): busy fraction over the realized
            # frame interval, spread across the device's cores.
            interval_ms = max(sim.now - last_issue, stage_ms, 1e-6)
            cores = self.device.spec.cpu.cores
            self.device.cpu.set_load(
                "frame_gen", min(1.0, stage_ms / interval_ms / cores)
            )
            last_issue = sim.now
            self._frame_id += 1

        # Drain outstanding frames before declaring the session over.
        while self._inflight:
            yield self._inflight.popleft()
        self.device.cpu.set_load("frame_gen", 0.0)
        self.device.cpu.set_load("app_base", 0.0)
        if not self.finished.triggered:
            self.finished.trigger(len(self.frames))

    def _bind_presentation(
        self,
        completion: Event,
        record: FrameRecord,
        root_span: Optional["OpenSpan"] = None,
        trace: Optional[Any] = None,
    ) -> None:
        def _watch() -> Generator:
            yield completion
            record.presented_at = self.sim.now
            self.device.surface.attach_back(None)
            if root_span is not None:
                root_span.end(response_ms=record.response_time_ms)
            if trace is not None and self.sim.causal is not None:
                self.sim.causal.event(
                    "client", "present", trace=trace,
                    frame=record.frame_id,
                    response_ms=round(record.response_time_ms, 4),
                )
            if self.sim.telemetry is not None:
                self.sim.telemetry.observe(
                    "engine.response_ms", record.response_time_ms,
                    trace_id=trace.trace_id if trace is not None else None,
                    genre=self.spec.genre,
                )

        self.sim.spawn(_watch(), name=f"present.{record.frame_id}")

    # -- session results -------------------------------------------------------------

    def presented_frames(self) -> List[FrameRecord]:
        warmup_end = self.config.warmup_ms
        return [
            f
            for f in self.frames
            if f.presented_at is not None and f.presented_at >= warmup_end
        ]
