"""A real LZ77 byte compressor in the LZ4 style.

The paper uses LZ4 [23] because it is light on CPU while reaching ~70%
reduction on graphics command streams.  This is a from-scratch pure-Python
implementation of the same family: greedy hash-chain match finding, a
token-based block format (literal-run length + match length nibbles, LZ4's
15/255 extension bytes, little-endian 16-bit offsets), and a linear-time
decompressor.  ``decompress(compress(x)) == x`` for all byte strings, which
the property tests exercise.

Block format (per sequence):
    token byte: (literal_len_nibble << 4) | match_len_nibble
    [literal length extension bytes]  while nibble/extension == 15/255
    literal bytes
    2-byte LE match offset (1..65535)          -- absent in the final run
    [match length extension bytes]             -- match len = nibble + 4
"""

from __future__ import annotations

from typing import Dict, List

MIN_MATCH = 4
MAX_OFFSET = 0xFFFF
_HASH_LEN = 4


def _hash4(data: bytes, pos: int) -> int:
    # FNV-ish mix of 4 bytes; cheap and good enough for chain bucketing.
    return (
        (data[pos] * 2654435761)
        ^ (data[pos + 1] * 40503)
        ^ (data[pos + 2] * 31)
        ^ data[pos + 3]
    ) & 0xFFFF


def _write_length(value: int, nibble_max: int, out: bytearray) -> int:
    """Returns the nibble; appends extension bytes for the remainder."""
    if value < nibble_max:
        return value
    remainder = value - nibble_max
    while remainder >= 255:
        out.append(255)
        remainder -= 255
    out.append(remainder)
    return nibble_max


def compress(data: bytes, max_chain: int = 16) -> bytes:
    """Compress ``data``; always decompressible by :func:`decompress`.

    ``max_chain`` bounds the match-finder effort (LZ4's speed/ratio knob).
    """
    if not isinstance(data, (bytes, bytearray)):
        raise TypeError(f"expected bytes, got {type(data).__name__}")
    data = bytes(data)
    n = len(data)
    out = bytearray()
    chains: Dict[int, List[int]] = {}
    pos = 0
    literal_start = 0

    def emit_sequence(lit_end: int, match_off: int, match_len: int) -> None:
        literals = data[literal_start:lit_end]
        ext = bytearray()
        lit_nibble = _write_length(len(literals), 15, ext)
        if match_len >= 0:
            match_ext = bytearray()
            match_nibble = _write_length(match_len - MIN_MATCH, 15, match_ext)
            out.append((lit_nibble << 4) | match_nibble)
            out.extend(ext)
            out.extend(literals)
            out.append(match_off & 0xFF)
            out.append((match_off >> 8) & 0xFF)
            out.extend(match_ext)
        else:
            out.append(lit_nibble << 4)
            out.extend(ext)
            out.extend(literals)

    while pos < n:
        best_len = 0
        best_off = 0
        if pos + _HASH_LEN <= n:
            bucket = chains.setdefault(_hash4(data, pos), [])
            for candidate in reversed(bucket[-max_chain:]):
                offset = pos - candidate
                if offset > MAX_OFFSET:
                    continue
                # Extend the match.
                length = 0
                limit = n - pos
                while (
                    length < limit
                    and data[candidate + length] == data[pos + length]
                ):
                    length += 1
                if length > best_len:
                    best_len = length
                    best_off = offset
            bucket.append(pos)
        if best_len >= MIN_MATCH:
            emit_sequence(pos, best_off, best_len)
            # Index positions inside the match so later data can reference it.
            end = pos + best_len
            for p in range(pos + 1, min(end, n - _HASH_LEN + 1)):
                chains.setdefault(_hash4(data, p), []).append(p)
            pos = end
            literal_start = pos
        else:
            pos += 1
    if literal_start < n or n == 0:
        emit_sequence(n, 0, -1)
    return bytes(out)


def decompress(blob: bytes) -> bytes:
    """Inverse of :func:`compress`."""
    data = bytes(blob)
    out = bytearray()
    pos = 0
    n = len(data)
    while pos < n:
        token = data[pos]
        pos += 1
        lit_len = token >> 4
        match_nibble = token & 0x0F
        if lit_len == 15:
            while True:
                ext = data[pos]
                pos += 1
                lit_len += ext
                if ext != 255:
                    break
        out.extend(data[pos:pos + lit_len])
        pos += lit_len
        if pos >= n:
            break  # final literal-only sequence
        offset = data[pos] | (data[pos + 1] << 8)
        pos += 2
        if offset == 0:
            raise ValueError("corrupt stream: zero match offset")
        match_len = match_nibble
        if match_len == 15:
            while True:
                ext = data[pos]
                pos += 1
                match_len += ext
                if ext != 255:
                    break
        match_len += MIN_MATCH
        start = len(out) - offset
        if start < 0:
            raise ValueError("corrupt stream: offset before start")
        for i in range(match_len):  # byte-wise: overlapping copies are legal
            out.append(out[start + i])
    return bytes(out)


def compression_ratio(data: bytes, max_chain: int = 16) -> float:
    """Compressed size as a fraction of the original (lower is better)."""
    if not data:
        return 1.0
    return len(compress(data, max_chain=max_chain)) / len(data)
