"""Tracer filtering and queries."""

from repro.sim.trace import Tracer


def test_records_and_queries():
    tracer = Tracer()
    tracer.record(1.0, "gpu", "start", device="a")
    tracer.record(2.0, "gpu", "stop", device="a")
    tracer.record(3.0, "net", "send")
    assert tracer.count() == 3
    assert tracer.count(category="gpu") == 2
    assert tracer.count(category="gpu", event="stop") == 1
    assert tracer.query("net")[0].time == 3.0


def test_category_filter_drops_unwanted():
    tracer = Tracer(categories=["gpu"])
    tracer.record(1.0, "gpu", "x")
    tracer.record(1.0, "net", "y")
    assert tracer.count() == 1
    assert not tracer.wants("net")


def test_disabled_tracer_records_nothing():
    tracer = Tracer()
    tracer.enabled = False
    tracer.record(1.0, "gpu", "x")
    assert tracer.count() == 0


def test_clear():
    tracer = Tracer()
    tracer.record(1.0, "a", "b")
    tracer.clear()
    assert tracer.count() == 0


def test_record_data_payload():
    tracer = Tracer()
    tracer.record(5.0, "gpu", "dvfs", freq=100, temp=91.5)
    rec = tracer.query("gpu", "dvfs")[0]
    assert rec.data == {"freq": 100, "temp": 91.5}
