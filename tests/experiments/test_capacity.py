"""Experiment R5: the capacity-planning sweep and its artifact."""

import json

import pytest

from repro.experiments.capacity import (
    ATTAINMENT_TARGET,
    BENCH_CAPACITY_SCHEMA,
    GENRE_MIXES,
    GENRE_TITLES,
    compute_frontier,
    diff_against_baseline,
    format_bench,
    mix_app_indices,
    run_capacity_bench,
    run_capacity_point,
    standard_curves,
    validate_bench,
)
from repro.experiments.fleet_shard import (
    plan_fleet_shards,
    run_sharded_fleet_point,
)
from repro.fleet import FleetConfig, arrival_offsets
from repro.sim.shard import ShardError

#: provisioned config — no back-pressure, so frame digests are
#: shard-count invariant (see tests/fleet/test_shard_properties.py)
PROVISIONED = FleetConfig(serve_rate_hz=10.0, pipeline_depth=8)


class TestGenreMixes:
    def test_apportionment_matches_the_weights(self):
        indices = mix_app_indices(GENRE_MIXES["action_heavy"], 50)
        action = sum(1 for i in indices if i in GENRE_TITLES["action"])
        role = sum(1 for i in indices if i in GENRE_TITLES["roleplaying"])
        puzzle = sum(1 for i in indices if i in GENRE_TITLES["puzzle"])
        assert action + role + puzzle == 50
        assert action == 30 and role == 10 and puzzle == 10

    def test_mix_interleaves_rather_than_batches(self):
        indices = mix_app_indices(GENRE_MIXES["balanced"], 12)
        # Every consecutive window of 3 holds all three genres.
        for i in range(0, 12, 3):
            genres = {
                g for idx in indices[i:i + 3]
                for g, titles in GENRE_TITLES.items() if idx in titles
            }
            assert genres == {"action", "roleplaying", "puzzle"}

    def test_titles_alternate_within_a_genre(self):
        indices = mix_app_indices({"action": 1}, 4)
        assert indices == [0, 1, 0, 1]

    def test_apportionment_is_deterministic(self):
        assert mix_app_indices(GENRE_MIXES["casual"], 31) == mix_app_indices(
            GENRE_MIXES["casual"], 31
        )

    def test_nonpositive_weight_is_rejected(self):
        with pytest.raises(ValueError):
            mix_app_indices({"action": 0}, 4)


class TestCapacityPoint:
    @pytest.fixture(scope="class")
    def record(self):
        curve = standard_curves(2_500.0)[0]
        return run_capacity_point(8, 2, curve, "balanced", 2_500.0, 0)

    def test_record_is_well_formed(self, record):
        assert record["sessions"] == 8
        assert record["devices"] == 2
        assert record["curve"] == "steady"
        assert 0.0 <= record["service_attainment"] <= 1.0
        assert record["frames_good"] + record["frames_bad"] > 0
        assert set(record["slo_states"]) == {
            "admission_reject_rate", "admission_wait", "fleet_frame_p99",
        }

    def test_admission_ledger_reconciles(self, record):
        assert record["reconciled"]
        assert record["admission"]["waiting"] == 0
        assert record["admission"]["offered"] == 8

    def test_invariant_monitor_is_armed_and_clean(self, record):
        assert record["invariant_violations"] == 0

    def test_point_is_deterministic(self, record):
        curve = standard_curves(2_500.0)[0]
        again = run_capacity_point(8, 2, curve, "balanced", 2_500.0, 0)
        assert again == record

    def test_denied_demand_counts_against_attainment(self):
        curve = standard_curves(1_500.0)[0]
        # 80 sessions on one device: the wait queue overflows, and every
        # rejected session's would-be frames count as denied.
        record = run_capacity_point(80, 1, curve, "balanced", 1_500.0, 0)
        assert record["admission"]["rejected"] > 0
        assert record["frames_denied"] > 0
        assert record["service_attainment"] < record["served_attainment"]


class TestSmokeBench:
    @pytest.fixture(scope="class")
    def bench(self):
        return run_capacity_bench(seed=0, smoke=True, workers=1)

    def test_artifact_validates(self, bench):
        assert validate_bench(bench) == []
        assert bench["schema"] == BENCH_CAPACITY_SCHEMA

    def test_worker_count_is_transport_only(self, bench):
        fanned = run_capacity_bench(seed=0, smoke=True, workers=2)
        assert json.dumps(fanned, sort_keys=True) == json.dumps(
            bench, sort_keys=True
        )

    def test_frontier_covers_every_group(self, bench):
        det = bench["deterministic"]
        groups = {
            (p["devices"], p["curve"], p["mix"]) for p in det["points"]
        }
        assert len(det["frontier"]) == len(groups)
        assert all(f["target"] == ATTAINMENT_TARGET for f in det["frontier"])

    def test_envelope_is_monotone_non_increasing(self, bench):
        det = bench["deterministic"]
        groups = {}
        for p in det["points"]:
            key = (p["devices"], p["curve"], p["mix"])
            groups.setdefault(key, []).append(p)
        for group in groups.values():
            ordered = sorted(group, key=lambda p: p["sessions"])
            envelope = [p["envelope_attainment"] for p in ordered]
            assert envelope == sorted(envelope, reverse=True)

    def test_formatting(self, bench):
        text = format_bench(bench)
        assert "sustained" in text
        assert "digest" in text


class TestFrontier:
    def _point(self, sessions, attainment, devices=4, curve="steady",
               mix="balanced"):
        return {
            "sessions": sessions, "devices": devices, "curve": curve,
            "mix": mix, "service_attainment": attainment,
        }

    def test_first_breach_caps_the_frontier(self):
        # 16 misses the bar, so 24 cannot be called sustained even
        # though its raw ratio wiggled back above the target.
        points = [
            self._point(8, 1.0),
            self._point(16, 0.97),
            self._point(24, 0.995),
        ]
        (entry,) = compute_frontier(points)
        assert entry["sustained"] == 8
        assert entry["attainment_at_sustained"] == 1.0
        assert entry["max_offered"] == 24

    def test_group_that_never_holds_reports_zero(self):
        (entry,) = compute_frontier([self._point(8, 0.5)])
        assert entry["sustained"] == 0
        assert entry["attainment_at_sustained"] is None

    def test_envelope_is_the_running_minimum(self):
        points = [
            self._point(8, 1.0),
            self._point(16, 0.97),
            self._point(24, 0.995),
        ]
        compute_frontier(points)
        assert [p["envelope_attainment"] for p in points] == [
            1.0, 0.97, 0.97,
        ]


class TestValidationGate:
    def test_rising_attainment_is_flagged(self):
        bench = run_capacity_bench(seed=0, smoke=True, workers=1)
        points = bench["deterministic"]["points"]
        ordered = sorted(
            (p for p in points
             if (p["devices"], p["curve"], p["mix"])
             == (points[0]["devices"], points[0]["curve"], points[0]["mix"])),
            key=lambda p: p["sessions"],
        )
        ordered[-1]["service_attainment"] = (
            ordered[0]["service_attainment"] + 0.5
        )
        assert any(
            "attainment rises" in p for p in validate_bench(bench)
        )

    def test_unreconciled_point_is_flagged(self):
        bench = run_capacity_bench(seed=0, smoke=True, workers=1)
        bench["deterministic"]["points"][0]["reconciled"] = False
        assert any(
            "does not reconcile" in p for p in validate_bench(bench)
        )

    def test_baseline_diff_skips_on_seed_mismatch(self):
        bench = run_capacity_bench(seed=0, smoke=True, workers=1)
        other = json.loads(json.dumps(bench))
        other["deterministic"]["seed"] = 9
        regressions, skip = diff_against_baseline(bench, other)
        assert regressions == [] and skip is not None

    def test_baseline_diff_catches_frontier_regression(self):
        bench = run_capacity_bench(seed=0, smoke=True, workers=1)
        worse = json.loads(json.dumps(bench))
        for entry in worse["deterministic"]["frontier"]:
            entry["sustained"] = 0
        for p in worse["deterministic"]["points"]:
            p["service_attainment"] = 0.0
        regressions, skip = diff_against_baseline(worse, bench)
        assert skip is None
        assert any("sustained load fell" in r for r in regressions)
        assert any("attainment fell" in r for r in regressions)


class TestShardedArrivals:
    def test_zero_session_point_yields_an_empty_report(self):
        """Regression: a zero-session sweep point used to die planning
        the launch wave (``gap_ms = spread / n_sessions``) instead of
        returning an empty-but-well-formed merged report."""
        point, report = run_sharded_fleet_point(
            n_sessions=0, n_devices=4, duration_ms=2_000.0, seed=0,
            shards=2, workers=1, crash=False,
        )
        assert point.offered == 0
        assert point.finished == 0
        assert point.frames == 0
        assert point.mean_wait_ms == 0.0
        assert point.session_digests == {}
        assert report["digest"] == point.digest

    def test_offsets_must_match_the_session_count(self):
        with pytest.raises(ShardError):
            plan_fleet_shards(
                n_sessions=4, n_devices=4, shards=2, seed=0,
                duration_ms=2_000.0, arrival_offsets=[0.0, 1.0],
            )

    def test_offsets_must_be_sorted(self):
        with pytest.raises(ShardError):
            plan_fleet_shards(
                n_sessions=2, n_devices=4, shards=2, seed=0,
                duration_ms=2_000.0, arrival_offsets=[5.0, 1.0],
            )

    @pytest.mark.parametrize(
        "curve", standard_curves(3_000.0), ids=lambda c: c.key
    )
    def test_frame_digests_shard_invariant_under_each_curve(self, curve):
        """The tentpole's partition-invariance contract: in a
        provisioned pool, per-session frame digests under an arrival
        curve are identical for 2 and 4 shards."""
        offsets = arrival_offsets(curve, 24, seed=0)
        spec = dict(
            n_sessions=24, n_devices=24, duration_ms=3_000.0, seed=0,
            crash=False, workers=1, config=PROVISIONED,
            arrival_offsets=offsets,
        )
        two, _ = run_sharded_fleet_point(shards=2, **spec)
        four, _ = run_sharded_fleet_point(shards=4, **spec)
        assert two.session_digests == four.session_digests
        assert len(two.session_digests) == 24
        assert two.frames_lost == four.frames_lost == 0
