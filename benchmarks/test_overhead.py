"""O1: §VII-G — memory and CPU overhead of the client runtime.

Paper: average extra memory 47.8 MB; CPU on G1 rises from 68% (local) to
79% (offloaded) on the Nexus 5.
"""

from conftest import print_table

from repro.experiments.overhead import run_overhead_experiment


def test_overhead(run_once, session_duration_ms):
    report = run_once(run_overhead_experiment,
                      duration_ms=session_duration_ms)
    lines = [
        f"{component:22} {mb:6.1f} MB"
        for component, mb in report.breakdown_mb.items()
    ]
    lines.append(f"{'total':22} {report.memory_mb:6.1f} MB (paper 47.8 MB)")
    lines.append(
        f"CPU util: local {report.cpu_local_util*100:.0f}% -> offloaded "
        f"{report.cpu_offloaded_util*100:.0f}% (paper 68% -> 79%)"
    )
    print_table("System overhead (§VII-G)", "component / size", lines)
    assert 25.0 <= report.memory_mb <= 75.0
    assert report.cpu_local_util < report.cpu_offloaded_util
    assert 0.55 <= report.cpu_local_util <= 0.8
    assert 0.65 <= report.cpu_offloaded_util <= 0.95
