"""Arming a :class:`~repro.faults.schedule.FaultSchedule` on a live session.

The injector owns the mapping from declarative fault events to the runtime
hooks underneath:

* node crash/rejoin  -> :meth:`ServiceNode.fail` / :meth:`ServiceNode.rejoin`
                        (+ :meth:`GBoosterClient.mark_recovered` on rejoin)
* link outage        -> a 1.0 loss impairment on the affected
                        :class:`~repro.net.link.NetworkLink` s
* loss burst         -> a probabilistic impairment on the same links
* radio degradation  -> a bandwidth factor on the user device's radios

Everything is scheduled through ``sim.call_at`` on the session's own
simulator, so fault runs replay deterministically with the session seed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.faults.schedule import (
    FaultEvent,
    FaultSchedule,
    LinkOutage,
    LossBurst,
    NodeCrash,
    RadioDegradation,
)
from repro.net.link import NetworkLink
from repro.sim.kernel import Simulator


@dataclass
class InjectedFault:
    """One entry of the injector's applied-fault log."""

    time_ms: float
    kind: str                       # "crash" | "rejoin" | "outage" | ...
    phase: str                      # "start" | "end" | "fire"
    detail: Dict[str, object] = field(default_factory=dict)


class FaultInjector:
    """Schedules a fault scenario against a running offload session."""

    def __init__(
        self,
        sim: Simulator,
        schedule: FaultSchedule,
        nodes: Sequence[object],
        client: Optional[object] = None,
        uplink_links: Sequence[NetworkLink] = (),
        downlink_links: Sequence[NetworkLink] = (),
        network: Optional[object] = None,
    ):
        self.sim = sim
        self.schedule = schedule
        self.nodes = list(nodes)
        self.client = client
        self.uplink_links = list(uplink_links)
        self.downlink_links = list(downlink_links)
        self.network = network
        self.log: List[InjectedFault] = []
        schedule.validate(n_nodes=len(self.nodes))

    # -- arming -------------------------------------------------------------

    def arm(self) -> None:
        """Register every scheduled fault with the simulator."""
        for event in self.schedule:
            if isinstance(event, NodeCrash):
                self._arm_crash(event)
            elif isinstance(event, LinkOutage):
                self._arm_window(
                    "outage", event.at_ms, event.duration_ms,
                    links=self._links(event.direction), loss=1.0,
                )
            elif isinstance(event, LossBurst):
                self._arm_window(
                    "loss_burst", event.at_ms, event.duration_ms,
                    links=self._links(event.direction),
                    loss=event.loss_probability,
                )
            elif isinstance(event, RadioDegradation):
                self._arm_degradation(event)
            else:  # pragma: no cover - schedule.validate rejects these
                raise TypeError(f"unknown fault event {event!r}")

    # -- node crash/rejoin ----------------------------------------------------

    def _arm_crash(self, event: NodeCrash) -> None:
        node = self.nodes[event.node]

        def _crash() -> None:
            node.fail()
            self._record("crash", "fire", node=node.name)

        self.sim.call_at(event.at_ms, _crash,
                         name=f"fault.crash.{event.node}")
        if event.rejoin_at_ms is not None:
            def _rejoin() -> None:
                node.rejoin()
                if self.client is not None:
                    self.client.mark_recovered(node.name)
                self._record("rejoin", "fire", node=node.name)

            self.sim.call_at(event.rejoin_at_ms, _rejoin,
                             name=f"fault.rejoin.{event.node}")

    # -- link windows -----------------------------------------------------------

    def _links(self, direction: str) -> List[NetworkLink]:
        links: List[NetworkLink] = []
        if direction in ("uplink", "both"):
            links.extend(self.uplink_links)
        if direction in ("downlink", "both"):
            links.extend(self.downlink_links)
        return links

    def _arm_window(
        self, kind: str, at_ms: float, duration_ms: float,
        links: Sequence[NetworkLink], loss: float,
    ) -> None:
        links = list(links)

        def _start() -> None:
            for link in links:
                link.add_impairment(loss)
            self._record(kind, "start", loss=loss, links=len(links))

        def _end() -> None:
            for link in links:
                link.remove_impairment(loss)
            self._record(kind, "end", loss=loss, links=len(links))

        self.sim.call_at(at_ms, _start, name=f"fault.{kind}.start")
        self.sim.call_at(at_ms + duration_ms, _end, name=f"fault.{kind}.end")

    # -- radio degradation ---------------------------------------------------------

    def _radios(self, which: str) -> List[object]:
        if self.network is None:
            return []
        radios = []
        if which in ("wifi", "all"):
            radios.append(self.network.wifi)
        if which in ("bluetooth", "all"):
            radios.append(self.network.bluetooth)
        return radios

    def _arm_degradation(self, event: RadioDegradation) -> None:
        radios = self._radios(event.radio)

        def _start() -> None:
            for radio in radios:
                radio.degrade(event.bandwidth_factor)
            self._record("degradation", "start",
                         factor=event.bandwidth_factor, radio=event.radio)

        def _end() -> None:
            for radio in radios:
                radio.restore(event.bandwidth_factor)
            self._record("degradation", "end",
                         factor=event.bandwidth_factor, radio=event.radio)

        self.sim.call_at(event.at_ms, _start, name="fault.degrade.start")
        self.sim.call_at(event.at_ms + event.duration_ms, _end,
                         name="fault.degrade.end")

    # -- bookkeeping ----------------------------------------------------------------

    def _record(self, kind: str, phase: str, **detail: object) -> None:
        self.log.append(
            InjectedFault(time_ms=self.sim.now, kind=kind, phase=phase,
                          detail=dict(detail))
        )
        self.sim.tracer.record(self.sim.now, "fault", f"{kind}.{phase}",
                               **detail)

    def applied(self, kind: Optional[str] = None) -> List[InjectedFault]:
        """The faults actually fired so far, optionally filtered by kind."""
        if kind is None:
            return list(self.log)
        return [entry for entry in self.log if entry.kind == kind]
