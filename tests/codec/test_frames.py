"""Synthetic frame source behaviour."""

import numpy as np
import pytest

from repro.codec.frames import FrameImage, SyntheticFrameSource


def test_frame_shape_and_dtype():
    source = SyntheticFrameSource(width=100, height=80, seed=0)
    frame = source.frame()
    assert frame.shape == (80, 100, 3)
    assert frame.dtype == np.uint8


def test_frames_differ_over_time():
    source = SyntheticFrameSource(width=100, height=80, motion_px=5.0, seed=0)
    a = source.frame()
    b = source.frame()
    assert (a != b).any()


def test_zero_motion_yields_static_frames():
    source = SyntheticFrameSource(width=100, height=80, motion_px=0.0, seed=0)
    a = source.frame()
    b = source.frame()
    assert (a == b).all()


def test_deterministic_for_same_seed():
    a = SyntheticFrameSource(width=64, height=64, seed=9)
    b = SyntheticFrameSource(width=64, height=64, seed=9)
    for fa, fb in zip(a.frames(5), b.frames(5)):
        assert (fa == fb).all()


def test_sprites_stay_in_bounds():
    source = SyntheticFrameSource(
        width=64, height=64, sprite_size=16, motion_px=20.0, seed=2
    )
    for _ in range(100):
        source.frame()
        for x, y in source._positions:
            assert 0 <= x <= 64 - 16
            assert 0 <= y <= 64 - 16


def test_frame_image_properties():
    desc = FrameImage(640, 480, change_fraction=0.25, detail=0.5)
    assert desc.pixels == 640 * 480
    assert desc.raw_bytes == 640 * 480 * 3
