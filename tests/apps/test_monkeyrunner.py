"""MonkeyRunner-style scripted input."""

import pytest

from repro.apps.engine import EngineConfig, GameEngine
from repro.apps.games import GTA_SAN_ANDREAS
from repro.apps.monkeyrunner import InputScript, ScriptedTouchPlayer
from repro.apps.touch import TouchEvent
from repro.baselines.local import LocalBackend
from repro.devices.profiles import LG_NEXUS_5
from repro.devices.runtime import UserDeviceRuntime
from repro.sim.kernel import Simulator


def make_script(times=(100.0, 250.0, 900.0)):
    return InputScript(
        events=[TouchEvent(time_ms=t, x=0.5, y=0.5, strength=1.0)
                for t in times],
        name="test",
    )


class TestScript:
    def test_json_roundtrip(self):
        script = make_script()
        restored = InputScript.from_json(script.to_json())
        assert [e.time_ms for e in restored.events] == [100.0, 250.0, 900.0]
        assert restored.name == "test"

    def test_file_roundtrip(self, tmp_path):
        script = make_script()
        path = tmp_path / "input.json"
        script.save(path)
        assert len(InputScript.load(path)) == 3

    def test_unordered_events_rejected(self):
        script = InputScript(
            events=[TouchEvent(time_ms=10.0, x=0, y=0),
                    TouchEvent(time_ms=5.0, x=0, y=0)]
        )
        with pytest.raises(ValueError):
            script.validate()

    def test_bad_version_rejected(self):
        with pytest.raises(ValueError):
            InputScript.from_json('{"version": 999, "events": []}')

    def test_record_from_generator_deterministic(self):
        a = InputScript.record_from_generator(
            GTA_SAN_ANDREAS, duration_ms=20_000.0, seed=4
        )
        b = InputScript.record_from_generator(
            GTA_SAN_ANDREAS, duration_ms=20_000.0, seed=4
        )
        assert [e.time_ms for e in a.events] == [e.time_ms for e in b.events]
        assert len(a) > 5


class TestPlayer:
    def test_events_fire_at_script_times(self):
        sim = Simulator()
        fired = []
        ScriptedTouchPlayer(
            sim, make_script(), on_touch=lambda e: fired.append(e.time_ms)
        )
        sim.run(until=2_000.0)
        assert fired == [100.0, 250.0, 900.0]

    def test_loop_repeats_script(self):
        sim = Simulator()
        fired = []
        ScriptedTouchPlayer(
            sim, make_script(), on_touch=lambda e: fired.append(e.time_ms),
            loop=True,
        )
        sim.run(until=2_000.0)
        assert len(fired) >= 6
        assert fired[3] == pytest.approx(1_000.0)  # second pass offset

    def test_empty_script_is_noop(self):
        sim = Simulator()
        ScriptedTouchPlayer(sim, InputScript())
        sim.run(until=100.0)

    def test_count_in_window(self):
        sim = Simulator()
        player = ScriptedTouchPlayer(sim, make_script())
        sim.run(until=2_000.0)
        assert player.count_in_window(0.0, 300.0) == 2


class TestEngineIntegration:
    def run_session(self, script, seed=0):
        sim = Simulator(seed=seed)
        device = UserDeviceRuntime(
            sim, LG_NEXUS_5,
            render_width=GTA_SAN_ANDREAS.render_width,
            render_height=GTA_SAN_ANDREAS.render_height,
        )
        engine = GameEngine(
            sim, GTA_SAN_ANDREAS, device, LocalBackend(sim, device),
            EngineConfig(duration_ms=15_000.0, input_script=script),
        )
        sim.run_until_process(engine._proc, limit=60_000.0)
        return engine

    def test_scripted_sessions_see_identical_input(self):
        script = InputScript.record_from_generator(
            GTA_SAN_ANDREAS, duration_ms=15_000.0, seed=1
        )
        a = self.run_session(script)
        b = self.run_session(script)
        touches_a = [f.touches_since_last for f in a.frames]
        touches_b = [f.touches_since_last for f in b.frames]
        assert touches_a == touches_b
        assert sum(touches_a) > 0

    def test_scripted_input_drives_scene_activity(self):
        dense = InputScript(
            events=[TouchEvent(time_ms=float(t), x=0.5, y=0.5)
                    for t in range(500, 10_000, 100)]
        )
        quiet = InputScript(events=[])
        busy_engine = self.run_session(dense)
        calm_engine = self.run_session(quiet)
        busy_change = sum(f.change_fraction for f in busy_engine.frames)
        calm_change = sum(f.change_fraction for f in calm_engine.frames)
        assert busy_change > calm_change
