"""Differential replay: prove two runs executed the same frames.

Three comparisons, all built on the per-frame command digests that
``GBoosterConfig.check`` arms (:mod:`repro.check.digest`):

* :func:`run_replay_pair` — the same seeded offload session twice.
  Everything must match bit-for-bit: the full digest stream, the metrics
  snapshot, the presented-frame count.  Any mismatch is nondeterminism in
  the simulator itself.
* :func:`run_local_vs_offload` — the local baseline against the offloaded
  pipeline under ``deterministic_content`` (frame content a pure function
  of seed and frame index).  The two paths pace frames differently (swap
  depth 2 vs 3), so the comparison is over the common prefix of issued
  frames; executed digests must additionally match issued digests on both
  sides (fidelity).
* :func:`run_differential_replay` — the sweep the acceptance criteria
  ask for: both comparisons across several seeds and apps.

A failed comparison yields a :class:`DivergenceReport` whose
``first_divergence`` pinpoints the earliest diverging frame and attaches
that frame's span breakdown (intercept/encode/transmit/execute/... from
``repro.obs``) from both runs, so the diverging *stage* is visible without
re-running.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

from repro.apps.base import ApplicationSpec
from repro.core.config import GBoosterConfig
from repro.core.session import (
    SessionResult,
    run_local_session,
    run_offload_session,
)
from repro.devices.profiles import DeviceSpec, NVIDIA_SHIELD

#: default comparison length: long enough to exercise cache warmup, scene
#: cuts and retransmissions, short enough for tier-1
DEFAULT_DURATION_MS = 2_500.0


@dataclass
class FrameDivergence:
    """The first frame whose command digests differ between two runs."""

    frame_id: int
    digest_a: Optional[str]
    digest_b: Optional[str]
    #: span breakdown of that frame in each run: name -> duration_ms
    spans_a: Dict[str, float] = field(default_factory=dict)
    spans_b: Dict[str, float] = field(default_factory=dict)


@dataclass
class DivergenceReport:
    """Outcome of one differential comparison."""

    kind: str                       # "replay_pair" | "local_vs_offload"
    app: str
    seed: int
    equal: bool
    frames_compared: int
    first_divergence: Optional[FrameDivergence] = None
    #: metric keys whose snapshot values differ (replay_pair only)
    metric_mismatches: List[str] = field(default_factory=list)
    #: issued-vs-executed mismatches from either run's DigestLog
    fidelity_mismatches: List[Dict[str, Any]] = field(default_factory=list)
    #: invariant violations raised by either run's monitor
    violations: List[str] = field(default_factory=list)

    def describe(self) -> str:
        if self.equal:
            return (
                f"{self.kind} {self.app} seed={self.seed}: "
                f"{self.frames_compared} frames identical"
            )
        parts = [f"{self.kind} {self.app} seed={self.seed}: DIVERGED"]
        if self.first_divergence is not None:
            d = self.first_divergence
            parts.append(
                f"first at frame {d.frame_id} "
                f"({d.digest_a} != {d.digest_b}; "
                f"spans_a={d.spans_a}, spans_b={d.spans_b})"
            )
        if self.metric_mismatches:
            parts.append(f"metrics: {self.metric_mismatches[:5]}")
        if self.fidelity_mismatches:
            parts.append(f"fidelity: {len(self.fidelity_mismatches)} frames")
        if self.violations:
            parts.append(f"violations: {self.violations[:3]}")
        return "; ".join(parts)


def _frame_spans(result: SessionResult, frame_id: int) -> Dict[str, float]:
    """Stage -> duration for one frame, from the session's span recorder."""
    if result.engine is None:
        return {}
    out: Dict[str, float] = {}
    for span in result.engine.sim.spans.spans:
        if span.frame_id == frame_id and not span.instant:
            key = f"{span.category}.{span.name}"
            out[key] = round(
                out.get(key, 0.0) + (span.end_ms - span.start_ms), 3
            )
    return out


def _first_divergence(
    a: SessionResult, b: SessionResult,
    stream_a: List[str], stream_b: List[str],
) -> Optional[FrameDivergence]:
    n = max(len(stream_a), len(stream_b))
    for fid in range(n):
        da = stream_a[fid] if fid < len(stream_a) else None
        db = stream_b[fid] if fid < len(stream_b) else None
        if da != db:
            return FrameDivergence(
                frame_id=fid,
                digest_a=da,
                digest_b=db,
                spans_a=_frame_spans(a, fid),
                spans_b=_frame_spans(b, fid),
            )
    return None


def _collect_problems(report: DivergenceReport, *results: SessionResult) -> None:
    for result in results:
        if result.check is None:
            continue
        report.fidelity_mismatches.extend(
            result.check.digests.fidelity_mismatches()
        )
        report.violations.extend(str(v) for v in result.check.violations)
    if report.fidelity_mismatches or report.violations:
        report.equal = False


def run_replay_pair(
    app: ApplicationSpec,
    user_device: DeviceSpec,
    service_devices: Optional[Sequence[DeviceSpec]] = None,
    config: Optional[GBoosterConfig] = None,
    duration_ms: float = DEFAULT_DURATION_MS,
    seed: int = 0,
) -> DivergenceReport:
    """Run the same offload session twice; everything must match exactly."""
    from dataclasses import replace

    base = config or GBoosterConfig()
    cfg = replace(base, check=True)
    runs = [
        run_offload_session(
            app, user_device, service_devices, config=cfg,
            duration_ms=duration_ms, seed=seed,
        )
        for _ in range(2)
    ]
    a, b = runs
    stream_a = a.check.digests.stream()
    stream_b = b.check.digests.stream()
    snap_a = a.engine.sim.metrics.snapshot()
    snap_b = b.engine.sim.metrics.snapshot()
    report = DivergenceReport(
        kind="replay_pair",
        app=app.short_name,
        seed=seed,
        equal=stream_a == stream_b and snap_a == snap_b,
        frames_compared=min(len(stream_a), len(stream_b)),
    )
    if stream_a != stream_b:
        report.first_divergence = _first_divergence(a, b, stream_a, stream_b)
    if snap_a != snap_b:
        keys = set(snap_a) | set(snap_b)
        report.metric_mismatches = sorted(
            k for k in keys if snap_a.get(k) != snap_b.get(k)
        )
    _collect_problems(report, a, b)
    return report


def run_local_vs_offload(
    app: ApplicationSpec,
    user_device: DeviceSpec,
    service_devices: Optional[Sequence[DeviceSpec]] = None,
    config: Optional[GBoosterConfig] = None,
    duration_ms: float = DEFAULT_DURATION_MS,
    seed: int = 0,
) -> DivergenceReport:
    """Local baseline vs offloaded pipeline under deterministic content.

    Asserts the offloaded path *issues and executes* exactly the frames
    local execution would have rendered — the record-and-replay fidelity
    claim.  Compared over the common prefix: the two backends pace frames
    differently, so the slower path issues fewer frames in the same span.
    """
    from dataclasses import replace

    base = config or GBoosterConfig()
    cfg = replace(base, check=True, deterministic_content=True)
    local = run_local_session(
        app, user_device, duration_ms=duration_ms, seed=seed, config=cfg
    )
    offload = run_offload_session(
        app, user_device, service_devices, config=cfg,
        duration_ms=duration_ms, seed=seed,
    )
    stream_l = local.check.digests.stream()
    stream_o = offload.check.digests.stream()
    n = min(len(stream_l), len(stream_o))
    report = DivergenceReport(
        kind="local_vs_offload",
        app=app.short_name,
        seed=seed,
        equal=n > 0 and stream_l[:n] == stream_o[:n],
        frames_compared=n,
    )
    if stream_l[:n] != stream_o[:n]:
        report.first_divergence = _first_divergence(
            local, offload, stream_l[:n], stream_o[:n]
        )
    _collect_problems(report, local, offload)
    return report


def run_differential_replay(
    apps: Sequence[ApplicationSpec],
    user_device: DeviceSpec,
    seeds: Sequence[int] = (0, 1, 2),
    service_devices: Optional[Sequence[DeviceSpec]] = None,
    duration_ms: float = DEFAULT_DURATION_MS,
) -> List[DivergenceReport]:
    """The acceptance sweep: both comparisons for every (app, seed)."""
    service_devices = list(service_devices or [NVIDIA_SHIELD])
    reports: List[DivergenceReport] = []
    for app in apps:
        for seed in seeds:
            reports.append(
                run_replay_pair(
                    app, user_device, service_devices,
                    duration_ms=duration_ms, seed=seed,
                )
            )
            reports.append(
                run_local_vs_offload(
                    app, user_device, service_devices,
                    duration_ms=duration_ms, seed=seed,
                )
            )
    return reports
