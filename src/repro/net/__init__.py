"""Wireless network substrate.

Models the quantities GBooster's design decisions hinge on (paper §IV-B,
§V-B):

* **Interfaces** — WiFi (high throughput, ~2 W at full rate) and Bluetooth
  (21 Mbps, <0.1 W), with wakeup (~100 ms) and re-association (~500 ms)
  latencies when a disabled WiFi radio is brought back up.
* **Links** — propagation delay, jitter, and loss on the in-home LAN and a
  WAN path for the cloud baseline.
* **Transports** — a reliable-UDP transport with sequencing and
  retransmission (the paper's application-layer mechanism, after UDT), a
  TCP model carrying the delayed-ACK latency floor the paper avoids, and
  UDP multicast for state replication to many service devices (§VI-B).

Transmission is modelled at message granularity: serialization time is
``bytes / bandwidth``, per-MTU header overhead is added to the byte count,
and loss/retransmission operate on whole messages.  This keeps 15-minute
sessions tractable while preserving the latency and energy shapes.
"""

from repro.net.interface import (
    BLUETOOTH_CLASSIC,
    WIFI_80211N,
    RadioSpec,
    RadioState,
    WirelessInterface,
)
from repro.net.link import LinkSpec, NetworkLink
from repro.net.manager import NetworkManager
from repro.net.message import Message
from repro.net.multicast import MulticastGroup
from repro.net.transport import (
    ReliableUdpTransport,
    TcpTransport,
    Transport,
)
from repro.net.wan import (
    WAN_BROADBAND,
    WAN_CONGESTED,
    WAN_FIBER,
    WanProfile,
)

__all__ = [
    "BLUETOOTH_CLASSIC",
    "LinkSpec",
    "Message",
    "MulticastGroup",
    "NetworkLink",
    "NetworkManager",
    "RadioSpec",
    "RadioState",
    "ReliableUdpTransport",
    "TcpTransport",
    "Transport",
    "WAN_BROADBAND",
    "WAN_CONGESTED",
    "WAN_FIBER",
    "WIFI_80211N",
    "WanProfile",
    "WirelessInterface",
]
