"""The analytic model intentionally re-declares cost constants; this guard
fails loudly if the simulator's constants drift away from them."""

from repro.analysis import pipeline_model
from repro.apps import engine


def test_driver_cost_constants_match():
    assert pipeline_model._DRIVER_FIXED_MS == engine.DRIVER_FIXED_MS
    assert (
        pipeline_model._DRIVER_PER_COMMAND_US == engine.DRIVER_PER_COMMAND_US
    )


def test_lan_latency_matches_session_builder():
    from repro.net.link import LAN_WIFI

    assert pipeline_model._LAN_LATENCY_MS == LAN_WIFI.latency_ms


def test_turbo_diff_share_matches_codec():
    """The 0.35 diff-pass share appears in both the codec and the model."""
    from repro.codec.turbo import TurboEncoder
    from repro.codec.frames import FrameImage

    encoder = TurboEncoder()
    # Zero-change frame: encode time = pixels * diff_share / throughput.
    result = encoder.encode_descriptor(
        FrameImage(1000, 1000, change_fraction=0.0)
    )
    implied_share = result.encode_time_ms * 90_000.0 / 1_000_000.0
    assert abs(implied_share - 0.35) < 0.01
