"""Battery-lifetime projection.

The paper's second objective is "Extend Battery Life" (§II): heavy GPU use
drains a phone in a couple of hours.  This module turns a session's mean
power into the quantity a user feels — hours of gameplay per charge — and
quantifies the offloading benefit in minutes gained.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.devices.profiles import DeviceSpec
from repro.metrics.energy import EnergyReport

#: Li-ion packs are not usable to the last joule; phones shut down with a
#: reserve and lose some capacity to converter losses.
USABLE_BATTERY_FRACTION = 0.92


@dataclass(frozen=True)
class BatteryProjection:
    device_name: str
    battery_wh: float
    mean_power_w: float
    hours: float

    @property
    def minutes(self) -> float:
        return self.hours * 60.0


def project_battery_life(
    device: DeviceSpec, energy: EnergyReport
) -> BatteryProjection:
    """Hours of continuous gameplay this session's power draw allows."""
    if device.battery_wh <= 0:
        raise ValueError(f"{device.name} has no battery (service device?)")
    if energy.mean_power_w <= 0:
        raise ValueError("session has no measured power draw")
    usable_wh = device.battery_wh * USABLE_BATTERY_FRACTION
    return BatteryProjection(
        device_name=device.name,
        battery_wh=device.battery_wh,
        mean_power_w=energy.mean_power_w,
        hours=usable_wh / energy.mean_power_w,
    )


@dataclass(frozen=True)
class BatteryComparison:
    local: BatteryProjection
    offloaded: BatteryProjection

    @property
    def extra_minutes(self) -> float:
        return self.offloaded.minutes - self.local.minutes

    @property
    def lifetime_ratio(self) -> float:
        return self.offloaded.hours / self.local.hours


def compare_battery_life(
    device: DeviceSpec,
    local_energy: EnergyReport,
    offloaded_energy: EnergyReport,
) -> BatteryComparison:
    return BatteryComparison(
        local=project_battery_life(device, local_energy),
        offloaded=project_battery_life(device, offloaded_energy),
    )
