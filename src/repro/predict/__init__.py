"""Traffic-demand forecasting (paper §V-B).

The interface switcher needs to see a traffic surge *before* it exceeds
Bluetooth throughput, because waking WiFi costs 100–500 ms.  The paper
models per-epoch traffic volume first with ARMA(p, q), then — after finding
its false-negative rate too high — with ARMAX(p, q, b) whose exogenous
inputs (touch frequency and per-frame texture counts, selected by AIC)
anticipate demand surges that pure history cannot.

Estimation is online: a sliding-window recursive least-squares estimator
updates the model each epoch, following the adaptive sliding-window scheme
the paper cites [30].
"""

from repro.predict.arma import ARMAModel
from repro.predict.armax import ARMAXModel
from repro.predict.evaluation import (
    PredictionOutcome,
    evaluate_threshold_prediction,
)
from repro.predict.rls import RecursiveLeastSquares
from repro.predict.selection import aic, select_armax_attributes

__all__ = [
    "ARMAModel",
    "ARMAXModel",
    "PredictionOutcome",
    "RecursiveLeastSquares",
    "aic",
    "evaluate_threshold_prediction",
    "select_armax_attributes",
]
