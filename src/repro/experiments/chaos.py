"""Experiment CH: chaos sweep — robustness under injected faults.

Not a paper figure: the paper's evaluation runs on a clean testbed, but its
design claims (§IV-B reliable-UDP ARQ, §V multi-device load balancing,
frame-watchdog failover) are precisely about surviving a messy living
room.  This sweep scripts escalating fault scenarios through the
:mod:`repro.faults` subsystem and reports what the player actually
experiences: frames lost forever, failovers taken, nodes condemned, and
the FPS floor.

Scenario template per severity step:

* a loss burst early in the session (retransmission pressure),
* a hard link outage mid-session (ARQ give-up pressure), and
* optionally a node crash (watchdog + re-dispatch pressure).

The invariant asserted by the smoke test: **no frame is ever lost** —
every issued frame is presented remotely, by a surviving node, or by the
local GPU.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.apps.base import ApplicationSpec
from repro.apps.games import GTA_SAN_ANDREAS
from repro.core.config import GBoosterConfig
from repro.core.session import SessionResult, run_offload_session
from repro.devices.profiles import DeviceSpec, LG_NEXUS_5, NVIDIA_SHIELD
from repro.faults import FaultSchedule


@dataclass
class ChaosPoint:
    """Outcome of one fault scenario."""

    loss_probability: float
    outage_ms: float
    crash: bool
    median_fps: float
    min_fps: float
    frames_issued: int
    frames_lost: int
    failovers: int
    nodes_failed: int
    retransmissions: int
    #: conservation-law breaks caught by the invariant monitor (``check``)
    invariant_violations: int = 0

    @property
    def survived(self) -> bool:
        """The headline robustness claim: nothing is ever lost."""
        return self.frames_lost == 0


def build_schedule(
    loss_probability: float,
    outage_ms: float,
    crash: bool,
    duration_ms: float,
) -> FaultSchedule:
    """The escalating scenario used at every sweep point."""
    schedule = FaultSchedule()
    if loss_probability > 0:
        schedule.loss_burst(
            at_ms=0.2 * duration_ms,
            duration_ms=0.15 * duration_ms,
            loss_probability=loss_probability,
        )
    if outage_ms > 0:
        schedule.outage(at_ms=0.45 * duration_ms, duration_ms=outage_ms)
    if crash:
        schedule.crash(at_ms=0.7 * duration_ms)
    return schedule


def run_chaos_point(
    loss_probability: float = 0.3,
    outage_ms: float = 1_000.0,
    crash: bool = True,
    app: ApplicationSpec = GTA_SAN_ANDREAS,
    user_device: DeviceSpec = LG_NEXUS_5,
    service_devices: Optional[Sequence[DeviceSpec]] = None,
    duration_ms: float = 30_000.0,
    seed: int = 0,
    frame_timeout_ms: float = 600.0,
    check: bool = False,
) -> ChaosPoint:
    """Run one scenario and fold the session into a :class:`ChaosPoint`.

    ``check=True`` arms the runtime invariant monitor, so the point also
    reports whether any conservation law broke under the injected faults.
    """
    config = GBoosterConfig(
        frame_timeout_ms=frame_timeout_ms,
        faults=build_schedule(loss_probability, outage_ms, crash,
                              duration_ms),
        check=check,
    )
    result: SessionResult = run_offload_session(
        app, user_device,
        service_devices=list(service_devices or [NVIDIA_SHIELD]),
        config=config, duration_ms=duration_ms, seed=seed,
    )
    frames = result.engine.frames
    lost = sum(1 for f in frames if f.presented_at is None)
    return ChaosPoint(
        loss_probability=loss_probability,
        outage_ms=outage_ms,
        crash=crash,
        median_fps=result.fps.median_fps,
        min_fps=min(result.fps.fps_series) if result.fps.fps_series else 0.0,
        frames_issued=len(frames),
        frames_lost=lost,
        failovers=result.client_stats.failovers,
        nodes_failed=result.client_stats.nodes_failed,
        retransmissions=_total_retransmissions(result),
        invariant_violations=(
            len(result.check.violations) if result.check is not None else 0
        ),
    )


def _total_retransmissions(result: SessionResult) -> int:
    events = result.engine.sim.tracer.query("transport", "retransmit")
    return len(events)


def run_chaos_sweep(
    loss_levels: Sequence[float] = (0.0, 0.1, 0.3, 0.5),
    outage_levels_ms: Sequence[float] = (0.0, 1_000.0, 3_000.0),
    crash: bool = True,
    app: ApplicationSpec = GTA_SAN_ANDREAS,
    user_device: DeviceSpec = LG_NEXUS_5,
    service_devices: Optional[Sequence[DeviceSpec]] = None,
    duration_ms: float = 30_000.0,
    seed: int = 0,
) -> List[ChaosPoint]:
    """Sweep loss × outage severity (each with the optional crash)."""
    points: List[ChaosPoint] = []
    for loss in loss_levels:
        for outage in outage_levels_ms:
            points.append(
                run_chaos_point(
                    loss_probability=loss, outage_ms=outage, crash=crash,
                    app=app, user_device=user_device,
                    service_devices=service_devices,
                    duration_ms=duration_ms, seed=seed,
                )
            )
    return points


def format_points(points: Sequence[ChaosPoint]) -> str:
    lines = [
        f"{'loss':>5} {'outage':>7} {'crash':>5} {'median':>7} "
        f"{'lost':>5} {'failovers':>9} {'retrans':>8}"
    ]
    for p in points:
        lines.append(
            f"{p.loss_probability:>5.0%} {p.outage_ms / 1000.0:>6.1f}s "
            f"{'yes' if p.crash else 'no':>5} {p.median_fps:>6.1f}f "
            f"{p.frames_lost:>5} {p.failovers:>9} {p.retransmissions:>8}"
        )
    survived = sum(1 for p in points if p.survived)
    lines.append(f"\n{survived}/{len(points)} scenarios with zero lost frames")
    return "\n".join(lines)
