"""Eq. 4 dispatch and the round-robin baseline."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.dispatch.scheduler import (
    DeviceEstimate,
    DispatchScheduler,
    RoundRobinScheduler,
)


def dev(name, w=0.0, c=1.0, l=1.0):
    return DeviceEstimate(name=name, queued_workload=w, capability=c, rtt_ms=l)


class TestEq4:
    def test_prefers_faster_device(self):
        scheduler = DispatchScheduler()
        chosen = scheduler.choose(10.0, [dev("slow", c=1.0), dev("fast", c=4.0)])
        assert chosen.name == "fast"

    def test_prefers_idle_device(self):
        scheduler = DispatchScheduler()
        chosen = scheduler.choose(
            10.0, [dev("busy", w=100.0, c=2.0), dev("idle", w=0.0, c=2.0)]
        )
        assert chosen.name == "idle"

    def test_latency_term_matters(self):
        scheduler = DispatchScheduler()
        # Same compute estimate; the nearer device wins.
        chosen = scheduler.choose(
            10.0, [dev("far", c=2.0, l=50.0), dev("near", c=2.0, l=2.0)]
        )
        assert chosen.name == "near"

    def test_fast_but_loaded_vs_slow_but_idle(self):
        """Eq. 4 arithmetic, end to end: (w + r)/c + l."""
        scheduler = DispatchScheduler()
        fast_busy = dev("fastbusy", w=90.0, c=10.0, l=1.0)   # (90+10)/10+1 = 11
        slow_idle = dev("slowidle", w=0.0, c=1.0, l=1.0)     # 10/1+1 = 11
        # Exactly tied: deterministic tie-break on name.
        chosen = scheduler.choose(10.0, [fast_busy, slow_idle])
        assert chosen.name == "fastbusy"

    def test_completion_estimate_math(self):
        d = dev("x", w=30.0, c=3.0, l=5.0)
        assert d.completion_estimate_ms(15.0) == pytest.approx(20.0)

    def test_zero_capability_never_chosen_when_alternative(self):
        scheduler = DispatchScheduler()
        chosen = scheduler.choose(1.0, [dev("dead", c=0.0), dev("ok", c=1.0)])
        assert chosen.name == "ok"

    def test_no_devices_rejected(self):
        with pytest.raises(ValueError):
            DispatchScheduler().choose(1.0, [])

    def test_negative_workload_rejected(self):
        with pytest.raises(ValueError):
            DispatchScheduler().choose(-1.0, [dev("a")])

    def test_assignments_recorded(self):
        scheduler = DispatchScheduler()
        scheduler.choose(1.0, [dev("a")])
        scheduler.choose(1.0, [dev("a")])
        assert scheduler.assignments == ["a", "a"]


class TestRoundRobin:
    def test_cycles_through_devices(self):
        scheduler = RoundRobinScheduler()
        devices = [dev("a"), dev("b"), dev("c")]
        names = [scheduler.choose(1.0, devices).name for _ in range(6)]
        assert names == ["a", "b", "c", "a", "b", "c"]

    def test_ignores_load(self):
        scheduler = RoundRobinScheduler()
        devices = [dev("overloaded", w=1e9), dev("idle")]
        assert scheduler.choose(1.0, devices).name == "overloaded"


@settings(max_examples=100, deadline=None)
@given(
    workload=st.floats(min_value=0.0, max_value=1e3),
    params=st.lists(
        st.tuples(
            st.floats(min_value=0.0, max_value=1e3),   # w
            st.floats(min_value=0.01, max_value=1e2),  # c
            st.floats(min_value=0.0, max_value=1e3),   # l
        ),
        min_size=1,
        max_size=8,
    ),
)
def test_property_choice_minimizes_eq4(workload, params):
    devices = [
        dev(f"d{i}", w=w, c=c, l=l) for i, (w, c, l) in enumerate(params)
    ]
    chosen = DispatchScheduler().choose(workload, devices)
    best = min(d.completion_estimate_ms(workload) for d in devices)
    assert chosen.completion_estimate_ms(workload) == pytest.approx(best)
