"""Request assignment across service devices (paper Eq. 4).

Each request of workload ``r`` goes to the device ``j`` minimizing

    (w^j + r) / c^j + l^j

where ``w^j`` is the workload already queued on the device, ``c^j`` its
capability (workload units per millisecond) and ``l^j`` its round-trip
delay to the user device.  Workloads are the same shader-weighted fill
megapixels the GPU model executes, profiled per command stream as in the
paper's TimeGraph-based approach.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Protocol, Sequence


@dataclass
class DeviceEstimate:
    """The scheduler's view of one service device."""

    name: str
    queued_workload: float        # w^j, in fill megapixels
    capability: float             # c^j, megapixels per millisecond
    rtt_ms: float                 # l^j
    #: planner-supplied per-device bias (repro.plan): the predicted
    #: service-stage cost of *this* title on *this* device, so placement
    #: prefers the device the committed plan renders fastest on.  Zero
    #: reproduces plain Eq. 4.
    plan_bias_ms: float = 0.0

    def completion_estimate_ms(self, request_workload: float) -> float:
        if self.capability <= 0:
            return float("inf")
        return (
            (self.queued_workload + request_workload) / self.capability
            + self.rtt_ms
            + self.plan_bias_ms
        )


#: observer invoked on every assignment with (request_workload, chosen);
#: the client uses it to emit dispatch marks and per-node counters
AssignObserver = Callable[[float, DeviceEstimate], None]


class DispatchScheduler:
    """Eq. 4: minimize estimated completion time."""

    def __init__(self, on_assign: Optional[AssignObserver] = None) -> None:
        self.assignments: List[str] = []
        self.on_assign = on_assign

    def choose(
        self, request_workload: float, devices: Sequence[DeviceEstimate]
    ) -> DeviceEstimate:
        if not devices:
            raise ValueError("no service devices available")
        if request_workload < 0:
            raise ValueError(f"negative workload {request_workload}")
        best = min(
            devices,
            key=lambda d: (
                d.completion_estimate_ms(request_workload),
                d.name,   # deterministic tie-break
            ),
        )
        self.assignments.append(best.name)
        if self.on_assign is not None:
            self.on_assign(request_workload, best)
        return best


class RoundRobinScheduler:
    """Ablation baseline: ignore workload, capability and latency."""

    def __init__(self, on_assign: Optional[AssignObserver] = None) -> None:
        self.assignments: List[str] = []
        self.on_assign = on_assign
        self._next = 0

    def choose(
        self, request_workload: float, devices: Sequence[DeviceEstimate]
    ) -> DeviceEstimate:
        if not devices:
            raise ValueError("no service devices available")
        chosen = devices[self._next % len(devices)]
        self._next += 1
        self.assignments.append(chosen.name)
        if self.on_assign is not None:
            self.on_assign(request_workload, chosen)
        return chosen
