"""Dynamic-delta patches for replay hits.

A replay hit ships the recorded interval's content digest plus a *patch*:
the dynamic slots (uniform values, animated float arrays — see
:mod:`repro.gles.intervals`) that differ from the recorded baseline.  The
service device recombines ``decode_delta(baseline, patch)`` with the
stored skeleton and executes the reconstruction, so the codec must be
**exact**: frame digests compare ``repr`` of argument values, and any
rounding (e.g. through 32-bit floats) would flag a fidelity mismatch.
Floats therefore travel as IEEE-754 doubles — a Python float round-trips
bit-for-bit — and booleans carry their own tag so ``True`` never decays
to ``1``.

Wire format (little-endian)::

    u32 baseline_slot_count     # sanity check against the stored interval
    u32 changed_count
    changed_count * (u32 slot_index + tagged value)

Tagged values: ``f`` float64, ``i`` int64, ``n`` big int (decimal ascii),
``b`` bool, ``y`` bytes, ``s`` str, ``z`` None, ``t`` tuple (full
replacement), ``d`` sparse tuple diff against the baseline tuple (changed
elements only — a rotating 4x4 matrix patches 4 of 16 elements).

An unchanged interval encodes to the 8-byte empty patch; malformed or
truncated patches raise :class:`DeltaError`, which the replay path treats
like digest divergence (demote + full-pipeline fallback).
"""

from __future__ import annotations

import struct
from typing import Any, List, Sequence, Tuple

_U32 = struct.Struct("<I")
_F64 = struct.Struct("<d")
_I64 = struct.Struct("<q")

_I64_MIN, _I64_MAX = -(1 << 63), (1 << 63) - 1


class DeltaError(ValueError):
    """Patch cannot be applied to this baseline."""


# -- value encoding ----------------------------------------------------------


def _encode_value(value: Any, out: List[bytes]) -> None:
    if isinstance(value, bool):  # before int: bool is an int subclass
        out.append(b"b" + (b"\x01" if value else b"\x00"))
    elif isinstance(value, float):
        out.append(b"f" + _F64.pack(value))
    elif isinstance(value, int):
        if _I64_MIN <= value <= _I64_MAX:
            out.append(b"i" + _I64.pack(value))
        else:
            digits = repr(value).encode("ascii")
            out.append(b"n" + _U32.pack(len(digits)) + digits)
    elif isinstance(value, bytes):
        out.append(b"y" + _U32.pack(len(value)) + value)
    elif isinstance(value, str):
        blob = value.encode("utf-8")
        out.append(b"s" + _U32.pack(len(blob)) + blob)
    elif value is None:
        out.append(b"z")
    elif isinstance(value, tuple):
        out.append(b"t" + _U32.pack(len(value)))
        for item in value:
            _encode_value(item, out)
    else:
        raise DeltaError(
            f"unsupported dynamic value type {type(value).__name__!r}"
        )


def _encode_tuple_diff(
    baseline: Tuple[Any, ...], live: Tuple[Any, ...], out: List[bytes]
) -> None:
    changed = [i for i, (a, b) in enumerate(zip(baseline, live)) if a != b]
    out.append(b"d" + _U32.pack(len(live)) + _U32.pack(len(changed)))
    for i in changed:
        out.append(_U32.pack(i))
        _encode_value(live[i], out)


def _encode_slot(baseline: Any, live: Any, out: List[bytes]) -> None:
    if (
        isinstance(baseline, tuple)
        and isinstance(live, tuple)
        and len(baseline) == len(live)
        and len(live) >= 4
    ):
        # Sparse element diff beats full replacement for long arrays with
        # few moving elements; both encodings are deterministic, so pick
        # by a fixed rule (same-length tuples always diff).
        _encode_tuple_diff(baseline, live, out)
    else:
        _encode_value(live, out)


class _Reader:
    __slots__ = ("data", "pos")

    def __init__(self, data: bytes):
        self.data = data
        self.pos = 0

    def take(self, n: int) -> bytes:
        if self.pos + n > len(self.data):
            raise DeltaError("truncated patch")
        chunk = self.data[self.pos : self.pos + n]
        self.pos += n
        return chunk

    def u32(self) -> int:
        return _U32.unpack(self.take(4))[0]


def _decode_value(r: _Reader) -> Any:
    tag = r.take(1)
    if tag == b"b":
        return r.take(1) == b"\x01"
    if tag == b"f":
        return _F64.unpack(r.take(8))[0]
    if tag == b"i":
        return _I64.unpack(r.take(8))[0]
    if tag == b"n":
        return int(r.take(r.u32()).decode("ascii"))
    if tag == b"y":
        return r.take(r.u32())
    if tag == b"s":
        return r.take(r.u32()).decode("utf-8")
    if tag == b"z":
        return None
    if tag == b"t":
        return tuple(_decode_value(r) for _ in range(r.u32()))
    raise DeltaError(f"unknown value tag {tag!r}")


def _decode_slot(baseline: Any, r: _Reader) -> Any:
    if r.pos >= len(r.data):
        raise DeltaError("truncated patch")
    tag = r.data[r.pos : r.pos + 1]
    if tag != b"d":
        return _decode_value(r)
    r.take(1)
    total = r.u32()
    if not isinstance(baseline, tuple) or len(baseline) != total:
        raise DeltaError("sparse tuple diff against non-matching baseline")
    items = list(baseline)
    for _ in range(r.u32()):
        idx = r.u32()
        if idx >= total:
            raise DeltaError("sparse diff index out of range")
        items[idx] = _decode_value(r)
    return tuple(items)


# -- public API --------------------------------------------------------------


def changed_slots(
    baseline: Sequence[Any], live: Sequence[Any]
) -> List[int]:
    """Indices of dynamic slots whose live value differs from baseline."""
    if len(baseline) != len(live):
        raise DeltaError(
            f"slot count mismatch: baseline {len(baseline)}, "
            f"live {len(live)}"
        )
    return [i for i, (a, b) in enumerate(zip(baseline, live)) if a != b]


def encode_delta(baseline: Sequence[Any], live: Sequence[Any]) -> bytes:
    """Patch turning the baseline dynamics into the live dynamics."""
    changed = changed_slots(baseline, live)
    out: List[bytes] = [_U32.pack(len(baseline)), _U32.pack(len(changed))]
    for i in changed:
        out.append(_U32.pack(i))
        _encode_slot(baseline[i], live[i], out)
    return b"".join(out)


def decode_delta(baseline: Sequence[Any], patch: bytes) -> Tuple[Any, ...]:
    """Apply a patch to recorded baseline dynamics; exact inverse of
    :func:`encode_delta` (``decode_delta(b, encode_delta(b, live)) ==
    tuple(live)``)."""
    r = _Reader(patch)
    count = r.u32()
    if count != len(baseline):
        raise DeltaError(
            f"patch was built against {count} slots, store has "
            f"{len(baseline)}"
        )
    live = list(baseline)
    n_changed = r.u32()
    for _ in range(n_changed):
        idx = r.u32()
        if idx >= len(live):
            raise DeltaError("changed slot index out of range")
        live[idx] = _decode_slot(live[idx], r)
    if r.pos != len(r.data):
        raise DeltaError("trailing bytes after patch")
    return tuple(live)


def encode_values(values: Sequence[Any]) -> bytes:
    """Standalone encoding of a dynamics tuple (store size accounting)."""
    out: List[bytes] = [_U32.pack(len(values))]
    for value in values:
        _encode_value(value, out)
    return b"".join(out)
