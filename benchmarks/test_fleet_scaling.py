"""Fleet scaling: N concurrent sessions over a shared device pool.

The acceptance bar for the fleet control plane: 64+ concurrent sessions
on an 8-device pool, a mid-run crash migrated with zero frame loss, and
the action tier kept ahead of the tolerant tier under overload.
"""

from conftest import print_table

from repro.experiments.fleet import format_points, run_fleet_sweep

SESSION_COUNTS = (16, 32, 64, 96)


def test_fleet_scaling(run_once):
    points = run_once(
        run_fleet_sweep,
        session_counts=SESSION_COUNTS,
        n_devices=8,
        duration_ms=10_000.0,
        seed=0,
    )
    header, *rows = format_points(points).splitlines()
    print_table(
        "Fleet scaling (8 devices, crash at 40%, rejoin at 80%)",
        header, rows,
    )

    by_n = {p.sessions_requested: p for p in points}

    # Nothing is ever lost, at any scale, despite the injected crash.
    assert all(p.zero_loss for p in points)
    assert all(p.crash_migrations >= 1 for p in points)

    # The headline scale point: 64 sessions genuinely concurrent.
    p64 = by_n[64]
    assert p64.peak_concurrency >= 64
    assert p64.admitted == 64

    # QoS holds under overload: the action tier answers faster than the
    # tolerant tier once the pool saturates.
    for n in (64, 96):
        tiers = by_n[n].tier_response_ms
        assert tiers["action"] < tiers["tolerant"], (
            f"{n} sessions: action {tiers['action']:.1f} ms not ahead of "
            f"tolerant {tiers['tolerant']:.1f} ms"
        )

    # Admission pushes back, rather than melting down, past capacity:
    # a quarter of the wave has to wait in the queue before serving.
    # The ledger reconciles after the drain: every offered session was
    # admitted (directly or dequeued) or rejected, none still waiting.
    p96 = by_n[96]
    assert p96.queued > 0
    assert p96.waiting == 0
    assert p96.admitted + p96.rejected == 96
    assert p96.dequeued == p96.queued

    # More sessions -> more pressure on the interactive tier.
    assert by_n[64].tier_response_ms["action"] >= (
        by_n[16].tier_response_ms["action"]
    )


def test_fleet_is_deterministic(run_once):
    first = run_once(
        run_fleet_sweep, session_counts=(24,), n_devices=8,
        duration_ms=6_000.0, seed=11,
    )
    again = run_fleet_sweep(session_counts=(24,), n_devices=8,
                            duration_ms=6_000.0, seed=11)
    assert first[0].digest == again[0].digest
