"""The GBooster wrapper library: every GL call route lands in the wrapper."""

import pytest

from repro.gles.commands import COMMANDS, GLCommand, make_command
from repro.linker.library import SharedLibrary
from repro.linker.linker import DynamicLinker, ProcessImage
from repro.linker.wrapper import (
    InterceptionStats,
    NATIVE_GLES_SONAME,
    build_native_gles_library,
    build_wrapper_library,
)


class Recorder:
    def __init__(self):
        self.commands = []

    def __call__(self, cmd: GLCommand):
        self.commands.append(cmd)
        return f"intercepted:{cmd.name}"


class TestRoute1Direct:
    def test_all_gl_entry_points_exported(self):
        wrapper = build_wrapper_library(Recorder())
        for name in COMMANDS:
            assert name in wrapper, name

    def test_direct_call_intercepted(self):
        recorder = Recorder()
        wrapper = build_wrapper_library(recorder)
        result = wrapper.lookup("glUseProgram")(7)
        assert result == "intercepted:glUseProgram"
        assert recorder.commands[0].name == "glUseProgram"
        assert recorder.commands[0].args == (7,)
        assert wrapper.stats.by_route["direct"] == 1

    def test_preloaded_wrapper_shadows_native(self):
        recorder = Recorder()
        executed = []
        native = build_native_gles_library(lambda c: executed.append(c))
        proc = ProcessImage("game", env={"LD_PRELOAD": "wrapper"})
        wrapper = build_wrapper_library(recorder, linker=proc.linker)
        wrapper.soname = "wrapper"
        proc.install_library(wrapper)
        proc.install_library(native)
        proc.start([NATIVE_GLES_SONAME])
        proc.call("glFlush")
        assert len(recorder.commands) == 1
        assert executed == []  # native never reached


class TestRoute2GetProcAddress:
    def test_proc_address_returns_wrapper_stub(self):
        recorder = Recorder()
        wrapper = build_wrapper_library(recorder)
        get = wrapper.lookup("eglGetProcAddress")
        fn = get("glDrawArrays")
        assert fn is not None
        fn(4, 0, 6)
        assert wrapper.stats.by_route["getprocaddress"] == 1
        assert recorder.commands[0].name == "glDrawArrays"

    def test_proc_address_unknown_symbol(self):
        wrapper = build_wrapper_library(Recorder())
        assert wrapper.lookup("eglGetProcAddress")("glBogus") is None

    def test_proc_address_pointer_cached(self):
        wrapper = build_wrapper_library(Recorder())
        get = wrapper.lookup("eglGetProcAddress")
        assert get("glFlush") is get("glFlush")

    def test_egl_exports_resolvable(self):
        swaps = []
        wrapper = build_wrapper_library(
            Recorder(), egl_exports={"eglSwapBuffers": lambda: swaps.append(1)}
        )
        fn = wrapper.lookup("eglGetProcAddress")("eglSwapBuffers")
        fn()
        assert swaps == [1]
        assert wrapper.lookup("eglSwapBuffers") is not None


class TestRoute3Dlopen:
    def test_dlopen_of_native_soname_returns_wrapper(self):
        recorder = Recorder()
        linker = DynamicLinker()
        native = build_native_gles_library(lambda c: "native")
        linker.add_library(native)
        build_wrapper_library(recorder, linker=linker)
        handle = linker.dlopen(NATIVE_GLES_SONAME)
        fn = linker.dlsym(handle, "glFinish")
        fn()
        assert recorder.commands[0].name == "glFinish"
        assert len(recorder.commands) == 1

    def test_dlopen_of_other_libraries_unaffected(self):
        linker = DynamicLinker()
        other = SharedLibrary("libc.so")
        other.export("puts", lambda s: f"puts:{s}")
        linker.add_library(other)
        build_wrapper_library(Recorder(), linker=linker)
        handle = linker.dlopen("libc.so")
        assert linker.dlsym(handle, "puts")("x") == "puts:x"

    def test_dlsym_route_accounted(self):
        recorder = Recorder()
        linker = DynamicLinker()
        wrapper = build_wrapper_library(recorder, linker=linker)
        handle = linker.dlopen(NATIVE_GLES_SONAME)
        linker.dlsym(handle, "glFlush")()
        assert wrapper.stats.by_route["dlsym"] == 1


class TestStats:
    def test_total_and_by_command(self):
        stats = InterceptionStats()
        stats.bump("direct", "glFlush")
        stats.bump("direct", "glFlush")
        stats.bump("dlsym", "glFinish")
        assert stats.total == 3
        assert stats.by_command["glFlush"] == 2


class TestNativeLibrary:
    def test_native_executes_commands(self):
        executed = []
        native = build_native_gles_library(lambda c: executed.append(c) or 42)
        assert native.lookup("glUseProgram")(3) == 42
        assert executed[0].args == (3,)

    def test_native_proc_address(self):
        native = build_native_gles_library(lambda c: None)
        assert native.lookup("eglGetProcAddress")("glFlush") is not None
        assert native.lookup("eglGetProcAddress")("nope") is None
