"""repro.check: digests, invariants, differential replay, fuzzing."""
