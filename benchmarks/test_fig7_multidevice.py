"""F7: Fig 7 — FPS against the number of service devices.

Paper: G1 on the Nexus 5 rises from 23 (local) to ~40 with one device and
~51 with three, then stays flat — the internal buffer holds at most three
pending requests and generation is CPU-bound.
"""

from conftest import print_table

from repro.experiments.multidevice import format_points, run_figure7


def test_fig7_scaling(run_once):
    points = run_once(run_figure7, max_devices=5, duration_ms=120_000.0)
    print_table(
        "Fig 7: FPS vs service devices (paper: 23 -> 40 -> 51, flat at 3+)",
        "", format_points(points).splitlines(),
    )
    fps = {p.n_devices: p.median_fps for p in points}
    assert fps[0] < 26                      # local baseline
    assert fps[1] > fps[0] * 1.3            # one device: the big jump
    assert fps[3] > fps[1] + 5              # parallelism helps further
    assert fps[3] > 45                      # saturation level ~51
    assert abs(fps[5] - fps[3]) <= 3        # flat beyond three
    # Stability follows the same pattern (paper's second panel).
    stab = {p.n_devices: p.stability for p in points}
    assert stab[3] >= stab[1] - 0.05
