"""Parameterized arrival curves for capacity planning.

The fleet experiments so far launched sessions in one uniform wave; real
traffic doesn't.  This module generates the arrival *schedules* a
capacity planner sweeps over — when each of N sessions asks the fleet
for a device, as millisecond offsets from bootstrap:

* **steady** — a homogeneous Poisson process conditioned on the session
  count: N sorted uniforms over the span (the standard order-statistics
  construction, so no thinning and no count drift);
* **diurnal** — an inhomogeneous process whose intensity follows
  ``1 + depth * cos(2*pi*(t - peak)/period)``: the evening-peak shape of
  cloud-gaming traffic, sampled by rejection against the bounded
  intensity envelope;
* **flash** — a steady background with a fraction of sessions
  concentrated into narrow step bursts (a launch event, a patch drop):
  each session is a Bernoulli draw between the background and one of
  ``bursts`` evenly spaced burst windows.

Determinism contract: every schedule is a pure function of
``(curve, n_sessions, seed)``.  Each session draws from its own
:class:`~repro.sim.random.RandomStream` named by *global* session index
(``fleet.arrivals.<key>.s<i>``, shard 0 keying), so the schedule is
invariant to how the fleet run is later partitioned — the same offsets
come out whether the sweep point runs on one kernel or eight shards
across four workers.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.sim.random import RandomStream

#: intensity-curve kinds understood by :func:`arrival_offsets`
CURVE_KINDS = ("steady", "diurnal", "flash")


@dataclass(frozen=True)
class ArrivalCurve:
    """One named arrival-intensity shape over a fixed span.

    ``span_ms`` bounds the schedule: every offset lands in
    ``[0, span_ms)``.  The remaining fields only apply to their kind and
    are ignored otherwise (but still participate in :attr:`key`, so two
    curves that sample identically still compare equal only when fully
    equal).
    """

    kind: str = "steady"
    span_ms: float = 10_000.0
    #: diurnal: intensity period; one full day compressed into the run
    period_ms: float = 10_000.0
    #: diurnal: peak-to-mean excess, in [0, 1); 0 degenerates to steady
    peak_depth: float = 0.8
    #: diurnal: where in the period the peak sits, as a fraction [0, 1)
    peak_phase: float = 0.75
    #: flash: fraction of sessions that belong to a burst
    burst_fraction: float = 0.6
    #: flash: number of evenly spaced burst windows
    bursts: int = 2
    #: flash: width of each burst window
    burst_width_ms: float = 400.0

    def validate(self) -> None:
        if self.kind not in CURVE_KINDS:
            raise ValueError(
                f"unknown arrival curve kind {self.kind!r}; "
                f"expected one of {CURVE_KINDS}"
            )
        if self.span_ms <= 0:
            raise ValueError(f"span_ms must be positive, got {self.span_ms}")
        if self.kind == "diurnal":
            if not 0.0 <= self.peak_depth < 1.0:
                raise ValueError(
                    f"peak_depth must be in [0, 1), got {self.peak_depth}"
                )
            if self.period_ms <= 0:
                raise ValueError(
                    f"period_ms must be positive, got {self.period_ms}"
                )
        if self.kind == "flash":
            if not 0.0 <= self.burst_fraction <= 1.0:
                raise ValueError(
                    f"burst_fraction must be in [0, 1], got "
                    f"{self.burst_fraction}"
                )
            if self.bursts < 1:
                raise ValueError(
                    f"need at least one burst, got {self.bursts}"
                )
            if self.burst_width_ms <= 0:
                raise ValueError(
                    f"burst_width_ms must be positive, got "
                    f"{self.burst_width_ms}"
                )

    @property
    def key(self) -> str:
        """Stable identity used in stream names and report keys."""
        return self.kind

    def describe(self) -> Dict[str, float]:
        """The curve's parameters as a JSON-friendly dict."""
        out: Dict[str, float] = {"span_ms": self.span_ms}
        if self.kind == "diurnal":
            out.update(
                period_ms=self.period_ms,
                peak_depth=self.peak_depth,
                peak_phase=self.peak_phase,
            )
        elif self.kind == "flash":
            out.update(
                burst_fraction=self.burst_fraction,
                bursts=self.bursts,
                burst_width_ms=self.burst_width_ms,
            )
        return out


def steady(span_ms: float = 10_000.0) -> ArrivalCurve:
    return ArrivalCurve(kind="steady", span_ms=span_ms)


def diurnal(
    span_ms: float = 10_000.0,
    peak_depth: float = 0.8,
    peak_phase: float = 0.75,
) -> ArrivalCurve:
    """Evening-peak sinusoid: one compressed day across the span."""
    return ArrivalCurve(
        kind="diurnal", span_ms=span_ms, period_ms=span_ms,
        peak_depth=peak_depth, peak_phase=peak_phase,
    )


def flash_crowd(
    span_ms: float = 10_000.0,
    burst_fraction: float = 0.6,
    bursts: int = 2,
    burst_width_ms: float = 400.0,
) -> ArrivalCurve:
    return ArrivalCurve(
        kind="flash", span_ms=span_ms, burst_fraction=burst_fraction,
        bursts=bursts, burst_width_ms=burst_width_ms,
    )


#: the three shapes every capacity sweep covers, by key
STANDARD_CURVES: Tuple[ArrivalCurve, ...] = (
    steady(), diurnal(), flash_crowd(),
)


def _session_stream(curve: ArrivalCurve, seed: int, index: int) -> RandomStream:
    # Keyed by *global* session index on shard 0 so the draw is a pure
    # function of (curve, seed, index) — independent of shard and worker
    # counts, and of how many other sessions the schedule contains
    # before it.
    return RandomStream(seed, f"fleet.arrivals.{curve.key}.s{index:03d}")


def _diurnal_offset(curve: ArrivalCurve, stream: RandomStream) -> float:
    # Rejection sampling against the bounded intensity
    # 1 + depth*cos(2*pi*(t/period - phase)), envelope 1 + depth.
    # Acceptance is >= (1-depth)/(1+depth) per trial, so the loop is
    # short; it terminates deterministically because the stream is.
    envelope = 1.0 + curve.peak_depth
    while True:
        t = stream.uniform(0.0, curve.span_ms)
        intensity = 1.0 + curve.peak_depth * math.cos(
            2.0 * math.pi * (t / curve.period_ms - curve.peak_phase)
        )
        if stream.uniform(0.0, envelope) <= intensity:
            return t


def _flash_offset(curve: ArrivalCurve, stream: RandomStream) -> float:
    if stream.bernoulli(curve.burst_fraction):
        burst = stream.randint(0, curve.bursts - 1)
        center = curve.span_ms * (burst + 1) / (curve.bursts + 1)
        half = curve.burst_width_ms / 2.0
        t = center + stream.uniform(-half, half)
        return min(max(t, 0.0), math.nextafter(curve.span_ms, 0.0))
    return stream.uniform(0.0, curve.span_ms)


def arrival_offsets(
    curve: ArrivalCurve, n_sessions: int, seed: int
) -> List[float]:
    """Sorted millisecond offsets for ``n_sessions`` arrivals.

    Sorted ascending (the fleet submits in arrival order); global session
    ``i`` gets the schedule's ``i``-th offset, so identity-to-time
    assignment is deterministic too.
    """
    if n_sessions < 0:
        raise ValueError(f"session count must be >= 0, got {n_sessions}")
    curve.validate()
    offsets: List[float] = []
    for i in range(n_sessions):
        stream = _session_stream(curve, seed, i)
        if curve.kind == "steady":
            t = stream.uniform(0.0, curve.span_ms)
        elif curve.kind == "diurnal":
            t = _diurnal_offset(curve, stream)
        else:
            t = _flash_offset(curve, stream)
        offsets.append(round(t, 4))
    return sorted(offsets)
