"""ReplayStore / ReplayHub: admission, eviction, state transitions."""

import pytest

from repro.gles import enums as gl
from repro.gles.commands import make_command
from repro.gles.intervals import split_interval
from repro.replay import RECORDED, VERIFIED, ReplayHub, ReplayStore
from repro.replay.store import MAX_VARIANTS


def interval(tag: int, t: float = 0.0):
    """A split whose skeleton varies with ``tag`` and dynamics with ``t``."""
    return split_interval([
        make_command("glUseProgram", tag),
        make_command("glUniform1f", 7, t),
        make_command("glDrawArrays", gl.GL_TRIANGLES, 0, 3 * (tag + 1)),
    ])


def deposit(store, digest, tag, t=0.0, **kw):
    kw.setdefault("wire_bytes", 400)
    kw.setdefault("raw_bytes", 800)
    kw.setdefault("nominal_commands", 30)
    return store.record(digest, interval(tag, t), **kw)


class TestAdmission:
    def test_record_and_lookup(self):
        store = ReplayStore("g5")
        entry = deposit(store, "d1", 1, recorded_by="s-a")
        assert entry is not None
        assert entry.state == RECORDED
        assert entry.baseline == entry.variants[0]
        assert "d1" in store
        assert store.get("d1") is entry
        assert store.bytes_stored == entry.byte_size
        assert store.stats.records == 1

    def test_duplicate_record_first_copy_wins(self):
        store = ReplayStore("g5")
        first = deposit(store, "d1", 1, recorded_by="s-a")
        again = deposit(store, "d1", 1, recorded_by="s-b")
        assert again is first
        assert again.recorded_by == "s-a"
        assert store.stats.records == 1

    def test_oversized_interval_rejected(self):
        store = ReplayStore("g5", capacity_bytes=16)
        assert deposit(store, "d1", 1) is None
        assert store.stats.rejected == 1
        assert store.bytes_stored == 0

    def test_zero_capacity_raises(self):
        with pytest.raises(ValueError):
            ReplayStore("g5", capacity_bytes=0)


class TestEviction:
    def test_lru_evicts_oldest_unreferenced(self):
        store = ReplayStore("g5")
        deposit(store, "d1", 1)
        deposit(store, "d2", 2)
        # Room for exactly one more entry after one eviction.
        size3 = ReplayStore.entry_byte_size(interval(3))
        store.capacity_bytes = store.bytes_stored + size3 - 1
        store.mark_hit("d1")  # d1 becomes most recent; d2 is LRU
        deposit(store, "d3", 3)
        assert "d2" not in store
        assert "d1" in store and "d3" in store
        assert store.stats.evictions == 1

    def test_retained_entry_never_evicted(self):
        store = ReplayStore("g5")
        deposit(store, "d1", 1)
        store.retain("d1")
        store.capacity_bytes = store.bytes_stored
        assert deposit(store, "d2", 2) is None
        assert "d1" in store
        assert store.stats.rejected == 1
        store.release("d1")
        assert deposit(store, "d2", 2) is not None
        assert "d1" not in store

    def test_byte_accounting_survives_churn(self):
        store = ReplayStore("g5", capacity_bytes=4 * 200)
        for i in range(12):
            deposit(store, f"d{i}", i)
        assert store.bytes_stored == sum(
            e.byte_size for e in store.entries()
        )
        assert store.bytes_stored <= store.capacity_bytes


class TestStateTransitions:
    def test_promote_once(self):
        store = ReplayStore("g5")
        deposit(store, "d1", 1)
        assert store.promote("d1") is True
        assert store.get("d1").state == VERIFIED
        assert store.promote("d1") is False  # already verified
        assert store.stats.promotions == 1

    def test_demote_drops_entry(self):
        store = ReplayStore("g5")
        entry = deposit(store, "d1", 1)
        assert store.demote("d1") is True
        assert "d1" not in store
        assert store.bytes_stored == 0
        assert store.demote("d1") is False
        assert store.stats.demotions == 1
        del entry

    def test_generation_bumps_on_every_transition(self):
        store = ReplayStore("g5")
        g0 = store.generation
        deposit(store, "d1", 1)
        assert store.generation > g0
        g1 = store.generation
        store.promote("d1")
        assert store.generation > g1
        g2 = store.generation
        store.demote("d1")
        assert store.generation > g2


class TestVariants:
    def test_add_variant_extends_and_accounts(self):
        store = ReplayStore("g5")
        entry = deposit(store, "d1", 1, t=0.0)
        before = store.bytes_stored
        assert store.add_variant("d1", interval(1, 0.5).dynamics) is True
        assert len(entry.variants) == 2
        assert store.bytes_stored > before
        assert store.bytes_stored == entry.byte_size
        assert store.stats.variants == 1

    def test_duplicate_variant_refused(self):
        store = ReplayStore("g5")
        deposit(store, "d1", 1, t=0.25)
        assert store.add_variant("d1", interval(1, 0.25).dynamics) is False
        assert store.stats.variants == 0

    def test_variant_cap(self):
        store = ReplayStore("g5")
        entry = deposit(store, "d1", 1, t=0.0)
        for i in range(1, MAX_VARIANTS + 5):
            store.add_variant("d1", interval(1, float(i)).dynamics)
        assert len(entry.variants) == MAX_VARIANTS

    def test_variant_for_missing_entry_refused(self):
        store = ReplayStore("g5")
        assert store.add_variant("nope", (1.0,)) is False

    def test_variant_never_evicts_its_own_entry(self):
        store = ReplayStore("g5")
        entry = deposit(store, "d1", 1)
        store.capacity_bytes = store.bytes_stored  # no headroom at all
        assert store.add_variant("d1", interval(1, 9.0).dynamics) is False
        assert "d1" in store
        assert entry.refcount == 0  # pin released on the failure path


class TestHub:
    def test_namespaces_are_per_title_and_stable(self):
        hub = ReplayHub(capacity_bytes_per_title=1 << 16)
        g5 = hub.namespace("G5")
        assert hub.namespace("G5") is g5
        assert hub.namespace("G2") is not g5
        assert g5.capacity_bytes == 1 << 16

    def test_session_started_warmth(self):
        hub = ReplayHub()
        assert hub.session_started("G5") is False  # first session: cold
        assert hub.session_started("G5") is True
        assert hub.session_started("G2") is False  # per-title warmth

    def test_generation_aggregates_titles(self):
        hub = ReplayHub()
        hub.session_started("G5")
        g = hub.generation()
        deposit(hub.namespace("G5"), "d1", 1)
        deposit(hub.namespace("G2"), "d2", 2)
        assert hub.generation() == g + 2

    def test_report_shape(self):
        hub = ReplayHub()
        deposit(hub.namespace("G5"), "d1", 1)
        report = hub.report()
        assert set(report) == {"generation", "titles"}
        assert report["titles"]["G5"]["entries"] == 1
        assert report["titles"]["G5"]["records"] == 1
