"""T1: Table I — game requirements vs flagship capabilities."""

from conftest import print_table

from repro.devices.profiles import (
    FLAGSHIP_BY_YEAR,
    GAME_REQUIREMENTS,
    requirement_vs_capability,
)


def test_table1(run_once):
    rows = run_once(
        lambda: {year: requirement_vs_capability(year)
                 for year in (2014, 2015, 2016)}
    )
    lines = []
    for year, row in rows.items():
        req = next(r for r in GAME_REQUIREMENTS if r.year == year)
        device = FLAGSHIP_BY_YEAR[year]
        lines.append(
            f"{year} {req.game[:28]:28} req {req.cpu_ghz:.1f} GHz x{req.cpu_cores} / "
            f"{req.gpu_fillrate_gpixels:.1f} GP/s | {device.name[:18]:18} "
            f"cpu x{row['cpu_headroom']:.1f} gpu x{row['gpu_headroom']:.2f}"
        )
    print_table(
        "Table I: requirement vs capability (paper: CPU beyond, GPU at limit)",
        "year game requirement | flagship headroom", lines,
    )
    for row in rows.values():
        assert row["cpu_headroom"] > 1.5
        assert abs(row["gpu_headroom"] - 1.0) < 0.02
