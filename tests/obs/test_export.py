"""Chrome trace-event export: schema, phases, metadata, round-trip."""

import json

import pytest

from repro.obs.export import (
    TRACE_SCHEMA,
    chrome_trace,
    trace_categories,
    validate_chrome_trace,
    write_chrome_trace,
)
from repro.obs.spans import SpanRecorder


def recorder_with_spans():
    rec = SpanRecorder()
    rec.add("frame", "frame", 0.0, 20.0, track="engine", frame_id=1)
    rec.add("app", "intercept", 0.0, 2.0, track="engine", frame_id=1,
            parent="frame.frame", depth=1)
    rec.add("net", "transmit", 2.0, 6.0, track="uplink", frame_id=1,
            parent="frame.frame", depth=1, bytes=512)
    rec.add("dispatch", "assign", 1.5, 1.5, track="client",
            instant=True, node="shield")
    return rec


class TestExport:
    def test_valid_trace_from_recorded_spans(self):
        trace = chrome_trace(recorder_with_spans())
        assert validate_chrome_trace(trace) == []
        assert trace["otherData"]["schema"] == TRACE_SCHEMA
        assert trace["otherData"]["span_count"] == 4
        assert trace["displayTimeUnit"] == "ms"

    def test_complete_span_becomes_x_event_in_microseconds(self):
        trace = chrome_trace(recorder_with_spans())
        (transmit,) = [
            e for e in trace["traceEvents"] if e["name"] == "transmit"
        ]
        assert transmit["ph"] == "X"
        assert transmit["ts"] == pytest.approx(2000.0)
        assert transmit["dur"] == pytest.approx(4000.0)
        assert transmit["args"]["bytes"] == 512
        assert transmit["args"]["frame_id"] == 1
        assert transmit["args"]["parent"] == "frame.frame"

    def test_mark_becomes_instant_event(self):
        trace = chrome_trace(recorder_with_spans())
        (assign,) = [
            e for e in trace["traceEvents"] if e["name"] == "assign"
        ]
        assert assign["ph"] == "I"
        assert assign["s"] == "t"
        assert "dur" not in assign

    def test_every_track_gets_thread_name_metadata(self):
        trace = chrome_trace(recorder_with_spans())
        meta = [e for e in trace["traceEvents"] if e["ph"] == "M"]
        named = {e["args"]["name"]: e["tid"] for e in meta}
        assert set(named) == {"engine", "uplink", "client"}
        # tids are deterministic: alphabetical track order
        assert named["client"] < named["engine"] < named["uplink"]
        span_tids = {
            e["tid"] for e in trace["traceEvents"] if e["ph"] != "M"
        }
        assert span_tids == set(named.values())

    def test_categories_ignore_metadata_events(self):
        trace = chrome_trace(recorder_with_spans())
        assert trace_categories(trace) == [
            "app", "dispatch", "frame", "net",
        ]

    def test_metadata_merged_into_other_data(self):
        trace = chrome_trace(recorder_with_spans(), metadata={"run": "t1"})
        assert trace["otherData"]["run"] == "t1"


class TestValidation:
    def test_rejects_non_object(self):
        assert validate_chrome_trace([]) != []

    def test_rejects_wrong_schema(self):
        trace = chrome_trace(recorder_with_spans())
        trace["otherData"]["schema"] = "something/else"
        assert any("schema" in p for p in validate_chrome_trace(trace))

    def test_rejects_missing_event_keys(self):
        trace = chrome_trace(recorder_with_spans())
        del trace["traceEvents"][-1]["ts"]
        assert any("missing keys" in p for p in validate_chrome_trace(trace))

    def test_rejects_unknown_phase_and_negative_duration(self):
        trace = chrome_trace(recorder_with_spans())
        events = [e for e in trace["traceEvents"] if e["ph"] == "X"]
        events[0]["ph"] = "B"
        events[1]["dur"] = -1.0
        problems = validate_chrome_trace(trace)
        assert any("unknown phase" in p for p in problems)
        assert any("dur" in p for p in problems)

    def test_rejects_empty_trace(self):
        assert "'traceEvents' is empty" in validate_chrome_trace(
            chrome_trace(SpanRecorder())
        )


class TestWrite:
    def test_round_trip_json(self, tmp_path):
        path = tmp_path / "trace.json"
        written = write_chrome_trace(str(path), recorder_with_spans())
        loaded = json.loads(path.read_text())
        assert loaded == written
        assert validate_chrome_trace(loaded) == []

    def test_write_refuses_invalid_trace(self, tmp_path):
        path = tmp_path / "trace.json"
        with pytest.raises(ValueError):
            write_chrome_trace(str(path), SpanRecorder())
        assert not path.exists()


class TestCounterTracks:
    def bank(self):
        from repro.obs.timeseries import TimeSeriesBank

        bank = TimeSeriesBank(window_ms=1000.0)
        s = bank.series("net.offered_mbps", agg="mean", link="wifi")
        s.record(100.0, 12.0)
        s.record(1500.0, 18.0)
        bank.series("cache.hit_rate", agg="last").record(500.0, 0.75)
        return bank

    def test_series_render_as_counter_events(self):
        trace = chrome_trace(recorder_with_spans(), series=self.bank())
        assert validate_chrome_trace(trace) == []
        counters = [e for e in trace["traceEvents"] if e["ph"] == "C"]
        assert len(counters) == 3
        (hit_rate,) = [
            e for e in counters if e["name"] == "cache.hit_rate"
        ]
        assert hit_rate["cat"] == "telemetry"
        assert hit_rate["args"] == {"cache.hit_rate": 0.75}
        offered = [
            e for e in counters
            if e["name"] == "net.offered_mbps{link=wifi}"
        ]
        assert [e["ts"] for e in offered] == [0.0, 1_000_000.0]
        assert offered[0]["args"]["net.offered_mbps"] == 12.0

    def test_plain_iterable_of_series_accepted(self):
        from repro.obs.timeseries import TimeSeries

        ts = TimeSeries("fps", window_ms=1000.0, agg="count")
        ts.record(100.0)
        trace = chrome_trace(recorder_with_spans(), series=[ts])
        assert any(e["ph"] == "C" for e in trace["traceEvents"])

    def test_counter_event_with_bad_args_rejected(self):
        trace = chrome_trace(recorder_with_spans())
        trace["traceEvents"].append(
            {"name": "bad", "cat": "telemetry", "ph": "C", "ts": 0,
             "pid": 1, "tid": 0, "args": {"v": "not-a-number"}}
        )
        assert validate_chrome_trace(trace)


class TestAlertEvents:
    def test_alerts_render_as_process_instants(self):
        from repro.obs.slo import Alert

        alerts = [
            Alert(at_ms=1000.0, source="frame_p99_latency",
                  severity="page", state="breached", message="burning hot",
                  burn_short=8.0, burn_long=5.0),
            Alert(at_ms=2000.0, source="prediction_drift",
                  severity="warn", state="drifting", message="model off"),
        ]
        trace = chrome_trace(recorder_with_spans(), alerts=alerts)
        assert validate_chrome_trace(trace) == []
        events = [
            e for e in trace["traceEvents"] if e.get("cat") == "alert"
        ]
        assert [e["name"] for e in events] == [
            "frame_p99_latency", "prediction_drift"
        ]
        assert all(e["ph"] == "I" and e["s"] == "p" for e in events)
        assert events[0]["args"]["severity"] == "page"
        assert events[0]["ts"] == 1_000_000.0
        assert "alert" in trace_categories(trace)

    def test_write_round_trip_with_overlays(self, tmp_path):
        from repro.obs.slo import Alert
        from repro.obs.timeseries import TimeSeries

        ts = TimeSeries("fps", window_ms=1000.0, agg="count")
        ts.record(100.0)
        path = tmp_path / "trace.json"
        write_chrome_trace(
            str(path), recorder_with_spans(),
            series=[ts],
            alerts=[Alert(at_ms=1.0, source="s", severity="info",
                          state="ok", message="m")],
        )
        loaded = json.loads(path.read_text())
        assert validate_chrome_trace(loaded) == []
        phases = {e["ph"] for e in loaded["traceEvents"]}
        assert {"X", "I", "M", "C"} <= phases
