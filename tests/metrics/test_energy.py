"""Energy reports and normalization."""

import pytest

from repro.devices.profiles import LG_NEXUS_5
from repro.devices.runtime import UserDeviceRuntime
from repro.metrics.energy import EnergyReport, energy_report, normalized_energy
from repro.sim.kernel import Simulator


def make_report(total_j, duration_s):
    return EnergyReport(total_j=total_j, duration_s=duration_s)


def test_mean_power():
    assert make_report(100.0, 50.0).mean_power_w == pytest.approx(2.0)
    assert make_report(10.0, 0.0).mean_power_w == 0.0


def test_normalized_energy_ratio():
    local = make_report(500.0, 100.0)     # 5 W
    offloaded = make_report(200.0, 100.0)  # 2 W
    assert normalized_energy(offloaded, local) == pytest.approx(0.4)


def test_normalization_duration_invariant():
    """Sessions of different lengths compare by mean power."""
    local = make_report(500.0, 100.0)          # 5 W
    offloaded = make_report(100.0, 50.0)        # 2 W
    assert normalized_energy(offloaded, local) == pytest.approx(0.4)


def test_zero_local_power_rejected():
    with pytest.raises(ValueError):
        normalized_energy(make_report(1.0, 1.0), make_report(0.0, 1.0))


def test_energy_report_from_device():
    sim = Simulator()
    device = UserDeviceRuntime(sim, LG_NEXUS_5)
    sim.run(until=5_000.0)
    report = energy_report(device)
    assert report.duration_s == pytest.approx(5.0)
    assert report.total_j > 0
    assert set(report.components_j) == {
        "cpu_j", "gpu_j", "wifi_j", "bluetooth_j", "screen_j"
    }
    assert report.total_j == pytest.approx(sum(report.components_j.values()))
