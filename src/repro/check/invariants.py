"""Runtime conservation-law checking for the whole simulation.

An :class:`InvariantMonitor` attaches to a :class:`~repro.sim.kernel.
Simulator` and periodically (plus once at finalization) evaluates a set of
conservation laws that must hold between any two process steps:

* **frame conservation** — every frame the engine submitted is either
  presented or still in flight (``submitted == presented + in_flight``);
* **transport message conservation** — every message sent is delivered,
  in flight awaiting (re)transmission, or held for reordering;
* **transport byte conservation** — bytes delivered never exceed bytes
  offered;
* **timer hygiene** — no backing timer process outlives its event's
  trigger or cancellation;
* **cache lockstep** — sender and receiver command caches agree on keys,
  order, capacity and hit counts, and hits never exceed lookups;
* **fleet ownership** — every active session is homed on exactly one
  known node, per-session frame accounting balances, and committed
  capacity never goes negative or exceeds active demand.

Violations are structured (:class:`Violation`): they carry the law's name,
the simulation time, the offending numbers, and the tail of the trace ring
at detection time so a failure is diagnosable without re-running.  The
monitor is armed by ``GBoosterConfig.check`` / ``FleetConfig.check`` in
experiments and used directly in tier-1 tests; ``strict=True`` raises
:class:`InvariantError` at the moment of detection.

This module is imported by the session runners, so it deliberately imports
nothing above :mod:`repro.sim` — every ``watch_*`` helper takes its
subject duck-typed.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Deque, Dict, Generator, List, Optional, Tuple

from repro.sim.kernel import Process, Simulator, TimerEvent

#: default sweep interval; fine enough to catch transient imbalance,
#: coarse enough to stay negligible against a 60 s session
DEFAULT_INTERVAL_MS = 250.0

#: tolerance for float accumulators (committed capacity, fill gauges)
EPS = 1e-6

#: how many trailing trace records a violation carries for diagnosis
TRACE_TAIL = 8

#: a CheckFn returns None when the law holds, else (message, details)
CheckFn = Callable[[], Optional[Tuple[str, Dict[str, Any]]]]


@dataclass
class Violation:
    """One detected conservation-law break."""

    invariant: str
    at_ms: float
    message: str
    details: Dict[str, Any] = field(default_factory=dict)
    #: tail of the trace ring at detection time (category/event/data dicts)
    trace: List[Dict[str, Any]] = field(default_factory=list)
    occurrences: int = 1

    def __str__(self) -> str:
        return (
            f"[{self.invariant}] t={self.at_ms:.3f} ms: {self.message} "
            f"(x{self.occurrences})"
        )


class InvariantError(AssertionError):
    """Raised in strict mode the moment a law breaks."""

    def __init__(self, violations: List[Violation]):
        self.violations = violations
        super().__init__(
            "; ".join(str(v) for v in violations) or "invariant violation"
        )


class InvariantMonitor:
    """Continuously asserts conservation laws on a running simulation."""

    def __init__(
        self,
        sim: Simulator,
        interval_ms: float = DEFAULT_INTERVAL_MS,
        strict: bool = False,
        max_violations: int = 64,
    ):
        if interval_ms <= 0:
            raise ValueError(f"interval must be positive, got {interval_ms}")
        self.sim = sim
        self.interval_ms = interval_ms
        self.strict = strict
        self.max_violations = max_violations
        self.violations: List[Violation] = []
        self.checks_run = 0
        self._checks: List[Tuple[str, CheckFn]] = []
        #: (invariant, message) -> Violation, for occurrence folding
        self._seen: Dict[Tuple[str, str], Violation] = {}
        #: recent TimerEvents registered by the kernel hook; pruned as the
        #: backing processes die, bounded so long sessions stay cheap
        self._timers: Deque[TimerEvent] = deque(maxlen=4096)
        self._proc: Optional[Process] = None
        self._finalized = False

    # -- registration --------------------------------------------------------

    def register(self, name: str, fn: CheckFn) -> None:
        """Add a conservation law; ``fn`` returns None or (message, details)."""
        self._checks.append((name, fn))

    @property
    def ok(self) -> bool:
        return not self.violations

    @property
    def invariant_names(self) -> List[str]:
        return [name for name, _ in self._checks]

    # -- built-in law packs --------------------------------------------------

    def watch_client(self, client: Any) -> None:
        """Frame conservation on a :class:`~repro.core.client.GBoosterClient`."""

        def frames() -> Optional[Tuple[str, Dict[str, Any]]]:
            stats = client.stats
            in_flight = len(client._completions)
            if stats.frames_submitted != stats.frames_presented + in_flight:
                return (
                    "frames submitted != presented + in-flight",
                    {
                        "submitted": stats.frames_submitted,
                        "presented": stats.frames_presented,
                        "in_flight": in_flight,
                    },
                )
            return None

        def outstanding() -> Optional[Tuple[str, Dict[str, Any]]]:
            stats = client.stats
            pending = stats.frames_submitted - stats.frames_presented
            if len(client._outstanding) > pending:
                return (
                    "more remote requests outstanding than unpresented frames",
                    {
                        "outstanding": len(client._outstanding),
                        "unpresented": pending,
                    },
                )
            return None

        self.register("client.frame_conservation", frames)
        self.register("client.outstanding_bound", outstanding)

    def watch_transports(self, transports: List[Any]) -> None:
        """Message/byte conservation on every bound transport."""

        def conservation() -> Optional[Tuple[str, Dict[str, Any]]]:
            for t in transports:
                sent = t.stats.messages_sent
                delivered = t.stats.messages_delivered
                held = t.reorder_held()
                accounted = delivered + t.in_flight() + held
                if sent != accounted:
                    return (
                        f"{t.name}: sent != delivered + in-flight + reordering",
                        {
                            "transport": t.name,
                            "sent": sent,
                            "delivered": delivered,
                            "in_flight": t.in_flight(),
                            "reorder_held": held,
                        },
                    )
            return None

        def bytes_balance() -> Optional[Tuple[str, Dict[str, Any]]]:
            for t in transports:
                if t.stats.bytes_delivered > t.stats.bytes_offered:
                    return (
                        f"{t.name}: delivered more bytes than were offered",
                        {
                            "transport": t.name,
                            "bytes_offered": t.stats.bytes_offered,
                            "bytes_delivered": t.stats.bytes_delivered,
                        },
                    )
            return None

        def ordering() -> Optional[Tuple[str, Dict[str, Any]]]:
            for t in transports:
                if t.stats.messages_delivered != t._expected_seq:
                    return (
                        f"{t.name}: in-order delivery count out of lockstep "
                        "with the expected sequence number",
                        {
                            "transport": t.name,
                            "delivered": t.stats.messages_delivered,
                            "expected_seq": t._expected_seq,
                        },
                    )
            return None

        self.register("transport.message_conservation", conservation)
        self.register("transport.byte_conservation", bytes_balance)
        self.register("transport.ordered_delivery", ordering)

    def watch_pipeline(self, pipeline: Any) -> None:
        """Cache-lockstep laws on a :class:`~repro.codec.pipeline.CommandPipeline`."""

        def lockstep() -> Optional[Tuple[str, Dict[str, Any]]]:
            pair = pipeline.cache
            if not pair.verify_consistent():
                return (
                    "sender and receiver caches diverged in key order",
                    {
                        "sender": len(pair.sender),
                        "receiver": len(pair.receiver),
                    },
                )
            if pair.sender.stats.hits != pair.receiver.stats.hits:
                return (
                    "sender and receiver hit counts diverged",
                    {
                        "sender_hits": pair.sender.stats.hits,
                        "receiver_hits": pair.receiver.stats.hits,
                    },
                )
            return None

        def bounds() -> Optional[Tuple[str, Dict[str, Any]]]:
            pair = pipeline.cache
            for side, cache in (("sender", pair.sender),
                                ("receiver", pair.receiver)):
                if len(cache) > cache.capacity:
                    return (
                        f"{side} cache exceeded its capacity",
                        {
                            "side": side,
                            "entries": len(cache),
                            "capacity": cache.capacity,
                        },
                    )
                if cache.stats.hits > cache.stats.lookups:
                    return (
                        f"{side} cache hits exceed lookups",
                        {
                            "side": side,
                            "hits": cache.stats.hits,
                            "lookups": cache.stats.lookups,
                        },
                    )
            return None

        self.register("cache.lockstep", lockstep)
        self.register("cache.bounds", bounds)

    def watch_fleet(self, controller: Any) -> None:
        """Ownership and accounting laws on a :class:`FleetController`."""

        def ownership() -> Optional[Tuple[str, Dict[str, Any]]]:
            for sid, session in controller.active.items():
                node = session.node
                if node is None and session.started_at_ms is not None:
                    return (
                        f"active session {sid} has no home node",
                        {"session": sid},
                    )
                if node is not None and node.name not in controller.nodes:
                    return (
                        f"active session {sid} homed on unknown node "
                        f"{node.name}",
                        {"session": sid, "node": node.name},
                    )
            finished_ids = {s.session_id for s in controller.finished}
            twice = sorted(set(controller.active) & finished_ids)
            if twice:
                return (
                    "sessions simultaneously active and finished",
                    {"sessions": twice},
                )
            return None

        def session_frames() -> Optional[Tuple[str, Dict[str, Any]]]:
            for sid, session in controller.sessions.items():
                answered = len(session.response_times_ms)
                pending = len(session.outstanding)
                if session.frames_issued != answered + pending:
                    return (
                        f"session {sid}: issued != answered + outstanding",
                        {
                            "session": sid,
                            "issued": session.frames_issued,
                            "answered": answered,
                            "outstanding": pending,
                        },
                    )
            return None

        def accounting() -> Optional[Tuple[str, Dict[str, Any]]]:
            for name, committed in controller.committed_mp_per_ms.items():
                if committed < -EPS:
                    return (
                        f"negative committed capacity on {name}",
                        {"node": name, "committed_mp_per_ms": committed},
                    )
            demand = sum(
                s.demand_mp_per_ms for s in controller.active.values()
            )
            total = controller.total_committed_mp_per_ms
            if total > demand + EPS:
                return (
                    "committed capacity exceeds active session demand",
                    {"committed": total, "active_demand": demand},
                )
            for name, node in controller.nodes.items():
                if node.queued_workload_mp < -EPS:
                    return (
                        f"negative queued workload on {name}",
                        {"node": name, "queued_mp": node.queued_workload_mp},
                    )
            return None

        def admission_reconciliation() -> Optional[Tuple[str, Dict[str, Any]]]:
            stats = controller.admission.stats
            waiting = len(controller.admission)
            if not stats.reconciles(waiting):
                return (
                    "offered sessions != admitted + rejected + waiting",
                    {
                        "offered": stats.offered,
                        "admitted": stats.admitted,
                        "rejected": stats.rejected,
                        "waiting": waiting,
                    },
                )
            if stats.dequeued + waiting != stats.queued:
                return (
                    "ever-queued sessions != dequeued + still waiting",
                    {
                        "queued": stats.queued,
                        "dequeued": stats.dequeued,
                        "waiting": waiting,
                    },
                )
            return None

        self.register("fleet.session_ownership", ownership)
        self.register("fleet.frame_conservation", session_frames)
        self.register("fleet.capacity_accounting", accounting)
        self.register("fleet.admission_reconciliation", admission_reconciliation)

    def watch_timers(self) -> None:
        """Timer hygiene: hook the kernel so every ``timeout()`` registers
        its :class:`TimerEvent` here, then assert no backing process ever
        outlives its event's trigger."""
        self.sim.monitor = self

        def hygiene() -> Optional[Tuple[str, Dict[str, Any]]]:
            leaked = 0
            sample = ""
            for evt in self._timers:
                timer = evt.timer
                if evt.triggered and timer is not None and timer.alive:
                    leaked += 1
                    sample = sample or evt.name
            if leaked:
                return (
                    "timer processes outlived their events' triggers",
                    {"leaked": leaked, "sample": sample},
                )
            return None

        self.register("sim.timer_hygiene", hygiene)

    def note_timer(self, evt: TimerEvent) -> None:
        """Kernel hook: called by ``Simulator.timeout`` for each new timer."""
        self._timers.append(evt)

    # -- running -------------------------------------------------------------

    def start(self) -> None:
        """Spawn the periodic sweep; idempotent."""
        if self._proc is not None:
            return

        def _loop() -> Generator:
            while not self._finalized:
                yield self.interval_ms
                self.check_now()

        self._proc = self.sim.spawn(_loop(), name="check.invariants")

    def check_now(self) -> List[Violation]:
        """Evaluate every law once; returns the violations found this sweep."""
        self.checks_run += 1
        self._prune_timers()
        fresh: List[Violation] = []
        for name, fn in self._checks:
            try:
                result = fn()
            except Exception as exc:  # a law's subject died mid-run
                result = (f"check raised {type(exc).__name__}: {exc}", {})
            if result is None:
                continue
            message, details = result
            key = (name, message)
            known = self._seen.get(key)
            if known is not None:
                known.occurrences += 1
                continue
            violation = Violation(
                invariant=name,
                at_ms=self.sim.now,
                message=message,
                details=details,
                trace=self._trace_tail(),
            )
            self._seen[key] = violation
            if len(self.violations) < self.max_violations:
                self.violations.append(violation)
                fresh.append(violation)
            self.sim.metrics.counter("check.violations").inc()
            self.sim.tracer.record(
                self.sim.now, "check", "violation",
                invariant=name, message=message,
            )
            # A fresh conservation-law break is flight-recorder trigger
            # material: the evidence is still warm in the ring tracer.
            flight = getattr(self.sim, "flight", None)
            if flight is not None:
                flight.on_violation(violation)
        if fresh and self.strict:
            raise InvariantError(fresh)
        return fresh

    def finalize(self) -> List[Violation]:
        """Stop the sweep, run the laws one final time, return everything."""
        if not self._finalized:
            self._finalized = True
            if self._proc is not None and self._proc.alive:
                self._proc.kill()
            self.check_now()
            if self.sim.monitor is self:
                self.sim.monitor = None
        return self.violations

    def summary(self) -> Dict[str, Any]:
        return {
            "invariants": self.invariant_names,
            "checks_run": self.checks_run,
            "violations": [
                {
                    "invariant": v.invariant,
                    "at_ms": round(v.at_ms, 3),
                    "message": v.message,
                    "occurrences": v.occurrences,
                }
                for v in self.violations
            ],
        }

    # -- internals -----------------------------------------------------------

    def _prune_timers(self) -> None:
        # Drop timers that resolved cleanly (fired and reaped, or
        # cancelled); keep any that would currently violate, so the sweep
        # that follows still sees them.
        kept = [
            evt for evt in self._timers
            if evt.timer is not None and evt.timer.alive
        ]
        self._timers.clear()
        self._timers.extend(kept)

    def _trace_tail(self) -> List[Dict[str, Any]]:
        tracer = self.sim.tracer
        records = tracer.records() if callable(
            getattr(tracer, "records", None)
        ) else tracer.records
        tail = list(records)[-TRACE_TAIL:]
        return [
            {
                "time": r.time,
                "category": r.category,
                "event": r.event,
                "data": dict(r.data),
            }
            for r in tail
        ]
