"""Observability: bounded tracing, hierarchical spans, metrics, exporters.

``repro.obs`` is the instrumentation layer the rest of the simulator
reports into:

* :class:`RingTracer` — bounded ring-buffer event tracer with
  per-category indexes (the default ``sim.tracer``);
* :class:`SpanRecorder` / :class:`Span` — hierarchical frame-stage spans
  (``sim.spans``), aggregated by ``repro.metrics.spans`` and exported as
  Chrome trace-event JSON by :func:`chrome_trace`;
* :class:`MetricsRegistry` — counters, gauges and histograms
  (``sim.metrics``) wired into transport retransmissions, switching
  decisions, cache hit rates and fleet admission/migration outcomes.
"""

from repro.obs.export import (
    TRACE_SCHEMA,
    chrome_trace,
    trace_categories,
    validate_chrome_trace,
    write_chrome_trace,
)
from repro.obs.registry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    percentile,
)
from repro.obs.ring import RingTracer
from repro.obs.spans import OpenSpan, Span, SpanRecorder

__all__ = [
    "TRACE_SCHEMA",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "OpenSpan",
    "RingTracer",
    "Span",
    "SpanRecorder",
    "chrome_trace",
    "percentile",
    "trace_categories",
    "validate_chrome_trace",
    "write_chrome_trace",
]
