"""Counters, gauges and histograms for the simulation data path.

A tiny, dependency-free metrics registry in the Prometheus shape:

* :class:`Counter` — monotonically increasing totals (retransmissions,
  cache hits, admission outcomes);
* :class:`Gauge` — last-written values (cache hit rate, queue depth);
* :class:`Histogram` — streaming observations with deterministic
  percentile queries (frame response times).

Everything is deterministic: a seeded run produces a byte-identical
``snapshot()`` dict, so registries can participate in same-seed digest
checks the way the fleet report already does.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

#: histograms keep at most this many raw samples (count/sum keep running)
DEFAULT_HISTOGRAM_SAMPLES = 65_536


def percentile(sorted_values: List[float], q: float) -> float:
    """Linear-interpolated percentile of an already-sorted list.

    Deterministic and dependency-free (no numpy): the same method as
    ``statistics.quantiles(..., method='inclusive')``.
    """
    if not sorted_values:
        return 0.0
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"percentile {q} outside [0, 100]")
    if len(sorted_values) == 1:
        return sorted_values[0]
    rank = (q / 100.0) * (len(sorted_values) - 1)
    lo = int(rank)
    hi = min(lo + 1, len(sorted_values) - 1)
    frac = rank - lo
    return sorted_values[lo] * (1.0 - frac) + sorted_values[hi] * frac


class Counter:
    """A monotonically increasing total."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease")
        self.value += amount


class Gauge:
    """A last-written value."""

    __slots__ = ("name", "value", "updates")

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0
        self.updates = 0

    def set(self, value: float) -> None:
        self.value = float(value)
        self.updates += 1


class Histogram:
    """Streaming observations with deterministic percentiles.

    Keeps every sample up to ``max_samples`` (newest dropped beyond that —
    count and sum keep running, so means stay exact).
    """

    __slots__ = ("name", "count", "sum", "max_samples", "_samples", "dropped")

    def __init__(self, name: str, max_samples: int = DEFAULT_HISTOGRAM_SAMPLES):
        self.name = name
        self.count = 0
        self.sum = 0.0
        self.max_samples = max_samples
        self._samples: List[float] = []
        self.dropped = 0

    def observe(self, value: float) -> None:
        self.count += 1
        self.sum += value
        if len(self._samples) < self.max_samples:
            self._samples.append(float(value))
        else:
            self.dropped += 1

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def percentile(self, q: float) -> float:
        return percentile(sorted(self._samples), q)

    def summary(self) -> Dict[str, float]:
        ordered = sorted(self._samples)
        return {
            "count": self.count,
            "mean": round(self.mean, 4),
            "p50": round(percentile(ordered, 50.0), 4),
            "p95": round(percentile(ordered, 95.0), 4),
            "p99": round(percentile(ordered, 99.0), 4),
            "min": round(ordered[0], 4) if ordered else 0.0,
            "max": round(ordered[-1], 4) if ordered else 0.0,
        }


class MetricsRegistry:
    """Get-or-create registry keyed by metric name."""

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        if name not in self._counters:
            self._check_free(name, self._counters)
            self._counters[name] = Counter(name)
        return self._counters[name]

    def gauge(self, name: str) -> Gauge:
        if name not in self._gauges:
            self._check_free(name, self._gauges)
            self._gauges[name] = Gauge(name)
        return self._gauges[name]

    def histogram(
        self, name: str, max_samples: int = DEFAULT_HISTOGRAM_SAMPLES
    ) -> Histogram:
        if name not in self._histograms:
            self._check_free(name, self._histograms)
            self._histograms[name] = Histogram(name, max_samples=max_samples)
        return self._histograms[name]

    def _check_free(self, name: str, own: Dict[str, Any]) -> None:
        for family in (self._counters, self._gauges, self._histograms):
            if family is not own and name in family:
                raise ValueError(
                    f"metric {name!r} already registered with another type"
                )

    def snapshot(self) -> Dict[str, Any]:
        """Deterministic JSON-able dump: sorted names, rounded values."""
        return {
            "counters": {
                name: round(c.value, 4)
                for name, c in sorted(self._counters.items())
            },
            "gauges": {
                name: round(g.value, 4)
                for name, g in sorted(self._gauges.items())
            },
            "histograms": {
                name: h.summary()
                for name, h in sorted(self._histograms.items())
            },
        }
