"""The service-device daemon (paper §IV-C, Fig 2 right half).

A :class:`ServiceNode` receives forwarded command batches, decompresses and
replays them into its local GL context, feeds the render to its GPU, Turbo-
encodes the result, and ships the frame back.  The whole per-frame path is
serialized within one node — a single GL context executes requests
non-preemptively — which is exactly why spreading frames across *several*
nodes raises throughput (§VI).

Work items:

* ``state`` — replicated state-mutating commands: decompress + replay only;
  every node processes every frame's state batch to stay consistent.
* ``frame`` — an assigned rendering request: decompress + replay + GPU
  render + encode + downlink.

Per-frame CPU costs are reference-CPU milliseconds scaled by the node CPU's
``perf_index``; x86 nodes pay the OpenGL ES emulator's per-command
translation tax (§IV-C) but encode much faster.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Generator, List, Optional

from repro.codec.frames import FrameImage
from repro.codec.turbo import TurboEncoder
from repro.core.config import GBoosterConfig
from repro.devices.runtime import ServiceDeviceRuntime
from repro.gpu.model import RenderRequest
from repro.net.message import Message
from repro.net.transport import Transport
from repro.sim.kernel import Event, Simulator
from repro.sim.resources import PriorityStore, Store


@dataclass
class ServiceWorkItem:
    kind: str                          # "state" | "frame"
    commands_nominal: int
    request: Optional[RenderRequest] = None
    frame_desc: Optional[FrameImage] = None
    received_at: float = 0.0
    #: lower values are served first under the "priority" queue policy;
    #: state batches are always most urgent (cheap, needed by all users).
    priority: float = 0.0


@dataclass
class NodeStats:
    state_batches: int = 0
    frames_rendered: int = 0
    replay_ms_total: float = 0.0
    encode_ms_total: float = 0.0
    gpu_ms_total: float = 0.0
    bytes_returned: int = 0
    # record-once / replay-many fast path (repro.replay)
    replay_hits: int = 0
    replay_fallbacks: int = 0
    replay_ms_saved: float = 0.0


class ServiceNode:
    """One offloading destination."""

    def __init__(
        self,
        sim: Simulator,
        runtime: ServiceDeviceRuntime,
        config: GBoosterConfig,
        downlink: Transport,
        rtt_ms: float,
        account_downlink: Optional[Callable[[int], None]] = None,
        replay_store=None,
    ):
        self.sim = sim
        self.runtime = runtime
        self.config = config
        self.downlink = downlink
        self.rtt_ms = rtt_ms
        self.account_downlink = account_downlink
        #: shared per-title ReplayStore (the controller-distributed copy);
        #: lets this node serve replay-hit frames from recorded intervals
        self.replay_store = replay_store
        self.name = runtime.spec.name
        if config.service_queue_policy == "priority":
            self.queue = PriorityStore(sim, name=f"{self.name}.work")
        else:
            self.queue = Store(sim, name=f"{self.name}.work")
        self.encoder = TurboEncoder(
            throughput_mp_s=(
                config.encode_mp_per_s_arm
                if runtime.spec.cpu.is_arm
                else config.encode_mp_per_s_x86
            )
        )
        self.stats = NodeStats()
        self.failed = False
        self._queued_fill_mp = 0.0
        self._proc = sim.spawn(self._run(), name=f"service.{self.name}")

    def fail(self) -> None:
        """Simulate the device dropping off the network (failure injection):
        queued and future work is silently discarded, as a crashed or
        powered-off box would.  A frame mid-render at crash time never
        ships its reply either — a dead box answers nothing."""
        self.failed = True
        self._queued_fill_mp = 0.0
        self.runtime.halt()
        self.sim.tracer.record(self.sim.now, "service", "failed",
                               node=self.name)

    def rejoin(self) -> None:
        """The device comes back (power restored, daemon restarted): it
        starts clean — empty queue, no memory of pre-crash work — and
        serves whatever arrives next."""
        if not self.failed:
            return
        self.failed = False
        self.sim.tracer.record(self.sim.now, "service", "rejoined",
                               node=self.name)

    # -- ingress -----------------------------------------------------------------

    def _enqueue(self, item: ServiceWorkItem) -> None:
        if isinstance(self.queue, PriorityStore):
            self.queue.put(item, priority=item.priority)
        else:
            self.queue.put(item)

    def on_state_message(self, message: Message) -> None:
        self._enqueue(
            ServiceWorkItem(
                kind="state",
                commands_nominal=message.metadata.get("nominal_commands", 0),
                received_at=self.sim.now,
                priority=-1.0,
            )
        )

    def on_frame_message(self, message: Message) -> None:
        request: RenderRequest = message.metadata["request"]
        frame_desc: FrameImage = message.metadata["frame_desc"]
        # Remote replay lacks the app's device-tuned render-path hints, so
        # the fill-equivalent work grows by the remoting overhead factor.
        # Derived from the base fill each arrival, so a request re-dispatched
        # to a second node after a failure is not inflated twice.
        base_fill = request.metadata.setdefault(
            "base_fill_megapixels", request.fill_megapixels
        )
        request.fill_megapixels = base_fill * self.config.remote_render_overhead
        self._queued_fill_mp += request.fill_megapixels
        self._enqueue(
            ServiceWorkItem(
                kind="frame",
                commands_nominal=message.metadata.get("nominal_commands", 0),
                request=request,
                frame_desc=frame_desc,
                received_at=self.sim.now,
                priority=float(request.metadata.get("priority", 0.0)),
            )
        )

    # -- scheduler inputs (Eq. 4) ---------------------------------------------------

    @property
    def queued_workload_mp(self) -> float:
        """w^j: fill workload accepted but not yet finished."""
        return self._queued_fill_mp

    def predicted_stage_ms(self, request: RenderRequest) -> float:
        """Full per-frame service time for a request on this node."""
        cfg = self.config
        perf = self.runtime.spec.cpu.perf_index
        cpu_ms = cfg.decompress_ms / perf
        cpu_ms += (
            request.metadata.get(
                "nominal_commands", len(request.commands)
            )
            * cfg.replay_us_per_command
            / 1000.0
            / perf
        )
        if not self.runtime.spec.cpu.is_arm:
            cpu_ms += (
                request.metadata.get(
                    "nominal_commands", len(request.commands)
                )
                * cfg.es_translate_us_per_command
                / 1000.0
                / perf
            )
        gpu_ms = (
            request.fill_megapixels * self.config.remote_render_overhead
        ) / max(self.runtime.gpu.capacity_megapixels_per_ms(), 1e-9)
        encode_ms = (request.width * request.height) / (
            self.encoder.throughput_mp_s * 1000.0
        )
        return cpu_ms + gpu_ms + encode_ms

    def capability_mp_per_ms(self, request: RenderRequest) -> float:
        """c^j: effective workload throughput for requests like this one."""
        stage = self.predicted_stage_ms(request)
        if stage <= 0:
            return float("inf")
        return request.fill_megapixels / stage

    # -- replay fast path -----------------------------------------------------------------

    def _full_replay_ms(self, nominal_commands: int, perf: float) -> float:
        """What the full decompress+replay pipeline would have charged."""
        cfg = self.config
        ms = cfg.decompress_ms / perf
        ms += nominal_commands * cfg.replay_us_per_command / 1000.0 / perf
        if not self.runtime.spec.cpu.is_arm:
            ms += (
                nominal_commands
                * cfg.es_translate_us_per_command
                / 1000.0
                / perf
            )
        return ms

    def _resolve_replay(self, request: RenderRequest, info: dict):
        """Reconstruct a replay-hit interval and differentially verify it.

        Returns ``(commands, outcome)``.  The reconstruction's digest must
        equal the digest of the live stream the client issued; equality on
        a promote-serve is the ``run_replay_pair``-style verification that
        upgrades the entry to VERIFIED.  Any mismatch — corrupt patch,
        corrupt store entry, or the entry having been evicted while the
        hit was in flight — demotes the entry and falls back to the live
        commands the request carries (simulation bookkeeping standing in
        for the client's retransmission, which the client re-accounts as
        uplink bytes when it sees the ``diverged`` outcome).
        """
        from repro.check.digest import command_digest
        from repro.codec.delta import DeltaError
        from repro.gles.intervals import IntervalError
        from repro.replay.session import reconstruct_interval

        entry = (
            self.replay_store.get(info["digest"])
            if self.replay_store is not None
            else None
        )
        reconstructed = None
        if entry is not None:
            try:
                reconstructed = reconstruct_interval(
                    entry, info["patch"], info.get("variant", 0)
                )
            except (DeltaError, IntervalError):
                reconstructed = None
        if (
            reconstructed is not None
            and command_digest(reconstructed) == info["expect"]
        ):
            outcome = "ok"
            if info.get("promote") and self.replay_store is not None:
                if self.replay_store.promote(info["digest"]):
                    outcome = "promoted"
            return reconstructed, outcome
        if self.replay_store is not None:
            self.replay_store.demote(info["digest"])
        self.sim.tracer.record(
            self.sim.now, "replay", "divergence",
            node=self.name, digest=info["digest"][:16],
        )
        if self.sim.causal is not None:
            self.sim.causal.event(
                "replay", "demote",
                trace=request.metadata.get("trace"),
                node=self.name, digest=info["digest"][:16],
            )
        return list(request.commands), "diverged"

    # -- the daemon loop ------------------------------------------------------------------

    def _run(self) -> Generator:
        cfg = self.config
        perf = self.runtime.spec.cpu.perf_index
        while True:
            item: ServiceWorkItem = yield self.queue.get()
            if self.failed:
                # A dead box answers nothing; drop the work on the floor.
                self._queued_fill_mp = 0.0
                continue
            dequeued_at = self.sim.now
            self.runtime.cpu.set_load("daemon", 0.6)
            replay_info = None
            if item.kind == "frame" and item.request is not None:
                replay_info = item.request.metadata.get("replay")
            if replay_info is not None:
                # Replay hit: the recorded interval is already resident —
                # no stream decompress, no ES translation (paid once at
                # record time); just look up, patch and enqueue.
                replay_ms = cfg.replay_hit_ms / perf
                replay_ms += (
                    item.commands_nominal
                    * cfg.replay_us_per_command
                    / 1000.0
                    / perf
                )
            else:
                # Decompress + replay the command batch.
                replay_ms = cfg.decompress_ms / perf
                replay_ms += (
                    item.commands_nominal
                    * cfg.replay_us_per_command
                    / 1000.0
                    / perf
                )
                if not self.runtime.spec.cpu.is_arm:
                    replay_ms += (
                        item.commands_nominal
                        * cfg.es_translate_us_per_command
                        / 1000.0
                        / perf
                    )
            yield replay_ms
            self.stats.replay_ms_total += replay_ms

            if item.kind == "state":
                self.stats.state_batches += 1
                self.runtime.cpu.set_load("daemon", 0.0)
                continue

            request = item.request
            commands = request.commands
            if replay_info is not None:
                commands, outcome = self._resolve_replay(
                    request, replay_info
                )
                request.metadata["replay_outcome"] = outcome
                if outcome == "diverged":
                    # Fallback re-runs the full pipeline for this frame:
                    # charge what the fast path thought it was skipping.
                    penalty_ms = self._full_replay_ms(
                        replay_info.get("full_nominal", 0), perf
                    )
                    yield penalty_ms
                    self.stats.replay_ms_total += penalty_ms
                    self.stats.replay_fallbacks += 1
                else:
                    self.stats.replay_hits += 1
                    self.stats.replay_ms_saved += max(
                        0.0,
                        self._full_replay_ms(
                            replay_info.get("full_nominal", 0), perf
                        )
                        - replay_ms,
                    )
            # Replay the (reconstructed or subsampled live) commands through
            # the context so state consistency is observable, then render.
            self.runtime.context.execute_sequence(commands)
            if self.sim.digests is not None:
                self.sim.digests.record_execution(
                    request.frame_id, commands, site=self.name
                )
            completion = self.sim.event(
                name=f"{self.name}.gpu.{request.request_id}"
            )
            request.metadata["completion_event"] = completion
            gpu_start = self.sim.now
            self.runtime.gpu.submit(request)
            yield completion
            self.stats.gpu_ms_total += self.sim.now - gpu_start
            root = request.metadata.get("frame_span")
            parent_name = root.qualified_name if root is not None else None
            parent_depth = root.depth + 1 if root is not None else 0
            trace = request.metadata.get("trace")
            extra = (
                {"trace_id": trace.trace_id} if trace is not None else {}
            )
            # "execute" covers decompress + replay + GPU render on this node.
            self.sim.spans.add(
                "server", "execute", dequeued_at, self.sim.now,
                track=self.name, frame_id=request.frame_id,
                parent=parent_name, depth=parent_depth,
                queue_wait_ms=dequeued_at - item.received_at,
                **extra,
            )
            if self.sim.causal is not None and trace is not None:
                self.sim.causal.event(
                    "server", "execute", trace=trace,
                    node=self.name,
                    queue_wait_ms=round(dequeued_at - item.received_at, 4),
                    execute_ms=round(self.sim.now - dequeued_at, 4),
                )

            # Encode the rendered frame (Turbo incremental codec).
            encode_start = self.sim.now
            encoded = self.encoder.encode_descriptor(
                item.frame_desc,
                keyframe=self.stats.frames_rendered == 0,
            )
            yield encoded.encode_time_ms
            self.stats.encode_ms_total += encoded.encode_time_ms
            self.sim.spans.add(
                "server", "video_encode", encode_start, self.sim.now,
                track=self.name, frame_id=request.frame_id,
                parent=parent_name, depth=parent_depth,
                bytes=encoded.size_bytes,
                **extra,
            )
            self._queued_fill_mp = max(
                0.0, self._queued_fill_mp - request.fill_megapixels
            )
            self.stats.frames_rendered += 1
            self.stats.bytes_returned += encoded.size_bytes
            self.runtime.cpu.set_load("daemon", 0.0)
            if self.failed:
                # Crashed while this frame was in flight through the
                # replay/render/encode path: the reply is never sent.
                continue

            # Ship the frame home.
            reply = Message.of_size(
                encoded.size_bytes,
                kind="frame",
                request_id=request.request_id,
                node=self.name,
            )
            reply.message_id = self.sim.next_message_id()
            reply.metadata["request"] = request
            if self.account_downlink is not None:
                self.account_downlink(reply.size_bytes)
            # Multi-user mode routes each reply to its requester's own
            # downlink transport; single-user sessions use the default.
            downlink = request.metadata.get("reply_transport", self.downlink)
            downlink.send(reply)
