"""Application workload models.

The six games of Table II (three genres: action, role-playing, puzzle) and
the three non-gaming applications of Table III, modelled as frame-by-frame
workload generators: per-frame GL command batches, shader-weighted fill
workload, CPU cost, scene dynamics (what fraction of the screen changes
frame to frame) and touch-event-driven activity bursts.

Calibration targets are the paper's measured local frame rates (Fig 5) and
traffic characteristics (§V-A); see :mod:`repro.apps.games` for the
per-game numbers.
"""

from repro.apps.base import ApplicationSpec, CommandBatchBuilder, SceneState
from repro.apps.engine import EngineConfig, FrameRecord, GameEngine, GraphicsBackend
from repro.apps.games import (
    CANDY_CRUSH,
    CUT_THE_ROPE,
    FINAL_FANTASY,
    GAMES,
    GTA_SAN_ANDREAS,
    MODERN_COMBAT,
    STAR_WARS_KOTOR,
)
from repro.apps.nongaming import EBOOK_READER, NONGAMING_APPS, TUMBLR, YAHOO_WEATHER
from repro.apps.touch import TouchEvent, TouchGenerator

__all__ = [
    "ApplicationSpec",
    "CANDY_CRUSH",
    "CUT_THE_ROPE",
    "CommandBatchBuilder",
    "EBOOK_READER",
    "EngineConfig",
    "FINAL_FANTASY",
    "FrameRecord",
    "GAMES",
    "GTA_SAN_ANDREAS",
    "GameEngine",
    "GraphicsBackend",
    "MODERN_COMBAT",
    "NONGAMING_APPS",
    "STAR_WARS_KOTOR",
    "SceneState",
    "TUMBLR",
    "TouchEvent",
    "TouchGenerator",
    "YAHOO_WEATHER",
]
