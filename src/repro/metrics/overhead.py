"""Memory and CPU overhead accounting (paper §VII-G).

GBooster's client runtime allocates extra memory (wrapper library, command
cache, serialization buffers, frame reassembly buffers — the paper measures
47.8 MB on average) and burns extra CPU on the offload data path (the paper
measures +11 points on G1).  The report derives both from the running
client's actual configuration rather than quoting constants.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

# Per-structure memory model (bytes).
WRAPPER_LIBRARY_BYTES = 6 * 1024 * 1024          # wrapper .so, GOT, stubs
CACHE_ENTRY_OVERHEAD_BYTES = 96                  # key + LRU node + dict slot
SERIALIZATION_BUFFER_BYTES = 4 * 1024 * 1024     # double-buffered egress
FRAME_BUFFER_COUNT = 3                           # reassembly ring (pipeline)


@dataclass
class OverheadReport:
    memory_mb: float
    cpu_local_util: float
    cpu_offloaded_util: float
    breakdown_mb: Dict[str, float]

    @property
    def cpu_delta_points(self) -> float:
        return (self.cpu_offloaded_util - self.cpu_local_util) * 100.0


def memory_overhead_mb(
    cache_capacity: int,
    mean_cached_entry_bytes: float,
    frame_width: int,
    frame_height: int,
) -> Dict[str, float]:
    """Client memory footprint by component, in MB."""
    mb = 1024.0 * 1024.0
    cache_bytes = cache_capacity * (
        CACHE_ENTRY_OVERHEAD_BYTES + mean_cached_entry_bytes
    )
    frame_bytes = FRAME_BUFFER_COUNT * frame_width * frame_height * 4
    return {
        "wrapper_library": WRAPPER_LIBRARY_BYTES / mb,
        "command_cache": cache_bytes / mb,
        "serialization_buffers": SERIALIZATION_BUFFER_BYTES / mb,
        "frame_buffers": frame_bytes / mb,
    }
