"""The auto-boost multi-backend planner (ROADMAP item, after nebullvm).

GBooster's original machinery makes three separate decisions — BT-vs-WiFi
switching, Eq. 4 device placement, and the replay fast path — and the
paper's baselines (local execution, OnLive WAN cloud) sit outside them
entirely.  ``repro.plan`` unifies all of it behind one measured optimizer:

* :mod:`repro.plan.candidates` — enumerate every way a session could run
  (local GPU, BT offload, WiFi offload, WAN cloud, replay-warm serve,
  multicast shared rendering), gated on what the environment offers;
* :mod:`repro.plan.probe` — score each candidate on a measured probe
  window (frame latency, uplink bytes through a *real* egress pipeline
  with command-stream fusion, radio energy), recorded into ``repro.obs``
  time-series;
* :mod:`repro.plan.planner` — commit to the winner and re-plan when the
  EWMA drift detector sees the committed plan's live latency leave the
  probed band.

The switching controller delegates its radio decision to the committed
plan via :class:`~repro.switching.policies.PlannerPolicy`
(``switching_policy="planner"``), and the fleet placer consumes plan
scores as per-node bias (:mod:`repro.fleet.placement`).
"""

from repro.plan.candidates import (
    BACKEND_RADIO,
    BACKENDS,
    PlanCandidate,
    SessionContext,
    enumerate_candidates,
)
from repro.plan.planner import PlanDecision, ReplanController, SessionPlanner
from repro.plan.probe import ProbeRunner, ProbeStats

__all__ = [
    "BACKENDS",
    "BACKEND_RADIO",
    "PlanCandidate",
    "PlanDecision",
    "ProbeRunner",
    "ProbeStats",
    "ReplanController",
    "SessionContext",
    "SessionPlanner",
    "enumerate_candidates",
]
