"""The auto-boost planner bench behind ``python -m repro planner``.

Three sections, all in simulated/modelled time so the
``BENCH_PLANNER.json`` artifact is byte-identical across same-seed runs
and any ``--workers`` count:

1. **Genre-mix matrix** — a grid of session environments (genres ×
   LAN/WAN/degraded-link/co-located conditions) engineered so that every
   static policy (always-local, always-BT, always-WiFi, always-WAN)
   loses at least one cell, while the planner — which probes every
   viable backend and commits to the measured winner — matches the
   per-cell optimum everywhere.  The acceptance gate is the adversarial
   claim itself: no static policy reaches the planner's aggregate
   attainment.
2. **Fusion byte reduction** — per-genre apps run their real command
   batches through the egress pipeline twice (fusion off / fusion on);
   the table reports measured wire bytes per frame and the fused
   reduction.  Gate: fusion strictly reduces bytes for every app and
   never changes the frame count.
3. **Drift drill** — a committed plan's environment degrades mid-session
   (WiFi collapses, the replay store goes cold, live latency steps up);
   the EWMA drift watchdog must fire, the re-probe must move the session
   to a backend that is healthy *under the degraded context*, and the
   post-replan residual must return to band.

The harness doubles as the CI perf-regression gate (``planner-smoke``):
``diff_against_baseline`` compares the planner's per-cell scores and the
fused byte reduction against the committed baseline
(``benchmarks/baselines/BENCH_PLANNER.json``) and fails the build on a
>10% regression.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any, Dict, List, Optional, Tuple

from repro.apps.base import CommandBatchBuilder, SceneState
from repro.apps.games import GAMES
from repro.codec.pipeline import CommandPipeline, PipelineConfig
from repro.core.config import GBoosterConfig
from repro.devices.profiles import SERVICE_DEVICES, USER_DEVICES
from repro.net.wan import WAN_BROADBAND, WAN_CONGESTED, WAN_FIBER
from repro.plan import (
    BACKENDS,
    SessionContext,
    SessionPlanner,
    enumerate_candidates,
)
from repro.plan.planner import ReplanController
from repro.sim.random import RandomStream
from repro.sim.shard import run_parallel_jobs

#: artifact schema identifier, bumped on incompatible changes
BENCH_PLANNER_SCHEMA = "repro.bench_planner/1"

#: the committed baseline the CI gate diffs against
DEFAULT_BASELINE = "benchmarks/baselines/BENCH_PLANNER.json"

#: per-metric growth tolerated over the baseline before the gate fails
REGRESSION_TOLERANCE = 0.10

#: a policy "matches" a cell when its score is within this of the best
ATTAINMENT_SLACK = 1.001

_WAN_BY_NAME = {
    p.name: p for p in (WAN_BROADBAND, WAN_FIBER, WAN_CONGESTED)
}

#: the static policies the matrix pits the planner against, with the
#: single backend each one is allowed to use
STATIC_POLICIES = {
    "always_local": "local",
    "always_bt": "bt",
    "always_wifi": "wifi",
    "always_wan": "wan",
}

#: the genre-mix matrix: environments engineered so each static policy
#: loses somewhere (the planner should win every cell by construction)
MATRIX_CELLS: List[Dict[str, Any]] = [
    # Heavy action title, healthy LAN: offload wins big; always-local
    # pays the weak phone GPU, always-wan pays 100 ms of WAN RTT.
    {"name": "action_lan", "game": "G1", "user": "LG Nexus 5",
     "service": "Nvidia Shield", "wan": "broadband"},
    # Light puzzle title on a strong phone: local rendering is free of
    # radio energy; every offload pays transmit power for nothing.
    {"name": "puzzle_local", "game": "G5", "user": "LG G5",
     "service": "Minix Neo U1", "wan": "broadband"},
    # WiFi collapsed to 3 Mbps with loss: Bluetooth carries the small
    # stream; always-wifi stalls on retransmissions.
    {"name": "degraded_wifi", "game": "G5", "user": "LG Nexus 5",
     "service": "Nvidia Shield", "wan": None,
     "wifi_mbps": 3.0, "wifi_loss": 0.05},
    # Hotel room: no service device on the LAN, only the WAN path —
    # always-bt and always-wifi have nothing to talk to.
    {"name": "hotel_wan", "game": "G2", "user": "LG Nexus 5",
     "service": None, "wan": "fiber"},
    # Second player of an already-recorded title: the warm replay store
    # serves headers instead of streams.
    {"name": "replay_warm", "game": "G2", "user": "LG Nexus 5",
     "service": "Nvidia Shield", "wan": "broadband",
     "replay_warm": True},
    # Four co-located viewers of one title: one multicast stream
    # amortizes the uplink across the whole party.
    {"name": "multicast_party", "game": "G1", "user": "LG Nexus 5",
     "service": "Nvidia Shield", "wan": "broadband", "viewers": 4},
]


def _cell_context(cell: Dict[str, Any], probe_frames: int) -> SessionContext:
    service = cell.get("service")
    wan = cell.get("wan")
    return SessionContext(
        app=GAMES[cell["game"]],
        user_device=USER_DEVICES[cell["user"]],
        service_device=SERVICE_DEVICES[service] if service else None,
        wan=_WAN_BY_NAME[wan] if wan else None,
        replay_warm=bool(cell.get("replay_warm", False)),
        colocated_viewers=int(cell.get("viewers", 1)),
        wifi_mbps=float(cell.get("wifi_mbps", 120.0)),
        wifi_loss=float(cell.get("wifi_loss", 0.0)),
        config=GBoosterConfig(planner_probe_frames=probe_frames),
    )


def run_matrix_cell(
    cell: Dict[str, Any], seed: int, probe_frames: int
) -> Dict[str, Any]:
    """Probe one environment; score the planner and every static policy."""
    ctx = _cell_context(cell, probe_frames)
    planner = SessionPlanner(ctx, seed=seed)
    decision = planner.probe_and_commit()
    scores = {b: round(s, 6) for b, s in decision.scores.items()}
    viable = set(scores)
    policies: Dict[str, Dict[str, Any]] = {
        "planner": {
            "backend": decision.backend,
            "score": scores[decision.backend],
            "viable": True,
        }
    }
    for policy, backend in STATIC_POLICIES.items():
        policies[policy] = {
            "backend": backend,
            "score": scores.get(backend),
            "viable": backend in viable,
        }
    return {
        "name": cell["name"],
        "game": cell["game"],
        "genre": GAMES[cell["game"]].genre,
        "committed": decision.backend,
        "scores": scores,
        "rejected": dict(sorted(decision.rejected.items())),
        "policies": policies,
        "probes": {
            b: decision.probes[b].to_dict() for b in sorted(decision.probes)
        },
    }


def _matrix_attainment(cells: List[Dict[str, Any]]) -> Dict[str, int]:
    """Cells where each policy is within slack of the per-cell best."""
    attainment = {name: 0 for name in ["planner", *STATIC_POLICIES]}
    for cell in cells:
        best = cell["policies"]["planner"]["score"]
        for name, outcome in cell["policies"].items():
            score = outcome["score"]
            if outcome["viable"] and score is not None and (
                score <= best * ATTAINMENT_SLACK
            ):
                attainment[name] += 1
    return attainment


# -- section 2: measured fusion byte reduction --------------------------------


def run_fusion_point(
    game: str, seed: int, frames: int
) -> Dict[str, Any]:
    """One app's real command batches through the pipeline, both ways."""
    app = GAMES[game]

    def egress_bytes(fused: bool) -> Tuple[float, int, int]:
        # Same stream name for both passes: fused and unfused must see
        # the exact same command batches or the comparison is noise.
        rng = RandomStream(seed, f"planner.fusion.{game}")
        builder = CommandBatchBuilder(app, rng)
        scene = SceneState()
        # Cache and compression off: both downstream stages feed on the
        # same redundancy fusion removes (a repeated setter becomes a
        # tiny cache reference or compresses away), so measuring fusion
        # *through* them conflates the stages and can even show a fused
        # stream growing.  This section isolates what fusion itself
        # removes from the serialized stream.
        pipeline = CommandPipeline(PipelineConfig(
            cache_enabled=False, compression_enabled=False,
            fusion_enabled=fused,
        ))
        pipeline.process_frame(builder.setup_commands(), frame_id=0)
        wire = 0.0
        commands = 0
        dropped = 0
        dt = 1.0 / app.target_fps
        for i in range(frames):
            if i % 7 == 3:
                scene.on_touch(0.8)
            scene.advance(dt)
            egress = pipeline.process_frame(
                builder.frame_commands(scene), frame_id=i + 1
            )
            wire += egress.wire_bytes
            commands += egress.commands
            dropped += egress.fused_dropped
        return wire, commands, dropped

    raw_wire, raw_commands, _ = egress_bytes(fused=False)
    fused_wire, fused_commands, fused_dropped = egress_bytes(fused=True)
    reduction = 1.0 - fused_wire / raw_wire if raw_wire > 0 else 0.0
    return {
        "game": game,
        "genre": app.genre,
        "frames": frames,
        "unfused_bytes_per_frame": round(raw_wire / frames, 2),
        "fused_bytes_per_frame": round(fused_wire / frames, 2),
        "byte_reduction": round(reduction, 4),
        "commands_per_frame": round(raw_commands / frames, 2),
        "fused_dropped_per_frame": round(fused_dropped / frames, 2),
        # Conservation: every command is either transmitted or dropped.
        "command_conservation": fused_commands + fused_dropped == raw_commands,
    }


# -- section 3: the drift drill -----------------------------------------------


def run_drift_drill(
    seed: int, probe_frames: int, epochs: int = 240, degrade_at: int = 60
) -> Dict[str, Any]:
    """Commit, degrade the environment, watch the watchdog re-plan.

    Before ``degrade_at`` the live latency tracks the probed baseline
    (small seeded jitter).  At ``degrade_at`` the WiFi path collapses
    (3 Mbps, 5% loss, replay store cold) and live latency steps +40 ms —
    the committed WiFi-family plan is now mis-committed.  The drill
    records when the detector fires, what the re-probe commits to under
    the degraded context, and whether the post-replan residual returns
    to band (no further replans).
    """
    ctx = SessionContext(
        app=GAMES["G1"],
        user_device=USER_DEVICES["LG Nexus 5"],
        service_device=SERVICE_DEVICES["Nvidia Shield"],
        wan=WAN_BROADBAND,
        replay_warm=True,
        config=GBoosterConfig(planner_probe_frames=probe_frames),
    )
    planner = SessionPlanner(ctx, seed=seed)
    initial = planner.probe_and_commit()
    controller = ReplanController(planner)
    rng = RandomStream(seed, "planner.drill")
    replan_epoch: Optional[int] = None
    post_decision = None
    degraded_latency = 0.0
    for epoch in range(epochs):
        degraded = epoch >= degrade_at
        if degraded and ctx.wifi_mbps > 5.0:
            ctx.wifi_mbps = 3.0
            ctx.wifi_loss = 0.05
            ctx.replay_warm = False
        baseline = planner.committed_latency_ms
        if degraded and controller.replans == 0:
            measured = baseline + 40.0 + rng.normal(0.0, 0.6)
            degraded_latency = measured
        else:
            measured = baseline + rng.normal(0.0, 0.6)
        decision = controller.observe_latency(measured, at_ms=epoch * 100.0)
        if decision is not None and replan_epoch is None:
            replan_epoch = epoch
            post_decision = decision
    recovered = (
        post_decision is not None
        and planner.committed_latency_ms < degraded_latency
    )
    return {
        "initial_backend": initial.backend,
        "initial_latency_ms": round(
            initial.probes[initial.backend].mean_latency_ms, 4
        ),
        "degrade_at_epoch": degrade_at,
        "degraded_latency_ms": round(degraded_latency, 4),
        "replan_epoch": replan_epoch,
        "replans": controller.replans,
        "post_backend": (
            post_decision.backend if post_decision is not None else None
        ),
        "post_latency_ms": round(planner.committed_latency_ms, 4),
        "recovered": bool(recovered),
        # The controller swaps in a fresh detector after a replan, so any
        # warn alert here means the *new* plan also drifted out of band.
        "post_replan_warns": len([
            a for a in controller.detector.alerts if a.severity == "warn"
        ]),
    }


# -- the artifact ------------------------------------------------------------


def run_planner_bench(
    seed: int = 0, smoke: bool = False, workers: int = 1
) -> Dict[str, Any]:
    """Run every section and assemble the BENCH_PLANNER artifact."""
    probe_frames = 8 if smoke else 16
    fusion_frames = 30 if smoke else 120
    fusion_games = ["G1", "G3", "G5"]
    jobs = [
        (run_matrix_cell, (cell, seed, probe_frames))
        for cell in MATRIX_CELLS
    ]
    jobs += [
        (run_fusion_point, (game, seed, fusion_frames))
        for game in fusion_games
    ]
    jobs.append((run_drift_drill, (seed, probe_frames)))
    results = run_parallel_jobs(jobs, workers=workers)
    cells = results[: len(MATRIX_CELLS)]
    fusion = results[len(MATRIX_CELLS):-1]
    drill = results[-1]
    bench: Dict[str, Any] = {
        "seed": seed,
        "smoke": smoke,
        "matrix": {
            "cells": cells,
            "attainment": _matrix_attainment(cells),
            "n_cells": len(cells),
        },
        "fusion": fusion,
        "drift": drill,
    }
    blob = json.dumps(bench, sort_keys=True).encode()
    bench["digest"] = hashlib.sha256(blob).hexdigest()
    return {"schema": BENCH_PLANNER_SCHEMA, "deterministic": bench}


def validate_bench(bench: Any) -> List[str]:
    """Schema + acceptance gates for BENCH_PLANNER.json; empty == valid."""
    problems: List[str] = []
    if not isinstance(bench, dict):
        return [f"top level must be an object, got {type(bench).__name__}"]
    if bench.get("schema") != BENCH_PLANNER_SCHEMA:
        problems.append(f"'schema' must be {BENCH_PLANNER_SCHEMA!r}")
    det = bench.get("deterministic")
    if not isinstance(det, dict):
        return problems + ["missing 'deterministic' section"]
    if not isinstance(det.get("digest"), str):
        problems.append("missing 'deterministic.digest'")

    matrix = det.get("matrix")
    if not isinstance(matrix, dict):
        problems.append("missing 'matrix' section")
    else:
        attainment = matrix.get("attainment", {})
        n = matrix.get("n_cells", 0)
        planner_hits = attainment.get("planner", 0)
        if planner_hits != n:
            problems.append(
                f"matrix: planner matched only {planner_hits}/{n} cells"
            )
        for policy in STATIC_POLICIES:
            hits = attainment.get(policy, 0)
            if hits >= planner_hits:
                problems.append(
                    f"matrix: static policy {policy} matched {hits} cells — "
                    "not dominated by the planner"
                )
        for cell in matrix.get("cells", []):
            if cell.get("committed") not in BACKENDS:
                problems.append(
                    f"matrix: cell {cell.get('name')} committed to unknown "
                    f"backend {cell.get('committed')!r}"
                )

    fusion = det.get("fusion")
    if not isinstance(fusion, list) or not fusion:
        problems.append("missing 'fusion' section")
    else:
        for point in fusion:
            if point.get("byte_reduction", 0.0) <= 0.0:
                problems.append(
                    f"fusion: {point.get('game')} saw no measured byte "
                    "reduction"
                )
            if not point.get("command_conservation"):
                problems.append(
                    f"fusion: {point.get('game')} lost commands "
                    "(transmitted + dropped != emitted)"
                )

    drill = det.get("drift")
    if not isinstance(drill, dict):
        problems.append("missing 'drift' section")
    else:
        if not drill.get("replans"):
            problems.append("drift: degradation never triggered a replan")
        if drill.get("replan_epoch") is not None and (
            drill["replan_epoch"] < drill.get("degrade_at_epoch", 0)
        ):
            problems.append("drift: replan fired before the degradation")
        if not drill.get("recovered"):
            problems.append(
                "drift: post-replan plan did not recover the session"
            )
    return problems


# -- the regression gate -----------------------------------------------------


def diff_against_baseline(
    current: Dict[str, Any], baseline: Dict[str, Any]
) -> Tuple[List[str], Optional[str]]:
    """Compare an artifact against the committed baseline.

    Returns ``(regressions, skip_reason)``; a non-``None`` skip reason
    means the artifacts are not comparable and the gate should be
    skipped, not failed.
    """
    cur = current.get("deterministic", {})
    base = baseline.get("deterministic", {})
    if baseline.get("schema") != current.get("schema"):
        return [], "baseline schema differs — regenerate the baseline"
    if (cur.get("seed"), cur.get("smoke")) != (
        base.get("seed"), base.get("smoke")
    ):
        return [], (
            f"baseline is seed={base.get('seed')} smoke={base.get('smoke')}, "
            f"run is seed={cur.get('seed')} smoke={cur.get('smoke')} — "
            "not comparable"
        )
    regressions: List[str] = []
    base_cells = {
        c["name"]: c for c in base.get("matrix", {}).get("cells", [])
    }
    for cell in cur.get("matrix", {}).get("cells", []):
        ref = base_cells.get(cell["name"])
        if ref is None:
            continue
        cur_score = cell["policies"]["planner"]["score"]
        ref_score = ref["policies"]["planner"]["score"]
        if cur_score > ref_score * (1.0 + REGRESSION_TOLERANCE):
            regressions.append(
                f"matrix cell {cell['name']}: planner score regressed "
                f"{ref_score} -> {cur_score} "
                f"(>{REGRESSION_TOLERANCE:.0%} over baseline)"
            )
    base_fusion = {p["game"]: p for p in base.get("fusion", [])}
    for point in cur.get("fusion", []):
        ref = base_fusion.get(point["game"])
        if ref is None:
            continue
        if point["fused_bytes_per_frame"] > (
            ref["fused_bytes_per_frame"] * (1.0 + REGRESSION_TOLERANCE)
        ):
            regressions.append(
                f"fusion {point['game']}: fused bytes/frame regressed "
                f"{ref['fused_bytes_per_frame']} -> "
                f"{point['fused_bytes_per_frame']} "
                f"(>{REGRESSION_TOLERANCE:.0%} over baseline)"
            )
    return regressions, None


# -- output ------------------------------------------------------------------


def write_bench(path: str, bench: Dict[str, Any]) -> None:
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(bench, fh, indent=1, sort_keys=True)
        fh.write("\n")


def load_bench(path: str) -> Dict[str, Any]:
    with open(path, "r", encoding="utf-8") as fh:
        return json.load(fh)


def format_bench(bench: Dict[str, Any]) -> str:
    """Terminal summary: the matrix table, fusion table, drill outcome."""
    det = bench["deterministic"]
    lines = [
        f"{'cell':<16} {'game':>4} {'genre':<12} {'winner':<10} "
        f"{'planner':>9} {'local':>9} {'bt':>9} {'wifi':>9} {'wan':>9}"
    ]

    def fmt(outcome: Dict[str, Any]) -> str:
        if not outcome["viable"] or outcome["score"] is None:
            return "—".rjust(9)
        return f"{outcome['score']:9.2f}"

    for cell in det["matrix"]["cells"]:
        p = cell["policies"]
        lines.append(
            f"{cell['name']:<16} {cell['game']:>4} {cell['genre']:<12} "
            f"{cell['committed']:<10} {fmt(p['planner'])} "
            f"{fmt(p['always_local'])} {fmt(p['always_bt'])} "
            f"{fmt(p['always_wifi'])} {fmt(p['always_wan'])}"
        )
    att = det["matrix"]["attainment"]
    n = det["matrix"]["n_cells"]
    lines.append(
        "attainment: " + ", ".join(
            f"{name}={att[name]}/{n}" for name in sorted(att)
        )
    )
    lines.append("")
    lines.append(
        f"{'fusion':<8} {'genre':<12} {'B/frame raw':>12} "
        f"{'B/frame fused':>14} {'saved':>7}"
    )
    for point in det["fusion"]:
        lines.append(
            f"{point['game']:<8} {point['genre']:<12} "
            f"{point['unfused_bytes_per_frame']:12.1f} "
            f"{point['fused_bytes_per_frame']:14.1f} "
            f"{point['byte_reduction']:6.1%}"
        )
    drill = det["drift"]
    lines.append("")
    lines.append(
        f"drift drill: {drill['initial_backend']} "
        f"({drill['initial_latency_ms']:.1f} ms) degraded at epoch "
        f"{drill['degrade_at_epoch']} to {drill['degraded_latency_ms']:.1f} "
        f"ms; replanned at epoch {drill['replan_epoch']} -> "
        f"{drill['post_backend']} ({drill['post_latency_ms']:.1f} ms), "
        f"recovered={drill['recovered']}"
    )
    lines.append(f"digest: {det['digest'][:16]}…")
    return "\n".join(lines)
