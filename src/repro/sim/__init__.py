"""Deterministic discrete-event simulation kernel.

Every GBooster substrate (GPU, radios, transports, applications) runs as a
process on this kernel.  Time is a float number of milliseconds; all
randomness is drawn from named :class:`RandomStream` objects derived from a
single run seed, so a simulation is fully reproducible.
"""

from repro.sim.kernel import (
    Event,
    Interrupt,
    Process,
    SimulationError,
    Simulator,
    TimerEvent,
)
from repro.sim.random import RandomStream
from repro.sim.resources import Gauge, Resource, Store
from repro.sim.trace import TraceRecord, Tracer

__all__ = [
    "Event",
    "Gauge",
    "Interrupt",
    "Process",
    "RandomStream",
    "Resource",
    "SimulationError",
    "Simulator",
    "Store",
    "TimerEvent",
    "TraceRecord",
    "Tracer",
]
