"""Experiment S1 (ours): which ambient device makes a good offload target?

§VII-A deploys four very different service devices — a game console, a
smart-TV box, a laptop and desktops.  The paper only evaluates against the
console; this experiment offloads the same game to each device class and
shows the spread: capable boxes (console, desktop) accelerate, while the
underpowered TV box can be *worse* than local execution — and Eq. 4
dispatch protects a mixed pool from it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.apps.base import ApplicationSpec
from repro.apps.games import GTA_SAN_ANDREAS
from repro.core.config import GBoosterConfig
from repro.core.session import run_local_session, run_offload_session
from repro.devices.profiles import (
    DELL_M4600,
    DELL_OPTIPLEX_9010,
    DeviceSpec,
    LG_NEXUS_5,
    MINIX_NEO_U1,
    NVIDIA_SHIELD,
)

DEFAULT_TARGETS = (
    NVIDIA_SHIELD,
    MINIX_NEO_U1,
    DELL_M4600,
    DELL_OPTIPLEX_9010,
)


@dataclass
class ServiceComparisonRow:
    service_device: str
    median_fps: float
    response_time_ms: float
    local_fps: float

    @property
    def speedup(self) -> float:
        return self.median_fps / self.local_fps if self.local_fps else 0.0


def run_service_comparison(
    app: ApplicationSpec = GTA_SAN_ANDREAS,
    user_device: DeviceSpec = LG_NEXUS_5,
    targets: Sequence[DeviceSpec] = DEFAULT_TARGETS,
    duration_ms: float = 60_000.0,
    seed: int = 0,
) -> List[ServiceComparisonRow]:
    local = run_local_session(app, user_device, duration_ms=duration_ms,
                              seed=seed)
    rows: List[ServiceComparisonRow] = []
    for target in targets:
        boosted = run_offload_session(
            app, user_device, service_devices=[target],
            duration_ms=duration_ms, seed=seed,
        )
        rows.append(
            ServiceComparisonRow(
                service_device=target.name,
                median_fps=boosted.fps.median_fps,
                response_time_ms=boosted.response_time_ms,
                local_fps=local.fps.median_fps,
            )
        )
    return rows


def run_mixed_pool_protection(
    app: ApplicationSpec = GTA_SAN_ANDREAS,
    user_device: DeviceSpec = LG_NEXUS_5,
    duration_ms: float = 60_000.0,
    seed: int = 0,
):
    """A pool of one strong and one weak device under Eq. 4 vs round-robin.

    Eq. 4's capability term should route nearly everything to the capable
    device; round-robin splits evenly and drags the frame rate down.
    Returns ``(eq4_result, round_robin_result)``.
    """
    pool = [DELL_OPTIPLEX_9010, MINIX_NEO_U1]
    eq4 = run_offload_session(
        app, user_device, service_devices=pool,
        config=GBoosterConfig(scheduler="eq4"),
        duration_ms=duration_ms, seed=seed,
    )
    rr = run_offload_session(
        app, user_device, service_devices=pool,
        config=GBoosterConfig(scheduler="round_robin"),
        duration_ms=duration_ms, seed=seed,
    )
    return eq4, rr
