"""Setuptools shim for environments without the `wheel` package.

`pip install -e . --no-build-isolation` in this offline environment falls
back to the legacy develop install, which needs a setup.py; all real
metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
