"""Failure injection: service devices dying mid-session.

A real living room is messy — someone powers off the console mid-game.
The client's frame watchdog must detect the silent node, fail pending
frames over to the local GPU, and keep the session alive (degraded, never
frozen).  Faults are scripted through :class:`FaultSchedule` on the
session config — the public API — rather than by patching internals.
"""

import pytest

from repro.apps.games import GTA_SAN_ANDREAS
from repro.core.session import run_offload_session
from repro.devices.profiles import DELL_OPTIPLEX_9010, LG_NEXUS_5, NVIDIA_SHIELD
from repro.faults import FaultSchedule
from repro.metrics.fps import fps_timeline

pytestmark = pytest.mark.slow


def run_with_failure(
    failure_config,
    service_devices,
    fail_at_ms,
    fail_index=0,
    duration_ms=40_000.0,
    timeout_ms=600.0,
):
    """Run an offload session with one node crashing mid-way."""
    config = failure_config(
        timeout_ms=timeout_ms,
        faults=FaultSchedule().crash(at_ms=fail_at_ms, node=fail_index),
    )
    return run_offload_session(
        GTA_SAN_ANDREAS, LG_NEXUS_5,
        service_devices=service_devices,
        config=config,
        duration_ms=duration_ms,
    )


def test_single_node_failure_falls_back_to_local(failure_config):
    result = run_with_failure(failure_config, [NVIDIA_SHIELD],
                              fail_at_ms=15_000.0)
    stats = result.client_stats
    assert stats.nodes_failed == 1
    assert stats.failovers > 10
    # The session survives the whole duration.
    assert result.fps.frame_count > 300
    presented = [
        f.presented_at
        for f in result.engine.frames
        if f.presented_at is not None
    ]
    assert max(presented) > 35_000.0


def test_fps_degrades_to_local_rate_after_failure(failure_config):
    result = run_with_failure(failure_config, [NVIDIA_SHIELD],
                              fail_at_ms=20_000.0, duration_ms=45_000.0)
    times = [
        f.presented_at
        for f in result.engine.frames
        if f.presented_at is not None
    ]
    series = fps_timeline(times)
    before = series[5:15]           # boosted phase
    after = series[30:42]           # post-failure local phase
    assert sum(before) / len(before) > 32.0
    assert sum(after) / len(after) < 30.0   # back near the 23 FPS local rate


def test_no_frame_is_lost_forever(failure_config):
    """Every issued frame is eventually presented (remote or failover)."""
    result = run_with_failure(failure_config, [NVIDIA_SHIELD],
                              fail_at_ms=10_000.0, duration_ms=30_000.0)
    unpresented = [
        f for f in result.engine.frames if f.presented_at is None
    ]
    assert len(unpresented) == 0


def test_surviving_node_takes_over_in_multi_device_pool(failure_config):
    result = run_with_failure(
        failure_config, [NVIDIA_SHIELD, DELL_OPTIPLEX_9010],
        fail_at_ms=15_000.0,
        fail_index=0, duration_ms=40_000.0,
    )
    stats = result.client_stats
    assert stats.nodes_failed == 1
    # The PC keeps rendering: FPS stays well above local.
    times = [
        f.presented_at
        for f in result.engine.frames
        if f.presented_at is not None and f.presented_at > 25_000.0
    ]
    series = fps_timeline(times)
    assert sum(series) / len(series) > 30.0
    survivor = next(
        n for n in result.nodes if "Optiplex" in n.name
    )
    assert survivor.stats.frames_rendered > 100


def test_healthy_session_has_no_failovers(failure_config):
    result = run_offload_session(
        GTA_SAN_ANDREAS, LG_NEXUS_5, duration_ms=20_000.0,
        config=failure_config(timeout_ms=1_000.0),
    )
    assert result.client_stats.failovers == 0
    assert result.client_stats.nodes_failed == 0


def test_acceptance_scenario_crash_plus_lossy_link(failure_config):
    """The ISSUE acceptance scenario: a node crash at t=15 s layered with a
    lossy-link burst, scripted purely through the public config API."""
    schedule = (
        FaultSchedule()
        .loss_burst(at_ms=5_000.0, duration_ms=4_000.0, loss_probability=0.3)
        .crash(at_ms=15_000.0)
    )
    result = run_offload_session(
        GTA_SAN_ANDREAS, LG_NEXUS_5,
        service_devices=[NVIDIA_SHIELD],
        config=failure_config(faults=schedule),
        duration_ms=35_000.0,
    )
    assert result.client_stats.nodes_failed == 1
    assert result.client_stats.failovers > 0
    # The burst forced the reliable transport to retransmit.
    assert result.engine.sim.tracer.count("transport", "retransmit") > 0
    # Both faults show up in the injector's applied log.
    kinds = {e.kind for e in result.faults.applied()}
    assert kinds == {"loss_burst", "crash"}
    # No frame is lost despite both faults.
    assert all(f.presented_at is not None for f in result.engine.frames)
    # After the crash, the dead node owes the client nothing: the queue
    # drained and no retransmission timer survived the session.
    sim = result.engine.sim
    assert not any(
        p.alive and ".rto." in p.name for p in sim._processes
    )


def test_rejoin_restores_boosted_rate(failure_config):
    """A crashed node that rejoins is picked up again by the scheduler."""
    schedule = FaultSchedule().crash(at_ms=10_000.0, rejoin_at_ms=20_000.0)
    result = run_offload_session(
        GTA_SAN_ANDREAS, LG_NEXUS_5,
        service_devices=[NVIDIA_SHIELD],
        config=failure_config(faults=schedule),
        duration_ms=40_000.0,
    )
    times = [
        f.presented_at
        for f in result.engine.frames
        if f.presented_at is not None
    ]
    series = fps_timeline(times)
    local_phase = series[12:19]     # crashed: local GPU rate
    restored = series[25:38]        # rejoined: boosted again
    assert sum(local_phase) / len(local_phase) < 30.0
    assert sum(restored) / len(restored) > 32.0
    assert [e.kind for e in result.faults.applied()] == ["crash", "rejoin"]
