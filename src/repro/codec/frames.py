"""Synthetic rendered frames.

The service device's GPU output is modelled, not rasterized, so the image
codec needs a stand-in for "what the rendered frame looks like".  Two
levels are provided:

* :class:`FrameImage` — a lightweight descriptor (dimensions plus the
  fraction of pixels changed since the previous frame and a texture-detail
  level); the fast path used inside long sessions.
* :class:`SyntheticFrameSource` — real ``numpy`` pixel arrays with moving
  sprites over a textured background, used by the codec benchmarks so
  compression ratios are measured on actual pixels.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional, Tuple

import numpy as np


@dataclass(frozen=True)
class FrameImage:
    """Descriptor of one rendered frame for the modelled codec path."""

    width: int
    height: int
    change_fraction: float     # fraction of pixels differing from previous
    detail: float = 0.5        # 0 = flat fills, 1 = noisy texture

    def __post_init__(self) -> None:
        if self.width <= 0 or self.height <= 0:
            raise ValueError("frame dimensions must be positive")
        if not 0.0 <= self.change_fraction <= 1.0:
            raise ValueError(
                f"change_fraction {self.change_fraction} outside [0, 1]"
            )
        if not 0.0 <= self.detail <= 1.0:
            raise ValueError(f"detail {self.detail} outside [0, 1]")

    @property
    def pixels(self) -> int:
        return self.width * self.height

    @property
    def raw_bytes(self) -> int:
        return self.pixels * 3  # RGB888


class SyntheticFrameSource:
    """Generates real RGB frames: sprites moving over a static background.

    The scene dynamics knob maps to how far sprites move per frame, which
    controls the inter-frame difference the incremental codec exploits —
    static menus compress enormously, action scenes much less.
    """

    def __init__(
        self,
        width: int = 640,
        height: int = 480,
        sprite_count: int = 8,
        sprite_size: int = 48,
        motion_px: float = 6.0,
        detail: float = 0.5,
        seed: int = 0,
    ):
        self.width = width
        self.height = height
        self.sprite_size = sprite_size
        self.motion_px = motion_px
        self._rng = np.random.default_rng(seed)
        # Low-frequency texture: noise generated at 1/8 resolution and
        # upsampled, so the background is locally smooth the way painted
        # game art is (per-pixel white noise would defeat any codec).
        coarse = self._rng.integers(
            0, int(40 + 180 * detail) + 1,
            size=(-(-height // 8), -(-width // 8), 3), dtype=np.uint8,
        )
        noise = np.kron(coarse, np.ones((8, 8, 1), dtype=np.uint8))[
            :height, :width
        ]
        base = np.zeros((height, width, 3), dtype=np.uint8)
        base[:, :, 0] = np.linspace(30, 90, width, dtype=np.uint8)[None, :]
        base[:, :, 1] = np.linspace(40, 120, height, dtype=np.uint8)[:, None]
        base[:, :, 2] = 60
        self.background = ((base.astype(np.uint16) + noise) // 2).astype(
            np.uint8
        )
        self._positions = self._rng.uniform(
            0, [width - sprite_size, height - sprite_size], size=(sprite_count, 2)
        )
        self._velocities = self._rng.uniform(
            -1.0, 1.0, size=(sprite_count, 2)
        )
        self._colors = self._rng.integers(
            60, 255, size=(sprite_count, 3), dtype=np.uint8
        )

    def frame(self) -> np.ndarray:
        """Render the next frame and advance sprite positions."""
        img = self.background.copy()
        s = self.sprite_size
        for pos, color in zip(self._positions, self._colors):
            x, y = int(pos[0]), int(pos[1])
            img[y:y + s, x:x + s] = color
        # Advance, bouncing off the borders.
        self._positions += self._velocities * self.motion_px
        for i, (x, y) in enumerate(self._positions):
            if not 0 <= x <= self.width - s:
                self._velocities[i, 0] *= -1
                self._positions[i, 0] = min(max(x, 0), self.width - s)
            if not 0 <= y <= self.height - s:
                self._velocities[i, 1] *= -1
                self._positions[i, 1] = min(max(y, 0), self.height - s)
        return img

    def frames(self, count: int) -> Iterator[np.ndarray]:
        for _ in range(count):
            yield self.frame()
