"""Span aggregator: per-stage percentiles and the pipeline breakdown."""

import pytest

from repro.metrics.spans import (
    PIPELINE_STAGES,
    aggregate_spans,
    pipeline_breakdown,
)
from repro.obs.spans import Span, SpanRecorder


def recorder_with_stages():
    rec = SpanRecorder()
    for i, dur in enumerate((2.0, 4.0, 6.0)):
        rec.add("app", "intercept", float(i * 20), float(i * 20) + dur,
                frame_id=i)
    rec.add("net", "transmit", 5.0, 9.0, frame_id=0)
    rec.add("client", "present", 50.0, 50.0, frame_id=0)   # in-order: 0 ms
    rec.mark("dispatch", "assign", node="n0")              # excluded
    return rec


class TestAggregateSpans:
    def test_groups_by_name_with_percentiles(self):
        stats = aggregate_spans(recorder_with_stages())
        intercept = stats["intercept"]
        assert intercept["count"] == 3
        assert intercept["p50"] == pytest.approx(4.0)
        assert intercept["mean"] == pytest.approx(4.0)
        assert intercept["min"] == 2.0
        assert intercept["max"] == 6.0
        assert intercept["total_ms"] == pytest.approx(12.0)

    def test_marks_excluded_zero_duration_stages_counted(self):
        stats = aggregate_spans(recorder_with_stages())
        assert "assign" not in stats
        assert stats["present"]["count"] == 1
        assert stats["present"]["p99"] == 0.0

    def test_group_by_category_and_filter(self):
        rec = recorder_with_stages()
        by_cat = aggregate_spans(rec, by="category")
        assert by_cat["app"]["count"] == 3
        only_net = aggregate_spans(rec, category="net")
        assert list(only_net) == ["transmit"]

    def test_accepts_plain_span_iterable(self):
        spans = [Span("net", "transmit", 0.0, 3.0)]
        assert aggregate_spans(spans)["transmit"]["p50"] == 3.0

    def test_unknown_grouping_rejected(self):
        with pytest.raises(ValueError):
            aggregate_spans(SpanRecorder(), by="track")


class TestPipelineBreakdown:
    def test_canonical_stages_always_present_in_order(self):
        breakdown = pipeline_breakdown(recorder_with_stages())
        assert list(breakdown)[: len(PIPELINE_STAGES)] == list(PIPELINE_STAGES)
        assert breakdown["execute"]["count"] == 0
        assert breakdown["execute"]["p50"] == 0.0

    def test_extra_stages_follow_canonical_ones(self):
        rec = recorder_with_stages()
        rec.add("fleet.queue", "queue_wait", 0.0, 1.5)
        breakdown = pipeline_breakdown(rec)
        assert list(breakdown)[-1] == "queue_wait"
        assert breakdown["queue_wait"]["count"] == 1
