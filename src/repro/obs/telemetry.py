"""The streaming telemetry hub: series + SLOs + drift detection.

:class:`TelemetryHub` is the layer above ``sim.metrics``/``sim.spans``
that can answer *"is the system currently meeting its objectives?"*.
Substrates push observations (`observe`) as they happen; the hub folds
them into labeled :class:`~repro.obs.timeseries.TimeSeries` windows on
the sim clock, classifies them against the armed
:class:`~repro.obs.slo.SloSpec` objectives, and — every time the clock
rolls past a window boundary — runs the burn-rate state machines.
State transitions and ``prediction_drift`` detections become structured
:class:`~repro.obs.slo.Alert` objects, recorded both on the hub and as
instant ``slo`` spans so they land inline with frame spans in the
Chrome-trace export.

Arming is one line — the constructor attaches itself as
``sim.telemetry`` — and every data-path feed is behind an
``if sim.telemetry is not None`` guard, so an unarmed session pays a
single attribute load per feed point.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence

from repro.obs.anomaly import ResidualDriftDetector
from repro.obs.slo import Alert, SloSpec, SloTracker
from repro.obs.timeseries import DEFAULT_WINDOW_MS, TimeSeries, TimeSeriesBank


def default_session_slos(
    frame_budget_ms: float = 80.0,
    fps_floor: float = 30.0,
    max_switches_per_window: float = 2.0,
    max_retx_per_window: float = 25.0,
) -> List[SloSpec]:
    """The offload session's objectives (PAPER §IV-C, §V).

    * ``frame_p99_latency`` — 99% of frames respond within the budget;
    * ``fps_floor`` — 95% of one-second windows hold the FPS floor;
    * ``switch_flap_rate`` — radio flapping stays under the cap in 95%
      of windows (a healthy predictive policy switches ahead of surges,
      not every epoch);
    * ``retransmission_rate`` — ARQ retransmissions stay under the cap
      in 90% of windows (sustained loss shows up here first).
    """
    return [
        SloSpec(
            name="frame_p99_latency",
            series="frame_response_ms",
            threshold=frame_budget_ms,
            comparison="le",
            mode="threshold",
            error_budget=0.01,
            description="99% of frames respond within the latency budget",
        ),
        SloSpec(
            name="fps_floor",
            series="frames_presented",
            threshold=fps_floor,
            comparison="ge",
            mode="window",
            error_budget=0.05,
            description="window FPS holds the floor in 95% of windows",
        ),
        SloSpec(
            name="switch_flap_rate",
            series="switching.switches",
            threshold=max_switches_per_window,
            comparison="le",
            mode="window",
            error_budget=0.05,
            description="radio switches per window stay under the flap cap",
        ),
        SloSpec(
            name="retransmission_rate",
            series="transport.retransmissions",
            threshold=max_retx_per_window,
            comparison="le",
            mode="window",
            error_budget=0.10,
            description="ARQ retransmissions per window stay under the cap",
        ),
    ]


def default_fleet_slos(
    max_reject_fraction: float = 0.30,
    admission_wait_budget_ms: float = 2_000.0,
) -> List[SloSpec]:
    """The fleet control plane's objectives.

    * ``admission_reject_rate`` — at most ``max_reject_fraction`` of
      session requests bounce even under an overload wave;
    * ``admission_wait`` — 90% of admitted sessions start within the
      queue-wait budget.
    """
    return [
        SloSpec(
            name="admission_reject_rate",
            series="fleet.rejected",
            threshold=0.0,
            comparison="le",
            mode="threshold",
            error_budget=max_reject_fraction,
            short_windows=2,
            long_windows=8,
            description="session requests rejected by admission control",
        ),
        SloSpec(
            name="admission_wait",
            series="fleet.admission_wait_ms",
            threshold=admission_wait_budget_ms,
            comparison="le",
            mode="threshold",
            error_budget=0.10,
            short_windows=2,
            long_windows=8,
            description="admitted sessions start within the wait budget",
        ),
    ]


class TelemetryHub:
    """Streaming series, SLO evaluation and drift alerts for one sim."""

    def __init__(
        self,
        sim,
        slos: Optional[Sequence[SloSpec]] = None,
        window_ms: float = DEFAULT_WINDOW_MS,
        drift_detector: Optional[ResidualDriftDetector] = None,
    ):
        self.sim = sim
        self.window_ms = window_ms
        self.bank = TimeSeriesBank(window_ms=window_ms)
        self.trackers: Dict[str, SloTracker] = {}
        self.alerts: List[Alert] = []
        self.drift = drift_detector or ResidualDriftDetector()
        self._evaluated_upto = -1       # newest window already evaluated
        self._watermark = -1            # newest window any observation hit
        self.finalized = False
        for spec in slos if slos is not None else ():
            self.add_slo(spec)
        # One hub per simulator: arming is `TelemetryHub(sim, ...)`.
        sim.telemetry = self

    # -- configuration -------------------------------------------------------

    def add_slo(self, spec: SloSpec) -> SloTracker:
        if spec.name in self.trackers:
            raise ValueError(f"slo {spec.name!r} already armed")
        tracker = SloTracker(spec)
        self.trackers[spec.name] = tracker
        return tracker

    def window_of(self, t_ms: float) -> int:
        return int(t_ms // self.window_ms)

    # -- feeding -------------------------------------------------------------

    def observe(
        self,
        name: str,
        value: float = 1.0,
        agg: str = "mean",
        trace_id: Optional[str] = None,
        **labels: object,
    ) -> None:
        """Push one observation at the current sim time.

        ``trace_id`` (from the frame's wire-propagated
        :class:`~repro.obs.causal.TraceContext`) feeds the SLO trackers'
        exemplar reservoirs: a later breach alert points at the concrete
        frames that burned the budget.
        """
        now = self.sim.now
        series = self.bank.series(name, agg=agg, **labels)
        w = series.record(now, value)
        if w > self._watermark:
            self._watermark = w
            self._evaluate_pending(upto_exclusive=w)
        for tracker in self.trackers.values():
            spec = tracker.spec
            if spec.mode != "threshold" or spec.series != name:
                continue
            if not _labels_match(spec.labels, labels):
                continue
            tracker.observe(w, value, trace_id=trace_id)

    def track_residual(self, residual: float) -> None:
        """Feed one prediction residual (RLS innovation) from the policy."""
        now = self.sim.now
        self.bank.series("predict.residual", agg="mean").record(now, residual)
        alert = self.drift.update(residual, at_ms=now)
        if alert is not None:
            self._record_alert(alert)

    # -- evaluation ----------------------------------------------------------

    def _evaluate_pending(self, upto_exclusive: int) -> None:
        """Evaluate every completed-but-unevaluated window in order."""
        for w in range(self._evaluated_upto + 1, upto_exclusive):
            self._evaluate_window(w)
        self._evaluated_upto = max(self._evaluated_upto, upto_exclusive - 1)

    def _evaluate_window(self, window: int) -> None:
        at_ms = (window + 1) * self.window_ms
        # Window-scoped objectives have no single offending observation;
        # their breach exemplars point at the window's witness frame (the
        # newest frame stamped before the window closed).
        causal = getattr(self.sim, "causal", None)
        witness = causal.witness(at_ms) if causal is not None else None
        for tracker in self.trackers.values():
            spec = tracker.spec
            if spec.mode == "window":
                value = self._window_value(spec, window)
                tracker.observe(
                    window,
                    spec.fill if value is None else value,
                    trace_id=witness,
                )
            alert = tracker.evaluate(window, at_ms=at_ms)
            if alert is not None:
                self._record_alert(alert)

    def _window_value(self, spec: SloSpec, window: int) -> Optional[float]:
        """The window's value for a window-mode SLO.

        Label-matching series are *summed* — window objectives are
        count-shaped (frames presented, switches, retransmissions per
        window), and per-device/per-link labeled feeds must aggregate to
        the fleet-wide number the objective is stated over.
        """
        total: Optional[float] = None
        for series in self.bank.matching(spec.series):
            if not _labels_match(spec.labels, series.labels):
                continue
            value = series.value_at(window)
            if value is not None:
                total = value if total is None else total + value
        return total

    def _record_alert(self, alert: Alert) -> None:
        self.alerts.append(alert)
        # Instant span: SLO breaches land inline with frame spans in the
        # Chrome-trace export (category "slo", its own viewer track).
        self.sim.spans.add(
            "slo",
            alert.source,
            alert.at_ms,
            alert.at_ms,
            track="slo",
            instant=True,
            severity=alert.severity,
            state=alert.state,
            burn_short=round(alert.burn_short, 4),
            burn_long=round(alert.burn_long, 4),
        )
        # A page-severity alert is a flight-recorder trigger: freeze the
        # postmortem evidence the instant the budget is declared gone.
        flight = getattr(self.sim, "flight", None)
        if flight is not None and alert.severity == "page":
            flight.on_alert(alert)

    def finalize(self, end_ms: Optional[float] = None) -> None:
        """Evaluate every window completed by ``end_ms`` (default: now).

        The trailing *partial* window is never evaluated — scaling a
        fraction of a window up to a full one is exactly the
        ``fps_timeline`` bug class PR 3 fixed.
        """
        if self.finalized:
            return
        end = self.sim.now if end_ms is None else end_ms
        self._evaluate_pending(upto_exclusive=self.window_of(end))
        self.finalized = True

    # -- reporting -----------------------------------------------------------

    @property
    def breached(self) -> List[str]:
        return sorted(
            name
            for name, t in self.trackers.items()
            if t.state == "breached"
        )

    def alert_count(self, severity: Optional[str] = None) -> int:
        if severity is None:
            return len(self.alerts)
        return sum(1 for a in self.alerts if a.severity == severity)

    def report(self) -> Dict[str, object]:
        """Deterministic JSON-able summary (same seed -> same dict)."""
        return {
            "window_ms": self.window_ms,
            "windows_evaluated": self._evaluated_upto + 1,
            "slos": {
                name: self.trackers[name].summary(self._evaluated_upto)
                for name in sorted(self.trackers)
            },
            "alerts": [a.as_dict() for a in self.alerts],
            "drift": self.drift.summary(),
        }


def _labels_match(
    spec_labels: Mapping[str, object], labels: Mapping[str, object]
) -> bool:
    """A spec with labels watches only observations carrying them all."""
    return all(labels.get(k) == v for k, v in spec_labels.items())
