"""Tests for repro.obs.merge: deterministic per-shard bank merging."""

from repro.obs.merge import (
    merge_metric_snapshots,
    merge_span_banks,
    span_bank,
)
from repro.obs.registry import MetricsRegistry
from repro.obs.spans import SpanRecorder


def _registry_snapshot(counter=0.0, gauge=0.0, samples=()):
    reg = MetricsRegistry()
    if counter:
        reg.counter("frames.total").inc(counter)
    if gauge:
        reg.gauge("queue.depth").set(gauge)
    hist = reg.histogram("frame.response_ms")
    for s in samples:
        hist.observe(s)
    return reg.snapshot()


class TestMergeMetricSnapshots:
    def test_counters_sum(self):
        merged = merge_metric_snapshots(
            [_registry_snapshot(counter=3), _registry_snapshot(counter=5)]
        )
        assert merged["counters"]["frames.total"] == 8

    def test_gauges_high_water(self):
        merged = merge_metric_snapshots(
            [_registry_snapshot(gauge=2), _registry_snapshot(gauge=9)]
        )
        assert merged["gauges"]["queue.depth"] == 9

    def test_histogram_count_and_extrema_exact(self):
        merged = merge_metric_snapshots([
            _registry_snapshot(samples=[1.0, 2.0, 3.0]),
            _registry_snapshot(samples=[10.0]),
        ])
        hist = merged["histograms"]["frame.response_ms"]
        assert hist["count"] == 4
        assert hist["min"] == 1.0
        assert hist["max"] == 10.0
        assert hist["mean"] == 4.0
        assert hist["approx"] is True

    def test_merge_is_input_order_independent(self):
        snaps = [
            _registry_snapshot(counter=1, gauge=4, samples=[1.0, 5.0]),
            _registry_snapshot(counter=2, gauge=3, samples=[2.0]),
        ]
        assert merge_metric_snapshots(snaps) == merge_metric_snapshots(
            list(reversed(snaps))
        )

    def test_empty_input(self):
        merged = merge_metric_snapshots([])
        assert merged == {"counters": {}, "gauges": {}, "histograms": {}}


def _hand_snapshot(summary):
    return {"counters": {}, "gauges": {}, "histograms": {"h": dict(summary)}}


class TestPercentileClamp:
    """Merged percentiles must satisfy min <= p50 <= p95 <= p99 <= max."""

    def test_degenerate_shard_cannot_invert_percentiles(self):
        """Regression: count-weighting per-shard percentiles used to
        emit p99 < p95 when a small skewed shard reported a degenerate
        summary (tiny reservoirs can leave p99 below p50)."""
        small_skewed = {
            "count": 3, "mean": 5.0, "min": 1.0, "max": 9.0,
            "p50": 9.0, "p95": 9.0, "p99": 9.0,
        }
        big_clean = {
            "count": 97, "mean": 2.0, "min": 1.0, "max": 3.0,
            "p50": 2.0, "p95": 3.0, "p99": 2.5,   # degenerate: p99 < p95
        }
        merged = merge_metric_snapshots(
            [_hand_snapshot(small_skewed), _hand_snapshot(big_clean)]
        )["histograms"]["h"]
        assert merged["min"] <= merged["p50"]
        assert merged["p50"] <= merged["p95"]
        assert merged["p95"] <= merged["p99"]     # failed pre-fix
        assert merged["p99"] <= merged["max"]

    def test_percentiles_stay_inside_true_extremes(self):
        outlier = {
            "count": 1, "mean": 100.0, "min": 100.0, "max": 100.0,
            "p50": 100.0, "p95": 100.0, "p99": 100.0,
        }
        bulk = {
            "count": 4, "mean": 1.0, "min": 1.0, "max": 1.0,
            "p50": 1.0, "p95": 1.0, "p99": 1.0,
        }
        merged = merge_metric_snapshots(
            [_hand_snapshot(outlier), _hand_snapshot(bulk)]
        )["histograms"]["h"]
        # min/max stay the exact extremes; every percentile lies within.
        assert merged["min"] == 1.0 and merged["max"] == 100.0
        for q in ("p50", "p95", "p99"):
            assert 1.0 <= merged[q] <= 100.0

    def test_clean_merge_is_unchanged_by_the_clamp(self):
        a = {
            "count": 10, "mean": 2.0, "min": 1.0, "max": 4.0,
            "p50": 2.0, "p95": 3.0, "p99": 4.0,
        }
        b = {
            "count": 10, "mean": 4.0, "min": 2.0, "max": 8.0,
            "p50": 4.0, "p95": 6.0, "p99": 8.0,
        }
        merged = merge_metric_snapshots(
            [_hand_snapshot(a), _hand_snapshot(b)]
        )["histograms"]["h"]
        # Already-monotone weighted means pass through untouched.
        assert merged["p50"] == 3.0
        assert merged["p95"] == 4.5
        assert merged["p99"] == 6.0


class TestSpanBanks:
    def _bank(self, n):
        rec = SpanRecorder()
        for _ in range(n):
            rec.begin("pipeline", "frame.render").end()
        return span_bank(rec)

    def test_span_bank_counts(self):
        bank = self._bank(3)
        assert bank["total"] == 3
        assert bank["by_category"] == {"pipeline": 3}
        assert bank["by_name"] == {"pipeline.frame.render": 3}

    def test_merge_sums(self):
        merged = merge_span_banks([self._bank(2), self._bank(5)])
        assert merged["total"] == 7
        assert merged["by_category"]["pipeline"] == 7
        assert merged["dropped"] == 0
