"""Session and fleet report export."""

import json

import pytest

import repro
from repro.apps.games import CANDY_CRUSH
from repro.devices.profiles import LG_NEXUS_5
from repro.metrics.report import (
    fleet_report,
    fleet_report_json,
    session_report,
    session_report_json,
)


@pytest.fixture(scope="module")
def boosted():
    return repro.run_offload_session(CANDY_CRUSH, LG_NEXUS_5,
                                     duration_ms=15_000.0)


@pytest.fixture(scope="module")
def local():
    return repro.run_local_session(CANDY_CRUSH, LG_NEXUS_5,
                                   duration_ms=15_000.0)


def test_report_structure_offloaded(boosted):
    report = session_report(boosted)
    assert report["mode"] == "gbooster"
    assert report["app"] == "G5"
    assert report["fps"]["median"] > 0
    assert "switching" in report
    assert "traffic" in report
    assert 0.0 <= report["traffic"]["reduction"] <= 1.0


def test_report_structure_local(local):
    report = session_report(local)
    assert report["mode"] == "local"
    assert "switching" not in report
    assert "traffic" not in report
    assert report["t_p_ms"] == 0.0


def test_report_is_json_serializable(boosted):
    text = session_report_json(boosted)
    parsed = json.loads(text)
    assert parsed["app_name"] == CANDY_CRUSH.name


def test_energy_components_sum(boosted):
    report = session_report(boosted)
    total = report["energy"]["total_j"]
    components = sum(report["energy"]["components_j"].values())
    assert components == pytest.approx(total)


def test_json_round_trip_preserves_report(boosted):
    """dumps -> loads reproduces the report dict exactly."""
    report = session_report(boosted)
    assert json.loads(session_report_json(boosted)) == report


def test_switching_section_matches_result(boosted):
    report = session_report(boosted)
    sw = boosted.switching
    assert report["switching"] == {
        "bluetooth_residency": sw.bluetooth_residency,
        "switches_to_wifi": sw.switches_to_wifi,
        "switches_to_bluetooth": sw.switches_to_bluetooth,
        "overload_epochs": sw.overload_epochs,
    }


def test_traffic_section_matches_client_stats(boosted):
    report = session_report(boosted)
    stats = boosted.client_stats
    assert report["traffic"]["uplink_bytes"] == stats.uplink_bytes
    assert report["traffic"]["downlink_bytes"] == stats.downlink_bytes
    assert report["traffic"]["raw_command_bytes"] == stats.raw_command_bytes
    assert report["traffic"]["reduction"] == pytest.approx(
        stats.traffic_reduction()
    )


class TestFleetReport:
    def _raw(self):
        return {
            "pool_devices": 2,
            "tiers": {"action": {"frames": 10, "frames_lost": 0}},
        }

    def test_accepts_raw_dict_and_adds_digest(self):
        report = fleet_report(self._raw())
        assert report["pool_devices"] == 2
        assert len(report["digest"]) == 64

    def test_digest_is_content_stable(self):
        assert (
            fleet_report(self._raw())["digest"]
            == fleet_report(self._raw())["digest"]
        )
        changed = self._raw()
        changed["tiers"]["action"]["frames_lost"] = 1
        assert fleet_report(changed)["digest"] != (
            fleet_report(self._raw())["digest"]
        )

    def test_digest_ignores_stale_digest_field(self):
        stale = dict(self._raw(), digest="bogus")
        assert fleet_report(stale)["digest"] == (
            fleet_report(self._raw())["digest"]
        )

    def test_accepts_controller_duck_type(self):
        class FakeController:
            def report(self):
                return {"pool_devices": 1}

        report = fleet_report(FakeController())
        assert report["pool_devices"] == 1
        assert json.loads(fleet_report_json(FakeController())) == report

    def test_matches_fleet_controller_digest(self):
        """The controller's own digest uses the same recipe."""
        from repro.experiments.fleet import run_fleet_point

        point, raw = run_fleet_point(
            n_sessions=4, n_devices=2, duration_ms=1_500.0, seed=3,
            crash=False,
        )
        assert fleet_report(raw)["digest"] == raw["digest"] == point.digest
