"""Session admission against aggregate pool capacity.

Every incoming :class:`~repro.fleet.session.SessionRequest` carries a
steady-state fill demand (MP/ms at the fleet's serve rate).  Admission
compares committed demand against aggregate *up* capacity scaled by the
oversubscription factor:

* fits -> **admit** immediately;
* over budget -> **queue**, ordered by QoS priority then arrival;
* queue full -> **reject** (the client falls back to local rendering,
  exactly the no-device path of paper §VIII).

Queued sessions drain on every capacity event: a session ending, a
device rejoining, the periodic control sweep.  Waiting is bounded by the
queue length, not a timer — a fleet rejecting early beats one that holds
players in limbo.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.fleet.config import FleetConfig
from repro.fleet.session import SessionRequest
from repro.sim.kernel import Simulator


@dataclass
class AdmissionStats:
    """Admission ledger.

    ``admitted`` counts every session that ever *became* admitted —
    directly at :meth:`AdmissionController.decide` time or later when
    :meth:`AdmissionController.pop_eligible` dequeued it (``dequeued``
    counts the latter subset).  ``queued`` counts sessions that ever
    waited.  The reconciliation identity the ``repro.check`` fleet pack
    asserts:

        ``offered == admitted + rejected + waiting``

    where ``waiting`` is the controller's current queue length — every
    offered session is admitted, rejected, or still in line.
    """

    offered: int = 0
    admitted: int = 0
    queued: int = 0
    rejected: int = 0
    #: queued sessions later admitted (a subset of both counters above)
    dequeued: int = 0
    by_tier: Dict[str, Dict[str, int]] = field(default_factory=dict)
    wait_times_ms: List[float] = field(default_factory=list)

    def count(self, tier: str, outcome: str) -> None:
        bucket = self.by_tier.setdefault(
            tier, {"admitted": 0, "queued": 0, "rejected": 0}
        )
        bucket[outcome] += 1
        setattr(self, outcome, getattr(self, outcome) + 1)

    def count_dequeued(self, tier: str) -> None:
        """A queued session became admitted: count the transition.

        The session was already counted ``queued`` at decide time, so
        only the admitted side moves — never ``queued`` again.
        """
        self.dequeued += 1
        self.count(tier, "admitted")

    def reconciles(self, waiting: int) -> bool:
        """Does the ledger balance against ``waiting`` queued sessions?"""
        return self.offered == self.admitted + self.rejected + waiting


class AdmissionController:
    """Accepts, queues or rejects sessions against pool capacity."""

    def __init__(self, sim: Simulator, config: FleetConfig):
        self.sim = sim
        self.config = config
        self.stats = AdmissionStats()
        #: (priority, arrival_seq, request) — most urgent first, FIFO ties
        self._waiting: List[Tuple[float, int, SessionRequest]] = []
        self._seq = 0

    def __len__(self) -> int:
        return len(self._waiting)

    def budget_mp_per_ms(self, capacity_mp_per_ms: float) -> float:
        return capacity_mp_per_ms * self.config.admission_oversubscription

    def decide(
        self,
        request: SessionRequest,
        committed_mp_per_ms: float,
        capacity_mp_per_ms: float,
    ) -> str:
        """Returns "admit", "queue" or "reject" and records the outcome."""
        self.stats.offered += 1
        demand = request.demand_mp_per_ms(self.config.serve_rate_hz)
        budget = self.budget_mp_per_ms(capacity_mp_per_ms)
        if capacity_mp_per_ms > 0 and committed_mp_per_ms + demand <= budget:
            self.stats.count(request.tier, "admitted")
            self.sim.tracer.record(
                self.sim.now, "fleet", "session_admitted",
                session=request.session_id, tier=request.tier,
            )
            return "admit"
        if capacity_mp_per_ms > 0 and demand > budget:
            # Could never fit even an empty pool; queueing it would wedge
            # the strict-priority head of line forever.
            self.stats.count(request.tier, "rejected")
            self.sim.tracer.record(
                self.sim.now, "fleet", "session_rejected",
                session=request.session_id, tier=request.tier,
            )
            return "reject"
        if len(self._waiting) >= self.config.max_wait_queue:
            self.stats.count(request.tier, "rejected")
            self.sim.tracer.record(
                self.sim.now, "fleet", "session_rejected",
                session=request.session_id, tier=request.tier,
            )
            return "reject"
        heapq.heappush(
            self._waiting, (request.priority, self._seq, request)
        )
        self._seq += 1
        self.stats.count(request.tier, "queued")
        self.sim.tracer.record(
            self.sim.now, "fleet", "session_queued",
            session=request.session_id, tier=request.tier,
        )
        return "queue"

    def pop_eligible(
        self, committed_mp_per_ms: float, capacity_mp_per_ms: float
    ) -> List[SessionRequest]:
        """Admit waiting sessions that now fit, most urgent first.

        Strict priority order: if the head of the queue does not fit the
        remaining budget, nothing behind it is admitted either — letting
        a small tolerant session leapfrog a big action session would
        starve exactly the tier the fleet exists to protect.
        """
        out: List[SessionRequest] = []
        budget = self.budget_mp_per_ms(capacity_mp_per_ms)
        committed = committed_mp_per_ms
        while self._waiting:
            prio, seq, request = self._waiting[0]
            demand = request.demand_mp_per_ms(self.config.serve_rate_hz)
            if capacity_mp_per_ms <= 0 or committed + demand > budget:
                break
            heapq.heappop(self._waiting)
            committed += demand
            # The dequeued->admitted transition: without it the ledger
            # undercounts admissions for every session that waited, and
            # ``admitted + rejected + len(queue)`` stops reconciling with
            # the sessions offered.
            self.stats.count_dequeued(request.tier)
            self.stats.wait_times_ms.append(self.sim.now - request.arrival_ms)
            self.sim.tracer.record(
                self.sim.now, "fleet", "session_dequeued",
                session=request.session_id, tier=request.tier,
            )
            out.append(request)
        return out

    @property
    def mean_wait_ms(self) -> float:
        if not self.stats.wait_times_ms:
            return 0.0
        return sum(self.stats.wait_times_ms) / len(self.stats.wait_times_ms)
