"""ARMAX residual anomaly detection.

The predictive switching policy's forecast quality is load-bearing: the
paper's energy savings come from waking WiFi *before* a traffic surge,
and a drifting model misfires the radio either way (flaps that burn
energy, or missed surges that stall frames).  The model itself reports
one number per epoch that tells us how healthy it is — the RLS
innovation (one-step-ahead residual) from
:meth:`repro.predict.armax.ARMAXModel.observe`.

:class:`ResidualDriftDetector` watches that stream with an EWMA
mean/variance estimate (`EwmaStats`): each residual gets a z-score
against the smoothed statistics *before* they absorb it, and a run of
``sustain`` consecutive out-of-band epochs raises a ``prediction_drift``
alert — sustained forecast error surfaces before the switching policy
has misfired for long, rather than after the session post-mortem.

Deterministic by construction: pure arithmetic on the residual stream,
no clocks or randomness of its own.
"""

from __future__ import annotations

import math
from typing import List, Optional

from repro.obs.slo import Alert


class EwmaStats:
    """Exponentially weighted running mean/variance with z-scores."""

    __slots__ = ("alpha", "mean", "var", "count")

    def __init__(self, alpha: float = 0.05):
        if not 0.0 < alpha <= 1.0:
            raise ValueError(f"alpha {alpha} outside (0, 1]")
        self.alpha = alpha
        self.mean = 0.0
        self.var = 0.0
        self.count = 0

    def zscore(self, value: float) -> float:
        """Deviation of ``value`` from the *current* smoothed statistics."""
        if self.count < 2:
            return 0.0
        std = math.sqrt(self.var)
        if std <= 1e-12:
            return 0.0
        return (value - self.mean) / std

    def update(self, value: float) -> float:
        """Score ``value`` against the pre-update stats, then absorb it."""
        z = self.zscore(value)
        if self.count == 0:
            self.mean = value
        else:
            delta = value - self.mean
            self.mean += self.alpha * delta
            self.var = (1.0 - self.alpha) * (self.var + self.alpha * delta * delta)
        self.count += 1
        return z


class ResidualDriftDetector:
    """Raises ``prediction_drift`` on sustained out-of-band residuals.

    ``warmup`` epochs are scored but never alerted (the RLS estimate is
    still converging); after that, ``sustain`` consecutive epochs with
    ``|z| >= z_threshold`` fire one alert, and the detector re-arms only
    once the residuals come back in band — a 200-epoch drift episode is
    one alert, not 195.
    """

    def __init__(
        self,
        z_threshold: float = 3.0,
        sustain: int = 5,
        warmup: int = 30,
        alpha: float = 0.05,
        name: str = "prediction_drift",
    ):
        if z_threshold <= 0:
            raise ValueError(f"z_threshold must be positive, got {z_threshold}")
        if sustain < 1:
            raise ValueError(f"sustain must be >= 1, got {sustain}")
        self.name = name
        self.z_threshold = z_threshold
        self.sustain = sustain
        self.warmup = warmup
        self.stats = EwmaStats(alpha=alpha)
        self.updates = 0
        self.out_of_band = 0            # current consecutive run
        self.firing = False
        self.alerts: List[Alert] = []
        self.zscores: List[float] = []

    def update(self, residual: float, at_ms: float) -> Optional[Alert]:
        """Feed one epoch's residual; returns the alert if one fires."""
        z = self.stats.update(residual)
        self.updates += 1
        self.zscores.append(z)
        if self.updates <= self.warmup:
            return None
        if abs(z) >= self.z_threshold:
            self.out_of_band += 1
        else:
            self.out_of_band = 0
            if self.firing:
                self.firing = False
                recovered = Alert(
                    at_ms=at_ms,
                    source=self.name,
                    severity="info",
                    state="ok",
                    message=(
                        f"{self.name}: residuals back in band "
                        f"(|z| < {self.z_threshold})"
                    ),
                )
                self.alerts.append(recovered)
                return recovered
            return None
        if self.out_of_band >= self.sustain and not self.firing:
            self.firing = True
            alert = Alert(
                at_ms=at_ms,
                source=self.name,
                severity="warn",
                state="drifting",
                message=(
                    f"{self.name}: {self.out_of_band} consecutive epochs "
                    f"with |z| >= {self.z_threshold} (last z={z:.2f})"
                ),
            )
            self.alerts.append(alert)
            return alert
        return None

    def summary(self) -> dict:
        return {
            "updates": self.updates,
            "alerts": len([a for a in self.alerts if a.severity != "info"]),
            "firing": self.firing,
            "max_abs_z": round(max((abs(z) for z in self.zscores), default=0.0), 4),
        }
