#!/usr/bin/env python3
"""Energy anatomy of an offloaded session (paper §V, §VII-C, Fig 6).

Runs Modern Combat (the most energy-hungry game) on the Nexus 5 under
four network policies and prints per-component energy, showing where the
interface-switching optimization earns its keep.
"""

from repro import GBoosterConfig, run_local_session, run_offload_session
from repro.apps.games import MODERN_COMBAT
from repro.devices.profiles import LG_NEXUS_5

POLICIES = ("predictive", "reactive", "always_wifi", "always_bluetooth")


def main() -> None:
    duration_ms = 120_000.0
    print(f"{MODERN_COMBAT.name} on {LG_NEXUS_5.name}, "
          f"{duration_ms / 1000:.0f}s sessions\n")

    local = run_local_session(MODERN_COMBAT, LG_NEXUS_5,
                              duration_ms=duration_ms)
    print(f"local execution: {local.fps.median_fps:.0f} FPS, "
          f"{local.energy.mean_power_w:.2f} W "
          f"(GPU {local.energy.components_j['gpu_j']:.0f} J of "
          f"{local.energy.total_j:.0f} J)\n")

    header = (
        f"{'policy':18} {'FPS':>5} {'W':>6} {'norm':>6} {'BT%':>5} "
        f"{'wifi J':>8} {'bt J':>7} {'overloads':>10}"
    )
    print(header)
    for policy in POLICIES:
        result = run_offload_session(
            MODERN_COMBAT, LG_NEXUS_5,
            config=GBoosterConfig(switching_policy=policy),
            duration_ms=duration_ms,
        )
        comp = result.energy.components_j
        sw = result.switching
        print(
            f"{policy:18} {result.fps.median_fps:5.0f} "
            f"{result.energy.mean_power_w:6.2f} "
            f"{result.energy.mean_power_w / local.energy.mean_power_w:6.2f} "
            f"{(sw.bluetooth_residency if sw else 0) * 100:5.0f} "
            f"{comp['wifi_j']:8.1f} {comp['bluetooth_j']:7.1f} "
            f"{sw.overload_epochs if sw else 0:10d}"
        )
    print(
        "\npredictive switching keeps the stream on Bluetooth during calm"
        "\nscenes and pre-wakes WiFi ahead of forecast surges; disabling it"
        "\n(always_wifi) is the Fig 6(b) comparison, and always_bluetooth"
        "\nshows the overload cost of ignoring throughput limits."
    )


if __name__ == "__main__":
    main()
