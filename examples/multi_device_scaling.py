#!/usr/bin/env python3
"""Harnessing multiple service devices (paper §VI / Fig 7).

Sweeps the number of desktop PCs acting as service devices for GTA San
Andreas on a Nexus 5 and prints the FPS curve: a large jump at one device,
gains up to about three, then a plateau — the rewritten SwapBuffer's
internal buffer holds at most three pending requests and frame generation
is CPU-bound.
"""

from repro.core.config import GBoosterConfig
from repro.experiments.multidevice import run_figure7


def main() -> None:
    print("Fig 7 sweep: G1 on Nexus 5, adding Dell Optiplex PCs\n")
    points = run_figure7(max_devices=5, duration_ms=90_000.0)
    print(f"{'devices':>8} {'median FPS':>11} {'stability':>10} "
          f"{'raw response':>13}")
    baseline = points[0].median_fps
    for p in points:
        bar = "#" * int(p.median_fps)
        print(
            f"{p.n_devices:>8} {p.median_fps:>11.1f} "
            f"{p.stability * 100:>9.0f}% {p.mean_response_ms:>10.1f} ms  {bar}"
        )
    best = max(p.median_fps for p in points)
    print(f"\nspeedup over local: {best / baseline:.2f}x "
          f"(saturates once the pipeline depth and CPU bind)")

    print("\nround-robin dispatch on the same pool (ablation):")
    rr = run_figure7(
        max_devices=3, duration_ms=90_000.0,
        config=GBoosterConfig(scheduler="round_robin"),
    )
    for p in rr:
        print(f"{p.n_devices:>8} {p.median_fps:>11.1f}")


if __name__ == "__main__":
    main()
