"""CLI smoke tests (tiny durations)."""

import pytest

from repro.__main__ import main


def test_quickstart_command(capsys):
    assert main(["--duration", "8", "quickstart", "--game", "G5"]) == 0
    out = capsys.readouterr().out
    assert "Candy Crush" in out
    assert "gbooster" in out


def test_fig1_command(capsys):
    assert main(["fig1"]) == 0
    out = capsys.readouterr().out
    assert "throttled at" in out


def test_adaptive_command(capsys):
    assert main(["--duration", "8", "adaptive"]) == 0
    out = capsys.readouterr().out
    assert "gbooster" in out
    assert "cloud" in out
    assert "local" in out


def test_unknown_command_rejected():
    with pytest.raises(SystemExit):
        main(["frobnicate"])
