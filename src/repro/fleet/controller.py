"""The fleet control plane: registry + admission + placement + migration.

:class:`FleetController` ties the subsystem together:

1. **Bootstrap** — discovery probe rounds over the device pool populate
   the :class:`~repro.fleet.registry.DeviceRegistry`; each advertisement
   carries the node's *real* queued workload through discovery's
   ``load_probe`` hook, and each registered device heartbeats that same
   gauge thereafter.
2. **Admission** — incoming session requests are admitted, queued or
   rejected against aggregate up-capacity (QoS tiers from
   ``GENRE_PRIORITY``); queued sessions drain whenever capacity appears.
3. **Placement** — admitted sessions get a home node through the Eq. 4
   scheduler generalized to session demand; a periodic control sweep
   rebalances when committed utilization skews.
4. **Migration** — when the heartbeat monitor declares a device lost
   (crash injection via ``repro.faults``), every session homed there is
   re-placed: its GL context state is re-established on the target by a
   high-priority state-replay task (the client-side re-dispatch path of
   PR 1, lifted to per-session granularity), and every stranded frame is
   re-submitted — zero frames lost.
5. **Metrics** — the controller aggregates per-tier response times,
   admission outcomes, migrations and per-device utilization into a
   deterministic report for ``repro.metrics.report``.
"""

from __future__ import annotations

import hashlib
import json
from typing import Dict, Generator, List, Optional, Sequence

from repro.devices.profiles import DeviceSpec
from repro.faults.schedule import FaultSchedule, NodeCrash
from repro.fleet.admission import AdmissionController
from repro.fleet.config import FleetConfig
from repro.fleet.node import STATE_PRIORITY, FleetNode, FrameTask
from repro.fleet.placement import SessionPlacer
from repro.fleet.registry import DeviceRegistry, RegisteredDevice
from repro.fleet.session import FleetSession, SessionRequest
from repro.net.discovery import DiscoveryService
from repro.sim.kernel import Simulator


class FleetController:
    """Serves many concurrent sessions across a shared device pool."""

    def __init__(
        self,
        sim: Simulator,
        pool: Sequence[DeviceSpec],
        config: Optional[FleetConfig] = None,
    ):
        self.sim = sim
        self.config = config or FleetConfig()
        self.config.validate()
        names = [spec.name for spec in pool]
        if len(set(names)) != len(names):
            raise ValueError(f"pool device names must be unique: {names}")
        if not pool:
            raise ValueError("fleet needs at least one pool device")
        self.pool = list(pool)
        self.nodes: Dict[str, FleetNode] = {
            spec.name: FleetNode(
                sim, spec, self.config, on_complete=self._on_task_complete
            )
            for spec in pool
        }
        self.registry = DeviceRegistry(sim, self.config)
        self.registry.on_lost = self._on_device_lost
        self.registry.on_join = self._on_device_join
        #: controller-owned fleet-wide replay store: the first session of
        #: a title records, every later one of that title serves warm
        self.replay_hub = None
        self.warm_sessions = 0
        self.cold_sessions = 0
        if self.config.replay:
            from repro.replay import ReplayHub

            self.replay_hub = ReplayHub(
                capacity_bytes_per_title=self.config.replay_store_bytes
            )
        self.admission = AdmissionController(sim, self.config)
        self.placer = SessionPlacer(sim, self.config)

        self.sessions: Dict[str, FleetSession] = {}
        self.active: Dict[str, FleetSession] = {}
        self.finished: List[FleetSession] = []
        self.rejected: List[SessionRequest] = []
        #: steady-state demand committed per device (MP/ms)
        self.committed_mp_per_ms: Dict[str, float] = {
            spec.name: 0.0 for spec in pool
        }
        self.rtt_ms: Dict[str, float] = {}
        self.migrations = 0
        self.crash_migrations = 0
        self.rebalance_migrations = 0
        self.frames_redispatched = 0
        self.peak_concurrency = 0
        #: how long each admitted session streams; the runner sets this
        #: before submitting (an open-ended fleet would carry it per request)
        self._session_duration_ms = 10_000.0
        #: fires once discovery rounds finish; submit sessions after this
        #: to avoid racing an empty registry (the admission queue would
        #: absorb a few early arrivals, but not a whole launch wave)
        self.bootstrapped = sim.event(name="fleet.bootstrapped")
        sim.spawn(self._bootstrap(), name="fleet.bootstrap")
        sim.spawn(self._control_loop(), name="fleet.control")
        if self.config.faults is not None:
            self._arm_faults(self.config.faults)
        #: runtime conservation-law checker, armed by ``config.check``
        self.monitor = None
        if self.config.check:
            from repro.check import InvariantMonitor

            self.monitor = InvariantMonitor(sim)
            self.monitor.watch_fleet(self)
            self.monitor.watch_timers()
            self.monitor.start()

    # -- capacity ------------------------------------------------------------

    @property
    def up_capacity_mp_per_ms(self) -> float:
        return sum(
            self.nodes[d.name].capacity_mp_per_ms
            for d in self.registry.up_devices()
        )

    @property
    def total_committed_mp_per_ms(self) -> float:
        return sum(self.committed_mp_per_ms.values())

    # -- bootstrap: discovery feeds the registry -----------------------------

    def _load_probe(self, spec: DeviceSpec) -> float:
        node = self.nodes[spec.name]
        if node.failed:
            return 1.0  # a dead box never answers; ranked last if raced
        return node.load_fraction

    def _bootstrap(self) -> Generator:
        cfg = self.config
        discovery = DiscoveryService(
            self.sim,
            responders=self.pool,
            rng=self.sim.stream("fleet.discovery"),
            load_probe=self._load_probe,
        )
        for round_no in range(cfg.discovery_rounds):
            if len(self.registry.devices) == len(self.pool):
                break
            # Only probe for devices not yet registered.
            discovery.responders = [
                spec for spec in self.pool
                if spec.name not in self.registry.devices
                and not self.nodes[spec.name].failed
            ]
            if not discovery.responders:
                break
            result = yield discovery.probe(timeout_ms=cfg.discovery_timeout_ms)
            for ad in result.ranked():
                node = self.nodes[ad.device.name]
                self.rtt_ms[ad.device.name] = ad.rtt_ms
                self.registry.register(
                    ad.device, rtt_ms=ad.rtt_ms,
                    probe=self._make_probe(node),
                )
        self.sim.tracer.record(
            self.sim.now, "fleet", "bootstrap_complete",
            registered=len(self.registry.devices),
        )
        self.sim.spans.mark(
            "fleet.state", "bootstrap_complete", track="fleet",
            registered=len(self.registry.devices),
        )
        self.bootstrapped.trigger(len(self.registry.devices))

    def _make_probe(self, node: FleetNode):
        def probe():
            payload = node.heartbeat_payload()
            if payload is None:
                return None
            homed = sorted(
                (
                    s for s in self.active.values()
                    if s.node is not None and s.node.name == node.name
                ),
                key=lambda s: s.session_id,
            )
            active = len(homed)
            if self.config.planner:
                # Planner fleets advertise the served titles so the
                # multicast plan candidate can see co-located viewers.
                titles = tuple(s.app.name for s in homed)
                generation = (
                    self.replay_hub.generation()
                    if self.replay_hub is not None
                    else 0
                )
                return payload, active, generation, titles
            if self.replay_hub is not None:
                # Advertise the replay-store generation the device serves
                # from, so the controller can tell stale views apart.
                return payload, active, self.replay_hub.generation()
            return payload, active

        return probe

    def colocation_groups(self) -> Dict[str, int]:
        """Heartbeat-advertised viewers per title (planner fleets)."""
        return self.registry.colocation_groups()

    def _plan_bias_ms(self, session: FleetSession) -> Optional[Dict[str, float]]:
        """Predicted service-stage cost of this title on each live node.

        Only computed for planner fleets: the bias feeds Eq. 4 through
        :class:`DeviceEstimate.plan_bias_ms`, steering a session toward
        the device that renders *its* frames fastest, not just the device
        with the shortest queue.  (FleetConfig mirrors the per-frame cost
        constants the predictor reads, so it can stand in for the session
        config here.)
        """
        if not self.config.planner:
            return None
        from repro.analysis.pipeline_model import predict_service_stage_ms

        return {
            node.name: predict_service_stage_ms(
                session.app, node.spec, self.config
            )
            for node in self._up_nodes()
        }

    # -- session lifecycle ---------------------------------------------------

    def submit(self, request: SessionRequest) -> str:
        """Offer a session to the fleet; returns the admission outcome."""
        outcome = self.admission.decide(
            request,
            committed_mp_per_ms=self.total_committed_mp_per_ms,
            capacity_mp_per_ms=self.up_capacity_mp_per_ms,
        )
        self.sim.metrics.counter("fleet.admission", outcome=outcome).inc()
        # Session-level trace identity (frame = -1): fleet decisions happen
        # before any frame exists, but a breach exemplar must still resolve
        # to the causal events behind it.
        trace = (
            self.sim.causal.session_trace(request.session_id)
            if self.sim.causal is not None
            else None
        )
        if self.sim.telemetry is not None:
            # Each decision contributes one 0/1 sample: the reject-rate SLO
            # classifies them directly against its error budget.
            self.sim.telemetry.observe(
                "fleet.rejected",
                1.0 if outcome == "reject" else 0.0,
                trace_id=trace.trace_id if trace is not None else None,
                tier=request.tier,
            )
        self.sim.spans.mark(
            "fleet.admission", outcome, track="fleet",
            session=request.session_id, tier=request.tier,
        )
        if trace is not None:
            self.sim.causal.event(
                "fleet", "admission", trace=trace,
                session=request.session_id, outcome=outcome,
                tier=request.tier,
            )
        if outcome == "admit":
            self._start_session(request)
        elif outcome == "reject":
            self.rejected.append(request)
        return outcome

    def _start_session(self, request: SessionRequest) -> None:
        session = FleetSession(
            self.sim, request, self.config,
            duration_ms=self._session_duration_ms,
        )
        if self.replay_hub is not None:
            session.replay_warm = self.replay_hub.session_started(
                request.app.name
            )
            if session.replay_warm:
                self.warm_sessions += 1
            else:
                self.cold_sessions += 1
            self.sim.metrics.counter(
                "fleet.replay.sessions",
                kind="warm" if session.replay_warm else "cold",
            ).inc()
        node = self.placer.place(
            session,
            nodes=self._up_nodes(),
            committed_mp_per_ms=self.committed_mp_per_ms,
            rtt_ms=self.rtt_ms,
            plan_bias_ms=self._plan_bias_ms(session),
        )
        self.sessions[session.session_id] = session
        self.active[session.session_id] = session
        self.committed_mp_per_ms[node.name] = (
            self.committed_mp_per_ms.get(node.name, 0.0)
            + session.demand_mp_per_ms
        )
        self.peak_concurrency = max(self.peak_concurrency, len(self.active))
        self.sim.spans.mark(
            "fleet.placement", "place", track="fleet",
            session=session.session_id, node=node.name, tier=session.tier,
        )
        trace = (
            self.sim.causal.session_trace(session.session_id)
            if self.sim.causal is not None
            else None
        )
        if trace is not None:
            self.sim.causal.event(
                "fleet", "placement", trace=trace,
                session=session.session_id, node=node.name,
                tier=session.tier,
            )
        session.start(node)
        if self.sim.telemetry is not None:
            self.sim.telemetry.observe(
                "fleet.admission_wait_ms",
                self.sim.now - request.arrival_ms,
                trace_id=trace.trace_id if trace is not None else None,
                tier=request.tier,
            )
        self.sim.spawn(
            self._watch_session(session),
            name=f"fleet.watch.{session.session_id}",
        )
        self.sim.tracer.record(
            self.sim.now, "fleet", "session_started",
            session=session.session_id, node=node.name, tier=session.tier,
        )

    def _watch_session(self, session: FleetSession) -> Generator:
        yield session.finished
        self.active.pop(session.session_id, None)
        self.finished.append(session)
        if session.node is not None:
            name = session.node.name
            self.committed_mp_per_ms[name] = max(
                0.0,
                self.committed_mp_per_ms.get(name, 0.0)
                - session.demand_mp_per_ms,
            )
        self._drain_admission_queue()

    def set_session_duration(self, duration_ms: float) -> None:
        if duration_ms <= 0:
            raise ValueError(f"bad session duration {duration_ms}")
        self._session_duration_ms = duration_ms

    def _up_nodes(self) -> List[FleetNode]:
        up = [
            self.nodes[d.name] for d in self.registry.up_devices()
            if not self.nodes[d.name].failed
        ]
        if up:
            return up
        # Bootstrap race: admission saw capacity but registration of the
        # remaining devices is still in flight — fall back to any live node.
        return [n for n in self.nodes.values() if not n.failed]

    def _drain_admission_queue(self) -> None:
        for request in self.admission.pop_eligible(
            committed_mp_per_ms=self.total_committed_mp_per_ms,
            capacity_mp_per_ms=self.up_capacity_mp_per_ms,
        ):
            self._start_session(request)

    # -- task completion fan-in ----------------------------------------------

    def _on_task_complete(self, task: FrameTask) -> None:
        if task.kind != "frame":
            return
        session = self.sessions.get(task.session_id)
        if session is not None:
            session.on_frame_complete(task)

    # -- membership transitions ----------------------------------------------

    def _on_device_lost(self, dev: RegisteredDevice) -> None:
        node = self.nodes[dev.name]
        stranded = node.strand_all()
        victims = [
            s for s in self.active.values()
            if s.node is not None and s.node.name == dev.name
        ]
        self.committed_mp_per_ms[dev.name] = 0.0
        by_session: Dict[str, List[FrameTask]] = {}
        for task in stranded:
            by_session.setdefault(task.session_id, []).append(task)
        for session in sorted(victims, key=lambda s: s.session_id):
            try:
                target = self._migrate_session(session, reason="crash")
            except ValueError:
                # Whole pool dark: frames stay stranded with the session's
                # outstanding set; they re-dispatch when capacity returns.
                continue
            for task in by_session.pop(session.session_id, []):
                session.take_over(task, target)
                self.frames_redispatched += 1
        # Stranded tasks of already-finished sessions (none in practice:
        # a session only finishes once its frames complete).
        for leftovers in by_session.values():
            for task in leftovers:
                if not task.completed:
                    self.frames_redispatched += 1
                    self._up_nodes()[0].submit(task)

    def _on_device_join(self, dev: RegisteredDevice) -> None:
        self._drain_admission_queue()

    def _migrate_session(self, session: FleetSession, reason: str) -> FleetNode:
        """Re-place one session; re-establish its GL state on the target."""
        target = self.placer.place(
            session,
            nodes=self._up_nodes(),
            committed_mp_per_ms=self.committed_mp_per_ms,
            rtt_ms=self.rtt_ms,
            plan_bias_ms=self._plan_bias_ms(session),
        )
        old = session.node.name if session.node is not None else None
        if old is not None and reason != "crash":
            self.committed_mp_per_ms[old] = max(
                0.0,
                self.committed_mp_per_ms.get(old, 0.0)
                - session.demand_mp_per_ms,
            )
        self.committed_mp_per_ms[target.name] = (
            self.committed_mp_per_ms.get(target.name, 0.0)
            + session.demand_mp_per_ms
        )
        # The context snapshot: cached textures, buffers, programs replayed
        # onto the target before any of the session's frames render there.
        state = FrameTask(
            session_id=session.session_id,
            seq=-1,
            fill_megapixels=0.0,
            commands_nominal=int(
                session.app.nominal_commands_per_frame
                * self.config.migration_state_factor
            ),
            width=session.app.render_width,
            height=session.app.render_height,
            priority=STATE_PRIORITY,
            issued_at_ms=self.sim.now,
            kind="state",
        )
        target.submit(state)
        session.set_node(target)
        session.migrations += 1
        session.last_migration_ms = self.sim.now
        self.migrations += 1
        if reason == "crash":
            self.crash_migrations += 1
        else:
            self.rebalance_migrations += 1
        self.sim.metrics.counter("fleet.migrations", reason=reason).inc()
        if self.sim.telemetry is not None:
            self.sim.telemetry.observe(
                "fleet.migrations", 1.0, agg="count", reason=reason,
            )
        self.sim.spans.mark(
            "fleet.migration", reason, track="fleet",
            session=session.session_id, source=old, target=target.name,
        )
        if self.sim.causal is not None:
            self.sim.causal.event(
                "fleet", "migration",
                trace=self.sim.causal.session_trace(session.session_id),
                session=session.session_id, source=old,
                target=target.name, reason=reason,
            )
        self.sim.tracer.record(
            self.sim.now, "fleet", "session_migrated",
            session=session.session_id, source=old, target=target.name,
            reason=reason,
        )
        return target

    # -- the control loop ----------------------------------------------------

    def _control_loop(self) -> Generator:
        while True:
            yield self.config.control_interval_ms
            self._drain_admission_queue()
            by_node: Dict[str, List[FleetSession]] = {}
            for s in self.active.values():
                if s.node is not None:
                    by_node.setdefault(s.node.name, []).append(s)
            moves = self.placer.plan_rebalance(
                sessions_by_node=by_node,
                nodes=self._up_nodes(),
                committed_mp_per_ms=self.committed_mp_per_ms,
            )
            for move in moves:
                if move.session.session_id not in self.active:
                    continue
                self._migrate_session(move.session, reason="rebalance")

    # -- fault injection -----------------------------------------------------

    def _arm_faults(self, schedule: FaultSchedule) -> None:
        schedule.validate()
        for event in schedule.events:
            if not isinstance(event, NodeCrash):
                raise ValueError(
                    f"fleet-level faults support NodeCrash only, got "
                    f"{type(event).__name__}"
                )
            if event.node >= len(self.pool):
                raise ValueError(
                    f"crash names node {event.node} but the pool has "
                    f"{len(self.pool)} devices"
                )
            name = self.pool[event.node].name
            node = self.nodes[name]
            self.sim.call_at(event.at_ms, node.fail,
                             name=f"fault.crash.{name}")
            if event.rejoin_at_ms is not None:
                self.sim.call_at(event.rejoin_at_ms, node.rejoin,
                                 name=f"fault.rejoin.{name}")

    # -- metrics -------------------------------------------------------------

    def report(self) -> Dict:
        """Deterministic fleet-level summary (same seed -> same dict)."""
        tiers: Dict[str, Dict] = {}
        for session in sorted(
            self.finished + list(self.active.values()),
            key=lambda s: s.session_id,
        ):
            bucket = tiers.setdefault(
                session.tier,
                {
                    "sessions": 0,
                    "frames": 0,
                    "frames_lost": 0,
                    "migrations": 0,
                    "response_ms_sum": 0.0,
                },
            )
            bucket["sessions"] += 1
            bucket["frames"] += len(session.response_times_ms)
            bucket["frames_lost"] += session.frames_lost
            bucket["migrations"] += session.migrations
            bucket["response_ms_sum"] += sum(session.response_times_ms)
        per_tier = {
            tier: {
                "sessions": b["sessions"],
                "frames": b["frames"],
                "frames_lost": b["frames_lost"],
                "migrations": b["migrations"],
                "mean_response_ms": round(
                    b["response_ms_sum"] / b["frames"], 4
                ) if b["frames"] else 0.0,
            }
            for tier, b in sorted(tiers.items())
        }
        devices = {
            name: {
                "state": self.registry.devices[name].state
                if name in self.registry.devices else "unregistered",
                "frames_served": node.stats.frames_served,
                "state_replays": node.stats.state_replays,
                "busy_ms": round(node.stats.busy_ms, 3),
                "stranded_tasks": node.stats.stranded_tasks,
                "capacity_mp_per_ms": round(node.capacity_mp_per_ms, 4),
            }
            for name, node in sorted(self.nodes.items())
        }
        stats = self.admission.stats
        report = {
            "pool_devices": len(self.pool),
            "registered_devices": len(self.registry.devices),
            "capacity_mp_per_ms": round(self.up_capacity_mp_per_ms, 4),
            "admission": {
                "offered": stats.offered,
                "admitted": stats.admitted,
                "queued": stats.queued,
                "rejected": stats.rejected,
                "dequeued": stats.dequeued,
                "waiting": len(self.admission),
                "by_tier": {
                    t: dict(sorted(v.items()))
                    for t, v in sorted(stats.by_tier.items())
                },
                "mean_wait_ms": round(self.admission.mean_wait_ms, 4),
            },
            "sessions": {
                "finished": len(self.finished),
                "active": len(self.active),
                "peak_concurrency": self.peak_concurrency,
            },
            "migrations": {
                "total": self.migrations,
                "crash": self.crash_migrations,
                "rebalance": self.rebalance_migrations,
                "frames_redispatched": self.frames_redispatched,
            },
            "tiers": per_tier,
            "devices": devices,
        }
        if self.replay_hub is not None:
            report["replay"] = {
                "warm_sessions": self.warm_sessions,
                "cold_sessions": self.cold_sessions,
                "warm_factor": self.config.replay_warm_factor,
                "hub_generation": self.replay_hub.generation(),
            }
        blob = json.dumps(report, sort_keys=True).encode()
        report["digest"] = hashlib.sha256(blob).hexdigest()
        return report
