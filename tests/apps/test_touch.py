"""Touch-event generator statistics."""

import pytest

from repro.apps.games import CANDY_CRUSH, GTA_SAN_ANDREAS
from repro.apps.touch import TouchGenerator
from repro.sim.kernel import Simulator


def run_generator(spec, duration_ms, seed=0):
    sim = Simulator(seed=seed)
    gen = TouchGenerator(sim, spec)
    sim.run(until=duration_ms)
    return gen


def test_events_occur_in_bursts():
    gen = run_generator(GTA_SAN_ANDREAS, 120_000.0)
    assert len(gen.events) > 20
    gaps = [
        b.time_ms - a.time_ms
        for a, b in zip(gen.events, gen.events[1:])
    ]
    short = sum(1 for g in gaps if g < 500)
    long = sum(1 for g in gaps if g > 2_000)
    assert short > long  # intra-burst gaps dominate


def test_callback_invoked():
    sim = Simulator()
    seen = []
    TouchGenerator(sim, GTA_SAN_ANDREAS, on_touch=lambda e: seen.append(e))
    sim.run(until=60_000.0)
    assert seen
    assert all(0.0 <= e.x <= 1.0 and 0.0 <= e.y <= 1.0 for e in seen)


def test_count_in_window():
    gen = run_generator(GTA_SAN_ANDREAS, 60_000.0)
    total = gen.count_in_window(0.0, 60_000.0)
    assert total == len(gen.events)
    first_half = gen.count_in_window(0.0, 30_000.0)
    second_half = gen.count_in_window(30_000.0, 60_000.0)
    assert first_half + second_half == total


def test_deterministic_across_runs():
    a = run_generator(GTA_SAN_ANDREAS, 30_000.0, seed=4)
    b = run_generator(GTA_SAN_ANDREAS, 30_000.0, seed=4)
    assert [e.time_ms for e in a.events] == [e.time_ms for e in b.events]


def test_genre_rates_differ():
    action = run_generator(GTA_SAN_ANDREAS, 120_000.0)
    puzzle = run_generator(CANDY_CRUSH, 120_000.0)
    # Action games burst harder; rates need not be equal.
    assert len(action.events) != len(puzzle.events)
