"""The tutorial's code must actually run (docs-rot guard)."""

import pytest

from repro.apps.base import ApplicationSpec
from repro.devices.cpu import CPUSpec
from repro.devices.profiles import DeviceSpec, LG_NEXUS_5, NVIDIA_SHIELD
from repro.gpu.profiles import GPUSpec

MY_GAME = ApplicationSpec(
    name="My Racing Game", short_name="R1", genre="action",
    package_size_gb=1.2,
    fill_mp_per_frame=130.0,
    cpu_ms_per_frame=18.0, cpu_base_load=0.4,
    nominal_commands_per_frame=800, emitted_commands_per_frame=32,
    textures_per_frame=10,
    render_width=1280, render_height=720,
    base_change_fraction=0.10, burst_change_fraction=0.8, detail=0.7,
    touch_burst_interval_s=5.0, touch_burst_duration_s=1.5,
    touch_rate_in_burst_hz=8.0,
)

MY_PHONE = DeviceSpec(
    name="Acme One", year=2017,
    cpu=CPUSpec(name="Acme SoC", clock_ghz=2.4, cores=8,
                active_power_w=2.6, idle_power_w=0.15, perf_index=1.7),
    gpu=GPUSpec(
        name="Acme GPU", fillrate_gpixels=8.0,
        max_freq_mhz=700, min_freq_mhz=200,
        active_power_w=3.4, idle_power_w=0.1,
        throttle_temp_c=93.0, recover_temp_c=50.0,
        heat_rate_c_per_joule=0.075, cooling_coeff_per_s=0.0045,
    ),
    screen_width=1440, screen_height=2560, memory_mb=6144,
    role="user", battery_wh=12.0,
)


def test_custom_workload_runs_locally():
    import repro

    result = repro.run_local_session(MY_GAME, LG_NEXUS_5,
                                     duration_ms=15_000.0)
    # 130 MP at 3.6 GP/s -> ~27.7 FPS fill-bound.
    assert result.fps.median_fps == pytest.approx(27.7, abs=2.0)


def test_custom_workload_offloads():
    import repro

    result = repro.run_offload_session(MY_GAME, LG_NEXUS_5,
                                       duration_ms=15_000.0)
    assert result.fps.median_fps > 30.0


def test_custom_device_runs():
    import repro

    result = repro.run_local_session(MY_GAME, MY_PHONE,
                                     duration_ms=15_000.0)
    # 130 MP at 8 GP/s -> 16.3 ms; CPU 18/1.7 + driver ~3.4 -> ~14 ms:
    # GPU binds around 61 FPS, capped at vsync 60.
    assert result.fps.median_fps > 45.0


def test_analytic_cross_check_snippet():
    from repro.analysis import predict_local_fps, predict_offload

    local = predict_local_fps(MY_GAME, LG_NEXUS_5)
    assert local == pytest.approx(27.7, abs=1.0)
    prediction = predict_offload(MY_GAME, LG_NEXUS_5, NVIDIA_SHIELD)
    assert prediction.fps > 30.0


def test_acceleration_cell_snippet():
    from repro.experiments.acceleration import run_acceleration_cell

    row = run_acceleration_cell(MY_GAME, MY_PHONE, duration_ms=15_000.0)
    assert row.boosted_fps > 0
    assert row.local_fps > 0


def test_fault_scenario_snippet():
    from repro import FaultSchedule, GBoosterConfig, run_offload_session
    from repro.apps.games import GTA_SAN_ANDREAS

    schedule = (
        FaultSchedule()
        .loss_burst(at_ms=5_000, duration_ms=3_000, loss_probability=0.3)
        .crash(at_ms=15_000, rejoin_at_ms=25_000)
        .degrade_radio(at_ms=30_000, duration_ms=5_000,
                       bandwidth_factor=0.25)
    )
    result = run_offload_session(
        GTA_SAN_ANDREAS, LG_NEXUS_5,
        service_devices=[NVIDIA_SHIELD],
        config=GBoosterConfig(frame_timeout_ms=600.0, faults=schedule),
        duration_ms=40_000,
    )
    kinds = [e.kind for e in result.faults.applied()]
    assert kinds == ["loss_burst", "loss_burst", "crash", "rejoin",
                     "degradation", "degradation"]
    # At least the injected crash; the 0.25x radio window may trip the
    # watchdog a second time.
    assert result.client_stats.nodes_failed >= 1


def test_fleet_walkthrough_snippet():
    """Tutorial §6: registry -> admission -> migration."""
    from repro.apps.games import MODERN_COMBAT
    from repro.experiments.fleet import make_fleet_pool
    from repro.fleet import FleetConfig, FleetController, SessionRequest
    from repro.sim.kernel import Simulator

    sim = Simulator(seed=0)
    controller = FleetController(sim, make_fleet_pool(8), FleetConfig())
    controller.set_session_duration(10_000.0)
    sim.run_until_event(controller.bootstrapped)

    outcome = controller.submit(SessionRequest(
        session_id="alice", app=MODERN_COMBAT, arrival_ms=sim.now))
    assert outcome in ("admit", "queue", "reject")

    sim.run(until=30_000.0)
    report = controller.report()
    assert report["migrations"]["total"] >= 0
    assert report["sessions"]["finished"] == 1
    assert report["tiers"]["action"]["frames_lost"] == 0
