"""Adaptive execution-mode selection (paper §VIII).

"Under some rare circumstances where there is no available multimedia
device nearby, the cloud-based platforms could still provide service" —
the adaptive runner implements that complement: discover service devices
on the LAN; if any respond, offload with GBooster; otherwise fall back to
the cloud remote-rendering platform (or, if even that is unreachable,
plain local execution).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.apps.base import ApplicationSpec
from repro.baselines.cloud import CloudGamingModel
from repro.core.config import GBoosterConfig
from repro.core.session import (
    SessionResult,
    run_local_session,
    run_offload_session,
)
from repro.devices.profiles import DeviceSpec, LG_NEXUS_5
from repro.net.discovery import DiscoveryResult, DiscoveryService
from repro.sim.kernel import Simulator
from repro.sim.random import RandomStream


@dataclass
class AdaptiveOutcome:
    """What the adaptive runner decided and how the session went."""

    mode: str                          # "gbooster" | "cloud" | "local"
    discovery: Optional[DiscoveryResult]
    median_fps: float
    response_time_ms: float
    session: Optional[SessionResult] = None


def discover_services(
    ambient_devices: Sequence[DeviceSpec],
    timeout_ms: float = 500.0,
    seed: int = 0,
) -> DiscoveryResult:
    """Run one discovery round on a fresh simulator."""
    sim = Simulator(seed=seed)
    service = DiscoveryService(sim, ambient_devices)
    done = service.probe(timeout_ms=timeout_ms)
    sim.run_until_event(done, limit=timeout_ms * 4)
    return done.value


def run_adaptive_session(
    app: ApplicationSpec,
    user_device: DeviceSpec = LG_NEXUS_5,
    ambient_devices: Sequence[DeviceSpec] = (),
    internet_available: bool = True,
    duration_ms: float = 60_000.0,
    config: Optional[GBoosterConfig] = None,
    max_service_devices: int = 3,
    seed: int = 0,
) -> AdaptiveOutcome:
    """Pick the best available execution mode and run the session.

    Preference order (the paper's §VIII discussion): neighbourhood
    offloading when any device answers discovery; the cloud platform when
    the Internet is reachable; local execution as the last resort.
    """
    discovery = discover_services(ambient_devices, seed=seed)
    if discovery.found_any:
        chosen = [
            ad.device for ad in discovery.ranked()[:max_service_devices]
        ]
        session = run_offload_session(
            app, user_device,
            service_devices=chosen,
            config=config,
            duration_ms=duration_ms,
            seed=seed,
        )
        return AdaptiveOutcome(
            mode="gbooster",
            discovery=discovery,
            median_fps=session.fps.median_fps,
            response_time_ms=session.response_time_ms,
            session=session,
        )
    if internet_available:
        cloud = CloudGamingModel()
        result = cloud.simulate_session(
            app, duration_s=duration_ms / 1000.0,
            rng=RandomStream(seed, "adaptive.cloud"),
        )
        return AdaptiveOutcome(
            mode="cloud",
            discovery=discovery,
            median_fps=result.median_fps,
            response_time_ms=result.mean_response_ms,
        )
    session = run_local_session(app, user_device, duration_ms=duration_ms,
                                seed=seed)
    return AdaptiveOutcome(
        mode="local",
        discovery=discovery,
        median_fps=session.fps.median_fps,
        response_time_ms=session.response_time_ms,
        session=session,
    )
