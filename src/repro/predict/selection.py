"""Model selection: AIC over exogenous-attribute subsets (paper §V-B).

The paper examines four candidate exogenous attributes —

1. touchstroke frequency,
2. command-sequence length per frame,
3. textures per frame,
4. command difference between consecutive frames —

and selects the combination minimizing the Akaike Information Criterion,
landing on attributes 1 and 3.  ``select_armax_attributes`` runs the same
procedure over a recorded trace: fit one ARMAX per subset, compute

    AIC = n * ln(RSS / n) + 2k

from one-step-ahead residuals, and return subsets ranked by AIC.
"""

from __future__ import annotations

import math
from itertools import combinations
from typing import Dict, List, Sequence, Tuple

from repro.predict.armax import ARMAXModel


def aic(n: int, rss: float, k: int) -> float:
    """Raw Akaike Information Criterion from a least-squares fit."""
    if n <= 0:
        raise ValueError(f"need n > 0 samples, got {n}")
    if rss < 0:
        raise ValueError(f"negative RSS {rss}")
    # Guard the degenerate perfect-fit case.
    rss = max(rss, 1e-12)
    return n * math.log(rss / n) + 2 * k


def fit_and_score(
    series: Sequence[float],
    inputs: Sequence[Sequence[float]],
    attribute_indices: Tuple[int, ...],
    p: int = 3,
    q: int = 2,
    b: int = 2,
    warmup: int = 20,
    horizon: int = 1,
) -> float:
    """AIC of an ARMAX restricted to the chosen attribute columns.

    ``horizon`` sets which forecast the residuals score: 1 evaluates the
    classical one-step fit; the switching controller's objective is the
    5-epoch (500 ms) forecast, where *leading* attributes such as touch
    frequency earn their keep while merely contemporaneous proxies fade.
    """
    if len(series) != len(inputs):
        raise ValueError("series and inputs must be the same length")
    if horizon < 1:
        raise ValueError(f"horizon must be >= 1, got {horizon}")
    n_inputs = len(attribute_indices)
    if n_inputs == 0:
        model = ARMAXModel(p=p, q=q, b=0, n_inputs=0)
    else:
        model = ARMAXModel(p=p, q=q, b=b, n_inputs=n_inputs)
    rss = 0.0
    counted = 0
    n = len(series)
    for t, (y, row) in enumerate(zip(series, inputs)):
        selected = [row[i] for i in attribute_indices]
        if (
            horizon > 1
            and t >= warmup
            and t + horizon < n
        ):
            forecast = model.forecast(horizon)
            # Note: forecast() is called before observe(y) so the model has
            # seen samples 0..t-1; score the h-step prediction of y[t+h-1].
            err = series[t + horizon - 1] - forecast[horizon - 1]
            rss += err * err
            counted += 1
        residual = model.observe(y, selected)
        if horizon == 1 and t >= warmup:
            rss += residual * residual
            counted += 1
    if counted == 0:
        raise ValueError("trace too short for the requested warmup")
    return aic(counted, rss, model.parameter_count)


def select_armax_attributes(
    series: Sequence[float],
    inputs: Sequence[Sequence[float]],
    n_attributes: int = 4,
    max_subset: int = 4,
    p: int = 3,
    q: int = 2,
    b: int = 2,
    horizon: int = 1,
) -> List[Tuple[Tuple[int, ...], float]]:
    """Rank every attribute subset (including empty = plain ARMA) by AIC.

    Returns ``[(subset, aic), ...]`` sorted ascending (best first).
    Subsets use 0-based attribute indices into the ``inputs`` rows.
    """
    results: List[Tuple[Tuple[int, ...], float]] = []
    for size in range(0, max_subset + 1):
        for subset in combinations(range(n_attributes), size):
            score = fit_and_score(series, inputs, subset, p=p, q=q, b=b,
                                  horizon=horizon)
            results.append((subset, score))
    results.sort(key=lambda item: item[1])
    return results
