"""Link propagation, jitter and loss."""

import pytest

from repro.net.link import LAN_WIFI, LinkSpec, NetworkLink, WAN_CLOUD
from repro.net.message import Message
from repro.sim.kernel import Simulator


def test_delivery_after_latency():
    sim = Simulator()
    got = []
    link = NetworkLink(
        sim, LinkSpec(name="t", latency_ms=5.0, jitter_ms=0.0),
        receiver=lambda m: got.append((sim.now, m)),
    )
    link.deliver(Message.of_size(100))
    sim.run(until=100.0)
    assert got[0][0] == pytest.approx(5.0)


def test_jitter_varies_latency():
    sim = Simulator()
    times = []
    link = NetworkLink(
        sim, LinkSpec(name="t", latency_ms=5.0, jitter_ms=2.0,
                      loss_probability=0.0),
        receiver=lambda m: times.append(sim.now),
    )
    for _ in range(50):
        link.deliver(Message.of_size(10))
    sim.run(until=1000.0)
    assert len(set(times)) > 10  # arrivals spread out
    assert all(t >= 5.0 for t in times)  # jitter only ever adds


def test_loss_drops_messages():
    sim = Simulator()
    got = []
    link = NetworkLink(
        sim, LinkSpec(name="lossy", latency_ms=1.0, jitter_ms=0.0,
                      loss_probability=0.5),
        receiver=lambda m: got.append(m),
    )
    for _ in range(400):
        link.deliver(Message.of_size(10))
    sim.run(until=10_000.0)
    assert link.dropped + link.delivered == 400
    assert 120 <= link.dropped <= 280  # ~50%


def test_wan_slower_than_lan():
    assert WAN_CLOUD.latency_ms > 20 * LAN_WIFI.latency_ms


def test_invalid_specs_rejected():
    sim = Simulator()
    with pytest.raises(ValueError):
        NetworkLink(sim, LinkSpec(name="bad", latency_ms=-1.0))
    with pytest.raises(ValueError):
        NetworkLink(sim, LinkSpec(name="bad", loss_probability=1.0))


def test_deterministic_loss_pattern():
    def run_once():
        sim = Simulator(seed=5)
        link = NetworkLink(
            sim,
            LinkSpec(name="l", latency_ms=1.0, loss_probability=0.3),
            receiver=lambda m: None,
        )
        for _ in range(100):
            link.deliver(Message.of_size(10))
        sim.run(until=1000.0)
        return link.dropped

    assert run_once() == run_once()
