"""Battery-lifetime projection."""

import pytest

from repro.devices.profiles import LG_NEXUS_5, NVIDIA_SHIELD
from repro.metrics.battery import (
    USABLE_BATTERY_FRACTION,
    compare_battery_life,
    project_battery_life,
)
from repro.metrics.energy import EnergyReport


def report(power_w, duration_s=600.0):
    return EnergyReport(total_j=power_w * duration_s, duration_s=duration_s)


def test_projection_math():
    projection = project_battery_life(LG_NEXUS_5, report(4.0))
    expected = LG_NEXUS_5.battery_wh * USABLE_BATTERY_FRACTION / 4.0
    assert projection.hours == pytest.approx(expected)
    assert projection.minutes == pytest.approx(expected * 60.0)


def test_gaming_drains_phone_in_couple_of_hours():
    """The §II motivation: heavy gaming power (~5.4 W measured) empties the
    Nexus 5 in well under two hours."""
    projection = project_battery_life(LG_NEXUS_5, report(5.4))
    assert 1.0 <= projection.hours <= 2.0


def test_offloading_extends_life():
    comparison = compare_battery_life(
        LG_NEXUS_5, report(5.4), report(3.1)
    )
    assert comparison.lifetime_ratio == pytest.approx(5.4 / 3.1)
    assert comparison.extra_minutes > 40.0


def test_service_device_has_no_battery():
    with pytest.raises(ValueError):
        project_battery_life(NVIDIA_SHIELD, report(5.0))


def test_zero_power_rejected():
    with pytest.raises(ValueError):
        project_battery_life(LG_NEXUS_5, report(0.0))


def test_end_to_end_session_projection():
    import repro
    from repro.apps.games import GTA_SAN_ANDREAS

    local = repro.run_local_session(GTA_SAN_ANDREAS, LG_NEXUS_5,
                                    duration_ms=15_000.0)
    boosted = repro.run_offload_session(GTA_SAN_ANDREAS, LG_NEXUS_5,
                                        duration_ms=15_000.0)
    comparison = compare_battery_life(
        LG_NEXUS_5, local.energy, boosted.energy
    )
    assert comparison.lifetime_ratio > 1.3
