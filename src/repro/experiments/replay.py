"""The record-once / replay-many bench behind ``python -m repro replay``.

Three sections, all in simulated time so the ``BENCH_REPLAY.json``
artifact is byte-identical across same-seed runs:

1. **Cold vs warm pair** — two identically-seeded sessions of one title
   share a :class:`~repro.replay.ReplayHub`.  The cold session runs the
   full pipeline everywhere and records its intervals; the warm session
   (a different ``replay_session_id``, i.e. a second player of the same
   title) is delta-served from the store.  The headline gates: warm
   uplink bytes/frame and warm server execute-time/frame must both be
   at least :data:`MIN_SPEEDUP` times below cold, with zero fidelity
   mismatches on either side and every serve differentially verified.
2. **Divergence drill** — a recorded entry's skeleton is corrupted
   in-store before the warm session runs.  The server's digest check
   must catch the corruption (demote + full-pipeline fallback), and the
   session must still complete with clean fidelity: divergence costs
   bytes, never correctness.
3. **Fleet warm wave** — a single-shard fleet with the controller-owned
   hub serves one cold + N warm sessions of the same title; warm
   sessions must be cheaper per frame and drop nothing.

The harness doubles as the CI perf-regression gate
(``replay-smoke``): ``diff_against_baseline`` compares warm-session
uplink bytes/frame and server execute-time/frame against the committed
baseline (``benchmarks/baselines/BENCH_REPLAY.json``) and fails the
build on a >10% regression.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any, Dict, List, Optional, Tuple

from repro.apps.games import GAMES
from repro.core.config import GBoosterConfig
from repro.core.session import run_offload_session
from repro.devices.profiles import LG_G5, NVIDIA_SHIELD

#: artifact schema identifier, bumped on incompatible changes
BENCH_REPLAY_SCHEMA = "repro.bench_replay/1"

#: the committed baseline the CI gate diffs against
DEFAULT_BASELINE = "benchmarks/baselines/BENCH_REPLAY.json"

#: acceptance floor: warm / cold per-frame cost ratios (uplink bytes and
#: server execute time) must both clear this factor
MIN_SPEEDUP = 5.0

#: warm-session per-frame costs may grow this fraction over the baseline
#: before the regression gate fails
REGRESSION_TOLERANCE = 0.10


# -- section 1: the cold/warm pair -------------------------------------------


def _session_summary(result) -> Dict[str, Any]:
    """Deterministic per-session summary of one replay-armed run."""
    stats = result.client_stats
    node = result.nodes[0]
    frames = max(1, stats.frames_presented)
    return {
        "frames": stats.frames_presented,
        "median_fps": round(result.fps.median_fps, 4),
        "uplink_bytes": stats.uplink_bytes,
        "uplink_bytes_per_frame": round(stats.uplink_bytes / frames, 2),
        "server_replay_ms": round(node.stats.replay_ms_total, 4),
        "server_replay_ms_per_frame": round(
            node.stats.replay_ms_total / frames, 5
        ),
        "server_replay_hits": node.stats.replay_hits,
        "server_replay_fallbacks": node.stats.replay_fallbacks,
        "server_replay_ms_saved": round(node.stats.replay_ms_saved, 4),
        "fidelity_mismatches": len(
            result.check.digests.fidelity_mismatches()
        ),
        "replay": result.replay.stats.as_dict(),
        "digest_stream": result.check.digests.stream(),
    }


def run_replay_pair(
    duration_ms: float,
    seed: int,
    game: str = "G5",
    hub=None,
    corrupt_after_cold: bool = False,
) -> Dict[str, Any]:
    """Cold session records; an identically-seeded warm session replays.

    With ``corrupt_after_cold`` the oldest recorded entry's skeleton is
    flipped in-store between the two runs — the divergence drill.
    """
    from repro.replay import ReplayHub

    app = GAMES[game]
    if hub is None:
        hub = ReplayHub(capacity_bytes_per_title=4 << 20)
    config = GBoosterConfig(
        replay=True, check=True, deterministic_content=True
    )

    def one(session_id: str):
        return run_offload_session(
            app, LG_G5, [NVIDIA_SHIELD],
            config=config, duration_ms=duration_ms, seed=seed,
            replay_hub=hub, replay_session_id=session_id,
        )

    cold = one("cold")
    corrupted = None
    if corrupt_after_cold:
        corrupted = _corrupt_oldest_entry(hub.namespace(app.name))
    warm = one("warm")

    cold_summary = _session_summary(cold)
    warm_summary = _session_summary(warm)
    # With deterministic content both sessions issue the same stream, so
    # the issue-digest sequences must agree on the shared prefix — the
    # differential-replay equality check across the cache boundary.
    shared = min(
        len(cold_summary["digest_stream"]), len(warm_summary["digest_stream"])
    )
    prefix_equal = (
        cold_summary["digest_stream"][:shared]
        == warm_summary["digest_stream"][:shared]
    )
    for summary in (cold_summary, warm_summary):
        summary["digest_stream"] = hashlib.sha256(
            "".join(summary["digest_stream"]).encode()
        ).hexdigest()
    frames_ratio = {
        "uplink_bytes_per_frame": _ratio(
            cold_summary["uplink_bytes_per_frame"],
            warm_summary["uplink_bytes_per_frame"],
        ),
        "server_replay_ms_per_frame": _ratio(
            cold_summary["server_replay_ms_per_frame"],
            warm_summary["server_replay_ms_per_frame"],
        ),
    }
    out = {
        "game": game,
        "cold": cold_summary,
        "warm": warm_summary,
        "speedup": frames_ratio,
        "stream_prefix_equal": prefix_equal,
        "shared_prefix_frames": shared,
        "store": hub.namespace(app.name).report(),
    }
    if corrupted is not None:
        out["corrupted_digest"] = corrupted[:16]
    return out


def _ratio(cold: float, warm: float) -> float:
    if warm <= 0:
        return 0.0
    return round(cold / warm, 4)


def _corrupt_oldest_entry(store) -> str:
    """Flip the oldest entry's skeleton in place (the divergence drill).

    Corrupting the *skeleton* matters: a corrupted baseline would be
    self-correcting (the client diffs against the same corrupted values),
    but a skeleton flip reconstructs a different command sequence, which
    the server's digest check must catch.
    """
    entry = store.entries()[0]
    name, args = entry.skeleton[0]
    entry.skeleton = ((name + "_corrupted", args),) + entry.skeleton[1:]
    return entry.digest


# -- section 3: the fleet warm wave ------------------------------------------


def run_replay_fleet(
    duration_ms: float,
    seed: int,
    n_sessions: int = 6,
    game: str = "G5",
) -> Dict[str, Any]:
    """One cold + N-1 warm sessions of one title on a shared pool.

    Replay is incompatible with kernel sharding (per-shard hubs would
    break content-address invariance), so this section always runs the
    single-kernel fleet.
    """
    from repro.fleet.config import FleetConfig
    from repro.fleet.controller import FleetController
    from repro.fleet.session import SessionRequest
    from repro.sim.kernel import Simulator

    def wave(replay: bool) -> Dict[str, Any]:
        sim = Simulator(seed=seed)
        controller = FleetController(
            sim, [NVIDIA_SHIELD, LG_G5],
            FleetConfig(replay=replay),
        )
        controller.set_session_duration(duration_ms)

        def submit():
            yield controller.bootstrapped
            for i in range(n_sessions):
                controller.submit(
                    SessionRequest(f"s{i:02d}", GAMES[game], sim.now)
                )
                yield 150.0
        sim.spawn(submit(), name="replay.wave")
        sim.run(duration_ms * 4)
        report = controller.report()
        frames = sum(t["frames"] for t in report["tiers"].values())
        lost = sum(t["frames_lost"] for t in report["tiers"].values())
        mean_ms = 0.0
        if report["tiers"]:
            weighted = sum(
                t["mean_response_ms"] * t["frames"]
                for t in report["tiers"].values()
            )
            mean_ms = round(weighted / max(1, frames), 4)
        out = {
            "sessions_finished": report["sessions"]["finished"],
            "frames": frames,
            "frames_lost": lost,
            "mean_response_ms": mean_ms,
        }
        if replay:
            out["replay"] = report["replay"]
        return out

    baseline = wave(replay=False)
    warm = wave(replay=True)
    return {
        "sessions": n_sessions,
        "no_replay": baseline,
        "with_replay": warm,
        "response_speedup": _ratio(
            baseline["mean_response_ms"], warm["mean_response_ms"]
        ),
    }


# -- the artifact ------------------------------------------------------------


def run_replay_bench(seed: int = 0, smoke: bool = False) -> Dict[str, Any]:
    """Run every section and assemble the BENCH_REPLAY artifact."""
    session_ms = 4_000.0 if smoke else 15_000.0
    fleet_ms = 2_000.0 if smoke else 5_000.0
    pair = run_replay_pair(session_ms, seed)
    divergence = run_replay_pair(
        session_ms, seed, corrupt_after_cold=True
    )
    fleet = run_replay_fleet(fleet_ms, seed)
    bench: Dict[str, Any] = {
        "seed": seed,
        "smoke": smoke,
        "pair": pair,
        "divergence": divergence,
        "fleet": fleet,
    }
    blob = json.dumps(bench, sort_keys=True).encode()
    bench["digest"] = hashlib.sha256(blob).hexdigest()
    return {"schema": BENCH_REPLAY_SCHEMA, "deterministic": bench}


def validate_bench(bench: Any) -> List[str]:
    """Schema + acceptance gate for BENCH_REPLAY.json; empty == valid."""
    problems: List[str] = []
    if not isinstance(bench, dict):
        return [f"top level must be an object, got {type(bench).__name__}"]
    if bench.get("schema") != BENCH_REPLAY_SCHEMA:
        problems.append(f"'schema' must be {BENCH_REPLAY_SCHEMA!r}")
    det = bench.get("deterministic")
    if not isinstance(det, dict):
        return problems + ["missing 'deterministic' section"]
    if not isinstance(det.get("digest"), str):
        problems.append("missing 'deterministic.digest'")

    pair = det.get("pair")
    if not isinstance(pair, dict):
        problems.append("missing 'pair' section")
    else:
        warm = pair.get("warm", {})
        if not warm.get("replay", {}).get("hits"):
            problems.append("pair: warm session never hit the store")
        if not warm.get("replay", {}).get("promotions"):
            problems.append("pair: no serve was differentially verified")
        for side in ("cold", "warm"):
            if pair.get(side, {}).get("fidelity_mismatches"):
                problems.append(f"pair: {side} session broke fidelity")
        if not pair.get("stream_prefix_equal"):
            problems.append(
                "pair: cold and warm issue streams diverge — "
                "deterministic content is broken"
            )
        for metric in (
            "uplink_bytes_per_frame", "server_replay_ms_per_frame"
        ):
            speedup = pair.get("speedup", {}).get(metric, 0.0)
            if speedup < MIN_SPEEDUP:
                problems.append(
                    f"pair: warm {metric} only {speedup:.2f}x below cold "
                    f"(need >= {MIN_SPEEDUP:.0f}x)"
                )

    divergence = det.get("divergence")
    if not isinstance(divergence, dict):
        problems.append("missing 'divergence' section")
    else:
        warm = divergence.get("warm", {})
        if not warm.get("replay", {}).get("demotions"):
            problems.append(
                "divergence: corrupted entry was never demoted"
            )
        if not warm.get("replay", {}).get("fallbacks"):
            problems.append(
                "divergence: no fallback ran the full pipeline"
            )
        if warm.get("fidelity_mismatches"):
            problems.append(
                "divergence: corruption leaked into executed frames"
            )
        if not warm.get("frames"):
            problems.append("divergence: warm session did not complete")

    fleet = det.get("fleet")
    if not isinstance(fleet, dict):
        problems.append("missing 'fleet' section")
    else:
        warm_wave = fleet.get("with_replay", {})
        if warm_wave.get("frames_lost"):
            problems.append("fleet: replay wave lost frames")
        if not warm_wave.get("replay", {}).get("warm_sessions"):
            problems.append("fleet: no session was served warm")
        if fleet.get("response_speedup", 0.0) < 1.0:
            problems.append(
                "fleet: replay made the warm wave slower than baseline"
            )
    return problems


# -- the regression gate -----------------------------------------------------


def diff_against_baseline(
    current: Dict[str, Any], baseline: Dict[str, Any]
) -> Tuple[List[str], Optional[str]]:
    """Compare an artifact against the committed baseline.

    Returns ``(regressions, skip_reason)``; a non-``None`` skip reason
    means the artifacts are not comparable and the gate should be
    skipped, not failed.
    """
    cur = current.get("deterministic", {})
    base = baseline.get("deterministic", {})
    if baseline.get("schema") != current.get("schema"):
        return [], "baseline schema differs — regenerate the baseline"
    if (cur.get("seed"), cur.get("smoke")) != (
        base.get("seed"), base.get("smoke")
    ):
        return [], (
            f"baseline is seed={base.get('seed')} smoke={base.get('smoke')}, "
            f"run is seed={cur.get('seed')} smoke={cur.get('smoke')} — "
            "not comparable"
        )
    regressions: List[str] = []
    for metric in ("uplink_bytes_per_frame", "server_replay_ms_per_frame"):
        cur_v = cur.get("pair", {}).get("warm", {}).get(metric)
        base_v = base.get("pair", {}).get("warm", {}).get(metric)
        if cur_v is None or base_v is None:
            continue
        if cur_v > base_v * (1.0 + REGRESSION_TOLERANCE):
            regressions.append(
                f"warm {metric} regressed {base_v} -> {cur_v} "
                f"(>{REGRESSION_TOLERANCE:.0%} over baseline)"
            )
    return regressions, None


# -- output ------------------------------------------------------------------


def write_bench(path: str, bench: Dict[str, Any]) -> None:
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(bench, fh, indent=1, sort_keys=True)
        fh.write("\n")


def load_bench(path: str) -> Dict[str, Any]:
    with open(path, "r", encoding="utf-8") as fh:
        return json.load(fh)


def format_bench(bench: Dict[str, Any]) -> str:
    """Terminal summary: the cold/warm table plus the drill outcomes."""
    det = bench["deterministic"]
    pair = det["pair"]
    lines = [
        f"{'session':<8} {'frames':>6} {'uplink B/frame':>15} "
        f"{'server ms/frame':>16} {'hits':>5} {'promos':>6} {'fid':>4}"
    ]
    for side in ("cold", "warm"):
        s = pair[side]
        lines.append(
            f"{side:<8} {s['frames']:6d} {s['uplink_bytes_per_frame']:15.1f} "
            f"{s['server_replay_ms_per_frame']:16.5f} "
            f"{s['replay']['hits']:5d} {s['replay']['promotions']:6d} "
            f"{s['fidelity_mismatches']:4d}"
        )
    speedup = pair["speedup"]
    lines.append(
        f"speedup: uplink {speedup['uplink_bytes_per_frame']:.1f}x, "
        f"server {speedup['server_replay_ms_per_frame']:.1f}x "
        f"(gate >= {MIN_SPEEDUP:.0f}x)"
    )
    div = det["divergence"]["warm"]["replay"]
    lines.append(
        f"divergence drill: demotions={div['demotions']} "
        f"fallbacks={div['fallbacks']} "
        f"fidelity_mismatches="
        f"{det['divergence']['warm']['fidelity_mismatches']}"
    )
    fleet = det["fleet"]
    lines.append(
        f"fleet wave: {fleet['with_replay']['replay']['warm_sessions']} warm "
        f"/ {fleet['sessions']} sessions, response "
        f"{fleet['no_replay']['mean_response_ms']:.1f} -> "
        f"{fleet['with_replay']['mean_response_ms']:.1f} ms "
        f"({fleet['response_speedup']:.2f}x)"
    )
    lines.append(f"digest: {det['digest'][:16]}…")
    return "\n".join(lines)
