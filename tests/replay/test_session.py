"""ReplaySession protocol: record / bypass / serve, promotion, fallback."""

import pytest

from repro.apps import GAMES
from repro.check.digest import command_digest
from repro.codec.delta import DeltaError
from repro.core.config import GBoosterConfig
from repro.core.session import run_offload_session
from repro.devices import LG_G5, NVIDIA_SHIELD
from repro.gles import enums as gl
from repro.gles.commands import make_command
from repro.replay import (
    VERIFIED,
    ReplayHub,
    ReplaySession,
    ReplayStore,
    reconstruct_interval,
)


def frame(t: float):
    return [
        make_command("glUseProgram", 3),
        make_command("glUniform1f", 7, t),
        make_command("glUniform4f", 8, t * 0.5, 0.25, 1.0, 1.0),
        make_command("glDrawArrays", gl.GL_TRIANGLES, 0, 36),
    ]


def record_frame(session, commands, wire_bytes=400):
    decision = session.classify(commands)
    assert decision.action == "record"
    session.commit_record(
        decision, wire_bytes=wire_bytes, raw_bytes=800, nominal_commands=30
    )
    return decision


class TestProtocol:
    def test_record_then_own_bypass(self):
        store = ReplayStore("g5")
        rec = ReplaySession(store, "s-a")
        record_frame(rec, frame(0.1))
        again = rec.classify(frame(0.2))
        assert again.action == "bypass"
        assert rec.stats.own_skips == 1
        # The bypass occurrence's dynamics became one more variant.
        assert len(again.entry.variants) == 2

    def test_cross_session_serve_promotes_once(self):
        store = ReplayStore("g5")
        rec = ReplaySession(store, "s-a")
        record_frame(rec, frame(0.1))
        other = ReplaySession(store, "s-b")
        first = other.classify(frame(0.1))
        assert first.action == "serve"
        assert first.promote is True  # differential verification serve
        store.promote(first.digest)
        other.note_promotion()
        second = other.classify(frame(0.1))
        assert second.action == "serve"
        assert second.promote is False  # already VERIFIED
        assert store.get(first.digest).state == VERIFIED
        assert other.stats.hits == 2
        assert other.stats.verifies == 1
        assert other.stats.promotions == 1

    def test_serve_picks_closest_variant(self):
        store = ReplayStore("g5")
        rec = ReplaySession(store, "s-a")
        record_frame(rec, frame(0.1))
        rec.classify(frame(0.7))  # bypass deposits variant 1
        decision = ReplaySession(store, "s-b").classify(frame(0.7))
        assert decision.action == "serve"
        assert decision.variant == 1
        assert len(decision.patch) == 8  # exact match -> empty patch

    def test_reconstruction_matches_live_stream(self):
        store = ReplayStore("g5")
        record_frame(ReplaySession(store, "s-a"), frame(0.1))
        live = frame(0.9)
        decision = ReplaySession(store, "s-b").classify(live)
        rebuilt = reconstruct_interval(
            decision.entry, decision.patch, decision.variant
        )
        assert command_digest(rebuilt) == command_digest(live)

    def test_corrupt_entry_demotes_to_record(self):
        store = ReplayStore("g5")
        record_frame(ReplaySession(store, "s-a"), frame(0.1))
        entry = store.entries()[0]
        entry.variants[0] = entry.variants[0] + (0.0,)  # slot-count drift
        decision = ReplaySession(store, "s-b").classify(frame(0.1))
        assert decision.action == "record"
        assert entry.digest not in store
        assert store.stats.demotions == 1

    def test_worthless_patch_bypasses(self):
        store = ReplayStore("g5")
        # Record with a tiny wire cost so any non-empty patch is as big
        # as the full frame.
        record_frame(ReplaySession(store, "s-a"), frame(0.1), wire_bytes=2)
        decision = ReplaySession(store, "s-b").classify(frame(0.9))
        assert decision.action == "bypass"

    def test_divergence_accounting(self):
        session = ReplaySession(ReplayStore("g5"), "s-a")
        session.note_divergence()
        assert session.stats.demotions == 1
        assert session.stats.fallbacks == 1


class TestLifecycle:
    def test_close_releases_pins(self):
        store = ReplayStore("g5")
        rec = ReplaySession(store, "s-a")
        record_frame(rec, frame(0.1))
        other = ReplaySession(store, "s-b")
        other.classify(frame(0.2))  # serve retains the entry
        entry = store.entries()[0]
        assert entry.refcount == 2  # recorder pin + server pin
        rec.close()
        other.close()
        assert entry.refcount == 0

    def test_retain_is_deduped_per_session(self):
        store = ReplayStore("g5")
        record_frame(ReplaySession(store, "s-a"), frame(0.1))
        other = ReplaySession(store, "s-b")
        for t in (0.2, 0.3, 0.4):
            other.classify(frame(t))
        entry = store.entries()[0]
        assert entry.refcount == 2  # one pin per session, not per serve
        other.close()
        assert entry.refcount == 1


class TestReconstructErrors:
    def test_variant_out_of_range(self):
        store = ReplayStore("g5")
        record_frame(ReplaySession(store, "s-a"), frame(0.1))
        entry = store.entries()[0]
        patch = ReplaySession(store, "s-b").classify(frame(0.1)).patch
        with pytest.raises(DeltaError):
            reconstruct_interval(entry, patch, variant=5)
        with pytest.raises(DeltaError):
            reconstruct_interval(entry, patch, variant=-1)


class TestEndToEnd:
    def test_cold_warm_pair_replays_with_fidelity(self):
        hub = ReplayHub()
        config = GBoosterConfig(
            replay=True, check=True, deterministic_content=True
        )

        def one(session_id):
            return run_offload_session(
                GAMES["G5"], LG_G5, [NVIDIA_SHIELD],
                config=config, duration_ms=1500.0, seed=3,
                replay_hub=hub, replay_session_id=session_id,
            )

        cold = one("cold")
        warm = one("warm")
        assert cold.nodes[0].stats.replay_hits == 0  # recorder never serves
        assert warm.nodes[0].stats.replay_hits > 0
        assert warm.nodes[0].stats.replay_fallbacks == 0
        assert warm.replay.stats.promotions > 0
        assert cold.check.digests.fidelity_mismatches() == []
        assert warm.check.digests.fidelity_mismatches() == []
        # Deterministic content: both sessions issue the same stream.
        shared = min(
            len(cold.check.digests.stream()), len(warm.check.digests.stream())
        )
        assert (
            cold.check.digests.stream()[:shared]
            == warm.check.digests.stream()[:shared]
        )
        assert warm.client_stats.uplink_bytes < cold.client_stats.uplink_bytes

    def test_replay_off_has_no_replay_state(self):
        result = run_offload_session(
            GAMES["G5"], LG_G5, [NVIDIA_SHIELD],
            config=GBoosterConfig(deterministic_content=True),
            duration_ms=1000.0, seed=3,
        )
        assert result.replay is None
        assert result.nodes[0].stats.replay_hits == 0
