"""F6: Fig 6 — normalized energy, with and without interface switching.

Paper: every game saves energy offloaded (action games the most, up to
~70%); disabling the Bluetooth/WiFi switching optimization costs a large
chunk of the saving (G1: 40% -> 65% normalized).
"""

from conftest import print_table

from repro.devices.profiles import LG_G5, LG_NEXUS_5
from repro.experiments.energy import format_rows, run_figure6


def test_fig6_energy(run_once, session_duration_ms):
    rows = run_once(
        run_figure6,
        duration_ms=session_duration_ms,
        devices=[LG_NEXUS_5],
    )
    print_table(
        "Fig 6: normalized energy on Nexus 5 "
        "(paper: action ~30-40%, puzzle ~70%; without switching all rise)",
        "", format_rows(rows).splitlines(),
    )
    by_game = {r.game: r for r in rows}
    for row in rows:
        # (a) every game saves energy when offloaded...
        assert row.normalized_with_switching < 0.9, row.game
        # (b) ...and disabling switching never helps.
        assert row.normalized_without_switching >= (
            row.normalized_with_switching - 0.02
        ), row.game
    # Genre ordering: action games save more than puzzle games.
    action = min(
        by_game["G1"].normalized_with_switching,
        by_game["G2"].normalized_with_switching,
    )
    puzzle = max(
        by_game["G5"].normalized_with_switching,
        by_game["G6"].normalized_with_switching,
    )
    assert action < puzzle
    # The switching mechanism shows a clear benefit on at least one
    # BT-friendly game (paper shows it on G1).
    assert max(r.switching_benefit for r in rows) > 0.03


def test_fig6_energy_new_device(run_once):
    """Fig 6(a)'s second panel: the LG G5 also saves energy offloaded —
    the GPU power removed dwarfs the radio cost even when FPS is flat."""
    rows = run_once(
        run_figure6,
        duration_ms=120_000.0,
        devices=[LG_G5],
        games=["G1", "G3", "G5"],
    )
    print_table(
        "Fig 6 (LG G5): normalized energy",
        "", format_rows(rows).splitlines(),
    )
    for row in rows:
        assert row.normalized_with_switching < 0.95, row.game
        assert row.normalized_without_switching >= (
            row.normalized_with_switching - 0.02
        )
