"""Turbo incremental image codec: real-pixel and descriptor paths."""

import numpy as np
import pytest

from repro.codec.frames import FrameImage, SyntheticFrameSource
from repro.codec.turbo import (
    TurboEncoder,
    _quantize_tile,
    _tile_deltas,
    decode_deltas,
    encode_deltas,
)


class TestRealPath:
    def test_keyframe_then_static_frames_shrink(self):
        encoder = TurboEncoder()
        frame = np.full((64, 64, 3), 120, dtype=np.uint8)
        first = encoder.encode_array(frame)
        second = encoder.encode_array(frame.copy())
        assert first.keyframe
        assert not second.keyframe
        assert second.size_bytes < first.size_bytes / 5
        assert second.tiles_sent == 0

    def test_local_change_ships_only_changed_tiles(self):
        encoder = TurboEncoder()
        frame = np.zeros((64, 64, 3), dtype=np.uint8)
        encoder.encode_array(frame)
        frame2 = frame.copy()
        frame2[0:16, 0:16] = 200   # exactly one tile
        result = encoder.encode_array(frame2)
        assert result.tiles_sent == 1

    def test_flat_tiles_compress_better_than_noise(self):
        flat_encoder = TurboEncoder()
        flat = np.full((64, 64, 3), 77, dtype=np.uint8)
        flat_size = flat_encoder.encode_array(flat).size_bytes

        noise_encoder = TurboEncoder()
        rng = np.random.default_rng(0)
        noisy = rng.integers(0, 256, size=(64, 64, 3), dtype=np.uint8)
        noisy_size = noise_encoder.encode_array(noisy).size_bytes
        assert flat_size < noisy_size / 3

    def test_quality_knob_changes_size(self):
        rng = np.random.default_rng(1)
        frame = rng.integers(0, 256, size=(64, 64, 3), dtype=np.uint8)
        low = TurboEncoder(quality=20).encode_array(frame).size_bytes
        high = TurboEncoder(quality=95).encode_array(frame).size_bytes
        assert low < high

    def test_moving_scene_ratio_reasonable(self):
        """On the synthetic game scene the paper's 'up to 25:1' is reachable
        for mild motion."""
        source = SyntheticFrameSource(width=320, height=240, motion_px=2.0,
                                      seed=3)
        encoder = TurboEncoder()
        for frame in source.frames(30):
            encoder.encode_array(frame)
        assert encoder.stats.compression_ratio > 8.0

    def test_fast_motion_costs_more_than_slow(self):
        def run(motion):
            source = SyntheticFrameSource(width=160, height=120,
                                          motion_px=motion, seed=4)
            encoder = TurboEncoder()
            for frame in source.frames(20):
                encoder.encode_array(frame)
            return encoder.stats.encoded_bytes

        assert run(12.0) > run(0.5)

    def test_rejects_bad_shape(self):
        encoder = TurboEncoder()
        with pytest.raises(ValueError):
            encoder.encode_array(np.zeros((64, 64), dtype=np.uint8))

    def test_reset_forces_keyframe(self):
        encoder = TurboEncoder()
        frame = np.zeros((32, 32, 3), dtype=np.uint8)
        encoder.encode_array(frame)
        encoder.reset()
        assert encoder.encode_array(frame).keyframe


class TestDescriptorPath:
    def test_size_scales_with_change_fraction(self):
        encoder = TurboEncoder()
        calm = encoder.encode_descriptor(
            FrameImage(1280, 720, change_fraction=0.1, detail=0.7)
        )
        busy = encoder.encode_descriptor(
            FrameImage(1280, 720, change_fraction=0.9, detail=0.7)
        )
        assert busy.size_bytes > 5 * calm.size_bytes

    def test_detail_degrades_ratio(self):
        encoder = TurboEncoder()
        flat = encoder.encode_descriptor(
            FrameImage(640, 480, change_fraction=0.5, detail=0.1)
        )
        noisy = encoder.encode_descriptor(
            FrameImage(640, 480, change_fraction=0.5, detail=0.9)
        )
        assert noisy.size_bytes > flat.size_bytes

    def test_keyframe_ships_everything(self):
        encoder = TurboEncoder()
        result = encoder.encode_descriptor(
            FrameImage(640, 480, change_fraction=0.0), keyframe=True
        )
        tiles_total = (-(-480 // 16)) * (-(-640 // 16))
        assert result.tiles_sent == tiles_total

    def test_encode_time_scales_with_sent_tiles(self):
        encoder = TurboEncoder()
        calm = encoder.encode_descriptor(
            FrameImage(1280, 720, change_fraction=0.05)
        )
        busy = encoder.encode_descriptor(
            FrameImage(1280, 720, change_fraction=0.95)
        )
        # The diff pass is a fixed ~35% share, so the spread is ~2.5x.
        assert busy.encode_time_ms > 2 * calm.encode_time_ms

    def test_throughput_is_papers_ninety_mp_s(self):
        encoder = TurboEncoder()
        # A full-change 0.92 MP frame: diff pass + all tiles.
        result = encoder.encode_descriptor(
            FrameImage(1280, 720, change_fraction=1.0)
        )
        assert result.encode_time_ms == pytest.approx(
            1280 * 720 / 90_000.0, rel=0.01
        )

    def test_invalid_descriptor_rejected(self):
        with pytest.raises(ValueError):
            FrameImage(0, 480, change_fraction=0.5)
        with pytest.raises(ValueError):
            FrameImage(640, 480, change_fraction=1.5)
        with pytest.raises(ValueError):
            FrameImage(640, 480, change_fraction=0.5, detail=-0.1)

    def test_invalid_quality_rejected(self):
        with pytest.raises(ValueError):
            TurboEncoder(quality=0)


class TestDeltaRoundTrip:
    """The lossless layer under the tile codec: decode(encode(d)) == d."""

    def roundtrip(self, deltas):
        flat = np.asarray(deltas, dtype=np.uint8)
        back = decode_deltas(encode_deltas(flat), flat.size)
        assert np.array_equal(back, flat)

    def test_empty(self):
        self.roundtrip([])

    def test_single_value(self):
        self.roundtrip([7])

    def test_constant_run_beyond_rle_limit(self):
        # 600 equal values cross the 255-per-run RLE ceiling twice.
        self.roundtrip([42] * 600)

    def test_two_symbol_stream_hits_packed_mode(self):
        flat = np.array([0, 9] * 200, dtype=np.uint8)
        blob = encode_deltas(flat)
        assert blob[0] == 2          # 2-bit packed mode won
        self.roundtrip(flat)

    def test_odd_length_packed_padding(self):
        # Packed modes pad to a whole byte; the out-of-band length must
        # cut the padding off exactly.
        for n in (1, 3, 5, 7, 9):
            self.roundtrip(list(range(4)) * 4 + [1] * n)

    def test_seeded_random_streams(self):
        rng = np.random.default_rng(11)
        for _ in range(50):
            n = int(rng.integers(0, 800))
            self.roundtrip(rng.integers(0, 256, size=n, dtype=np.uint8))

    def test_seeded_small_alphabets(self):
        rng = np.random.default_rng(12)
        for alphabet in (2, 4, 15, 16, 17):
            symbols = rng.integers(0, 256, size=alphabet, dtype=np.uint8)
            idx = rng.integers(0, alphabet, size=300)
            self.roundtrip(symbols[idx])

    def test_tile_path_round_trips(self):
        rng = np.random.default_rng(13)
        tile = rng.integers(0, 256, size=(16, 16, 3), dtype=np.uint8)
        deltas = _tile_deltas(tile, quality=80)
        blob = _quantize_tile(tile, quality=80)
        assert np.array_equal(decode_deltas(blob, deltas.size), deltas)

    def test_corrupt_blobs_raise(self):
        flat = np.array([1, 2, 3, 4] * 10, dtype=np.uint8)
        blob = encode_deltas(flat)
        with pytest.raises(ValueError):
            decode_deltas(b"", flat.size)
        with pytest.raises(ValueError):
            decode_deltas(blob, flat.size + 1000)
        with pytest.raises(ValueError):
            decode_deltas(b"\x09" + blob[1:], flat.size)


class TestCalibration:
    def test_descriptor_path_tracks_real_path(self):
        """The modelled path must agree with the measured path within 2x on
        the synthetic corpus — it stands in for it during long sessions."""
        source = SyntheticFrameSource(width=320, height=240, motion_px=4.0,
                                      seed=7)
        real = TurboEncoder()
        frames = list(source.frames(25))
        for frame in frames[:1]:
            real.encode_array(frame)
        real_sizes = [real.encode_array(f).size_bytes for f in frames[1:]]

        modelled = TurboEncoder()
        # Estimate change fraction from the real frames.
        sizes = []
        prev = frames[0]
        for f in frames[1:]:
            delta = np.abs(f.astype(np.int16) - prev.astype(np.int16))
            tile_changes = 0
            tiles = 0
            for y in range(0, 240, 16):
                for x in range(0, 320, 16):
                    tiles += 1
                    if delta[y:y + 16, x:x + 16].max() > 4:
                        tile_changes += 1
            desc = FrameImage(320, 240, change_fraction=tile_changes / tiles,
                              detail=0.5)
            sizes.append(modelled.encode_descriptor(desc).size_bytes)
            prev = f
        real_total = sum(real_sizes)
        modelled_total = sum(sizes)
        # The modelled path is calibrated to libjpeg-turbo-class ratios; the
        # from-scratch tile codec is honest but somewhat weaker, so the
        # agreement bound is loose on the low side.
        assert 0.3 < modelled_total / real_total < 2.5
