"""F5: Fig 5 — application acceleration, the paper's headline evaluation.

Six games x {Nexus 5, LG G5} x {local, GBooster vs the Shield}, reporting
median FPS (a/d), FPS stability (b/e) and average response time (c/f).
Paper anchors on the Nexus 5: G1 23->37, G2 22->40, G5 50->52; on the
LG G5 the prototype barely moves the metrics.
"""

import pytest
from conftest import print_table

from repro.apps.games import GAMES
from repro.devices.profiles import LG_G5, LG_NEXUS_5
from repro.experiments.acceleration import format_rows, run_figure5


@pytest.mark.parametrize("device", [LG_NEXUS_5, LG_G5],
                         ids=["nexus5", "lg_g5"])
def test_fig5_matrix(run_once, session_duration_ms, device):
    rows = run_once(
        run_figure5,
        duration_ms=session_duration_ms,
        devices=[device],
    )
    print_table(
        f"Fig 5 ({device.name}): median FPS / stability / response",
        "", format_rows(rows).splitlines(),
    )
    by_game = {r.game: r for r in rows}
    if device is LG_NEXUS_5:
        # Action games gain dramatically (paper: +60% to +85%).
        assert by_game["G1"].fps_boost_percent > 35.0
        assert by_game["G2"].fps_boost_percent > 45.0
        # Puzzle games barely move (paper: 50 -> 52).
        assert abs(by_game["G5"].boosted_fps - by_game["G5"].local_fps) <= 4
        # Local medians match the paper's anchors.
        assert by_game["G1"].local_fps == pytest.approx(23, abs=1.5)
        assert by_game["G2"].local_fps == pytest.approx(22, abs=1.5)
        assert by_game["G5"].local_fps == pytest.approx(50, abs=3.0)
        # Every offloaded response stays below ~60 ms (paper: < 36 ms).
        for row in rows:
            assert row.boosted_response_ms < 60.0
    else:
        # New-generation device: every game within a few FPS of local.
        for row in rows:
            assert abs(row.boosted_fps - row.local_fps) <= 6.0
        # ...and response time increases (Eq. 5's t_p with no FPS gain).
        assert sum(
            1 for r in rows if r.boosted_response_ms > r.local_response_ms
        ) >= 4


def test_fig5_stability_long_session(run_once):
    """Stability needs the 15-minute session: the Nexus 5 throttles after
    ~10 min locally (paper: 60% stability), while offloading to the
    fan-cooled Shield holds steady (paper: 75%)."""
    from repro.experiments.acceleration import run_acceleration_cell

    row = run_once(
        run_acceleration_cell, GAMES["G1"], LG_NEXUS_5,
        duration_ms=900_000.0,
    )
    print_table(
        "Fig 5(b) long-run stability for G1 on Nexus 5",
        "mode / stability",
        [
            f"local    {row.local_stability * 100:.0f}%  (paper 60%)",
            f"boosted  {row.boosted_stability * 100:.0f}%  (paper 75%)",
        ],
    )
    assert row.local_stability < 0.8          # thermal throttle bites
    assert row.boosted_stability > row.local_stability
