"""GPU hardware specifications.

Fillrates follow the figures the paper quotes (Table I and §III): mobile
flagships at 3.6–6.7 GP/s, the Nvidia Shield console at 16 GP/s, desktop
GPUs roughly 10x mobile.

Thermal parameters are calibrated against Fig 1: a passively cooled phone
GPU under full load follows Newtonian heating toward an equilibrium above
its throttle threshold, crossing it after roughly ten minutes; once the
governor collapses the clock, the low-frequency equilibrium still sits
above the recovery threshold, so the device stays throttled for the rest of
the session (the sustained drop visible in the paper's trace).  Fan-cooled
service devices have low-equilibrium thermals and never throttle.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class GPUSpec:
    """Static description of one GPU."""

    name: str
    fillrate_gpixels: float        # GP/s at max frequency
    max_freq_mhz: int
    min_freq_mhz: int
    active_power_w: float          # draw at 100% utilization, max frequency
    idle_power_w: float
    throttle_temp_c: float         # governor trips above this
    recover_temp_c: float          # governor restores below this
    heat_rate_c_per_joule: float   # temperature rise per joule dissipated
    cooling_coeff_per_s: float     # Newtonian cooling constant
    ambient_c: float = 30.0
    active_cooling: bool = False   # fans: large cooling_coeff, no throttling

    def capacity_at(self, freq_mhz: float) -> float:
        """Effective fill capacity (GP/s) at the given clock."""
        if freq_mhz <= 0:
            return 0.0
        return self.fillrate_gpixels * (freq_mhz / self.max_freq_mhz)

    def equilibrium_temp(self, power_w: float) -> float:
        """Steady-state temperature under constant dissipation."""
        return self.ambient_c + (
            self.heat_rate_c_per_joule * power_w / self.cooling_coeff_per_s
        )


# -- mobile GPUs (user devices) ---------------------------------------------
#
# Full-load equilibria sit near 100 C (above the ~92 C throttle point, so
# the threshold is crossed after ~10 min from a 35 C start), while the
# min-frequency equilibria stay above the recovery threshold so the
# throttle latches — both calibrated to the Fig 1 trace.

ADRENO_330 = GPUSpec(
    # LG Nexus 5 (2013).  Crosses 92 C after ~10.5 min at full load.
    name="Adreno 330",
    fillrate_gpixels=3.6,
    max_freq_mhz=450,
    min_freq_mhz=200,
    active_power_w=2.9,
    idle_power_w=0.08,
    throttle_temp_c=92.0,
    recover_temp_c=45.0,
    heat_rate_c_per_joule=0.0797,
    cooling_coeff_per_s=0.0033,
)

ADRENO_420 = GPUSpec(
    # Samsung Galaxy S5 (2014), Table I row for 2014.
    name="Adreno 420",
    fillrate_gpixels=3.6,
    max_freq_mhz=600,
    min_freq_mhz=200,
    active_power_w=3.0,
    idle_power_w=0.08,
    throttle_temp_c=92.0,
    recover_temp_c=45.0,
    heat_rate_c_per_joule=0.0770,
    cooling_coeff_per_s=0.0033,
)

ADRENO_418 = GPUSpec(
    # LG G4 (2015) — the Fig 1 trace device: 600 MHz steady for ~10 min,
    # then the governor collapses the clock to 100 MHz for the remainder.
    name="Adreno 418",
    fillrate_gpixels=4.8,
    max_freq_mhz=600,
    min_freq_mhz=100,
    active_power_w=3.1,
    idle_power_w=0.08,
    throttle_temp_c=91.0,
    recover_temp_c=40.0,
    heat_rate_c_per_joule=0.0745,
    cooling_coeff_per_s=0.0033,
)

ADRENO_530 = GPUSpec(
    # LG G5 (2016): bigger thermal envelope, full-load equilibrium ~88 C,
    # below its throttle point — the new device does not throttle in a
    # 15-minute session, matching Fig 5(d)/(e).
    name="Adreno 530",
    fillrate_gpixels=6.7,
    max_freq_mhz=624,
    min_freq_mhz=133,
    active_power_w=3.3,
    idle_power_w=0.09,
    throttle_temp_c=93.0,
    recover_temp_c=50.0,
    heat_rate_c_per_joule=0.0791,
    cooling_coeff_per_s=0.0045,
)

# -- service device GPUs --------------------------------------------------------

TEGRA_X1 = GPUSpec(
    # Nvidia Shield game console (§III): fillrate up to 16 GP/s, fan cooled.
    name="Tegra X1 (Nvidia Shield)",
    fillrate_gpixels=16.0,
    max_freq_mhz=1000,
    min_freq_mhz=76,
    active_power_w=15.0,
    idle_power_w=0.9,
    throttle_temp_c=97.0,
    recover_temp_c=85.0,
    heat_rate_c_per_joule=0.004,
    cooling_coeff_per_s=0.15,
    active_cooling=True,
)

MALI_450 = GPUSpec(
    # Minix Neo U1 smart-TV box: modest but fan-assisted.
    name="Mali-450 MP4 (Minix Neo U1)",
    fillrate_gpixels=4.4,
    max_freq_mhz=750,
    min_freq_mhz=250,
    active_power_w=4.0,
    idle_power_w=0.3,
    throttle_temp_c=95.0,
    recover_temp_c=85.0,
    heat_rate_c_per_joule=0.008,
    cooling_coeff_per_s=0.08,
    active_cooling=True,
)

QUADRO_2000M = GPUSpec(
    # Dell Precision M4600 laptop.
    name="Quadro 2000M (Dell M4600)",
    fillrate_gpixels=9.8,
    max_freq_mhz=550,
    min_freq_mhz=135,
    active_power_w=55.0,
    idle_power_w=4.0,
    throttle_temp_c=99.0,
    recover_temp_c=88.0,
    heat_rate_c_per_joule=0.002,
    cooling_coeff_per_s=0.2,
    active_cooling=True,
)

GTX_750_TI = GPUSpec(
    # Dell Optiplex 9010 desktops with GTX 750 Ti (§VII-A): ~10x mobile.
    name="GeForce GTX 750 Ti (Optiplex 9010)",
    fillrate_gpixels=16.3,
    max_freq_mhz=1020,
    min_freq_mhz=135,
    active_power_w=60.0,
    idle_power_w=5.0,
    throttle_temp_c=99.0,
    recover_temp_c=88.0,
    heat_rate_c_per_joule=0.0015,
    cooling_coeff_per_s=0.25,
    active_cooling=True,
)

ALL_GPUS = {
    spec.name: spec
    for spec in (
        ADRENO_330,
        ADRENO_420,
        ADRENO_418,
        ADRENO_530,
        TEGRA_X1,
        MALI_450,
        QUADRO_2000M,
        GTX_750_TI,
    )
}
