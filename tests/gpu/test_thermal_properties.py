"""Property-based checks on the thermal model."""

from hypothesis import given, settings, strategies as st

from repro.gpu.profiles import ADRENO_418
from repro.gpu.thermal import ThermalModel


@settings(max_examples=100, deadline=None)
@given(
    t0=st.floats(min_value=20.0, max_value=110.0),
    power=st.floats(min_value=0.0, max_value=5.0),
    dt=st.floats(min_value=0.1, max_value=10_000.0),
)
def test_temperature_bounded_between_start_and_equilibrium(t0, power, dt):
    model = ThermalModel(ADRENO_418, initial_temp_c=t0)
    t_eq = ADRENO_418.equilibrium_temp(power)
    result = model.advance(dt, power)
    low, high = min(t0, t_eq), max(t0, t_eq)
    assert low - 1e-6 <= result <= high + 1e-6


@settings(max_examples=100, deadline=None)
@given(
    t0=st.floats(min_value=20.0, max_value=110.0),
    power=st.floats(min_value=0.0, max_value=5.0),
    dt=st.floats(min_value=0.1, max_value=500.0),
    splits=st.integers(min_value=2, max_value=10),
)
def test_step_splitting_invariance(t0, power, dt, splits):
    """Closed-form integration: N sub-steps equal one big step."""
    one = ThermalModel(ADRENO_418, initial_temp_c=t0)
    many = ThermalModel(ADRENO_418, initial_temp_c=t0)
    one.advance(dt, power)
    for _ in range(splits):
        many.advance(dt / splits, power)
    assert abs(one.temperature_c - many.temperature_c) < 1e-6


@settings(max_examples=60, deadline=None)
@given(
    power_a=st.floats(min_value=0.0, max_value=2.0),
    power_b=st.floats(min_value=2.01, max_value=5.0),
    dt=st.floats(min_value=1.0, max_value=1000.0),
)
def test_more_power_never_cooler(power_a, power_b, dt):
    cool = ThermalModel(ADRENO_418, initial_temp_c=40.0)
    hot = ThermalModel(ADRENO_418, initial_temp_c=40.0)
    cool.advance(dt, power_a)
    hot.advance(dt, power_b)
    assert hot.temperature_c >= cool.temperature_c - 1e-9
