"""Event loop, processes and synchronization primitives.

The kernel is a conventional coroutine-based discrete-event simulator in the
style of SimPy, kept intentionally small and fully deterministic:

* :class:`Simulator` owns the event queue and the clock (milliseconds).
* :class:`Process` wraps a generator; the generator yields *waitables*
  (events, delays, or other processes) and is resumed when they fire.
* Ties in the event queue are broken by insertion order, never by object
  identity, so two runs with the same seed replay identically.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, Generator, Iterable, List, Optional, Tuple

from repro.sim.random import RandomStream
from repro.sim.trace import Tracer


class SimulationError(RuntimeError):
    """Raised for kernel misuse (double triggers, time travel, ...)."""


class Interrupt(Exception):
    """Thrown into a process that is interrupted while waiting.

    The ``cause`` attribute carries the value passed to
    :meth:`Process.interrupt`.
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class Event:
    """A one-shot occurrence that processes can wait on.

    An event is *triggered* at most once with an optional value.  Processes
    waiting on it are resumed at the trigger time, in the order they started
    waiting.
    """

    def __init__(self, sim: "Simulator", name: str = ""):
        self.sim = sim
        self.name = name
        self.triggered = False
        self.value: Any = None
        self._waiters: List["Process"] = []

    def trigger(self, value: Any = None) -> "Event":
        """Fire the event, waking all waiters at the current time."""
        if self.triggered:
            raise SimulationError(f"event {self.name!r} triggered twice")
        self.triggered = True
        self.value = value
        for proc in self._waiters:
            self.sim._schedule_resume(proc, value)
        self._waiters.clear()
        return self

    def add_waiter(self, proc: "Process") -> None:
        if self.triggered:
            self.sim._schedule_resume(proc, self.value)
        else:
            self._waiters.append(proc)

    def remove_waiter(self, proc: "Process") -> None:
        if proc in self._waiters:
            self._waiters.remove(proc)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "triggered" if self.triggered else "pending"
        return f"<Event {self.name!r} {state}>"


class TimerEvent(Event):
    """The event :meth:`Simulator.timeout` returns, backed by a timer process.

    Triggering it early (externally, before the delay expires) kills the
    backing ``_timer`` process, so a satisfied timeout never keeps
    :meth:`Simulator.run` alive for the rest of its delay — the same leak
    class the transport's RTO timers had before they became cancellable.
    ``cancel`` abandons a pending timer outright without triggering it,
    which is how :meth:`Simulator.any_of` reaps losing timeouts.
    """

    def __init__(self, sim: "Simulator", name: str = ""):
        super().__init__(sim, name=name)
        #: the process sleeping out the delay; killed on early trigger
        self._timer: Optional["Process"] = None
        self._firing = False

    @property
    def timer(self) -> Optional["Process"]:
        """Handle on the backing timer process (for tests and reapers)."""
        return self._timer

    def trigger(self, value: Any = None) -> "Event":
        super().trigger(value)
        if not self._firing and self._timer is not None:
            # Externally triggered: the timer is still sleeping out the
            # delay — reap it so the queue can drain now.
            self._timer.kill()
        return self

    def cancel(self) -> None:
        """Abandon the pending timer without ever triggering the event."""
        if not self.triggered and self._timer is not None:
            self._timer.kill()


class CompositeEvent(Event):
    """An event combined from other events (``any_of`` / ``all_of``).

    Besides behaving like a plain :class:`Event`, it keeps handles on its
    watcher processes and source events so it can be *abandoned*:
    :meth:`abandon` kills watchers still parked on sources that may never
    fire (they would otherwise sit in waiter lists forever, pinning the
    partially-filled values of an ``all_of``) and reaps orphaned pending
    timeouts, mirroring the reaping ``any_of`` performs when a winner
    fires.  :meth:`Simulator.teardown` abandons every still-pending
    composite, so a discarded simulator never leaks watcher processes.
    """

    def __init__(self, sim: "Simulator", events: Iterable[Event], name: str = ""):
        super().__init__(sim, name=name)
        self._sources: List[Event] = list(events)
        self._watchers: List["Process"] = []

    def abandon(self) -> None:
        """Reap the watcher processes; the composite will never be waited on."""
        for watcher in self._watchers:
            if watcher.alive:
                watcher.kill()
        for evt in self._sources:
            if (
                isinstance(evt, TimerEvent)
                and not evt.triggered
                and not evt._waiters
            ):
                evt.cancel()


class Process:
    """A running coroutine on the simulator.

    The wrapped generator may yield:

    * a ``float``/``int`` — sleep for that many milliseconds;
    * an :class:`Event` — wait until it is triggered (resumes with its value);
    * another :class:`Process` — wait for it to finish (resumes with its
      return value);
    * ``None`` — yield control and resume immediately (same timestamp).

    When the generator returns, the process's completion event fires with the
    returned value.
    """

    def __init__(self, sim: "Simulator", gen: Generator, name: str = ""):
        self.sim = sim
        self.gen = gen
        self.name = name or getattr(gen, "__name__", "process")
        self.done = Event(sim, name=f"{self.name}.done")
        self.alive = True
        self._waiting_on: Optional[Event] = None
        self._pending_interrupt: Optional[Interrupt] = None
        #: resume generation.  Every queue entry is stamped with the
        #: generation current when it was scheduled; interrupting or
        #: killing the process bumps it, so a resumption that was already
        #: sitting in the queue (a delay sleep has no ``_waiting_on`` to
        #: detach from) is recognized as stale and discarded instead of
        #: waking the process a second time with a spurious ``None``.
        self._gen = 0

    @property
    def result(self) -> Any:
        if not self.done.triggered:
            raise SimulationError(f"process {self.name!r} has not finished")
        return self.done.value

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time."""
        if not self.alive:
            return
        if self._waiting_on is not None:
            self._waiting_on.remove_waiter(self)
            self._waiting_on = None
        # Invalidate whatever resumption is already queued (a plain delay
        # sleep keeps one there); only the interrupt resume below is live.
        self._gen += 1
        self._pending_interrupt = Interrupt(cause)
        self.sim._schedule_resume(self, None)

    def kill(self) -> None:
        """Tear the process down immediately, without running it again.

        Unlike :meth:`interrupt`, no resumption is scheduled: the process is
        detached from whatever it was waiting on, its generator is closed,
        and any stale entry it still has in the event queue is skipped by
        the run loop *without advancing the clock*.  This is the primitive
        behind cancellable timers — an ACKed retransmission timeout must not
        keep ``Simulator.run()`` alive until its expiry.
        """
        if not self.alive:
            return
        if self._waiting_on is not None:
            self._waiting_on.remove_waiter(self)
            self._waiting_on = None
        self.alive = False
        self._gen += 1
        self._pending_interrupt = None
        self.gen.close()
        if not self.done.triggered:
            self.done.trigger(None)

    def _step(self, value: Any) -> None:
        """Advance the generator by one yield."""
        self._waiting_on = None
        try:
            if self._pending_interrupt is not None:
                exc = self._pending_interrupt
                self._pending_interrupt = None
                target = self.gen.throw(exc)
            else:
                target = self.gen.send(value)
        except StopIteration as stop:
            self.alive = False
            self.done.trigger(stop.value)
            return
        except Interrupt:
            # Interrupt escaped the generator: treat as a clean cancel.
            self.alive = False
            self.done.trigger(None)
            return
        self._wait_on(target)

    def _wait_on(self, target: Any) -> None:
        sim = self.sim
        if target is None:
            sim._schedule_resume(self, None)
        elif isinstance(target, (int, float)):
            if target < 0:
                raise SimulationError(
                    f"process {self.name!r} yielded negative delay {target}"
                )
            sim._schedule_resume(self, None, delay=float(target))
        elif isinstance(target, Event):
            self._waiting_on = target
            target.add_waiter(self)
        elif isinstance(target, Process):
            self._waiting_on = target.done
            target.done.add_waiter(self)
        else:
            raise SimulationError(
                f"process {self.name!r} yielded unsupported {target!r}"
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "alive" if self.alive else "done"
        return f"<Process {self.name!r} {state}>"


class Simulator:
    """The event loop: a clock plus a priority queue of resumptions."""

    def __init__(
        self,
        seed: int = 0,
        tracer: Optional[Tracer] = None,
        shard_id: int = 0,
    ):
        # Deferred import: repro.obs sits above repro.sim in the layer
        # diagram; importing it at module scope would be circular.
        from repro.obs.registry import MetricsRegistry
        from repro.obs.ring import RingTracer
        from repro.obs.spans import SpanRecorder

        if shard_id < 0:
            raise SimulationError(f"negative shard_id {shard_id}")
        self.seed = seed
        #: which shard of a partitioned fleet this kernel simulates; random
        #: streams are namespaced by it so sibling shards never share draws
        #: (shard 0 keeps the legacy single-kernel derivation exactly)
        self.shard_id = shard_id
        self.now = 0.0
        self.tracer = tracer or RingTracer()
        #: frame/stage span recorder; substrates emit hierarchical spans here
        self.spans = SpanRecorder(clock=lambda: self.now)
        #: counters / gauges / histograms registry
        self.metrics = MetricsRegistry()
        #: optional repro.check.DigestLog; substrates record per-frame
        #: command digests here when differential replay is armed
        self.digests: Optional[Any] = None
        #: optional repro.check.InvariantMonitor; notified of new timers
        self.monitor: Optional[Any] = None
        #: optional repro.obs.telemetry.TelemetryHub; substrates stream
        #: labeled time-series observations here when armed
        self.telemetry: Optional[Any] = None
        #: optional repro.obs.causal.CausalLog; components on a frame's
        #: path record wire-propagated causal events here when armed
        self.causal: Optional[Any] = None
        #: optional repro.obs.flight.FlightRecorder; alert/violation/
        #: replan triggers freeze postmortem bundles here when armed
        self.flight: Optional[Any] = None
        self._queue: List[Tuple[float, int, Process, int, Any]] = []
        self._counter = itertools.count()
        self._message_seq = itertools.count(1)
        self._streams: dict = {}
        self._processes: List[Process] = []
        self._composites: List[CompositeEvent] = []

    def next_message_id(self) -> int:
        """The next sim-scoped network message id.

        Message ids land in trace records (link drops) and so in frozen
        flight bundles; drawing them from the sim instead of the
        process-global fallback counter keeps those artifacts a pure
        function of the seed no matter how many sims one process ran.
        """
        return next(self._message_seq)

    # -- randomness ---------------------------------------------------------

    def stream(self, name: str) -> RandomStream:
        """Return the named random stream, creating it deterministically.

        The stream is a pure function of ``(seed, shard_id, name)`` —
        never of creation order — so two runs that create their streams in
        different orders draw identical sequences per name, and sibling
        shards of a partitioned fleet draw from disjoint namespaces.
        """
        if name not in self._streams:
            self._streams[name] = RandomStream(
                self.seed, name, shard_id=self.shard_id
            )
        return self._streams[name]

    # -- process / event management ----------------------------------------

    def spawn(self, gen: Generator, name: str = "") -> Process:
        """Start a new process; it first runs at the current time."""
        proc = Process(self, gen, name=name)
        self._processes.append(proc)
        # Long sessions spawn one short-lived process per message/timer;
        # keep the registry from growing without bound.
        if len(self._processes) > 8192:
            self._processes = [p for p in self._processes if p.alive]
            self._composites = [
                c for c in self._composites if not c.triggered
            ]
        self._schedule_resume(proc, None)
        return proc

    def spawn_at(self, when: float, gen: Generator, name: str = "") -> Process:
        """Start a new process at absolute time ``when``, exactly.

        Unlike ``spawn`` + an initial delay yield, the first step is
        queued at the literal float ``when`` — no ``now + (when - now)``
        round trip — so processes anchored to a shared epoch wake at
        bit-identical times regardless of the current clock value.
        """
        if when < self.now:
            raise SimulationError(
                f"spawn_at({when}) is in the past (now={self.now})"
            )
        proc = Process(self, gen, name=name)
        self._processes.append(proc)
        if len(self._processes) > 8192:
            self._processes = [p for p in self._processes if p.alive]
            self._composites = [
                c for c in self._composites if not c.triggered
            ]
        self._schedule_resume(proc, None, at=when)
        return proc

    def event(self, name: str = "") -> Event:
        return Event(self, name=name)

    def timeout(self, delay: float, value: Any = None, name: str = "") -> "TimerEvent":
        """An event that fires ``delay`` ms from now.

        The returned :class:`TimerEvent` is cancellable: triggering it
        early (externally) or calling ``cancel()`` kills the backing timer
        process immediately, so :meth:`run` is never held open by a timeout
        that already served its purpose.
        """
        if delay < 0:
            raise SimulationError(f"negative timeout {delay}")
        evt = TimerEvent(self, name=name or f"timeout@{self.now + delay:.3f}")

        def _fire() -> Generator:
            yield delay
            if not evt.triggered:
                evt._firing = True
                evt.trigger(value)

        evt._timer = self.spawn(_fire(), name=f"_timer.{evt.name}")
        if self.monitor is not None:
            self.monitor.note_timer(evt)
        return evt

    def any_of(self, events: Iterable[Event], name: str = "any") -> Event:
        """An event that fires when the first of ``events`` fires.

        The composite value is ``(index, value)`` of the winning event.
        Once a winner fires, the losing watcher processes are killed so they
        do not sit forever in the waiter lists of events that never trigger,
        and losing *timeouts* nobody else is waiting on are reaped too — a
        race against a 10-second timeout must not keep :meth:`run` alive
        for 10 seconds after the data arrived.
        """
        events = list(events)
        combined = CompositeEvent(self, events, name=name)
        watchers = combined._watchers

        def _watch(idx: int, evt: Event) -> Generator:
            value = yield evt
            if not combined.triggered:
                combined.trigger((idx, value))
                for loser in watchers:
                    if loser is not watchers[idx]:
                        loser.kill()
                for j, other in enumerate(events):
                    if (
                        j != idx
                        and isinstance(other, TimerEvent)
                        and not other.triggered
                        and not other._waiters
                    ):
                        other.cancel()

        for idx, evt in enumerate(events):
            watchers.append(self.spawn(_watch(idx, evt), name=f"_anyof.{name}.{idx}"))
        self._composites.append(combined)
        return combined

    def all_of(self, events: Iterable[Event], name: str = "all") -> Event:
        """An event that fires when every one of ``events`` has fired.

        The returned :class:`CompositeEvent` gets the same reaping
        discipline ``any_of`` has: if one of the sources never triggers,
        ``abandon()`` (or :meth:`teardown`) kills the watcher processes so
        they do not sit in waiter lists forever pinning the partially
        filled values list.
        """
        events = list(events)
        combined = CompositeEvent(self, events, name=name)
        remaining = [len(events)]
        values: List[Any] = [None] * len(events)
        if not events:
            combined.trigger([])
            return combined

        def _watch(idx: int, evt: Event) -> Generator:
            values[idx] = yield evt
            remaining[0] -= 1
            if remaining[0] == 0:
                combined.trigger(list(values))

        for idx, evt in enumerate(events):
            combined._watchers.append(
                self.spawn(_watch(idx, evt), name=f"_allof.{name}.{idx}")
            )
        self._composites.append(combined)
        return combined

    def teardown(self) -> None:
        """Dispose of the simulation: reap watchers, close every process.

        Abandons still-pending composite events (their watchers would
        otherwise wait forever on sources that never fire), closes the
        generators of all remaining live processes, and clears the event
        queue.  After teardown the simulator holds no live coroutines, so
        a shard worker can discard thousands of finished kernels without
        leaking suspended generator frames.
        """
        for composite in self._composites:
            if not composite.triggered:
                composite.abandon()
        self._composites = []
        for proc in list(self._processes):
            if proc.alive:
                proc.kill()
        self._processes = []
        self._queue.clear()

    def call_at(self, when: float, fn: Callable[[], None], name: str = "") -> None:
        """Run a plain callable at absolute time ``when``."""
        if when < self.now:
            raise SimulationError(f"call_at({when}) is in the past (now={self.now})")

        def _caller() -> Generator:
            yield when - self.now
            fn()

        self.spawn(_caller(), name=name or f"_call_at@{when:.3f}")

    # -- scheduling internals ------------------------------------------------

    def _schedule_resume(
        self,
        proc: Process,
        value: Any,
        delay: float = 0.0,
        at: Optional[float] = None,
    ) -> None:
        when = self.now + delay if at is None else at
        heapq.heappush(
            self._queue,
            (when, next(self._counter), proc, proc._gen, value),
        )

    # -- running --------------------------------------------------------------

    def run(self, until: Optional[float] = None) -> float:
        """Execute events until the queue drains or the clock passes ``until``.

        Returns the final simulation time.
        """
        while self._queue:
            when, _order, proc, gen, value = self._queue[0]
            if not proc.alive or gen != proc._gen:
                # Stale resumption of a killed process (e.g. a cancelled
                # retransmission timer) or of an interrupted delay sleep:
                # discard without touching the clock.
                heapq.heappop(self._queue)
                continue
            if until is not None and when > until:
                self.now = max(self.now, until)
                return self.now
            heapq.heappop(self._queue)
            if when < self.now - 1e-9:
                raise SimulationError("event queue went backwards in time")
            self.now = when
            proc._step(value)
        if until is not None:
            self.now = max(self.now, until)
        return self.now

    def run_until_event(self, event: Event, limit: float = 1e12) -> Any:
        """Run until ``event`` triggers (or the clock passes ``limit``).

        Stops *at* the trigger, so gauges and energy integrals are not
        diluted by background processes (thermal loops, samplers) that
        would otherwise keep the queue alive forever.
        """
        while self._queue and not event.triggered:
            when, _order, proc, gen, value = heapq.heappop(self._queue)
            if not proc.alive or gen != proc._gen:
                continue
            if when > limit:
                heapq.heappush(self._queue, (when, _order, proc, gen, value))
                self.now = max(self.now, limit)
                break
            if when < self.now - 1e-9:
                raise SimulationError("event queue went backwards in time")
            self.now = when
            proc._step(value)
        return event.value if event.triggered else None

    def run_until_process(self, proc: Process, limit: float = 1e12) -> Any:
        """Run until ``proc`` completes; returns its result."""
        self.run_until_event(proc.done, limit=limit)
        if not proc.done.triggered:
            raise SimulationError(
                f"process {proc.name!r} did not finish by t={limit}"
            )
        return proc.result
