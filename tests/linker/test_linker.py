"""Dynamic linker: resolution order, preloads, dlopen/dlsym, processes."""

import pytest

from repro.linker.library import SharedLibrary
from repro.linker.linker import DynamicLinker, LinkError, ProcessImage


def lib_with(soname, **symbols):
    lib = SharedLibrary(soname=soname)
    for name, value in symbols.items():
        lib.export(name, (lambda v: lambda: v)(value))
    return lib


class TestLibrary:
    def test_export_and_lookup(self):
        lib = lib_with("libfoo.so", hello="hi")
        assert lib.lookup("hello")() == "hi"
        assert lib.lookup("missing") is None
        assert "hello" in lib

    def test_duplicate_export_rejected(self):
        lib = lib_with("libfoo.so", f=1)
        with pytest.raises(ValueError):
            lib.export("f", lambda: 2)


class TestResolution:
    def test_first_definition_wins(self):
        linker = DynamicLinker()
        linker.add_library(lib_with("a.so", f="from-a"))
        linker.add_library(lib_with("b.so", f="from-b"))
        assert linker.resolve("f")() == "from-a"

    def test_preload_shadows_namespace(self):
        linker = DynamicLinker()
        linker.add_library(lib_with("libGLESv2.so", glFlush="native"))
        linker.preload(lib_with("wrapper.so", glFlush="wrapped"))
        assert linker.resolve("glFlush")() == "wrapped"

    def test_undefined_symbol_raises(self):
        linker = DynamicLinker()
        with pytest.raises(LinkError):
            linker.resolve("nope")
        assert linker.try_resolve("nope") is None

    def test_resolve_in_scopes_to_library(self):
        linker = DynamicLinker()
        linker.add_library(lib_with("a.so", f="a"))
        linker.add_library(lib_with("b.so", f="b", g="only-b"))
        assert linker.resolve_in("b.so", "f")() == "b"
        with pytest.raises(LinkError):
            linker.resolve_in("a.so", "g")
        with pytest.raises(LinkError):
            linker.resolve_in("zzz.so", "f")


class TestDlopen:
    def test_dlopen_dlsym_native_path(self):
        linker = DynamicLinker()
        linker.add_library(lib_with("libm.so", sqrt="rooty"))
        handle = linker.dlopen("libm.so")
        assert linker.dlsym(handle, "sqrt")() == "rooty"

    def test_dlopen_missing_raises(self):
        linker = DynamicLinker()
        with pytest.raises(LinkError):
            linker.dlopen("nothere.so")

    def test_dlsym_missing_symbol(self):
        linker = DynamicLinker()
        linker.add_library(lib_with("libm.so", sqrt=1))
        handle = linker.dlopen("libm.so")
        with pytest.raises(LinkError):
            linker.dlsym(handle, "cbrt")

    def test_dlsym_invalid_handle(self):
        linker = DynamicLinker()
        with pytest.raises(LinkError):
            linker.dlsym(object(), "f")

    def test_interposers_take_over(self):
        linker = DynamicLinker()
        linker.add_library(lib_with("libm.so", sqrt=1))
        linker.set_dl_interposers(
            dlopen_impl=lambda soname: f"handle:{soname}",
            dlsym_impl=lambda handle, name: f"{handle}/{name}",
        )
        handle = linker.dlopen("anything.so")
        assert handle == "handle:anything.so"
        assert linker.dlsym(handle, "f") == "handle:anything.so/f"


class TestProcessImage:
    def test_start_resolves_dependencies(self):
        proc = ProcessImage("game")
        proc.install_library(lib_with("libGLESv2.so", glFlush="native"))
        proc.start(["libGLESv2.so"])
        assert proc.call("glFlush") == "native"

    def test_ld_preload_env_injects_wrapper(self):
        proc = ProcessImage("game", env={"LD_PRELOAD": "wrapper.so"})
        proc.install_library(lib_with("libGLESv2.so", glFlush="native"))
        proc.install_library(lib_with("wrapper.so", glFlush="wrapped"))
        proc.start(["libGLESv2.so"])
        assert proc.call("glFlush") == "wrapped"

    def test_missing_preload_fails_start(self):
        proc = ProcessImage("game", env={"LD_PRELOAD": "ghost.so"})
        with pytest.raises(LinkError):
            proc.start([])

    def test_missing_dependency_fails_start(self):
        proc = ProcessImage("game")
        with pytest.raises(LinkError):
            proc.start(["libmissing.so"])

    def test_double_start_rejected(self):
        proc = ProcessImage("game")
        proc.start([])
        with pytest.raises(LinkError):
            proc.start([])

    def test_call_before_start_rejected(self):
        proc = ProcessImage("game")
        with pytest.raises(LinkError):
            proc.call("anything")

    def test_multiple_preloads_in_order(self):
        proc = ProcessImage(
            "game", env={"LD_PRELOAD": "first.so:second.so"}
        )
        proc.install_library(lib_with("first.so", f="first"))
        proc.install_library(lib_with("second.so", f="second"))
        proc.start([])
        assert proc.call("f") == "first"
