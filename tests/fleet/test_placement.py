"""Session placement and rebalancing plans."""

from repro.apps.games import CANDY_CRUSH, MODERN_COMBAT
from repro.devices.profiles import DELL_OPTIPLEX_9010, MINIX_NEO_U1, NVIDIA_SHIELD
from repro.fleet import (
    FleetConfig,
    FleetNode,
    FleetSession,
    SessionPlacer,
    SessionRequest,
)


def session(sim, config, i, app=MODERN_COMBAT):
    req = SessionRequest(session_id=f"s{i:03d}", app=app, arrival_ms=0.0)
    return FleetSession(sim, req, config, duration_ms=10_000.0)


class TestPlace:
    def test_prefers_the_most_capable_idle_device(self, make_world):
        sim, config, placer, nodes = make_world(
            [MINIX_NEO_U1, DELL_OPTIPLEX_9010]
        )
        chosen = placer.place(
            session(sim, config, 0), nodes,
            committed_mp_per_ms={}, rtt_ms={},
        )
        assert chosen.name == DELL_OPTIPLEX_9010.name

    def test_committed_demand_steers_away_from_hot_devices(self, make_world):
        sim, config, placer, nodes = make_world(
            [NVIDIA_SHIELD, DELL_OPTIPLEX_9010]
        )
        hot = {DELL_OPTIPLEX_9010.name: 40.0}   # MP/ms already committed
        chosen = placer.place(
            session(sim, config, 0), nodes,
            committed_mp_per_ms=hot, rtt_ms={},
        )
        assert chosen.name == NVIDIA_SHIELD.name

    def test_failed_nodes_are_never_chosen(self, make_world):
        sim, config, placer, nodes = make_world(
            [NVIDIA_SHIELD, MINIX_NEO_U1]
        )
        nodes[0].fail()
        chosen = placer.place(
            session(sim, config, 0), nodes,
            committed_mp_per_ms={}, rtt_ms={},
        )
        assert chosen.name == MINIX_NEO_U1.name

    def test_rtt_breaks_capacity_ties(self, make_world):
        sim, config, placer, nodes = make_world([NVIDIA_SHIELD])
        import dataclasses

        twin = dataclasses.replace(NVIDIA_SHIELD, name="Shield twin")
        nodes.append(FleetNode(sim, twin, config))
        chosen = placer.place(
            session(sim, config, 0), nodes,
            committed_mp_per_ms={},
            rtt_ms={NVIDIA_SHIELD.name: 30.0, "Shield twin": 1.0},
        )
        assert chosen.name == "Shield twin"


class TestRebalance:
    def test_no_moves_when_balanced(self, make_world):
        sim, config, placer, nodes = make_world(
            [NVIDIA_SHIELD, NVIDIA_SHIELD], rebalance_threshold=0.35
        )
        # Two identical boxes, identical commitments: nothing to do.
        import dataclasses

        nodes[1] = FleetNode(
            sim, dataclasses.replace(NVIDIA_SHIELD, name="Shield B"), config
        )
        committed = {NVIDIA_SHIELD.name: 5.0, "Shield B": 5.0}
        moves = placer.plan_rebalance({}, nodes, committed)
        assert moves == []

    def test_moves_tolerant_sessions_from_hot_to_cool(self, make_world):
        sim, config, placer, nodes = make_world(
            [NVIDIA_SHIELD, DELL_OPTIPLEX_9010]
        )
        shield, desktop = nodes
        tolerant = session(sim, config, 0, CANDY_CRUSH)
        urgent = session(sim, config, 1, MODERN_COMBAT)
        tolerant.set_node(shield)
        urgent.set_node(shield)
        committed = {
            shield.name: tolerant.demand_mp_per_ms + urgent.demand_mp_per_ms,
            desktop.name: 0.0,
        }
        moves = placer.plan_rebalance(
            {shield.name: [tolerant, urgent]}, nodes, committed
        )
        assert moves
        first = moves[0]
        assert first.session is tolerant       # tolerant tier moves first
        assert first.source is shield
        assert first.target is desktop

    def test_cooldown_protects_recent_migrants(self, make_world):
        sim, config, placer, nodes = make_world(
            [NVIDIA_SHIELD, DELL_OPTIPLEX_9010],
            migration_cooldown_ms=2_000.0,
        )
        shield = nodes[0]
        sess = session(sim, config, 0)
        sess.set_node(shield)
        sess.last_migration_ms = 0.0           # just moved
        sim.run(until=100.0)
        committed = {shield.name: 50.0, nodes[1].name: 0.0}
        moves = placer.plan_rebalance(
            {shield.name: [sess]}, nodes, committed
        )
        assert moves == []

    def test_moves_per_cycle_are_bounded(self, make_world):
        sim, config, placer, nodes = make_world(
            [NVIDIA_SHIELD, DELL_OPTIPLEX_9010], max_moves_per_cycle=1
        )
        shield = nodes[0]
        sessions = []
        for i in range(4):
            s = session(sim, config, i)
            s.set_node(shield)
            s.last_migration_ms = -10_000.0
            sessions.append(s)
        committed = {
            shield.name: sum(s.demand_mp_per_ms for s in sessions),
            nodes[1].name: 0.0,
        }
        moves = placer.plan_rebalance(
            {shield.name: sessions}, nodes, committed
        )
        assert len(moves) <= 1
