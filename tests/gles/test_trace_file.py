"""Trace capture and replay."""

import pytest

from repro.gles import enums as gl
from repro.gles.commands import make_command
from repro.gles.context import GLContext
from repro.gles.trace_file import (
    TraceError,
    TraceFileRecord,
    TraceReader,
    TraceWriter,
    TracingInterceptor,
)


def sample_commands():
    return [
        make_command("glViewport", 0, 0, 640, 480),
        make_command("glClearColor", 0.3, 0.3, 0.3, 1.0),
        make_command("glEnable", gl.GL_DEPTH_TEST),
        make_command("glBindTexture", gl.GL_TEXTURE_2D, 0),
    ]


class TestRoundTrip:
    def test_commands_preserved(self):
        writer = TraceWriter()
        for i, cmd in enumerate(sample_commands()):
            writer.record(cmd, timestamp_ms=float(i * 16))
        reader = TraceReader(writer.to_bytes())
        records = list(reader)
        assert all(isinstance(r, TraceFileRecord) for r in records)
        assert [r.command.name for r in records] == [
            c.name for c in sample_commands()
        ]
        assert [r.timestamp_ms for r in records] == [0.0, 16.0, 32.0, 48.0]

    def test_record_class_does_not_shadow_sim_trace_record(self):
        """The two tracing facilities must keep distinct class names."""
        from repro.sim.trace import TraceRecord as SimTraceRecord

        assert TraceFileRecord.__name__ != SimTraceRecord.__name__
        assert not hasattr(
            __import__("repro.gles.trace_file", fromlist=["x"]),
            "TraceRecord",
        )

    def test_empty_trace(self):
        reader = TraceReader(TraceWriter().to_bytes())
        assert reader.count == 0
        assert list(reader) == []

    def test_file_roundtrip(self, tmp_path):
        writer = TraceWriter()
        writer.record_sequence(sample_commands(), timestamp_ms=5.0)
        path = tmp_path / "session.gbtrace"
        writer.save(path)
        reader = TraceReader.load(path)
        assert reader.count == 4

    def test_replay_reproduces_state(self):
        writer = TraceWriter()
        writer.record_sequence(sample_commands())
        direct = GLContext("direct")
        direct.execute_sequence(sample_commands())
        replayed = TraceReader(writer.to_bytes()).replay_onto(
            GLContext("replayed")
        )
        assert replayed.state_digest() == direct.state_digest()


class TestValidation:
    def test_timestamps_must_not_go_backwards(self):
        writer = TraceWriter()
        writer.record(make_command("glFlush"), timestamp_ms=10.0)
        with pytest.raises(ValueError):
            writer.record(make_command("glFlush"), timestamp_ms=5.0)

    def test_negative_timestamp_rejected(self):
        with pytest.raises(ValueError):
            TraceWriter().record(make_command("glFlush"), timestamp_ms=-1.0)

    def test_bad_magic(self):
        with pytest.raises(TraceError):
            TraceReader(b"NOPE" + bytes(20))

    def test_truncated_header(self):
        with pytest.raises(TraceError):
            TraceReader(b"GB")

    def test_truncated_payload(self):
        writer = TraceWriter()
        writer.record_sequence(sample_commands())
        blob = writer.to_bytes()
        reader = TraceReader(blob[:-3])
        with pytest.raises(TraceError):
            list(reader)

    def test_wrong_version(self):
        import struct

        blob = struct.pack("<4sHI", b"GBTR", 99, 0)
        with pytest.raises(TraceError):
            TraceReader(blob)


class TestTracingInterceptor:
    def test_records_and_forwards(self):
        seen = []
        interceptor = TracingInterceptor(
            downstream=lambda c: seen.append(c) or "fwd",
            clock=lambda: 42.0,
        )
        result = interceptor(make_command("glFlush"))
        assert result == "fwd"
        assert len(seen) == 1
        assert len(interceptor.writer) == 1

    def test_wrapper_integration(self):
        """Capture an intercepted app's stream through the real wrapper."""
        from repro.linker.wrapper import build_wrapper_library

        interceptor = TracingInterceptor()
        wrapper = build_wrapper_library(interceptor)
        wrapper.lookup("glViewport")(0, 0, 100, 100)
        wrapper.lookup("glEnable")(gl.GL_BLEND)
        reader = TraceReader(interceptor.writer.to_bytes())
        names = [r.command.name for r in reader]
        assert names == ["glViewport", "glEnable"]


def stateful_commands():
    """A sequence whose replay must carry GL state, including BLOB
    uploads — the payloads the replay store keeps structural."""
    return [
        make_command("glUseProgram", 3),
        make_command(
            "glBufferData", gl.GL_ARRAY_BUFFER, 8,
            b"\x00\x01\x02\x03\x04\x05\x06\x07", gl.GL_STATIC_DRAW,
        ),
        make_command(
            "glTexImage2D", gl.GL_TEXTURE_2D, 0, gl.GL_RGBA, 2, 2, 0,
            gl.GL_RGBA, gl.GL_UNSIGNED_BYTE, b"\xff" * 16,
        ),
        make_command("glUniform1f", 7, 0.125),
        make_command(
            "glUniformMatrix4fv", 4, 1, False,
            tuple(float(i) for i in range(16)),
        ),
        make_command("glDrawArrays", gl.GL_TRIANGLES, 0, 36),
    ]


class TestStatefulRoundTrip:
    def test_empty_frame_roundtrips(self):
        """A frame with zero commands between boundaries must survive
        capture/replay without phantom records or state drift."""
        writer = TraceWriter()
        writer.record_sequence([], timestamp_ms=0.0)
        reader = TraceReader(writer.to_bytes())
        assert reader.count == 0
        replayed = reader.replay_onto(GLContext("replayed"))
        assert replayed.state_digest() == GLContext("direct").state_digest()

    def test_state_carrying_sequence_roundtrips(self):
        writer = TraceWriter()
        writer.record_sequence(stateful_commands())
        reader = TraceReader(writer.to_bytes())
        assert reader.count == len(stateful_commands())
        direct = GLContext("direct")
        direct.execute_sequence(stateful_commands())
        replayed = reader.replay_onto(GLContext("replayed"))
        assert replayed.state_digest() == direct.state_digest()

    def test_blob_payload_bytes_survive_serialisation(self):
        writer = TraceWriter()
        writer.record_sequence(stateful_commands())
        records = list(TraceReader(writer.to_bytes()))
        blobs = [
            arg
            for record in records
            for arg in record.command.args
            if isinstance(arg, bytes)
        ]
        assert b"\x00\x01\x02\x03\x04\x05\x06\x07" in blobs
        assert b"\xff" * 16 in blobs

    def test_mixed_empty_and_full_frames(self, tmp_path):
        writer = TraceWriter()
        writer.record_sequence([], timestamp_ms=0.0)
        writer.record_sequence(stateful_commands(), timestamp_ms=16.0)
        writer.record_sequence([], timestamp_ms=32.0)
        path = tmp_path / "mixed.gbtrace"
        writer.save(path)
        reader = TraceReader.load(path)
        assert reader.count == len(stateful_commands())
        direct = GLContext("direct")
        direct.execute_sequence(stateful_commands())
        assert (
            reader.replay_onto(GLContext("replayed")).state_digest()
            == direct.state_digest()
        )
