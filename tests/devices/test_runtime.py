"""Runtime device instances and energy accounting."""

import pytest

from repro.devices.profiles import LG_NEXUS_5, NVIDIA_SHIELD
from repro.devices.runtime import (
    SCREEN_BASE_POWER_W,
    ServiceDeviceRuntime,
    UserDeviceRuntime,
)
from repro.sim.kernel import Simulator


def test_user_device_wiring():
    sim = Simulator()
    device = UserDeviceRuntime(sim, LG_NEXUS_5)
    assert device.gpu.spec is LG_NEXUS_5.gpu
    assert device.cpu.spec is LG_NEXUS_5.cpu
    assert device.surface.width == LG_NEXUS_5.screen_width


def test_render_resolution_override():
    sim = Simulator()
    device = UserDeviceRuntime(sim, LG_NEXUS_5, render_width=640,
                               render_height=480)
    assert device.surface.width == 640


def test_wrong_role_rejected():
    sim = Simulator()
    with pytest.raises(ValueError):
        UserDeviceRuntime(sim, NVIDIA_SHIELD)
    with pytest.raises(ValueError):
        ServiceDeviceRuntime(sim, LG_NEXUS_5)


def test_idle_energy_is_screen_plus_component_idle():
    sim = Simulator()
    device = UserDeviceRuntime(sim, LG_NEXUS_5)
    device.network.wifi.power_off()
    device.network.bluetooth.power_off()
    sim.run(until=10_000.0)
    energy = device.energy_joules()
    expected = 10.0 * (
        SCREEN_BASE_POWER_W
        + LG_NEXUS_5.cpu.idle_power_w
        + LG_NEXUS_5.gpu.idle_power_w
    )
    assert energy == pytest.approx(expected, rel=0.02)


def test_component_breakdown_sums_to_total():
    sim = Simulator()
    device = UserDeviceRuntime(sim, LG_NEXUS_5)
    sim.run(until=5_000.0)
    components = device.component_energy()
    assert sum(components.values()) == pytest.approx(device.energy_joules())


def test_service_device_energy():
    sim = Simulator()
    node = ServiceDeviceRuntime(sim, NVIDIA_SHIELD)
    sim.run(until=1_000.0)
    assert node.energy_joules() > 0
