"""Chrome trace-event export: schema, phases, metadata, round-trip."""

import json

import pytest

from repro.obs.export import (
    TRACE_SCHEMA,
    chrome_trace,
    trace_categories,
    validate_chrome_trace,
    write_chrome_trace,
)
from repro.obs.spans import SpanRecorder


def recorder_with_spans():
    rec = SpanRecorder()
    rec.add("frame", "frame", 0.0, 20.0, track="engine", frame_id=1)
    rec.add("app", "intercept", 0.0, 2.0, track="engine", frame_id=1,
            parent="frame.frame", depth=1)
    rec.add("net", "transmit", 2.0, 6.0, track="uplink", frame_id=1,
            parent="frame.frame", depth=1, bytes=512)
    rec.add("dispatch", "assign", 1.5, 1.5, track="client",
            instant=True, node="shield")
    return rec


class TestExport:
    def test_valid_trace_from_recorded_spans(self):
        trace = chrome_trace(recorder_with_spans())
        assert validate_chrome_trace(trace) == []
        assert trace["otherData"]["schema"] == TRACE_SCHEMA
        assert trace["otherData"]["span_count"] == 4
        assert trace["displayTimeUnit"] == "ms"

    def test_complete_span_becomes_x_event_in_microseconds(self):
        trace = chrome_trace(recorder_with_spans())
        (transmit,) = [
            e for e in trace["traceEvents"] if e["name"] == "transmit"
        ]
        assert transmit["ph"] == "X"
        assert transmit["ts"] == pytest.approx(2000.0)
        assert transmit["dur"] == pytest.approx(4000.0)
        assert transmit["args"]["bytes"] == 512
        assert transmit["args"]["frame_id"] == 1
        assert transmit["args"]["parent"] == "frame.frame"

    def test_mark_becomes_instant_event(self):
        trace = chrome_trace(recorder_with_spans())
        (assign,) = [
            e for e in trace["traceEvents"] if e["name"] == "assign"
        ]
        assert assign["ph"] == "I"
        assert assign["s"] == "t"
        assert "dur" not in assign

    def test_every_track_gets_thread_name_metadata(self):
        trace = chrome_trace(recorder_with_spans())
        meta = [e for e in trace["traceEvents"] if e["ph"] == "M"]
        named = {e["args"]["name"]: e["tid"] for e in meta}
        assert set(named) == {"engine", "uplink", "client"}
        # tids are deterministic: alphabetical track order
        assert named["client"] < named["engine"] < named["uplink"]
        span_tids = {
            e["tid"] for e in trace["traceEvents"] if e["ph"] != "M"
        }
        assert span_tids == set(named.values())

    def test_categories_ignore_metadata_events(self):
        trace = chrome_trace(recorder_with_spans())
        assert trace_categories(trace) == [
            "app", "dispatch", "frame", "net",
        ]

    def test_metadata_merged_into_other_data(self):
        trace = chrome_trace(recorder_with_spans(), metadata={"run": "t1"})
        assert trace["otherData"]["run"] == "t1"


class TestValidation:
    def test_rejects_non_object(self):
        assert validate_chrome_trace([]) != []

    def test_rejects_wrong_schema(self):
        trace = chrome_trace(recorder_with_spans())
        trace["otherData"]["schema"] = "something/else"
        assert any("schema" in p for p in validate_chrome_trace(trace))

    def test_rejects_missing_event_keys(self):
        trace = chrome_trace(recorder_with_spans())
        del trace["traceEvents"][-1]["ts"]
        assert any("missing keys" in p for p in validate_chrome_trace(trace))

    def test_rejects_unknown_phase_and_negative_duration(self):
        trace = chrome_trace(recorder_with_spans())
        events = [e for e in trace["traceEvents"] if e["ph"] == "X"]
        events[0]["ph"] = "B"
        events[1]["dur"] = -1.0
        problems = validate_chrome_trace(trace)
        assert any("unknown phase" in p for p in problems)
        assert any("dur" in p for p in problems)

    def test_rejects_empty_trace(self):
        assert "'traceEvents' is empty" in validate_chrome_trace(
            chrome_trace(SpanRecorder())
        )


class TestWrite:
    def test_round_trip_json(self, tmp_path):
        path = tmp_path / "trace.json"
        written = write_chrome_trace(str(path), recorder_with_spans())
        loaded = json.loads(path.read_text())
        assert loaded == written
        assert validate_chrome_trace(loaded) == []

    def test_write_refuses_invalid_trace(self, tmp_path):
        path = tmp_path / "trace.json"
        with pytest.raises(ValueError):
            write_chrome_trace(str(path), SpanRecorder())
        assert not path.exists()
