"""Experiment runners produce paper-shaped outputs (short durations)."""

import pytest

from repro.apps.games import CANDY_CRUSH, GTA_SAN_ANDREAS
from repro.devices.profiles import LG_G4, LG_NEXUS_5
from repro.experiments.acceleration import format_rows, run_acceleration_cell
from repro.experiments.cloud_comparison import run_cloud_platform_average
from repro.experiments.energy import format_rows as format_energy_rows
from repro.experiments.energy import run_energy_cell
from repro.experiments.multidevice import format_points, run_figure7
from repro.experiments.overhead import run_overhead_experiment, run_table3
from repro.experiments.thermal import run_figure1, run_motivation_power
from repro.experiments.traffic import (
    estimate_raw_traffic,
    measure_command_reduction,
    measure_image_codecs,
)

SHORT = 25_000.0


class TestFig1:
    def test_thermal_trace_shape(self):
        result = run_figure1(duration_s=1800.0)
        assert result.initial_freq_mhz == LG_G4.gpu.max_freq_mhz
        assert result.throttled_freq_mhz == LG_G4.gpu.min_freq_mhz
        assert 8 * 60 <= result.throttle_time_s <= 13 * 60

    def test_motivation_power_gpu_dominates(self):
        result = run_motivation_power(LG_NEXUS_5)
        assert 2.5 <= result.gpu_power_w <= 3.5   # paper: ~3 W
        assert result.ratio >= 4.0                 # ~5x the CPU


class TestFig5Cell:
    def test_action_game_cell(self):
        row = run_acceleration_cell(
            GTA_SAN_ANDREAS, LG_NEXUS_5, duration_ms=SHORT
        )
        assert row.boosted_fps > row.local_fps
        assert row.fps_boost_percent > 30.0
        assert "G1" in format_rows([row])


class TestFig6Cell:
    def test_energy_cell_ordering(self):
        row = run_energy_cell(GTA_SAN_ANDREAS, LG_NEXUS_5, duration_ms=SHORT)
        assert row.normalized_with_switching < 1.0
        assert row.switching_benefit > 0.0
        assert "G1" in format_energy_rows([row])


class TestFig7:
    def test_multi_device_curve(self):
        points = run_figure7(max_devices=3, duration_ms=SHORT)
        fps = {p.n_devices: p.median_fps for p in points}
        assert fps[1] > fps[0]           # offloading helps
        assert fps[3] > fps[1]           # parallelism helps more
        assert "devices" in format_points(points)


class TestTable3:
    def test_non_gaming_rows(self):
        rows = run_table3(duration_ms=SHORT, apps=["A1"])
        row = rows[0]
        assert abs(row.fps_boost) <= 1.0           # paper: zero boost
        assert 0.80 <= row.normalized_energy <= 1.0


class TestOverhead:
    def test_memory_and_cpu_delta(self):
        report = run_overhead_experiment(duration_ms=SHORT)
        assert 25.0 <= report.memory_mb <= 75.0    # paper: 47.8 MB
        assert report.cpu_offloaded_util > report.cpu_local_util
        assert 2.0 <= report.cpu_delta_points <= 25.0


class TestTraffic:
    def test_raw_traffic_enormous(self):
        estimate = estimate_raw_traffic(width=600, height=480, fps=25.0)
        # The paper quotes ~200 Mbps for this setting.
        assert 120.0 <= estimate.total_mbps <= 320.0
        assert estimate.raw_image_mbps > estimate.raw_command_mbps

    def test_command_reduction(self):
        result = measure_command_reduction(frames=80)
        assert result.overall_reduction > 0.5
        assert result.cache_hit_rate > 0.5
        assert result.lz_only_ratio < 0.6

    def test_image_codecs(self):
        result = measure_image_codecs(frames=15)
        assert result.turbo_keeps_up
        assert not result.x264_keeps_up
        assert result.turbo_ratio > 8.0


class TestCloud:
    def test_platform_average(self):
        avg = run_cloud_platform_average(duration_s=30.0)
        assert avg.median_fps <= 31.0
        assert avg.mean_response_ms > 100.0
