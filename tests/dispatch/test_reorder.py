"""Sequence reordering of out-of-order completions."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.dispatch.reorder import ReorderBuffer


def test_in_order_passes_through():
    buf = ReorderBuffer()
    assert buf.push(0, "a") == [(0, "a")]
    assert buf.push(1, "b") == [(1, "b")]
    assert buf.out_of_order_arrivals == 0


def test_out_of_order_held_then_released():
    buf = ReorderBuffer()
    assert buf.push(1, "b") == []
    assert buf.holding == 1
    released = buf.push(0, "a")
    assert released == [(0, "a"), (1, "b")]
    assert buf.holding == 0
    assert buf.out_of_order_arrivals == 1


def test_large_gap_releases_in_sequence():
    buf = ReorderBuffer()
    for seq in (4, 2, 3, 1):
        assert buf.push(seq, seq) == []
    released = buf.push(0, 0)
    assert [s for s, _v in released] == [0, 1, 2, 3, 4]


def test_duplicate_dropped():
    buf = ReorderBuffer()
    buf.push(0, "a")
    assert buf.push(0, "again") == []
    buf.push(2, "c")
    assert buf.push(2, "c-again") == []


def test_obsolete_sequence_dropped():
    buf = ReorderBuffer()
    buf.push(0, "a")
    buf.push(1, "b")
    assert buf.push(0, "late") == []


def test_overflow_raises():
    buf = ReorderBuffer(max_held=4)
    with pytest.raises(OverflowError):
        for seq in range(1, 10):
            buf.push(seq, seq)


def test_first_seq_offset():
    buf = ReorderBuffer(first_seq=100)
    assert buf.push(100, "x") == [(100, "x")]


def test_released_counter():
    buf = ReorderBuffer()
    buf.push(1, "b")
    buf.push(0, "a")
    assert buf.released == 2


@settings(max_examples=100, deadline=None)
@given(permutation=st.permutations(list(range(12))))
def test_property_any_permutation_releases_sorted(permutation):
    buf = ReorderBuffer(max_held=64)
    released = []
    for seq in permutation:
        released.extend(buf.push(seq, seq))
    assert [s for s, _v in released] == sorted(permutation)
    assert buf.holding == 0
