"""Session report export."""

import json

import pytest

import repro
from repro.apps.games import CANDY_CRUSH
from repro.devices.profiles import LG_NEXUS_5
from repro.metrics.report import session_report, session_report_json


@pytest.fixture(scope="module")
def boosted():
    return repro.run_offload_session(CANDY_CRUSH, LG_NEXUS_5,
                                     duration_ms=15_000.0)


@pytest.fixture(scope="module")
def local():
    return repro.run_local_session(CANDY_CRUSH, LG_NEXUS_5,
                                   duration_ms=15_000.0)


def test_report_structure_offloaded(boosted):
    report = session_report(boosted)
    assert report["mode"] == "gbooster"
    assert report["app"] == "G5"
    assert report["fps"]["median"] > 0
    assert "switching" in report
    assert "traffic" in report
    assert 0.0 <= report["traffic"]["reduction"] <= 1.0


def test_report_structure_local(local):
    report = session_report(local)
    assert report["mode"] == "local"
    assert "switching" not in report
    assert "traffic" not in report
    assert report["t_p_ms"] == 0.0


def test_report_is_json_serializable(boosted):
    text = session_report_json(boosted)
    parsed = json.loads(text)
    assert parsed["app_name"] == CANDY_CRUSH.name


def test_energy_components_sum(boosted):
    report = session_report(boosted)
    total = report["energy"]["total_j"]
    components = sum(report["energy"]["components_j"].values())
    assert components == pytest.approx(total)
