#!/usr/bin/env python3
"""Two players, one console (paper §VIII, extension implemented here).

A fast-paced shooter (Modern Combat) and a turn-based puzzle game (Candy
Crush) offload to the same Nvidia Shield.  Under the paper's FCFS
prototype the shooter's requests queue behind puzzle frames and its
response time suffers; with the priority scheduler the paper proposes as
future work, the time-critical stream is served first and the tolerant
game absorbs the delay it never notices.
"""

from repro.apps.games import CANDY_CRUSH, MODERN_COMBAT
from repro.core.multiuser import run_multiuser_experiment


def main() -> None:
    print("Modern Combat + Candy Crush sharing one Nvidia Shield\n")
    results = run_multiuser_experiment(
        MODERN_COMBAT, CANDY_CRUSH, duration_ms=60_000.0
    )
    print(f"{'policy':10} {'user':24} {'median FPS':>11} {'response':>10}")
    for policy, result in results.items():
        for user in result.users:
            print(
                f"{policy:10} {user.app.name[:24]:24} "
                f"{user.fps.median_fps:>11.1f} "
                f"{user.mean_response_ms:>8.1f} ms"
            )
        print()
    fcfs = results["fcfs"].by_genre("action")
    prio = results["priority"].by_genre("action")
    print(
        "priority scheduling cuts the shooter's response from "
        f"{fcfs.mean_response_ms:.0f} ms to {prio.mean_response_ms:.0f} ms "
        "— the §VIII requirement —"
    )
    puzzle = results["priority"].by_genre("puzzle")
    print(
        f"while the puzzle game still runs at {puzzle.fps.median_fps:.0f} "
        "FPS, above the 24 FPS playability floor."
    )


if __name__ == "__main__":
    main()
