"""The SLO harness: scenarios, determinism, and the regression gate."""

import copy
import json

import pytest

from repro.apps.games import GAMES
from repro.core.config import GBoosterConfig
from repro.core.session import run_offload_session
from repro.devices.profiles import LG_NEXUS_5, NVIDIA_SHIELD
from repro.experiments.slo import (
    BENCH_SLO_SCHEMA,
    diff_against_baseline,
    format_bench,
    run_slo_bench,
    run_slo_faulted,
    run_slo_fleet,
    run_slo_session,
    validate_bench,
    write_bench,
)
from repro.faults.schedule import FaultSchedule

DURATION_MS = 6_000.0


@pytest.fixture(scope="module")
def clean():
    return run_slo_session(DURATION_MS, seed=3)


@pytest.fixture(scope="module")
def faulted():
    return run_slo_faulted(DURATION_MS, seed=3)


class TestSessionScenarios:
    def test_clean_session_feeds_every_slo(self, clean):
        slos = clean["telemetry"]["slos"]
        for name in (
            "frame_p99_latency", "fps_floor",
            "switch_flap_rate", "retransmission_rate",
        ):
            assert slos[name]["good"] + slos[name]["bad"] > 0, name
        assert clean["telemetry"]["windows_evaluated"] >= 5
        assert clean["frames_presented"] > 0

    def test_fault_fires_frame_latency_alert(self, clean, faulted):
        """The injected loss burst must provably page the latency SLO."""
        slo = faulted["telemetry"]["slos"]["frame_p99_latency"]
        assert slo["bad"] > clean["telemetry"]["slos"][
            "frame_p99_latency"
        ]["bad"]
        pages = [
            a for a in faulted["telemetry"]["alerts"]
            if a["source"] == "frame_p99_latency"
            and a["severity"] == "page"
        ]
        assert pages, "loss burst did not page the frame-latency SLO"
        # The clean run's warmup breach drains back to ok; the burst
        # keeps the faulted run pinned in breach through the end.
        assert slo["state"] == "breached"
        assert clean["telemetry"]["slos"]["frame_p99_latency"][
            "state"
        ] == "ok"
        # And the burst itself pages mid-run (fps floor collapses while
        # frames stall behind retransmissions).
        assert any(
            a["severity"] == "page" and a["at_ms"] >= DURATION_MS * 0.4
            for a in faulted["telemetry"]["alerts"]
        )

    def test_fault_shifts_critical_path_to_network(self, clean, faulted):
        """Latency attribution must follow the fault into the network
        stages: the transmit/return share of dominant frames grows."""
        def net_share(summary):
            stages = summary["critical_path"]["stages"]
            return stages["transmit"]["share"] + stages["return"]["share"]

        assert faulted["critical_path"]["frames"] > 0
        assert net_share(faulted) > 2.0 * net_share(clean)
        assert net_share(faulted) > 0.05

    def test_attainment_degrades_under_fault(self, clean, faulted):
        c = clean["telemetry"]["slos"]["frame_p99_latency"]["attainment"]
        f = faulted["telemetry"]["slos"]["frame_p99_latency"]["attainment"]
        assert f < c

    def test_unarmed_session_has_no_telemetry(self):
        result = run_offload_session(
            GAMES["G3"], LG_NEXUS_5, [NVIDIA_SHIELD],
            config=GBoosterConfig(),      # telemetry off by default
            duration_ms=1_500.0, seed=0,
        )
        assert result.telemetry is None
        assert result.engine.sim.telemetry is None

    def test_custom_fault_schedule_respected(self):
        faults = FaultSchedule().loss_burst(
            at_ms=500.0, duration_ms=400.0, loss_probability=0.5
        )
        config = GBoosterConfig(telemetry=True, faults=faults)
        result = run_offload_session(
            GAMES["G3"], LG_NEXUS_5, [NVIDIA_SHIELD],
            config=config, duration_ms=2_000.0, seed=1,
        )
        assert result.telemetry is not None
        retx = result.telemetry.bank.matching("transport.retransmissions")
        assert sum(s.observations for s in retx) > 0


class TestFleetScenario:
    def test_overload_feeds_fleet_slos(self):
        out = run_slo_fleet(1_500.0, seed=2, n_sessions=48, n_devices=1)
        assert out["rejected"] > 0
        slos = out["telemetry"]["slos"]
        reject = slos["admission_reject_rate"]
        assert reject["bad"] == out["rejected"]
        assert reject["good"] + reject["bad"] == out["sessions"]
        # Every *started* session observes its admission wait: that is
        # the immediate admits plus queued sessions that later drained,
        # never more than the non-rejected population.
        waits = slos["admission_wait"]["good"] + slos["admission_wait"]["bad"]
        assert waits >= out["admitted"]
        assert waits <= out["sessions"] - out["rejected"]


class TestBenchArtifact:
    @pytest.fixture(scope="class")
    def bench(self):
        return run_slo_bench(seed=5, smoke=True)

    def test_schema_and_validation(self, bench):
        assert bench["schema"] == BENCH_SLO_SCHEMA
        assert validate_bench(bench) == []

    def test_deterministic_across_runs(self, bench):
        again = run_slo_bench(seed=5, smoke=True)
        assert json.dumps(again, sort_keys=True) == json.dumps(
            bench, sort_keys=True
        )

    def test_write_is_byte_stable(self, bench, tmp_path):
        a, b = tmp_path / "a.json", tmp_path / "b.json"
        write_bench(str(a), bench)
        write_bench(str(b), run_slo_bench(seed=5, smoke=True))
        assert a.read_bytes() == b.read_bytes()

    def test_format_lists_every_slo(self, bench):
        text = format_bench(bench)
        for name in (
            "frame_p99_latency", "fps_floor", "admission_reject_rate",
            "admission_wait", "switch_flap_rate", "retransmission_rate",
        ):
            assert name in text

    def test_validate_flags_missing_slo(self, bench):
        broken = copy.deepcopy(bench)
        del broken["deterministic"]["session"]["telemetry"]["slos"][
            "fps_floor"
        ]
        assert any(
            "fps_floor" in p for p in validate_bench(broken)
        )


class TestRegressionGate:
    @pytest.fixture(scope="class")
    def bench(self):
        return run_slo_bench(seed=5, smoke=True)

    def test_identical_artifacts_pass(self, bench):
        regressions, skip = diff_against_baseline(bench, bench)
        assert regressions == [] and skip is None

    def test_seed_mismatch_skips_not_fails(self, bench):
        other = copy.deepcopy(bench)
        other["deterministic"]["seed"] = 99
        regressions, skip = diff_against_baseline(bench, other)
        assert regressions == []
        assert skip is not None and "seed" in skip

    def test_p99_regression_detected(self, bench):
        worse = copy.deepcopy(bench)
        fr = worse["deterministic"]["session"]["frame_response"]
        fr["p99"] = fr["p99"] * 1.25 + 5.0
        regressions, skip = diff_against_baseline(worse, bench)
        assert skip is None
        assert any("frame p99" in r for r in regressions)

    def test_p99_within_tolerance_passes(self, bench):
        slightly = copy.deepcopy(bench)
        fr = slightly["deterministic"]["session"]["frame_response"]
        fr["p99"] = fr["p99"] * 1.05
        regressions, _ = diff_against_baseline(slightly, bench)
        assert regressions == []

    def test_attainment_drop_detected(self, bench):
        worse = copy.deepcopy(bench)
        slo = worse["deterministic"]["session"]["telemetry"]["slos"][
            "fps_floor"
        ]
        slo["attainment"] = max(0.0, slo["attainment"] - 0.20)
        regressions, _ = diff_against_baseline(worse, bench)
        assert any("fps_floor" in r for r in regressions)

    def test_new_breach_detected(self, bench):
        worse = copy.deepcopy(bench)
        worse["deterministic"]["session"]["telemetry"]["slos"][
            "switch_flap_rate"
        ]["state"] = "breached"
        regressions, _ = diff_against_baseline(worse, bench)
        assert any("newly breached" in r for r in regressions)
