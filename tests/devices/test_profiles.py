"""Device database and Table I reproduction."""

import pytest

from repro.devices.profiles import (
    FLAGSHIP_BY_YEAR,
    GAME_REQUIREMENTS,
    LG_G5,
    LG_NEXUS_5,
    NVIDIA_SHIELD,
    SERVICE_DEVICES,
    USER_DEVICES,
    requirement_vs_capability,
)


def test_table1_cpu_always_exceeds_requirement():
    """Table I's point: phone CPUs are comfortably beyond requirements."""
    for year in (2014, 2015, 2016):
        row = requirement_vs_capability(year)
        assert row["cpu_headroom"] > 1.5, year


def test_table1_gpu_exactly_at_requirement():
    """...while GPUs sit exactly at the bar — the bottleneck."""
    for year in (2014, 2015, 2016):
        row = requirement_vs_capability(year)
        assert row["gpu_headroom"] == pytest.approx(1.0, abs=0.01), year


def test_table1_requirement_values_match_paper():
    rows = {r.year: r for r in GAME_REQUIREMENTS}
    assert rows[2014].gpu_fillrate_gpixels == 3.6
    assert rows[2015].gpu_fillrate_gpixels == 4.8
    assert rows[2016].gpu_fillrate_gpixels == 6.7
    assert rows[2016].cpu_cores == 2


def test_unknown_year_rejected():
    with pytest.raises(KeyError):
        requirement_vs_capability(2010)


def test_roles_consistent():
    for device in USER_DEVICES.values():
        assert device.role == "user"
        assert device.battery_wh > 0
    for device in SERVICE_DEVICES.values():
        assert device.role == "service"


def test_shield_fillrate_matches_paper():
    """§III quotes the Shield at up to 16 GP/s."""
    assert NVIDIA_SHIELD.gpu.fillrate_gpixels == pytest.approx(16.0)


def test_desktops_roughly_10x_mobile():
    from repro.devices.profiles import DELL_OPTIPLEX_9010

    ratio = (
        DELL_OPTIPLEX_9010.gpu.fillrate_gpixels
        / LG_NEXUS_5.gpu.fillrate_gpixels
    )
    assert ratio > 4.0


def test_new_phone_faster_than_old():
    assert LG_G5.gpu.fillrate_gpixels > LG_NEXUS_5.gpu.fillrate_gpixels
    assert LG_G5.cpu.perf_index > LG_NEXUS_5.cpu.perf_index


def test_screen_pixels():
    assert LG_NEXUS_5.screen_pixels == 1080 * 1920
