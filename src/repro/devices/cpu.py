"""CPU specifications and a utilization/power model.

The paper's motivation (§II) observes that phone CPUs comfortably exceed
game requirements — the GPU is the bottleneck — and that the GPU draws
about five times the CPU's power under graphics load.  The CPU model
tracks utilization contributions from the application (frame generation)
and from GBooster's own intermediate steps (serialization, compression,
image decoding), which feed the §VII-G CPU-overhead experiment.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Generator

from repro.sim.kernel import Simulator
from repro.sim.resources import Gauge


@dataclass(frozen=True)
class CPUSpec:
    """Static description of one CPU."""

    name: str
    clock_ghz: float
    cores: int
    active_power_w: float       # all cores busy
    idle_power_w: float
    is_arm: bool = True
    #: single-thread performance relative to the Snapdragon 800 reference;
    #: application cpu_ms_per_frame figures are divided by this.
    perf_index: float = 1.0

    @property
    def throughput_ghz(self) -> float:
        """Aggregate clock as a crude capacity proxy."""
        return self.clock_ghz * self.cores


class CPUModel:
    """Tracks per-source CPU utilization and integrates power.

    Utilization is additive across named sources and clamped at 1.0; power
    interpolates linearly between idle and active draw.  Sources let the
    overhead experiment separate the game's 68% from GBooster's extra 11
    points on the Nexus 5 (§VII-G).
    """

    def __init__(self, sim: Simulator, spec: CPUSpec, name: str = ""):
        self.sim = sim
        self.spec = spec
        self.name = name or spec.name
        self._contributions: Dict[str, float] = {}
        self.utilization = Gauge(sim, 0.0, name=f"{self.name}.util")
        self.power = Gauge(sim, spec.idle_power_w, name=f"{self.name}.power")

    def set_load(self, source: str, utilization: float) -> None:
        if not 0.0 <= utilization <= 1.0:
            raise ValueError(
                f"utilization must be in [0, 1], got {utilization}"
            )
        if utilization == 0.0:
            self._contributions.pop(source, None)
        else:
            self._contributions[source] = utilization
        total = min(1.0, sum(self._contributions.values()))
        self.utilization.set(total)
        self.power.set(
            self.spec.idle_power_w
            + (self.spec.active_power_w - self.spec.idle_power_w) * total
        )

    def load_of(self, source: str) -> float:
        return self._contributions.get(source, 0.0)

    def total_utilization(self) -> float:
        return self.utilization.value

    def mean_utilization(self) -> float:
        return self.utilization.mean()

    def energy_joules(self) -> float:
        return self.power.integral() / 1000.0


# -- CPU catalog -------------------------------------------------------------

SNAPDRAGON_800 = CPUSpec(
    name="Snapdragon 800 (Nexus 5)", clock_ghz=2.3, cores=4,
    active_power_w=2.2, idle_power_w=0.15, perf_index=1.0,
)
SNAPDRAGON_801 = CPUSpec(
    name="Snapdragon 801 (Galaxy S5)", clock_ghz=2.5, cores=4,
    active_power_w=2.3, idle_power_w=0.15, perf_index=1.08,
)
SNAPDRAGON_808 = CPUSpec(
    name="Snapdragon 808 (LG G4)", clock_ghz=1.8, cores=6,
    active_power_w=2.4, idle_power_w=0.15, perf_index=1.18,
)
SNAPDRAGON_820 = CPUSpec(
    name="Snapdragon 820 (LG G5)", clock_ghz=2.15, cores=4,
    active_power_w=2.5, idle_power_w=0.15, perf_index=1.55,
)
TEGRA_X1_CPU = CPUSpec(
    name="Tegra X1 CPU (Shield)", clock_ghz=2.0, cores=8,
    active_power_w=8.0, idle_power_w=0.5, perf_index=1.35,
)
AMLOGIC_S905 = CPUSpec(
    name="Amlogic S905 (Minix Neo U1)", clock_ghz=1.5, cores=4,
    active_power_w=4.0, idle_power_w=0.4, perf_index=0.7,
)
CORE_I7_2760QM = CPUSpec(
    name="Core i7-2760QM (Dell M4600)", clock_ghz=2.4, cores=4,
    active_power_w=45.0, idle_power_w=6.0, is_arm=False, perf_index=2.2,
)
CORE_I7_3770 = CPUSpec(
    name="Core i7-3770 (Optiplex 9010)", clock_ghz=3.4, cores=4,
    active_power_w=77.0, idle_power_w=8.0, is_arm=False, perf_index=2.6,
)
