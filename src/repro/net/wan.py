"""WAN path parameters for the planner's cloud candidate.

The OnLive-style baseline (:mod:`repro.baselines.cloud`) hard-codes the
paper's 10 Mbps / 100 ms test connection.  The multi-backend planner
needs the WAN as a *candidate* whose parameters vary per deployment —
a fiber user two hops from a rendering PoP is a very different plan
input than congested DSL — so the profile lives here and converts to
both a :class:`~repro.net.link.LinkSpec` (for transports) and a
:class:`~repro.baselines.cloud.CloudGamingModel` (for the probe's
response-time model).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.net.link import LinkSpec


@dataclass(frozen=True)
class WanProfile:
    """One WAN path to a cloud rendering region."""

    name: str
    rtt_ms: float = 100.0
    jitter_ms: float = 18.0
    bandwidth_mbps: float = 10.0
    loss_probability: float = 0.005

    def validate(self) -> None:
        if self.rtt_ms < 0 or self.jitter_ms < 0:
            raise ValueError(f"{self.name}: negative rtt/jitter")
        if self.bandwidth_mbps <= 0:
            raise ValueError(f"{self.name}: bandwidth must be positive")
        if not 0.0 <= self.loss_probability < 1.0:
            raise ValueError(f"{self.name}: loss outside [0, 1)")

    def link_spec(self) -> LinkSpec:
        return LinkSpec(
            name=f"wan-{self.name}",
            latency_ms=self.rtt_ms / 2.0,
            jitter_ms=self.jitter_ms,
            loss_probability=self.loss_probability,
        )

    def cloud_model(self):
        from repro.baselines.cloud import CloudGamingModel

        return CloudGamingModel(
            wan_rtt_ms=self.rtt_ms,
            wan_jitter_ms=self.jitter_ms,
            wan_bandwidth_mbps=self.bandwidth_mbps,
        )


#: The paper's §VII-F test connection.
WAN_BROADBAND = WanProfile(name="broadband")
#: Short-haul fiber to a nearby rendering point of presence.
WAN_FIBER = WanProfile(
    name="fiber", rtt_ms=28.0, jitter_ms=4.0, bandwidth_mbps=200.0,
    loss_probability=0.001,
)
#: Congested last mile — the plan the planner should almost never pick.
WAN_CONGESTED = WanProfile(
    name="congested", rtt_ms=160.0, jitter_ms=45.0, bandwidth_mbps=4.0,
    loss_probability=0.02,
)
