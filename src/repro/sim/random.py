"""Named, seeded random streams.

Each subsystem draws from its own stream keyed by ``(run_seed, name)`` so
that adding a new consumer of randomness never perturbs the draws seen by an
existing one — the property that makes ablation comparisons meaningful.
"""

from __future__ import annotations

import hashlib
import random
from typing import List, Sequence, TypeVar

T = TypeVar("T")


def _derive_seed(run_seed: int, name: str, shard_id: int = 0) -> int:
    """Seed for stream ``name`` — a pure function of its coordinates.

    Derivation depends only on ``(run_seed, shard_id, name)``, never on
    the order streams are created in, so adding a consumer of randomness
    (or creating streams in a different order across shards or runs)
    never perturbs the draws of an existing one.  Shard 0 keeps the
    legacy ``run_seed:name`` keying so a one-shard run reproduces the
    historical single-kernel draws bit for bit.
    """
    if shard_id == 0:
        key = f"{run_seed}:{name}"
    else:
        key = f"{run_seed}:shard{shard_id}:{name}"
    digest = hashlib.sha256(key.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class RandomStream:
    """A deterministic random source for one named subsystem."""

    def __init__(self, run_seed: int, name: str, shard_id: int = 0):
        self.run_seed = run_seed
        self.name = name
        self.shard_id = shard_id
        self._rng = random.Random(_derive_seed(run_seed, name, shard_id))

    def uniform(self, low: float = 0.0, high: float = 1.0) -> float:
        return self._rng.uniform(low, high)

    def normal(self, mean: float = 0.0, std: float = 1.0) -> float:
        return self._rng.gauss(mean, std)

    def exponential(self, mean: float) -> float:
        """Exponential variate with the given *mean* (not rate)."""
        if mean <= 0:
            raise ValueError(f"exponential mean must be positive, got {mean}")
        return self._rng.expovariate(1.0 / mean)

    def randint(self, low: int, high: int) -> int:
        """Uniform integer in the inclusive range [low, high]."""
        return self._rng.randint(low, high)

    def random(self) -> float:
        return self._rng.random()

    def choice(self, seq: Sequence[T]) -> T:
        return self._rng.choice(seq)

    def sample(self, seq: Sequence[T], k: int) -> List[T]:
        return self._rng.sample(seq, k)

    def shuffle(self, seq: list) -> None:
        self._rng.shuffle(seq)

    def bernoulli(self, p: float) -> bool:
        return self._rng.random() < p

    def bytes(self, n: int) -> bytes:
        return bytes(self._rng.getrandbits(8) for _ in range(n))

    def pareto(self, alpha: float, scale: float = 1.0) -> float:
        """Pareto variate; heavy-tailed burst sizes use this."""
        return scale * self._rng.paretovariate(alpha)

    def lognormal(self, mu: float, sigma: float) -> float:
        return self._rng.lognormvariate(mu, sigma)

    def fork(self, name: str) -> "RandomStream":
        """A child stream, still fully determined by the run seed."""
        return RandomStream(
            self.run_seed, f"{self.name}/{name}", shard_id=self.shard_id
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<RandomStream {self.name!r} seed={self.run_seed} "
            f"shard={self.shard_id}>"
        )
