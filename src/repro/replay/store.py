"""Content-addressed storage for recorded command intervals.

One :class:`ReplayStore` holds the recorded intervals of a single title,
keyed by the interval's skeleton digest (the rolling content digest of
:mod:`repro.gles.intervals`).  A :class:`ReplayHub` groups per-title
stores and is the unit the fleet controller distributes: every service
device and client session of a title shares the title's store, so a
second session hits warm on *any* device — the fleet-wide dedup the
ROADMAP names as the dominant win at scale.

Entries move through two states:

* ``RECORDED`` — deposited by one session's full-pipeline run; never
  served back to its recorder (no second execution to verify against).
* ``VERIFIED`` — a different session re-encountered the interval, was
  delta-served, and the reconstruction's digest matched its live stream
  (the ``run_replay_pair``-style promotion check in
  :mod:`repro.replay.session`).

Divergence at any point *demotes* the entry — it is dropped outright so
a later session re-records a clean copy, and the generation counter
bumps so heartbeat-advertised cache state reflects the change.

Eviction is LRU under a byte budget with refcounts: sessions retain the
entries they are actively serving from, and a retained entry is never
evicted (a hit already in flight must find its baseline on the server).
If the budget cannot be met from unreferenced entries, admission of the
new interval is rejected instead.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.codec.delta import encode_values
from repro.gles.intervals import IntervalSplit

RECORDED = "recorded"
VERIFIED = "verified"

#: dynamics variants kept per entry.  The recorder deposits the dynamics
#: of every occurrence it executes (first one at record time, later ones
#: on own-recording bypass frames), so a serving session can diff its
#: live dynamics against the closest recorded variant instead of a
#: single stale baseline — for stable content the best patch is empty.
MAX_VARIANTS = 16


@dataclass
class ReplayStoreStats:
    records: int = 0
    rejected: int = 0          # admissions refused by the byte budget
    hits: int = 0              # delta-serves (verify attempts included)
    promotions: int = 0
    demotions: int = 0
    evictions: int = 0
    variants: int = 0          # extra dynamics variants deposited

    def as_dict(self) -> Dict[str, int]:
        return {
            "records": self.records,
            "rejected": self.rejected,
            "hits": self.hits,
            "promotions": self.promotions,
            "demotions": self.demotions,
            "evictions": self.evictions,
            "variants": self.variants,
        }


@dataclass
class RecordedInterval:
    """One recorded interval: skeleton + baseline dynamics + accounting."""

    digest: str
    title: str
    skeleton: Tuple[Tuple[str, Tuple[Any, ...]], ...]
    slot_commands: Tuple[int, ...]
    #: recorded dynamics variants, oldest first; a serve names the one it
    #: diffed against by index (``variants[0]`` is the record-time state)
    variants: List[Tuple[Any, ...]]
    #: full-pipeline uplink bytes observed when this interval was
    #: recorded — what a hit avoids, and what a fallback re-pays
    wire_bytes: int
    raw_bytes: int
    #: nominal server-side command count of the full interval
    nominal_commands: int
    byte_size: int
    state: str = RECORDED
    recorded_by: str = ""
    hits: int = 0
    refcount: int = 0

    @property
    def baseline(self) -> Tuple[Any, ...]:
        """The record-time dynamics (variant 0)."""
        return self.variants[0]


class ReplayStore:
    """Per-title content-addressed interval cache (LRU + refcounts)."""

    def __init__(self, title: str, capacity_bytes: int = 4 << 20):
        if capacity_bytes <= 0:
            raise ValueError(
                f"capacity_bytes must be positive, got {capacity_bytes}"
            )
        self.title = title
        self.capacity_bytes = capacity_bytes
        self._entries: "OrderedDict[str, RecordedInterval]" = OrderedDict()
        self.bytes_stored = 0
        self.stats = ReplayStoreStats()
        #: bumps on every record / promotion / demotion / eviction, so a
        #: heartbeat-advertised generation tells the controller whether a
        #: device's view of the title cache is current
        self.generation = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, digest: str) -> bool:
        return digest in self._entries

    def get(self, digest: str) -> Optional[RecordedInterval]:
        return self._entries.get(digest)

    def entries(self) -> List[RecordedInterval]:
        """Oldest-to-newest (exposed for reports and tests)."""
        return list(self._entries.values())

    # -- recording / state transitions ---------------------------------------

    @staticmethod
    def entry_byte_size(split: IntervalSplit) -> int:
        """Stored footprint of one interval (admission accounting)."""
        return len(repr(split.skeleton)) + len(encode_values(split.dynamics))

    def record(
        self,
        digest: str,
        split: IntervalSplit,
        *,
        wire_bytes: int,
        raw_bytes: int,
        nominal_commands: int,
        recorded_by: str = "",
    ) -> Optional[RecordedInterval]:
        """Admit a freshly recorded interval; returns None when the byte
        budget cannot be met from evictable (unreferenced) entries."""
        if digest in self._entries:
            # Lost race between two recording sessions: first copy wins.
            return self._entries[digest]
        size = self.entry_byte_size(split)
        if not self._make_room(size):
            self.stats.rejected += 1
            return None
        entry = RecordedInterval(
            digest=digest,
            title=self.title,
            skeleton=split.skeleton,
            slot_commands=split.slot_commands,
            variants=[split.dynamics],
            wire_bytes=wire_bytes,
            raw_bytes=raw_bytes,
            nominal_commands=nominal_commands,
            byte_size=size,
            recorded_by=recorded_by,
        )
        self._entries[digest] = entry
        self.bytes_stored += size
        self.stats.records += 1
        self.generation += 1
        return entry

    def add_variant(self, digest: str, dynamics: Tuple[Any, ...]) -> bool:
        """Deposit one more recorded dynamics variant for an entry.

        Called by the recorder when it re-executes its own recording (a
        bypass frame): the occurrence's dynamics become one more diff
        target for later serving sessions.  Refused when the entry is
        gone, the variant is a duplicate, the per-entry cap is hit, or
        the byte budget cannot absorb it.
        """
        entry = self._entries.get(digest)
        if entry is None or len(entry.variants) >= MAX_VARIANTS:
            return False
        if dynamics in entry.variants:
            return False
        extra = len(encode_values(dynamics))
        # Pin the entry so making room cannot evict the very entry the
        # variant extends.
        entry.refcount += 1
        try:
            if not self._make_room(extra):
                return False
        finally:
            entry.refcount -= 1
        entry.variants.append(dynamics)
        entry.byte_size += extra
        self.bytes_stored += extra
        self.stats.variants += 1
        self.generation += 1
        return True

    def mark_hit(self, digest: str) -> None:
        entry = self._entries.get(digest)
        if entry is None:
            return
        self._entries.move_to_end(digest)
        entry.hits += 1
        self.stats.hits += 1

    def promote(self, digest: str) -> bool:
        entry = self._entries.get(digest)
        if entry is None or entry.state == VERIFIED:
            return False
        entry.state = VERIFIED
        self.stats.promotions += 1
        self.generation += 1
        return True

    def demote(self, digest: str) -> bool:
        """Divergence: drop the entry so a clean copy can be re-recorded."""
        entry = self._entries.pop(digest, None)
        if entry is None:
            return False
        self.bytes_stored -= entry.byte_size
        self.stats.demotions += 1
        self.generation += 1
        return True

    # -- refcounts / eviction ------------------------------------------------

    def retain(self, digest: str) -> None:
        entry = self._entries.get(digest)
        if entry is not None:
            entry.refcount += 1

    def release(self, digest: str) -> None:
        entry = self._entries.get(digest)
        if entry is not None and entry.refcount > 0:
            entry.refcount -= 1

    def _make_room(self, size: int) -> bool:
        if size > self.capacity_bytes:
            return False
        while self.bytes_stored + size > self.capacity_bytes:
            victim = None
            for entry in self._entries.values():  # oldest first
                if entry.refcount == 0:
                    victim = entry
                    break
            if victim is None:
                return False
            del self._entries[victim.digest]
            self.bytes_stored -= victim.byte_size
            self.stats.evictions += 1
            self.generation += 1
        return True

    # -- reporting -----------------------------------------------------------

    def report(self) -> Dict[str, Any]:
        verified = sum(
            1 for e in self._entries.values() if e.state == VERIFIED
        )
        return {
            "title": self.title,
            "entries": len(self._entries),
            "verified": verified,
            "bytes_stored": self.bytes_stored,
            "capacity_bytes": self.capacity_bytes,
            "generation": self.generation,
            **self.stats.as_dict(),
        }


class ReplayHub:
    """Fleet-wide collection of per-title replay stores.

    The controller owns one hub and hands the per-title namespace to
    every session and service device of that title; in a deployment the
    controller would ship verified entries to nodes, here shared state
    models the distributed store and the generation counter models the
    version a device advertises in its heartbeat.
    """

    def __init__(self, capacity_bytes_per_title: int = 4 << 20):
        self.capacity_bytes_per_title = capacity_bytes_per_title
        self.stores: Dict[str, ReplayStore] = {}
        #: sessions started per title (the fleet's warmth model)
        self._title_sessions: Dict[str, int] = {}

    def namespace(self, title: str) -> ReplayStore:
        store = self.stores.get(title)
        if store is None:
            store = ReplayStore(
                title, capacity_bytes=self.capacity_bytes_per_title
            )
            self.stores[title] = store
        return store

    def generation(self) -> int:
        """Hub-wide cache generation (advertised in fleet heartbeats)."""
        return sum(store.generation for store in self.stores.values())

    def session_started(self, title: str) -> bool:
        """Fleet warmth model: True when an earlier session of this title
        already recorded (so this session replays warm)."""
        count = self._title_sessions.get(title, 0)
        self._title_sessions[title] = count + 1
        if count == 0:
            # The recording session's deposits version the title cache.
            self.namespace(title).generation += 1
        return count > 0

    def report(self) -> Dict[str, Any]:
        return {
            "generation": self.generation(),
            "titles": {
                title: self.stores[title].report()
                for title in sorted(self.stores)
            },
        }
