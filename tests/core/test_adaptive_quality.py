"""Adaptive render-quality scaling under congestion."""

import pytest

from repro.apps.games import GTA_SAN_ANDREAS
from repro.core.config import GBoosterConfig
from repro.core.session import run_offload_session
from repro.devices.profiles import LG_NEXUS_5

DURATION = 45_000.0


def run(adaptive, policy="always_bluetooth"):
    return run_offload_session(
        GTA_SAN_ANDREAS, LG_NEXUS_5,
        config=GBoosterConfig(
            switching_policy=policy, adaptive_quality=adaptive
        ),
        duration_ms=DURATION,
    )


class TestCongested:
    """Everything forced through Bluetooth: 21 Mbps of shared air."""

    @pytest.fixture(scope="class")
    def fixed(self):
        return run(adaptive=False)

    @pytest.fixture(scope="class")
    def adaptive(self):
        return run(adaptive=True)

    def test_controller_scales_down(self, adaptive):
        client = adaptive.engine.backend
        assert client.quality_changes            # it reacted
        assert min(s for _t, s in client.quality_changes) < 1.0

    def test_latency_improves(self, fixed, adaptive):
        assert (
            adaptive.fps.mean_response_ms
            < fixed.fps.mean_response_ms - 5.0
        )

    def test_fps_not_worse(self, fixed, adaptive):
        assert adaptive.fps.median_fps >= fixed.fps.median_fps - 2.0

    def test_traffic_reduced(self, fixed, adaptive):
        assert (
            adaptive.client_stats.downlink_bytes
            < fixed.client_stats.downlink_bytes
        )


class TestUncongested:
    def test_quality_stays_high_on_wifi(self):
        result = run(adaptive=True, policy="always_wifi")
        client = result.engine.backend
        # Plenty of headroom: the scale must end at (or recover to) full.
        assert client.quality_scale >= 0.85

    def test_disabled_by_default(self):
        result = run_offload_session(
            GTA_SAN_ANDREAS, LG_NEXUS_5, duration_ms=15_000.0
        )
        client = result.engine.backend
        assert client.quality_scale == 1.0
        assert client.quality_changes == []


class TestScaleMechanics:
    def test_scale_respects_floor(self):
        from repro.core.client import GBoosterClient

        cfg = GBoosterConfig(adaptive_quality=True, adaptive_min_scale=0.6)
        result = run_offload_session(
            GTA_SAN_ANDREAS, LG_NEXUS_5, config=cfg, duration_ms=20_000.0
        )
        client = result.engine.backend
        assert client.quality_scale >= 0.6
