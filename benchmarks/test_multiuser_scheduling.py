"""E1 (extension): multi-user service scheduling (paper §VIII).

The paper's prototype shares a service device FCFS and calls out the
failure mode: "requests from the shooting game should receive higher
processing priorities".  This benchmark runs that exact scenario — Modern
Combat and Candy Crush sharing one Nvidia Shield — under FCFS and under
the priority scheduler the paper proposes as future work.
"""

from conftest import print_table

from repro.apps.games import CANDY_CRUSH, MODERN_COMBAT
from repro.core.multiuser import run_multiuser_experiment


def test_multiuser_priority_scheduling(run_once):
    results = run_once(
        run_multiuser_experiment, MODERN_COMBAT, CANDY_CRUSH,
        duration_ms=60_000.0,
    )
    lines = []
    for policy, result in results.items():
        shooter = result.by_genre("action")
        puzzle = result.by_genre("puzzle")
        lines.append(
            f"{policy:9} shooter {shooter.fps.median_fps:5.1f} FPS / "
            f"{shooter.mean_response_ms:6.1f} ms | puzzle "
            f"{puzzle.fps.median_fps:5.1f} FPS / "
            f"{puzzle.mean_response_ms:6.1f} ms"
        )
    print_table(
        "Multi-user sharing one Shield (§VIII): FCFS vs priority",
        "policy / shooter / puzzle", lines,
    )
    fcfs = results["fcfs"]
    prio = results["priority"]
    # Priority scheduling rescues the time-critical user...
    assert (
        prio.by_genre("action").mean_response_ms
        < fcfs.by_genre("action").mean_response_ms * 0.75
    )
    # ...without starving the tolerant one below playability.
    assert prio.by_genre("puzzle").fps.median_fps >= 20.0
