"""Multi-service-device dispatch (paper §VI).

* :mod:`repro.dispatch.scheduler` — Eq. 4 request assignment:
  ``argmin_j (w^j + r)/c^j + l^j`` over the service devices' queued
  workload, capability and round-trip delay.
* :mod:`repro.dispatch.consistency` — classification and replication of
  state-altering commands so every device's GL context stays identical.
* :mod:`repro.dispatch.reorder` — sequence-number reordering of completed
  frames, since a later request may finish on a faster device before an
  earlier one.
"""

from repro.dispatch.consistency import split_for_replication
from repro.dispatch.reorder import ReorderBuffer
from repro.dispatch.scheduler import (
    DeviceEstimate,
    DispatchScheduler,
    RoundRobinScheduler,
)

__all__ = [
    "DeviceEstimate",
    "DispatchScheduler",
    "ReorderBuffer",
    "RoundRobinScheduler",
    "split_for_replication",
]
