"""Session placement: Eq. 4 generalized from requests to sessions.

The paper's dispatch scheduler answers "which device should render *this
frame*?" by minimizing ``(w^j + r)/c^j + l^j``.  The fleet asks the same
question once per *session*: the request workload ``r`` becomes one
second of the session's steady-state fill demand, the queued workload
``w^j`` becomes the demand already committed to the device (its
heartbeat-reported backlog plus placed sessions), and the winner hosts
the session until a rebalance or a crash moves it.

Rebalancing watches the committed-utilization spread.  When the hottest
device exceeds the coolest by more than ``rebalance_threshold`` it moves
the smallest-demand, most-latency-tolerant session from hot to cool —
tolerant first because a migration costs its victim a state-replay stall
the action tier cannot afford; smallest first because it narrows the gap
with the least disruption.  Moves per sweep and per-session cooldown are
both bounded to keep the control loop from thrashing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.dispatch.scheduler import DeviceEstimate, DispatchScheduler
from repro.fleet.config import FleetConfig
from repro.fleet.node import FleetNode
from repro.fleet.session import FleetSession
from repro.sim.kernel import Simulator


@dataclass
class PlannedMove:
    session: FleetSession
    source: FleetNode
    target: FleetNode


class SessionPlacer:
    """Chooses a home node for each session; plans rebalancing moves."""

    def __init__(self, sim: Simulator, config: FleetConfig):
        self.sim = sim
        self.config = config
        self.scheduler = DispatchScheduler()

    # -- initial placement ---------------------------------------------------

    def place(
        self,
        session: FleetSession,
        nodes: Sequence[FleetNode],
        committed_mp_per_ms: Dict[str, float],
        rtt_ms: Dict[str, float],
        plan_bias_ms: Optional[Dict[str, float]] = None,
    ) -> FleetNode:
        """Eq. 4 over per-device committed demand; returns the home node.

        ``plan_bias_ms`` (from a planner-enabled controller) adds each
        device's predicted service-stage cost for *this* title to its
        completion estimate, so two devices with equal queues diverge on
        how fast they actually render this app's frames.
        """
        candidates = [n for n in nodes if not n.failed]
        if not candidates:
            raise ValueError("no live fleet nodes to place on")
        bias = plan_bias_ms or {}
        estimates = [
            DeviceEstimate(
                name=n.name,
                # One second of committed session demand plus the live
                # backlog: both in fill megapixels.
                queued_workload=(
                    committed_mp_per_ms.get(n.name, 0.0) * 1000.0
                    + n.queued_workload_mp
                ),
                capability=n.capacity_mp_per_ms,
                rtt_ms=rtt_ms.get(n.name, 0.0),
                plan_bias_ms=bias.get(n.name, 0.0),
            )
            for n in candidates
        ]
        chosen = self.scheduler.choose(
            session.demand_mp_per_ms * 1000.0, estimates
        )
        by_name = {n.name: n for n in candidates}
        return by_name[chosen.name]

    # -- rebalancing ---------------------------------------------------------

    def utilization(
        self, node: FleetNode, committed_mp_per_ms: Dict[str, float]
    ) -> float:
        cap = node.capacity_mp_per_ms
        if cap <= 0:
            return float("inf")
        return committed_mp_per_ms.get(node.name, 0.0) / cap

    def plan_rebalance(
        self,
        sessions_by_node: Dict[str, List[FleetSession]],
        nodes: Sequence[FleetNode],
        committed_mp_per_ms: Dict[str, float],
    ) -> List[PlannedMove]:
        """Plan up to ``max_moves_per_cycle`` hot-to-cool migrations."""
        live = [n for n in nodes if not n.failed]
        if len(live) < 2:
            return []
        committed = dict(committed_mp_per_ms)
        moves: List[PlannedMove] = []
        for _ in range(self.config.max_moves_per_cycle):
            ranked = sorted(
                live, key=lambda n: (self.utilization(n, committed), n.name)
            )
            coolest, hottest = ranked[0], ranked[-1]
            gap = self.utilization(hottest, committed) - self.utilization(
                coolest, committed
            )
            if gap <= self.config.rebalance_threshold:
                break
            victim = self._pick_victim(
                sessions_by_node.get(hottest.name, []), moves
            )
            if victim is None:
                break
            moves.append(PlannedMove(victim, hottest, coolest))
            committed[hottest.name] = (
                committed.get(hottest.name, 0.0) - victim.demand_mp_per_ms
            )
            committed[coolest.name] = (
                committed.get(coolest.name, 0.0) + victim.demand_mp_per_ms
            )
        return moves

    def _pick_victim(
        self, candidates: List[FleetSession], planned: List[PlannedMove]
    ) -> Optional[FleetSession]:
        """Most tolerant tier first, then smallest demand, then id."""
        already = {m.session.session_id for m in planned}
        eligible = [
            s for s in candidates
            if s.session_id not in already
            and self.sim.now - s.last_migration_ms
            >= self.config.migration_cooldown_ms
        ]
        if not eligible:
            return None
        return min(
            eligible,
            key=lambda s: (-s.priority, s.demand_mp_per_ms, s.session_id),
        )
