"""LRU caching of graphics commands (paper §V-A).

Consecutive frames issue near-identical command sequences; GBooster caches
"the latest and frequent commands on the user device and the service
device" so repeats travel as short references instead of full payloads.

The sender and receiver caches must stay in lockstep or a reference would
dangle.  :class:`CachePair` couples two :class:`LRUCommandCache` instances
and runs the identical update rule on both sides, asserting agreement — the
invariant the property tests hammer on.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Optional, Tuple

from repro.gles.commands import GLCommand

# Wire size of a cache reference: 2-byte marker + 8-byte key digest.
REFERENCE_BYTES = 10


@dataclass
class CacheStats:
    hits: int = 0
    misses: int = 0
    evictions: int = 0
    #: re-inserts of an already-cached key (recency/bytes refresh, not a
    #: miss) — policies reading hits/misses alone would misread churn
    refreshes: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0


class LRUCommandCache:
    """One side's cache: command key -> cached wire bytes."""

    def __init__(self, capacity: int = 4096):
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.capacity = capacity
        self._entries: "OrderedDict[Tuple, bytes]" = OrderedDict()
        self.stats = CacheStats()

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: Tuple) -> bool:
        return key in self._entries

    def lookup(self, key: Tuple) -> Optional[bytes]:
        """Returns cached bytes and refreshes recency, or None."""
        entry = self._entries.get(key)
        if entry is None:
            self.stats.misses += 1
            return None
        self._entries.move_to_end(key)
        self.stats.hits += 1
        return entry

    def insert(self, key: Tuple, wire: bytes) -> None:
        if key in self._entries:
            # Refresh both recency AND the stored bytes: a re-inserted key
            # may carry different wire bytes (e.g. after the sender evicted
            # and re-encoded), and serving stale bytes on a later hit would
            # desync the receiver's replay.
            self._entries[key] = wire
            self._entries.move_to_end(key)
            self.stats.refreshes += 1
            return
        self._entries[key] = wire
        if len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.stats.evictions += 1

    def keys_in_order(self) -> Tuple[Tuple, ...]:
        """Oldest-to-newest key order (exposed for consistency checks)."""
        return tuple(self._entries.keys())

    def byte_size(self) -> int:
        """Total bytes of cached wire payloads (admission accounting)."""
        return sum(len(wire) for wire in self._entries.values())


class CachePair:
    """Sender + receiver caches updated by one deterministic rule.

    ``encode`` decides, for one command with known wire bytes, whether to
    send a reference (cache hit on the sender) or the full payload (miss;
    both sides then insert).  ``decode`` replays the same rule on the
    receiver and returns the command's wire bytes.
    """

    def __init__(self, capacity: int = 4096):
        self.sender = LRUCommandCache(capacity)
        self.receiver = LRUCommandCache(capacity)

    def encode(self, cmd: GLCommand, wire: bytes) -> Tuple[int, bool]:
        """Returns ``(bytes_on_wire, was_hit)`` for this command."""
        key = cmd.key()
        if self.sender.lookup(key) is not None:
            # Receiver must refresh recency identically.
            hit = self.receiver.lookup(key)
            if hit is None:
                raise RuntimeError(
                    "cache desync: sender hit but receiver miss for "
                    f"{cmd.name}"
                )
            return REFERENCE_BYTES, True
        self.sender.insert(key, wire)
        self.receiver.insert(key, wire)
        return len(wire), False

    def verify_consistent(self) -> bool:
        return self.sender.keys_in_order() == self.receiver.keys_in_order()

    @property
    def hit_rate(self) -> float:
        return self.sender.stats.hit_rate
