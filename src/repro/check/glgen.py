"""Seeded generator of valid-ish GLES 2.0 command intervals.

The fusion property suite (plan-equivalence, ``repro fuzz``) needs random
command streams that look like real frames: mostly-valid state setting
with heavy redundancy (the same ``glUseProgram``/``glBindTexture``/
``glVertexAttribPointer`` re-issued every frame, uniform locations
rewritten several times before the draw), plus the occasional invalid
call so the barrier paths get exercised.

Cases are plain JSON-able dicts so the PR 4 fuzzer can persist them to
the corpus and shrink them field-by-field; :func:`build_commands`
deterministically expands a case into the actual :class:`GLCommand`
list.  Draw calls terminate every frame so the serializer's deferred
vertex pointers always flush.
"""

from __future__ import annotations

import random
from typing import Dict, List

from repro.gles import enums as gl
from repro.gles.commands import GLCommand, make_command

_VS_SRC = "attribute vec4 pos; void main() { gl_Position = pos; }"
_FS_SRC = "void main() { gl_FragColor = vec4(1.0); }"

_CAPS = (
    gl.GL_CULL_FACE,
    gl.GL_BLEND,
    gl.GL_DITHER,
    gl.GL_STENCIL_TEST,
    gl.GL_DEPTH_TEST,
    gl.GL_SCISSOR_TEST,
)


def generate_case(rng: random.Random) -> Dict:
    """Draw one case description.  Everything downstream derives from it."""
    return {
        "seed": rng.randrange(2 ** 31),
        "frames": rng.randint(1, 4),
        "draws_per_frame": rng.randint(1, 5),
        "programs": rng.randint(1, 3),
        "textures": rng.randint(1, 4),
        "uniform_locations": rng.randint(1, 6),
        # Probability that a state-setter is re-issued redundantly right
        # away, and that a uniform location is rewritten before the draw.
        "redundancy": round(rng.uniform(0.0, 0.9), 3),
        # Probability of hopping the active texture unit between draws.
        "unit_hops": round(rng.uniform(0.0, 0.5), 3),
        # Probability of an erroneous call (bad cap, negative viewport,
        # out-of-range attrib) that must act as a fusion barrier.
        "error_rate": round(rng.uniform(0.0, 0.15), 3),
    }


def build_commands(case: Dict) -> List[GLCommand]:
    """Expand a case into a concrete command interval, deterministically."""
    rng = random.Random(case["seed"])
    redundancy = case["redundancy"]
    cmds: List[GLCommand] = []
    # GL name allocation is sequential, so the generator can predict ids
    # without executing anything.
    next_name = 1

    def alloc() -> int:
        nonlocal next_name
        name = next_name
        next_name += 1
        return name

    programs: List[int] = []
    for _ in range(case["programs"]):
        vs, fs, prog = alloc(), alloc(), alloc()
        cmds.append(make_command("glCreateShader", gl.GL_VERTEX_SHADER))
        cmds.append(make_command("glShaderSource", vs, _VS_SRC))
        cmds.append(make_command("glCompileShader", vs))
        cmds.append(make_command("glCreateShader", gl.GL_FRAGMENT_SHADER))
        cmds.append(make_command("glShaderSource", fs, _FS_SRC))
        cmds.append(make_command("glCompileShader", fs))
        cmds.append(make_command("glCreateProgram"))
        cmds.append(make_command("glAttachShader", prog, vs))
        cmds.append(make_command("glAttachShader", prog, fs))
        cmds.append(make_command("glLinkProgram", prog))
        programs.append(prog)

    # glBindTexture creates objects for unseen names, so texture ids can
    # be drawn from a disjoint literal range.
    textures = [1000 + i for i in range(case["textures"])]
    for tex in textures:
        cmds.append(make_command("glBindTexture", gl.GL_TEXTURE_2D, tex))
        side = rng.choice((16, 32, 64))
        cmds.append(make_command(
            "glTexImage2D", gl.GL_TEXTURE_2D, 0, gl.GL_RGBA,
            side, side, 0, gl.GL_RGBA, gl.GL_UNSIGNED_BYTE,
            bytes(side),
        ))
        cmds.append(make_command(
            "glTexParameteri", gl.GL_TEXTURE_2D,
            gl.GL_TEXTURE_MIN_FILTER, gl.GL_LINEAR,
        ))

    def maybe_again(cmd: GLCommand) -> None:
        cmds.append(cmd)
        while rng.random() < redundancy:
            cmds.append(GLCommand(cmd.name, cmd.args))

    locations = list(range(case["uniform_locations"]))
    for _ in range(case["frames"]):
        prog = rng.choice(programs)
        maybe_again(make_command("glUseProgram", prog))
        maybe_again(make_command("glViewport", 0, 0, 640, 480))
        if rng.random() < case["error_rate"]:
            cmds.append(make_command("glViewport", 0, 0, -1, 480))
        for cap in rng.sample(_CAPS, rng.randint(0, 2)):
            maybe_again(make_command(
                rng.choice(("glEnable", "glDisable")), cap
            ))
        if rng.random() < case["error_rate"]:
            cmds.append(make_command("glEnable", 0xBEEF))
        for _ in range(rng.randint(0, case["uniform_locations"])):
            loc = rng.choice(locations)
            # A run of rewrites to one location: prime last-write-wins bait.
            for _ in range(1 + (rng.random() < redundancy) * rng.randint(1, 3)):
                cmds.append(make_command(
                    "glUniform4f", loc,
                    round(rng.uniform(0, 1), 3), 0.0, 0.0, 1.0,
                ))
        for _ in range(case["draws_per_frame"]):
            if rng.random() < case["unit_hops"]:
                unit = rng.randrange(0, 4)
                maybe_again(make_command(
                    "glActiveTexture", gl.GL_TEXTURE0 + unit
                ))
            maybe_again(make_command(
                "glBindTexture", gl.GL_TEXTURE_2D, rng.choice(textures)
            ))
            attrib = rng.randrange(0, 4)
            maybe_again(make_command(
                "glVertexAttribPointer", attrib, 3, gl.GL_FLOAT,
                False, 20, 0,
            ))
            if rng.random() < case["error_rate"]:
                cmds.append(make_command(
                    "glVertexAttribPointer", 99, 3, gl.GL_FLOAT,
                    False, 20, 0,
                ))
            maybe_again(make_command("glEnableVertexAttribArray", attrib))
            cmds.append(make_command(
                "glDrawArrays", gl.GL_TRIANGLES, 0, rng.choice((3, 6, 12))
            ))
    # A terminal draw flushes any deferred pointer still held back.
    cmds.append(make_command("glDrawArrays", gl.GL_TRIANGLES, 0, 3))
    return cmds
