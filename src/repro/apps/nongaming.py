"""Non-gaming applications (Table III).

Ebook Reader, Yahoo Weather and Tumblr exercise the GPU only for 2D UI
composition: frames render in a few milliseconds, most frames are
identical (scroll bursts aside), and the engine is event-driven rather
than vsync-saturated.  The paper measures **zero** FPS boost from
offloading (they already hit their modest frame pacing locally) and a tiny
~7% average energy saving.
"""

from __future__ import annotations

from typing import Dict

from repro.apps.base import ApplicationSpec

EBOOK_READER = ApplicationSpec(
    name="Ebook Reader",
    short_name="A1",
    genre="app",
    package_size_gb=0.04,
    fill_mp_per_frame=9.0,            # page composition + shadows
    cpu_ms_per_frame=6.0,
    cpu_base_load=0.08,
    nominal_commands_per_frame=120,
    emitted_commands_per_frame=16,
    textures_per_frame=4,
    render_width=600,
    render_height=480,
    base_change_fraction=0.01,
    burst_change_fraction=0.5,        # page turns
    detail=0.3,
    touch_burst_interval_s=8.0,       # reading: rare page turns
    touch_burst_duration_s=0.3,
    touch_rate_in_burst_hz=2.0,
    target_fps=30.0,                  # UI pacing, not game vsync racing
)

YAHOO_WEATHER = ApplicationSpec(
    name="Yahoo Weather",
    short_name="A2",
    genre="app",
    package_size_gb=0.05,
    fill_mp_per_frame=11.0,           # parallax imagery
    cpu_ms_per_frame=7.0,
    cpu_base_load=0.10,
    nominal_commands_per_frame=150,
    emitted_commands_per_frame=16,
    textures_per_frame=6,
    render_width=600,
    render_height=480,
    base_change_fraction=0.02,
    burst_change_fraction=0.45,
    detail=0.5,
    touch_burst_interval_s=5.0,
    touch_burst_duration_s=0.5,
    touch_rate_in_burst_hz=2.5,
    target_fps=30.0,
)

TUMBLR = ApplicationSpec(
    name="Tumblr",
    short_name="A3",
    genre="app",
    package_size_gb=0.08,
    fill_mp_per_frame=10.0,           # feed scrolling
    cpu_ms_per_frame=8.0,
    cpu_base_load=0.12,
    nominal_commands_per_frame=160,
    emitted_commands_per_frame=16,
    textures_per_frame=8,
    render_width=600,
    render_height=480,
    base_change_fraction=0.02,
    burst_change_fraction=0.6,        # fling scrolls
    detail=0.55,
    touch_burst_interval_s=4.0,
    touch_burst_duration_s=0.8,
    touch_rate_in_burst_hz=3.0,
    target_fps=30.0,
)

NONGAMING_APPS: Dict[str, ApplicationSpec] = {
    spec.short_name: spec for spec in (EBOOK_READER, YAHOO_WEATHER, TUMBLR)
}
