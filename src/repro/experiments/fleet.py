"""Experiment R2: fleet scaling — many sessions over a shared pool.

Not a paper figure: §VIII stops at two users on one console.  This sweep
pushes the same machinery to fleet scale: N concurrent sessions (mixed
Table II genres) over a pool of service devices, with a mid-run device
crash and later rejoin injected through ``repro.faults``.  Reported per
sweep point: admission outcomes, per-tier mean response time, migrations
taken, and the zero-frame-loss invariant.

Everything is deterministic under a fixed seed — two runs of the same
point produce byte-identical reports (asserted via the report digest).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple

from repro.apps.base import ApplicationSpec
from repro.apps.games import GAMES
from repro.devices.profiles import SERVICE_DEVICES, DeviceSpec
from repro.faults import FaultSchedule
from repro.fleet import FleetConfig, FleetController, SessionRequest
from repro.sim.kernel import Simulator

#: fraction of the session window at which the injected crash lands / heals
CRASH_AT_FRACTION = 0.4
REJOIN_AT_FRACTION = 0.8


def make_fleet_pool(n_devices: int) -> List[DeviceSpec]:
    """A pool of ``n_devices`` drawn round-robin from the Table II lineup.

    Names are made unique (``"Nvidia Shield #3"``) so registry, placer
    and metrics can key on them.
    """
    if n_devices < 1:
        raise ValueError(f"need at least one device, got {n_devices}")
    bases = list(SERVICE_DEVICES.values())
    return [
        replace(bases[i % len(bases)], name=f"{bases[i % len(bases)].name} #{i}")
        for i in range(n_devices)
    ]


def default_fault_schedule(duration_ms: float, node: int = 0) -> FaultSchedule:
    """Crash one pool device mid-run; power it back near the end."""
    return FaultSchedule().crash(
        at_ms=duration_ms * CRASH_AT_FRACTION,
        node=node,
        rejoin_at_ms=duration_ms * REJOIN_AT_FRACTION,
    )


@dataclass
class FleetPoint:
    """Outcome of one fleet sweep point."""

    sessions_requested: int
    devices: int
    seed: int
    crash: bool
    offered: int
    admitted: int
    queued: int
    rejected: int
    dequeued: int
    waiting: int
    finished: int
    peak_concurrency: int
    migrations: int
    crash_migrations: int
    frames: int
    frames_lost: int
    frames_redispatched: int
    mean_wait_ms: float
    tier_response_ms: Dict[str, float] = field(default_factory=dict)
    digest: str = ""
    #: conservation-law breaks caught when ``config.check`` is armed
    invariant_violations: int = 0

    @property
    def zero_loss(self) -> bool:
        return self.frames_lost == 0


def run_fleet_point(
    n_sessions: int = 64,
    n_devices: int = 8,
    duration_ms: float = 10_000.0,
    seed: int = 0,
    crash: bool = True,
    config: Optional[FleetConfig] = None,
    apps: Optional[Sequence[ApplicationSpec]] = None,
    arrival_spread_ms: float = 1_000.0,
    sim: Optional[Simulator] = None,
) -> Tuple[FleetPoint, Dict]:
    """One fleet run; returns the sweep point and the full fleet report.

    Pass a pre-built ``sim`` to keep hold of the kernel afterwards — the
    profiling harness reads ``sim.spans`` / ``sim.metrics`` off it.
    """
    if n_sessions < 1:
        raise ValueError(f"need at least one session, got {n_sessions}")
    pool = make_fleet_pool(n_devices)
    if config is None:
        config = FleetConfig()
    if crash:
        config = replace(
            config, faults=default_fault_schedule(duration_ms)
        )
    apps = list(apps or GAMES.values())
    if sim is None:
        sim = Simulator(seed=seed)
    controller = FleetController(sim, pool, config)
    controller.set_session_duration(duration_ms)
    sim.run_until_event(controller.bootstrapped, limit=60_000.0)

    # The launch wave: session i arrives i * gap after bootstrap, cycling
    # through the Table II apps so every QoS tier is represented.
    gap_ms = arrival_spread_ms / n_sessions

    def arrivals():
        for i in range(n_sessions):
            request = SessionRequest(
                session_id=f"s{i:03d}",
                app=apps[i % len(apps)],
                arrival_ms=sim.now,
            )
            controller.submit(request)
            yield gap_ms

    sim.spawn(arrivals(), name="fleet.arrivals")
    # Queued sessions start only as earlier ones finish, so the horizon
    # covers two full session lengths plus the launch wave and detection
    # slack.
    sim.run(until=sim.now + arrival_spread_ms + 2.0 * duration_ms + 5_000.0)

    if controller.monitor is not None:
        controller.monitor.finalize()
    report = controller.report()
    tiers = report["tiers"]
    point = FleetPoint(
        sessions_requested=n_sessions,
        devices=n_devices,
        seed=seed,
        crash=crash,
        offered=report["admission"]["offered"],
        admitted=report["admission"]["admitted"],
        queued=report["admission"]["queued"],
        rejected=report["admission"]["rejected"],
        dequeued=report["admission"]["dequeued"],
        waiting=report["admission"]["waiting"],
        finished=report["sessions"]["finished"],
        peak_concurrency=report["sessions"]["peak_concurrency"],
        migrations=report["migrations"]["total"],
        crash_migrations=report["migrations"]["crash"],
        frames=sum(t["frames"] for t in tiers.values()),
        frames_lost=sum(t["frames_lost"] for t in tiers.values()),
        frames_redispatched=report["migrations"]["frames_redispatched"],
        mean_wait_ms=report["admission"]["mean_wait_ms"],
        tier_response_ms={
            tier: t["mean_response_ms"] for tier, t in tiers.items()
        },
        digest=report["digest"],
        invariant_violations=(
            len(controller.monitor.violations)
            if controller.monitor is not None
            else 0
        ),
    )
    return point, report


def run_fleet_sweep(
    session_counts: Sequence[int] = (16, 32, 64, 96),
    n_devices: int = 8,
    duration_ms: float = 10_000.0,
    seed: int = 0,
    crash: bool = True,
) -> List[FleetPoint]:
    """Sweep session count over a fixed pool."""
    return [
        run_fleet_point(
            n_sessions=n, n_devices=n_devices, duration_ms=duration_ms,
            seed=seed, crash=crash,
        )[0]
        for n in session_counts
    ]


def format_points(points: Sequence[FleetPoint]) -> str:
    header = (
        f"{'sessions':>8} {'devices':>7} {'admit':>5} {'queue':>5} "
        f"{'reject':>6} {'peak':>4} {'migr':>4} {'lost':>4} "
        f"{'action ms':>9} {'standard ms':>11} {'tolerant ms':>11}"
    )
    lines = [header]
    for p in points:
        lines.append(
            f"{p.sessions_requested:8d} {p.devices:7d} {p.admitted:5d} "
            f"{p.queued:5d} {p.rejected:6d} {p.peak_concurrency:4d} "
            f"{p.migrations:4d} {p.frames_lost:4d} "
            f"{p.tier_response_ms.get('action', 0.0):9.1f} "
            f"{p.tier_response_ms.get('standard', 0.0):11.1f} "
            f"{p.tier_response_ms.get('tolerant', 0.0):11.1f}"
        )
    return "\n".join(lines)
