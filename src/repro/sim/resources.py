"""Queueing primitives built on the kernel: stores, resources, gauges.

These mirror the facilities a GPU command queue, a radio transmit queue or a
service-device request queue need: FIFO hand-off between producer and
consumer processes, with optional capacity limits.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Generator, List, Optional, Tuple

from repro.sim.kernel import Event, SimulationError, Simulator


class Store:
    """An unbounded-or-bounded FIFO channel between processes.

    ``put`` is immediate unless the store is full (then the producer's
    yielded event fires once space frees); ``get`` yields an event that fires
    when an item is available.  Ordering is strictly FIFO for both items and
    waiters.
    """

    def __init__(self, sim: Simulator, capacity: Optional[int] = None, name: str = ""):
        if capacity is not None and capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.sim = sim
        self.capacity = capacity
        self.name = name or "store"
        self.items: Deque[Any] = deque()
        self._getters: Deque[Event] = deque()
        self._putters: Deque[Tuple[Event, Any]] = deque()

    def __len__(self) -> int:
        return len(self.items)

    @property
    def full(self) -> bool:
        return self.capacity is not None and len(self.items) >= self.capacity

    def put(self, item: Any) -> Event:
        """Returns an event that fires once the item has been accepted."""
        evt = self.sim.event(name=f"{self.name}.put")
        if self._getters:
            # Hand the item straight to the oldest waiting getter.
            getter = self._getters.popleft()
            getter.trigger(item)
            evt.trigger(None)
        elif not self.full:
            self.items.append(item)
            evt.trigger(None)
        else:
            self._putters.append((evt, item))
        return evt

    def try_put(self, item: Any) -> bool:
        """Non-blocking put; returns False when the store is full."""
        if self._getters:
            self._getters.popleft().trigger(item)
            return True
        if self.full:
            return False
        self.items.append(item)
        return True

    def get(self) -> Event:
        """Returns an event whose value is the next item."""
        evt = self.sim.event(name=f"{self.name}.get")
        if self.items:
            item = self.items.popleft()
            evt.trigger(item)
            self._admit_putter()
        else:
            self._getters.append(evt)
        return evt

    def try_get(self) -> Tuple[bool, Any]:
        """Non-blocking get; returns ``(ok, item_or_None)``."""
        if self.items:
            item = self.items.popleft()
            self._admit_putter()
            return True, item
        return False, None

    def peek_all(self) -> List[Any]:
        return list(self.items)

    def drain(self) -> List[Any]:
        """Remove and return every queued item (FIFO order).

        Blocked putters are admitted as space frees, exactly as if the
        drained items had been consumed one by one.
        """
        out: List[Any] = []
        while self.items:
            out.append(self.items.popleft())
            self._admit_putter()
        return out

    def _admit_putter(self) -> None:
        if self._putters and not self.full:
            evt, item = self._putters.popleft()
            self.items.append(item)
            evt.trigger(None)


class PriorityStore:
    """A store whose ``get`` returns the most urgent item first.

    Items are ``(priority, item)`` with lower priority values served first;
    equal priorities preserve FIFO order.  Used by the multi-user service
    daemon extension (paper §VIII): requests from fast-paced games preempt
    queued requests from turn-based ones.
    """

    def __init__(self, sim: Simulator, name: str = ""):
        self.sim = sim
        self.name = name or "pstore"
        self._heap: List[Tuple[float, int, Any]] = []
        self._counter = 0
        self._getters: Deque[Event] = deque()

    def __len__(self) -> int:
        return len(self._heap)

    def put(self, item: Any, priority: float = 0.0) -> None:
        if self._getters:
            self._getters.popleft().trigger(item)
            return
        import heapq

        heapq.heappush(self._heap, (priority, self._counter, item))
        self._counter += 1

    def get(self) -> Event:
        evt = self.sim.event(name=f"{self.name}.get")
        if self._heap:
            import heapq

            _prio, _seq, item = heapq.heappop(self._heap)
            evt.trigger(item)
        else:
            self._getters.append(evt)
        return evt

    def peek_all(self) -> List[Any]:
        return [item for _p, _s, item in sorted(self._heap)]

    def drain(self) -> List[Any]:
        """Remove and return every queued item, most urgent first."""
        out = [item for _p, _s, item in sorted(self._heap)]
        self._heap.clear()
        return out


class Resource:
    """A counted resource with FIFO acquisition (e.g. a GPU with one engine)."""

    def __init__(self, sim: Simulator, capacity: int = 1, name: str = ""):
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.sim = sim
        self.capacity = capacity
        self.name = name or "resource"
        self.in_use = 0
        self._waiters: Deque[Event] = deque()

    def acquire(self) -> Event:
        evt = self.sim.event(name=f"{self.name}.acquire")
        if self.in_use < self.capacity:
            self.in_use += 1
            evt.trigger(None)
        else:
            self._waiters.append(evt)
        return evt

    def release(self) -> None:
        if self.in_use <= 0:
            raise SimulationError(f"release of idle resource {self.name!r}")
        if self._waiters:
            # Hand the slot directly to the next waiter; in_use is unchanged.
            self._waiters.popleft().trigger(None)
        else:
            self.in_use -= 1

    def locked(self) -> Generator:
        """Generator helper: ``yield from resource.locked()`` acquires it."""
        yield self.acquire()


class Gauge:
    """A piecewise-constant quantity sampled over simulated time.

    Used for energy integration (power gauge) and utilization accounting.
    ``integral()`` returns the time integral of the gauge up to ``now``.
    """

    def __init__(self, sim: Simulator, initial: float = 0.0, name: str = ""):
        self.sim = sim
        self.name = name or "gauge"
        self.value = initial
        self._last_change = sim.now
        self._integral = 0.0
        self.history: List[Tuple[float, float]] = [(sim.now, initial)]

    def set(self, value: float) -> None:
        now = self.sim.now
        self._integral += self.value * (now - self._last_change)
        self._last_change = now
        if value != self.value:
            self.value = value
            self.history.append((now, value))

    def add(self, delta: float) -> None:
        self.set(self.value + delta)

    def integral(self) -> float:
        """Time integral of the gauge from t=0 to now."""
        return self._integral + self.value * (self.sim.now - self._last_change)

    def mean(self) -> float:
        elapsed = self.sim.now - self.history[0][0]
        if elapsed <= 0:
            return self.value
        return self.integral() / elapsed
