"""False-negative / false-positive evaluation of threshold forecasts.

Paper §V-B defines the events the switcher cares about:

* **FN** — the model fails to predict a demand surge that exceeds
  Bluetooth throughput (costly: packets queue behind a sleeping WiFi).
* **FP** — the model forecasts a surge that never materializes (cheap:
  WiFi wakes needlessly and burns a little energy).

``evaluate_threshold_prediction`` walks a trace, asks the model at each
epoch for an h-step forecast, and compares "any forecast step exceeds the
threshold" against "the realized series exceeded the threshold within the
horizon".  FN rate is misses over actual surges; FP rate is false alarms
over actual non-surges.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence


@dataclass
class PredictionOutcome:
    true_positives: int = 0
    false_positives: int = 0
    true_negatives: int = 0
    false_negatives: int = 0

    @property
    def evaluated(self) -> int:
        return (
            self.true_positives
            + self.false_positives
            + self.true_negatives
            + self.false_negatives
        )

    @property
    def fn_rate(self) -> float:
        """Missed surges over actual surges."""
        actual_positive = self.true_positives + self.false_negatives
        return self.false_negatives / actual_positive if actual_positive else 0.0

    @property
    def fp_rate(self) -> float:
        """False alarms over actual non-surges."""
        actual_negative = self.true_negatives + self.false_positives
        return self.false_positives / actual_negative if actual_negative else 0.0

    @property
    def precision(self) -> float:
        predicted_positive = self.true_positives + self.false_positives
        return (
            self.true_positives / predicted_positive if predicted_positive else 0.0
        )


def evaluate_threshold_prediction(
    series: Sequence[float],
    threshold: float,
    make_forecast: Callable[[int], List[float]],
    observe: Callable[[int, float], None],
    horizon: int,
    warmup: int = 50,
    onsets_only: bool = True,
) -> PredictionOutcome:
    """Replay a trace through a forecaster and score surge prediction.

    ``observe(t, y)`` feeds sample ``t`` into the model (the caller closes
    over any exogenous inputs); ``make_forecast(t)`` returns the model's
    h-step forecast *after* having seen samples ``0..t``.  Epochs whose
    horizon extends past the trace end are not scored.

    With ``onsets_only`` (the default, matching the paper's framing of a
    "soaring traffic demand"), epochs where demand already exceeds the
    threshold are not scored: predicting an ongoing surge from its own
    history is trivial, and the switch decision those epochs would drive
    has already been made.  Only genuine onset prediction — demand below
    the threshold now, exceeding it within the horizon — counts.
    """
    if horizon <= 0:
        raise ValueError(f"horizon must be positive, got {horizon}")
    outcome = PredictionOutcome()
    n = len(series)
    for t in range(n):
        observe(t, series[t])
        if t < warmup or t + horizon >= n:
            continue
        if onsets_only and series[t] > threshold:
            continue
        forecast = make_forecast(t)
        if len(forecast) < horizon:
            raise ValueError(
                f"forecaster returned {len(forecast)} steps, need {horizon}"
            )
        predicted_surge = any(f > threshold for f in forecast[:horizon])
        actual_surge = any(
            series[t + 1 + k] > threshold for k in range(horizon)
        )
        if actual_surge and predicted_surge:
            outcome.true_positives += 1
        elif actual_surge and not predicted_surge:
            outcome.false_negatives += 1
        elif predicted_surge:
            outcome.false_positives += 1
        else:
            outcome.true_negatives += 1
    return outcome
