"""The profiling harness: artifact schema, determinism, trace coverage."""

import json

import pytest

from repro.experiments.profiling import (
    BENCH_SCHEMA,
    MIN_TRACE_CATEGORIES,
    REQUIRED_STAGES,
    bench_session,
    run_profile,
    validate_bench,
    write_bench,
)
from repro.obs.export import validate_chrome_trace

# Runs the wall-clock micro-benches; numbers are machine-dependent even
# though the assertions only gate schema and determinism.
pytestmark = pytest.mark.bench


@pytest.fixture(scope="module")
def smoke_bench(tmp_path_factory):
    trace = tmp_path_factory.mktemp("profile") / "trace.json"
    return run_profile(seed=0, smoke=True, trace_path=str(trace)), trace


class TestArtifactSchema:
    def test_smoke_run_validates_clean(self, smoke_bench):
        bench, _ = smoke_bench
        assert validate_bench(bench) == []
        assert bench["schema"] == BENCH_SCHEMA

    def test_required_stages_have_percentiles(self, smoke_bench):
        bench, _ = smoke_bench
        stages = bench["deterministic"]["session"]["pipeline_stages"]
        for stage in REQUIRED_STAGES:
            for key in ("count", "p50", "p95", "p99"):
                assert key in stages[stage], (stage, key)
        # The session must actually exercise the client-side stages.
        assert stages["intercept"]["count"] > 0
        assert stages["encode"]["count"] > 0
        assert stages["present"]["count"] > 0
        assert stages["execute"]["count"] > 0

    def test_wall_clock_benches_present_but_not_digested(self, smoke_bench):
        bench, _ = smoke_bench
        wall = bench["wall_clock"]
        assert wall["kernel"]["events_per_s"] > 0
        assert wall["serialization"]["bytes"] > 0
        assert wall["codec"]["frames"] > 0
        assert "wall_clock" not in bench["deterministic"]

    def test_fleet_trace_loads_and_keeps_categories(self, smoke_bench):
        bench, trace_path = smoke_bench
        cats = bench["deterministic"]["fleet"]["span_categories"]
        assert len(cats) >= MIN_TRACE_CATEGORIES
        trace = json.loads(trace_path.read_text())
        assert validate_chrome_trace(trace) == []

    def test_validate_flags_drift(self, smoke_bench):
        bench, _ = smoke_bench
        broken = json.loads(json.dumps(bench))
        broken["schema"] = "other/2"
        del broken["deterministic"]["session"]["pipeline_stages"]["encode"]
        broken["deterministic"]["fleet"]["span_categories"] = ["fleet.queue"]
        del broken["wall_clock"]["kernel"]
        problems = validate_bench(broken)
        assert any("schema" in p for p in problems)
        assert any("'encode'" in p for p in problems)
        assert any("categories" in p for p in problems)
        assert any("kernel" in p for p in problems)

    def test_write_round_trips(self, smoke_bench, tmp_path):
        bench, _ = smoke_bench
        out = tmp_path / "bench.json"
        write_bench(str(out), bench)
        assert json.loads(out.read_text()) == bench


class TestDeterminism:
    def test_same_seed_same_session_section(self):
        a, _ = bench_session(duration_ms=1_000.0, seed=3)
        b, _ = bench_session(duration_ms=1_000.0, seed=3)
        assert a == b

    def test_different_seed_differs(self):
        a, _ = bench_session(duration_ms=1_000.0, seed=3)
        b, _ = bench_session(duration_ms=1_000.0, seed=4)
        assert a != b
