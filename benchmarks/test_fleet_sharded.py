"""Sharded fleet sweep: the R2 workload over K kernels and N workers.

The acceptance bar for the sharded kernel: the 1000-session sweep
completes with zero frame loss and a worker-count-independent merged
digest, and a one-shard run reproduces the legacy single-kernel digest.
Wall-clock speedup is hardware-dependent (worker processes only help on
multi-core runners), so the digest contract — not the clock — is what
this benchmark asserts.
"""

import multiprocessing

from conftest import print_table

from repro.experiments.fleet import run_fleet_point
from repro.experiments.fleet_shard import (
    format_sharded_points,
    run_sharded_fleet_point,
)

BIG_POINT = dict(
    n_sessions=1000, n_devices=100, duration_ms=10_000.0, seed=0,
    shards=4, crash=True,
)


def test_sharded_sweep_scales_with_zero_loss(run_once):
    workers = min(4, multiprocessing.cpu_count())
    point, _ = run_once(
        run_sharded_fleet_point, workers=workers, **BIG_POINT
    )
    header, *rows = format_sharded_points([point]).splitlines()
    print_table(
        f"Sharded fleet (1000 sessions, 4 shards, {workers} workers)",
        header, rows,
    )
    assert point.zero_loss
    assert point.invariant_violations == 0
    assert point.finished == point.admitted
    assert point.crash_migrations >= 1


def test_sharded_digest_is_worker_count_independent(run_once):
    serial, _ = run_sharded_fleet_point(workers=1, **BIG_POINT)
    fanned, _ = run_once(run_sharded_fleet_point, workers=2, **BIG_POINT)
    assert fanned.digest == serial.digest
    assert fanned.session_digests == serial.session_digests


def test_one_shard_reproduces_legacy_kernel(run_once):
    _, legacy = run_fleet_point(
        n_sessions=64, n_devices=8, duration_ms=10_000.0, seed=0,
        crash=True,
    )
    _, report = run_once(
        run_sharded_fleet_point,
        n_sessions=64, n_devices=8, duration_ms=10_000.0, seed=0,
        shards=1, workers=1, crash=True,
    )
    assert report["per_shard_digests"]["0"] == legacy["digest"]
