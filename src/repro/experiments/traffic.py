"""Experiment C1: traffic-redundancy elimination (paper §V-A).

Reproduces the section's quantitative claims on real bytes and pixels:

* unoptimized offload traffic is enormous (~200 Mbps even at 600x480,
  25 FPS);
* the LRU command cache plus LZ4-class compression removes the bulk of the
  command-stream redundancy (the paper quotes ~70% for the compressor);
* the Turbo incremental image codec reaches high ratios (up to 25:1) at
  ~90 MP/s, while x264 on ARM manages ~1 MP/s — far below the ~7 MP/s the
  application produces, ruling out real-time video encoding.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.apps.base import ApplicationSpec, CommandBatchBuilder, SceneState
from repro.apps.games import CANDY_CRUSH, GTA_SAN_ANDREAS
from repro.codec.frames import SyntheticFrameSource
from repro.codec.lz77 import compress
from repro.codec.pipeline import CommandPipeline, PipelineConfig
from repro.codec.turbo import TurboEncoder
from repro.codec.video import VideoEncoderModel, X264_ARM
from repro.sim.random import RandomStream


@dataclass
class RawTrafficEstimate:
    """Unoptimized traffic at a given setting (paper: ~200 Mbps)."""

    width: int
    height: int
    fps: float
    raw_image_mbps: float
    raw_command_mbps: float

    @property
    def total_mbps(self) -> float:
        return self.raw_image_mbps + self.raw_command_mbps


def estimate_raw_traffic(
    width: int = 600,
    height: int = 480,
    fps: float = 25.0,
    app: ApplicationSpec = GTA_SAN_ANDREAS,
    frames: int = 120,
    seed: int = 0,
) -> RawTrafficEstimate:
    """Measure the unoptimized stream: raw RGB frames + raw commands."""
    raw_image_mbps = width * height * 3 * 8 * fps / 1e6
    # Serialize real command batches without cache or compression.
    pipeline = CommandPipeline(
        PipelineConfig(cache_enabled=False, compression_enabled=False)
    )
    builder = CommandBatchBuilder(app, RandomStream(seed, "traffic.raw"))
    scene = SceneState()
    pipeline.process_frame(builder.setup_commands())
    total = 0
    for i in range(frames):
        scene.activity = 0.5
        egress = pipeline.process_frame(builder.frame_commands(scene))
        total += egress.wire_bytes * app.stream_scale
    raw_command_mbps = total / frames * 8 * fps / 1e6
    return RawTrafficEstimate(
        width=width, height=height, fps=fps,
        raw_image_mbps=raw_image_mbps,
        raw_command_mbps=raw_command_mbps,
    )


@dataclass
class CommandReductionResult:
    raw_bytes: int
    after_cache_bytes: int
    wire_bytes: int
    cache_hit_rate: float
    lz_only_ratio: float           # LZ4-class compression on the raw stream

    @property
    def overall_reduction(self) -> float:
        return 1.0 - self.wire_bytes / self.raw_bytes if self.raw_bytes else 0.0


def measure_command_reduction(
    app: ApplicationSpec = GTA_SAN_ANDREAS,
    frames: int = 200,
    seed: int = 0,
) -> CommandReductionResult:
    """Cache + LZ4 pipeline on a real command stream."""
    pipeline = CommandPipeline(
        PipelineConfig(cache_enabled=True, compression_enabled=True,
                       modelled_compression=False)
    )
    builder = CommandBatchBuilder(app, RandomStream(seed, "traffic.opt"))
    scene = SceneState()
    pipeline.process_frame(builder.setup_commands())
    raw_stream = bytearray()
    for i in range(frames):
        scene.activity = 0.25 if i % 7 else 0.8
        batch = builder.frame_commands(scene)
        # Raw serialized stream for the LZ-only measurement.
        from repro.gles.serialization import CommandSerializer

        ser = CommandSerializer()
        for cmd in batch:
            for wire in ser.feed(cmd):
                raw_stream += wire
        pipeline.process_frame(batch)
    lz_ratio = (
        len(compress(bytes(raw_stream), max_chain=8)) / len(raw_stream)
        if raw_stream
        else 1.0
    )
    return CommandReductionResult(
        raw_bytes=pipeline.total_raw,
        after_cache_bytes=pipeline.total_after_cache,
        wire_bytes=pipeline.total_wire,
        cache_hit_rate=pipeline.cache.hit_rate,
        lz_only_ratio=lz_ratio,
    )


@dataclass
class ImageCodecResult:
    turbo_ratio: float
    turbo_throughput_mp_s: float
    x264_arm_throughput_mp_s: float
    frame_generation_mp_s: float
    x264_keeps_up: bool
    turbo_keeps_up: bool


def measure_image_codecs(
    width: int = 640,
    height: int = 480,
    fps: float = 25.0,
    frames: int = 40,
    motion_px: float = 12.0,
    detail: float = 0.9,
    sprite_count: int = 18,
    seed: int = 0,
    x264: VideoEncoderModel = X264_ARM,
) -> ImageCodecResult:
    """Turbo vs x264 on real synthetic pixels (a busy action scene)."""
    source = SyntheticFrameSource(
        width=width, height=height, motion_px=motion_px, detail=detail,
        sprite_count=sprite_count, seed=seed,
    )
    encoder = TurboEncoder()
    for frame in source.frames(frames):
        encoder.encode_array(frame)
    generation_mp_s = width * height * fps / 1e6
    return ImageCodecResult(
        turbo_ratio=encoder.stats.compression_ratio,
        turbo_throughput_mp_s=encoder.throughput_mp_s,
        x264_arm_throughput_mp_s=x264.throughput_mp_s,
        frame_generation_mp_s=generation_mp_s,
        x264_keeps_up=x264.keeps_up(width, height, fps),
        turbo_keeps_up=encoder.throughput_mp_s >= generation_mp_s,
    )
