"""The GPU execution engine.

A :class:`GPUDevice` is a simulator process owning one GPU.  It consumes
:class:`RenderRequest` objects from a FIFO queue and executes them
**non-preemptively** (paper §VI-A: "a rendering request ... will be
executed in a non-preemptive way according to the modern GPU
architecture").  Execution time is the request's fill workload divided by
the GPU's current effective capacity, which the thermal governor may have
collapsed mid-session.

The device also integrates its own energy and keeps a frequency/temperature
trace, so Fig 1 and the power experiments read directly off it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Generator, List, Optional, Tuple

from repro.gles.commands import GLCommand
from repro.gpu.power import GPUPowerModel
from repro.gpu.profiles import GPUSpec
from repro.gpu.thermal import ThermalGovernor, ThermalModel
from repro.sim.kernel import Event, Simulator
from repro.sim.resources import Gauge, Store

# Fixed CPU-side cost of submitting one command to the GPU ring buffer;
# dominates only for degenerate many-tiny-command streams.
COMMAND_SUBMIT_OVERHEAD_MS = 0.0008


@dataclass
class RenderRequest:
    """A sequence of graphics commands rendering one frame (§VI-A).

    ``fill_megapixels`` is the shader-weighted fill workload the request
    produces — the quantity the paper profiles per command stream via the
    TimeGraph approach [31] and uses as ``r`` in the Eq. 4 dispatcher.
    """

    request_id: int
    frame_id: int
    commands: List[GLCommand] = field(default_factory=list)
    fill_megapixels: float = 1.0
    vertex_count: int = 0
    width: int = 1280
    height: int = 720
    issued_at: float = 0.0
    metadata: dict = field(default_factory=dict)

    @property
    def workload(self) -> float:
        """Workload ``r`` in megapixels of shader-weighted fill."""
        return self.fill_megapixels


@dataclass
class CompletedRender:
    request: RenderRequest
    started_at: float
    finished_at: float
    freq_mhz: float

    @property
    def execution_ms(self) -> float:
        return self.finished_at - self.started_at


class GPUDevice:
    """One GPU attached to the simulation kernel."""

    def __init__(
        self,
        sim: Simulator,
        spec: GPUSpec,
        name: str = "",
        on_complete: Optional[Callable[[CompletedRender], None]] = None,
        initial_temp_c: Optional[float] = None,
        thermal_step_ms: float = 1000.0,
    ):
        self.sim = sim
        self.spec = spec
        self.name = name or spec.name
        self.on_complete = on_complete
        self.queue: Store = Store(sim, name=f"{self.name}.queue")
        self.power_model = GPUPowerModel(spec)
        self.thermal = ThermalModel(spec, initial_temp_c=initial_temp_c)
        self.governor = ThermalGovernor(spec, self.thermal)
        self.thermal_step_ms = thermal_step_ms

        self.busy = Gauge(sim, 0.0, name=f"{self.name}.busy")
        self.power = Gauge(sim, spec.idle_power_w, name=f"{self.name}.power")
        self.completed: List[CompletedRender] = []
        self.freq_trace: List[Tuple[float, float, float]] = []

        self._proc = sim.spawn(self._run(), name=f"gpu.{self.name}")
        self._thermal_proc = sim.spawn(
            self._thermal_loop(), name=f"gpu.{self.name}.thermal"
        )

    # -- public API ------------------------------------------------------------

    def submit(self, request: RenderRequest) -> None:
        """Enqueue a rendering request (FIFO, §VIII multiple-users note)."""
        request.metadata.setdefault("enqueued_at", self.sim.now)
        self.queue.put(request)

    def pending_workload(self) -> float:
        """Total fill workload queued but not yet finished — ``w`` in Eq. 4."""
        queued = sum(r.workload for r in self.queue.peek_all())
        return queued + self._in_flight_workload()

    def execution_time_ms(self, request: RenderRequest) -> float:
        """Predicted execution time at the *current* frequency."""
        capacity_gp = self.spec.capacity_at(self.governor.freq_mhz)
        if capacity_gp <= 0:
            return float("inf")
        fill_ms = request.fill_megapixels / (capacity_gp * 1000.0) * 1000.0
        overhead_ms = COMMAND_SUBMIT_OVERHEAD_MS * len(request.commands)
        return fill_ms + overhead_ms

    def capacity_megapixels_per_ms(self) -> float:
        """Effective capacity ``c`` in Eq. 4 units (MP per millisecond)."""
        return self.spec.capacity_at(self.governor.freq_mhz) * 1000.0 / 1000.0

    @property
    def current_freq_mhz(self) -> float:
        return self.governor.freq_mhz

    @property
    def temperature_c(self) -> float:
        return self.thermal.temperature_c

    def energy_joules(self) -> float:
        """Energy consumed so far (power gauge integral; gauge is in W, time
        in ms, so divide by 1000)."""
        return self.power.integral() / 1000.0

    def utilization(self) -> float:
        return self.busy.mean()

    # -- internals ----------------------------------------------------------------

    def _in_flight_workload(self) -> float:
        return getattr(self, "_current_workload", 0.0)

    def _run(self) -> Generator:
        while True:
            request: RenderRequest = yield self.queue.get()
            self._current_workload = request.workload
            started = self.sim.now
            self.busy.set(1.0)
            self._update_power()
            remaining_mp = request.fill_megapixels
            overhead_ms = COMMAND_SUBMIT_OVERHEAD_MS * len(request.commands)
            yield overhead_ms
            # Execute fill work in slices so a governor throttle mid-request
            # slows the remainder, exactly as a DVFS transition would.
            while remaining_mp > 1e-12:
                capacity_mp_per_ms = (
                    self.spec.capacity_at(self.governor.freq_mhz) * 1.0
                )  # GP/s == MP/ms
                slice_ms = min(
                    self.thermal_step_ms, remaining_mp / capacity_mp_per_ms
                )
                yield slice_ms
                remaining_mp -= capacity_mp_per_ms * slice_ms
            finished = self.sim.now
            self.busy.set(0.0)
            self._update_power()
            self._current_workload = 0.0
            done = CompletedRender(
                request=request,
                started_at=started,
                finished_at=finished,
                freq_mhz=self.governor.freq_mhz,
            )
            self.completed.append(done)
            self.sim.tracer.record(
                self.sim.now,
                "gpu",
                "render_complete",
                device=self.name,
                request_id=request.request_id,
                frame_id=request.frame_id,
                execution_ms=done.execution_ms,
            )
            if self.on_complete is not None:
                self.on_complete(done)
            reply: Optional[Event] = request.metadata.get("completion_event")
            if reply is not None and not reply.triggered:
                reply.trigger(done)

    def _thermal_loop(self) -> Generator:
        """Periodic thermal integration and governor stepping."""
        while True:
            yield self.thermal_step_ms
            self._update_power()
            power = self.power.value
            dt_s = self.thermal_step_ms / 1000.0
            old_freq = self.governor.freq_mhz
            new_freq = self.governor.step(self.sim.now / 1000.0, dt_s, power)
            self.freq_trace.append(
                (self.sim.now, new_freq, self.thermal.temperature_c)
            )
            if new_freq != old_freq:
                self.sim.tracer.record(
                    self.sim.now,
                    "gpu",
                    "dvfs",
                    device=self.name,
                    freq_mhz=new_freq,
                    temperature_c=self.thermal.temperature_c,
                )
                self._update_power()

    def _update_power(self) -> None:
        self.power.set(
            self.power_model.power_w(self.busy.value, self.governor.freq_mhz)
        )
