"""Device profiles and runtime device models.

The evaluation hardware of §VII-A, plus the Table I flagship/requirement
history, expressed as data:

* user devices — LG Nexus 5 (2013) and LG G5 (2016), plus the Table I
  phones (Galaxy S5, LG G4);
* service devices — Nvidia Shield console, Minix Neo U1 TV box, Dell M4600
  laptop, Dell Optiplex 9010 desktops with GTX 750 Ti.
"""

from repro.devices.cpu import CPUModel, CPUSpec
from repro.devices.profiles import (
    DELL_M4600,
    DELL_OPTIPLEX_9010,
    GAME_REQUIREMENTS,
    LG_G4,
    LG_G5,
    LG_NEXUS_5,
    MINIX_NEO_U1,
    NVIDIA_SHIELD,
    SAMSUNG_GALAXY_S5,
    SERVICE_DEVICES,
    USER_DEVICES,
    DeviceSpec,
    GameRequirement,
)
from repro.devices.runtime import ServiceDeviceRuntime, UserDeviceRuntime

__all__ = [
    "CPUModel",
    "CPUSpec",
    "DELL_M4600",
    "DELL_OPTIPLEX_9010",
    "DeviceSpec",
    "GAME_REQUIREMENTS",
    "GameRequirement",
    "LG_G4",
    "LG_G5",
    "LG_NEXUS_5",
    "MINIX_NEO_U1",
    "NVIDIA_SHIELD",
    "SAMSUNG_GALAXY_S5",
    "SERVICE_DEVICES",
    "ServiceDeviceRuntime",
    "USER_DEVICES",
    "UserDeviceRuntime",
]
