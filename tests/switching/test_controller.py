"""Switching controller driving a live network manager."""

import pytest

from repro.net.manager import NetworkManager
from repro.sim.kernel import Simulator
from repro.switching.controller import SwitchingController
from repro.switching.policies import (
    AlwaysBluetoothPolicy,
    AlwaysWifiPolicy,
    ReactivePolicy,
)


def drive_traffic(sim, manager, mbps_fn, duration_ms):
    """Feed `account` per epoch according to mbps_fn(t_ms)."""

    def proc():
        while sim.now < duration_ms:
            mbps = mbps_fn(sim.now)
            manager.account(int(mbps * 100_000 / 8))  # bytes per 100 ms
            yield 100.0

    sim.spawn(proc())


def test_always_bluetooth_moves_route():
    sim = Simulator()
    manager = NetworkManager(sim)
    SwitchingController(sim, manager, AlwaysBluetoothPolicy())
    drive_traffic(sim, manager, lambda t: 1.0, 2_000.0)
    sim.run(until=2_000.0)
    assert manager.active_name == "bluetooth"
    assert not manager.wifi.is_on  # idle radio powered down


def test_reactive_switches_on_surge():
    sim = Simulator()
    manager = NetworkManager(sim)
    manager.use("bluetooth")
    controller = SwitchingController(
        sim, manager, ReactivePolicy(threshold_mbps=16.0, cooldown_epochs=5)
    )
    drive_traffic(
        sim, manager, lambda t: 2.0 if t < 3_000 else 40.0, 6_000.0
    )
    sim.run(until=6_000.0)
    assert manager.active_name == "wifi"
    assert controller.stats.switches_to_wifi >= 1
    assert controller.stats.overload_epochs > 0  # the reactive penalty


def test_reactive_returns_to_bluetooth_when_calm():
    sim = Simulator()
    manager = NetworkManager(sim)
    manager.use("bluetooth")
    controller = SwitchingController(
        sim, manager, ReactivePolicy(threshold_mbps=16.0, cooldown_epochs=5)
    )
    drive_traffic(
        sim, manager,
        lambda t: 40.0 if 1_000 < t < 2_000 else 2.0,
        8_000.0,
    )
    sim.run(until=8_000.0)
    assert manager.active_name == "bluetooth"
    assert controller.stats.switches_to_bluetooth >= 1


def test_residency_accounting():
    sim = Simulator()
    manager = NetworkManager(sim)
    controller = SwitchingController(sim, manager, AlwaysWifiPolicy())
    drive_traffic(sim, manager, lambda t: 1.0, 3_000.0)
    sim.run(until=3_000.0)
    stats = controller.stats
    assert stats.epochs_on_wifi == stats.epochs
    assert stats.bluetooth_residency == 0.0


def test_exogenous_source_consulted():
    sim = Simulator()
    manager = NetworkManager(sim)
    calls = []

    class SpyPolicy:
        def decide(self, mbps, exogenous, current):
            calls.append(tuple(exogenous))
            from repro.switching.policies import SwitchDecision

            return SwitchDecision.HOLD

    SwitchingController(
        sim, manager, SpyPolicy(), exogenous_source=lambda: (1.5, 2.5)
    )
    drive_traffic(sim, manager, lambda t: 1.0, 1_000.0)
    sim.run(until=1_000.0)
    assert calls and calls[0] == (1.5, 2.5)


def test_controller_timer_hygiene_with_planner_policy():
    """The epoch loop is a plain ``yield epoch`` generator — no timer may
    outlive its trigger, even when the policy replans mid-run."""
    from repro.apps.games import GAMES
    from repro.check import InvariantMonitor
    from repro.core.config import GBoosterConfig
    from repro.devices.profiles import LG_NEXUS_5, NVIDIA_SHIELD
    from repro.plan import SessionContext, SessionPlanner
    from repro.switching.policies import PlannerPolicy

    sim = Simulator(seed=0)
    monitor = InvariantMonitor(sim, interval_ms=100.0)
    monitor.watch_timers()
    monitor.start()
    manager = NetworkManager(sim)
    manager.use("bluetooth")
    ctx = SessionContext(
        app=GAMES["G1"],
        user_device=LG_NEXUS_5,
        service_device=NVIDIA_SHIELD,
        config=GBoosterConfig(planner_probe_frames=4),
    )
    planner = SessionPlanner(ctx, seed=0)
    policy = PlannerPolicy(planner, latency_source=lambda: 25.0)
    SwitchingController(sim, manager, policy)
    drive_traffic(sim, manager, lambda t: 4.0, 3_000.0)
    sim.run(until=3_000.0)
    assert monitor.finalize() == []
    assert planner.decision is not None
    assert manager.active_name == planner.decision.radio
