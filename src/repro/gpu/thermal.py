"""Thermal dynamics and the throttling governor (paper §II, Fig 1).

Temperature follows Newtonian heating:

    dT/dt = heat_rate * P(t) - cooling_coeff * (T - ambient)

The governor watches temperature and collapses the clock to the minimum
frequency when the throttle threshold is crossed, restoring the maximum
clock only once temperature has fallen below the (much lower) recovery
threshold.  With phone-calibrated parameters the throttle latches for the
rest of a session — the sustained 600 → 100 MHz drop of Fig 1.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Tuple

from repro.gpu.profiles import GPUSpec


class ThermalModel:
    """Continuous temperature state with exact exponential integration.

    Between updates the dissipated power is constant, so the ODE has the
    closed form ``T(t) = T_eq + (T0 - T_eq) * exp(-k t)`` — no integration
    error regardless of step size, which keeps long simulations cheap.
    """

    def __init__(self, spec: GPUSpec, initial_temp_c: float = None):
        self.spec = spec
        self.temperature_c = (
            initial_temp_c if initial_temp_c is not None else spec.ambient_c + 5.0
        )

    def advance(self, dt_s: float, power_w: float) -> float:
        """Advance ``dt_s`` seconds at constant ``power_w``; returns temp."""
        if dt_s < 0:
            raise ValueError(f"negative dt {dt_s}")
        if dt_s == 0:
            return self.temperature_c
        k = self.spec.cooling_coeff_per_s
        t_eq = self.spec.equilibrium_temp(power_w)
        self.temperature_c = t_eq + (self.temperature_c - t_eq) * math.exp(
            -k * dt_s
        )
        return self.temperature_c

    def time_to_reach(self, target_c: float, power_w: float) -> float:
        """Seconds until the given temperature is reached, or ``inf``."""
        k = self.spec.cooling_coeff_per_s
        t_eq = self.spec.equilibrium_temp(power_w)
        t0 = self.temperature_c
        denominator = t0 - t_eq
        numerator = target_c - t_eq
        # Reaching the target requires it to lie between now and equilibrium.
        if denominator == 0 or numerator / denominator <= 0 or (
            numerator / denominator >= 1
        ):
            return math.inf
        return -math.log(numerator / denominator) / k


@dataclass
class GovernorEvent:
    time_s: float
    action: str        # "throttle" | "recover"
    freq_mhz: float
    temperature_c: float


class ThermalGovernor:
    """Hysteresis frequency governor driven by a :class:`ThermalModel`."""

    def __init__(self, spec: GPUSpec, thermal: ThermalModel):
        self.spec = spec
        self.thermal = thermal
        self.freq_mhz: float = float(spec.max_freq_mhz)
        self.throttled = False
        self.events: List[GovernorEvent] = []

    def step(self, now_s: float, dt_s: float, power_w: float) -> float:
        """Advance the thermal state and apply governor policy.

        Returns the frequency to use for the *next* interval.
        """
        temp = self.thermal.advance(dt_s, power_w)
        if not self.throttled and temp >= self.spec.throttle_temp_c:
            self.throttled = True
            self.freq_mhz = float(self.spec.min_freq_mhz)
            self.events.append(
                GovernorEvent(now_s, "throttle", self.freq_mhz, temp)
            )
        elif self.throttled and temp <= self.spec.recover_temp_c:
            self.throttled = False
            self.freq_mhz = float(self.spec.max_freq_mhz)
            self.events.append(
                GovernorEvent(now_s, "recover", self.freq_mhz, temp)
            )
        return self.freq_mhz


def simulate_trace(
    spec: GPUSpec,
    utilization: float,
    duration_s: float,
    step_s: float = 1.0,
    initial_temp_c: float = None,
) -> List[Tuple[float, float, float]]:
    """Offline frequency/temperature trace — the Fig 1 generator.

    Returns ``(time_s, freq_mhz, temperature_c)`` samples.  Power at each
    step is the spec's active power scaled by utilization and the current
    frequency ratio (DVFS: throttled clocks dissipate proportionally less).
    """
    if not 0.0 <= utilization <= 1.0:
        raise ValueError(f"utilization must be in [0, 1], got {utilization}")
    thermal = ThermalModel(spec, initial_temp_c=initial_temp_c)
    governor = ThermalGovernor(spec, thermal)
    samples: List[Tuple[float, float, float]] = []
    t = 0.0
    while t < duration_s:
        freq_ratio = governor.freq_mhz / spec.max_freq_mhz
        power = spec.idle_power_w + (
            spec.active_power_w * utilization * freq_ratio
        )
        samples.append((t, governor.freq_mhz, thermal.temperature_c))
        governor.step(t, step_s, power)
        t += step_s
    samples.append((t, governor.freq_mhz, thermal.temperature_c))
    return samples
