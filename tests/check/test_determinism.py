"""Determinism regression: the default pipeline is a pure function of seed.

Runs the profiling harness's deterministic session bench twice per seed
and compares the full artifact — pipeline-stage percentiles, the metric
snapshot, span counts, FPS — exactly as ``python -m repro profile
--smoke`` gates in CI, but small enough for tier 1.
"""

import hashlib
import json

import pytest

from repro.experiments.profiling import bench_session


def digest(deterministic: dict) -> str:
    return hashlib.sha256(
        json.dumps(deterministic, sort_keys=True).encode()
    ).hexdigest()


@pytest.mark.parametrize("seed", [0, 1, 2])
def test_same_seed_same_bench_digest(seed):
    first, _ = bench_session(2_000.0, seed)
    second, _ = bench_session(2_000.0, seed)
    assert first == second
    assert digest(first) == digest(second)


def test_different_seeds_differ():
    a, _ = bench_session(2_000.0, 0)
    b, _ = bench_session(2_000.0, 1)
    assert digest(a) != digest(b)


def test_bench_carries_the_full_observable_surface():
    det, _ = bench_session(2_000.0, 0)
    for key in ("pipeline_stages", "metrics", "span_count",
                "frames_presented", "median_fps"):
        assert key in det
    # Short window: discovery eats most of it, but frames must flow and
    # the span recorder must have seen real pipeline work.
    assert det["frames_presented"] > 0
    assert det["span_count"] > 50
