"""AIC computation and exogenous attribute selection."""

import math

import pytest

from repro.predict.selection import aic, fit_and_score, select_armax_attributes
from repro.sim.random import RandomStream


def test_aic_formula():
    assert aic(100, 50.0, 3) == pytest.approx(100 * math.log(0.5) + 6)


def test_aic_penalizes_parameters():
    assert aic(100, 50.0, 10) > aic(100, 50.0, 2)


def test_aic_rewards_fit():
    assert aic(100, 10.0, 5) < aic(100, 100.0, 5)


def test_aic_validation():
    with pytest.raises(ValueError):
        aic(0, 1.0, 1)
    with pytest.raises(ValueError):
        aic(10, -1.0, 1)


def _synthetic_trace(n=800, seed=0):
    """Output driven by attributes 0 and 2; attributes 1 and 3 are noise.

    Attribute 2 must be *persistent* (a slowly switching level, like
    textures-per-frame tracking scene complexity) or its lagged values —
    the only thing ARMAX sees — would carry no information.
    """
    rng = RandomStream(seed, "sel")
    series, inputs = [], []
    lag_queue = [0.0, 0.0]
    a2 = 0.5
    for t in range(n):
        a0 = 1.0 if rng.bernoulli(0.1) else 0.0   # informative, leading
        a1 = rng.normal(0.0, 1.0)                  # pure noise
        if t % 40 == 0:
            a2 = rng.uniform(0.0, 1.0)             # informative level regime
        a3 = rng.normal(0.0, 1.0)                  # pure noise
        inputs.append([a0, a1, a2, a3])
        lag_queue.append(8.0 * a0)
        series.append(2.0 + 4.0 * a2 + lag_queue.pop(0) + rng.normal(0, 0.2))
    return series, inputs


def test_informative_attributes_selected():
    series, inputs = _synthetic_trace()
    ranking = select_armax_attributes(series, inputs, n_attributes=4,
                                      max_subset=2)
    best_subset, best_aic = ranking[0]
    assert set(best_subset) == {0, 2}


def test_informative_beats_empty_model():
    series, inputs = _synthetic_trace(seed=1)
    informative = fit_and_score(series, inputs, (0, 2))
    empty = fit_and_score(series, inputs, ())
    assert informative < empty


def test_noise_attribute_does_not_beat_informative_pair():
    series, inputs = _synthetic_trace(seed=2)
    good = fit_and_score(series, inputs, (0, 2))
    noisy = fit_and_score(series, inputs, (1, 3))
    assert good < noisy


def test_ranking_sorted_ascending():
    series, inputs = _synthetic_trace(seed=3, n=300)
    ranking = select_armax_attributes(series, inputs, max_subset=2)
    scores = [score for _subset, score in ranking]
    assert scores == sorted(scores)


def test_mismatched_lengths_rejected():
    with pytest.raises(ValueError):
        fit_and_score([1.0, 2.0], [[0.0]], (0,))


def test_short_trace_rejected():
    with pytest.raises(ValueError):
        fit_and_score([1.0] * 5, [[0.0]] * 5, (0,), warmup=20)
