"""UDP multicast for state replication (paper §VI-B).

State-altering commands must reach *every* service device.  Unicasting the
same bytes N times wastes the user device's airtime and energy; multicast
sends one transmission on the shared medium and the router fans it out.
:class:`MulticastGroup` models that: one radio transmission, one link
traversal per member, a single energy charge.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.net.link import NetworkLink
from repro.net.message import Message
from repro.sim.kernel import Event, Simulator


@dataclass
class _Member:
    name: str
    link: NetworkLink


class MulticastGroup:
    """A multicast destination backed by one sending radio."""

    def __init__(self, sim: Simulator, name: str = "mcast"):
        self.sim = sim
        self.name = name
        self._members: Dict[str, _Member] = {}
        self._radio_provider: Optional[Callable] = None
        self.messages_sent = 0
        self.unicast_equivalent_bytes = 0
        self.multicast_bytes = 0

    def bind_radio(self, radio_provider: Callable) -> None:
        self._radio_provider = radio_provider

    def join(self, member_name: str, link: NetworkLink) -> None:
        if member_name in self._members:
            raise ValueError(f"{member_name!r} already joined {self.name}")
        self._members[member_name] = _Member(member_name, link)

    def leave(self, member_name: str) -> None:
        self._members.pop(member_name, None)

    @property
    def member_count(self) -> int:
        return len(self._members)

    def send(self, message: Message) -> Event:
        """One transmission; every member's link receives a copy.

        Returns the radio's sent event.  Member deliveries then ride each
        member's own link latency; there is no per-member radio cost —
        that's the §VI-B bandwidth saving, and ``unicast_equivalent_bytes``
        vs ``multicast_bytes`` quantifies it.
        """
        if self._radio_provider is None:
            raise RuntimeError(f"{self.name}: no radio bound")
        if not self._members:
            evt = self.sim.event(name=f"{self.name}.noop")
            evt.trigger(None)
            return evt
        radio = self._radio_provider()
        self.messages_sent += 1
        self.multicast_bytes += message.size_bytes
        self.unicast_equivalent_bytes += message.size_bytes * len(self._members)

        # The radio transmits once; on completion, fan out over member links.
        members = list(self._members.values())

        class _FanOut:
            def deliver(_self, msg: Message, via=None) -> None:
                for member in members:
                    clone = Message(
                        size_bytes=msg.size_bytes,
                        payload=msg.payload,
                        kind=msg.kind,
                        message_id=msg.message_id,
                        created_at=msg.created_at,
                        metadata={
                            k: v
                            for k, v in msg.metadata.items()
                            if not k.startswith("_")
                        },
                    )
                    clone.metadata["mcast_member"] = member.name
                    member.link.deliver(clone)

        return radio.send(message, link=_FanOut())
