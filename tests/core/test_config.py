"""GBooster configuration validation and pipeline-depth policy."""

import pytest

from repro.core.config import GBoosterConfig


def test_defaults_are_valid():
    GBoosterConfig().validate()


def test_pipeline_depth_policy():
    config = GBoosterConfig()
    assert config.pipeline_depth(1) == config.pipeline_depth_single
    assert config.pipeline_depth(3) == config.pipeline_depth_multi
    blocking = GBoosterConfig(async_swap=False)
    assert blocking.pipeline_depth(1) == 1
    assert blocking.pipeline_depth(5) == 1


def test_invalid_transport_rejected():
    with pytest.raises(ValueError):
        GBoosterConfig(transport="quic").validate()


def test_invalid_policy_rejected():
    with pytest.raises(ValueError):
        GBoosterConfig(switching_policy="magic").validate()


def test_invalid_scheduler_rejected():
    with pytest.raises(ValueError):
        GBoosterConfig(scheduler="random").validate()


def test_invalid_cache_capacity_rejected():
    with pytest.raises(ValueError):
        GBoosterConfig(cache_capacity=0).validate()
