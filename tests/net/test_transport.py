"""Reliable transports: ordering, retransmission, TCP latency floor."""

import pytest

from repro.net.interface import WIFI_80211N, WirelessInterface
from repro.net.link import LinkSpec, NetworkLink
from repro.net.message import Message
from repro.net.transport import ReliableUdpTransport, TcpTransport
from repro.sim.kernel import Simulator


def build(sim, loss=0.0, transport_cls=ReliableUdpTransport, rto_ms=30.0):
    radio = WirelessInterface(sim, WIFI_80211N)
    link = NetworkLink(
        sim,
        LinkSpec(name="wifi", latency_ms=1.0, jitter_ms=0.0,
                 loss_probability=loss),
    )
    delivered = []
    transport = transport_cls(sim, name="t", rto_ms=rto_ms)
    transport.bind(
        lambda: radio, {"wifi": link}, on_deliver=lambda m: delivered.append(m)
    )
    return transport, radio, delivered


def test_basic_delivery():
    sim = Simulator()
    transport, _radio, delivered = build(sim)
    transport.send(Message.of_size(1000, kind="x"))
    sim.run(until=1000.0)
    assert len(delivered) == 1
    assert transport.stats.messages_delivered == 1


def test_in_order_delivery_under_loss():
    sim = Simulator(seed=3)
    transport, _radio, delivered = build(sim, loss=0.3)
    for i in range(50):
        msg = Message.of_size(500)
        msg.metadata["n"] = i
        transport.send(msg)
    sim.run(until=60_000.0)
    assert [m.metadata["n"] for m in delivered] == list(range(50))
    assert transport.stats.retransmissions > 0


def test_delivered_event_fires():
    sim = Simulator()
    transport, _radio, _delivered = build(sim)
    evt = transport.send(Message.of_size(100))
    sim.run(until=100.0)
    assert evt.triggered


def test_rudp_faster_than_tcp():
    def latency_with(cls):
        sim = Simulator()
        transport, _radio, _delivered = build(sim, transport_cls=cls)
        for _ in range(10):
            transport.send(Message.of_size(1000))
        sim.run(until=10_000.0)
        return transport.stats.mean_latency_ms()

    rudp = latency_with(ReliableUdpTransport)
    tcp = latency_with(TcpTransport)
    # TCP carries the ~40 ms delayed-ACK floor the paper avoids (§IV-B).
    assert tcp >= rudp + 35.0


def test_duplicate_suppression():
    """A spurious retransmission must not deliver twice."""
    sim = Simulator(seed=1)
    # Aggressive RTO forces retransmissions even without loss.
    transport, _radio, delivered = build(sim, loss=0.0, rto_ms=0.01)
    transport.send(Message.of_size(200_000))  # slow enough to trigger RTO
    sim.run(until=10_000.0)
    assert len(delivered) == 1


def test_gives_up_after_max_retries():
    sim = Simulator(seed=2)

    radio = WirelessInterface(sim, WIFI_80211N)
    # A link that drops everything.
    link = NetworkLink(
        sim, LinkSpec(name="dead", latency_ms=1.0, loss_probability=0.99)
    )
    delivered = []
    transport = ReliableUdpTransport(sim, rto_ms=5.0, max_retries=3)
    transport.bind(lambda: radio, {"wifi": link}, lambda m: delivered.append(m))
    transport.send(Message.of_size(100))
    sim.run(until=60_000.0)
    give_ups = sim.tracer.query("transport", "give_up")
    assert transport.stats.retransmissions <= 3 or give_ups


def test_bytes_accounting_includes_arq_header():
    sim = Simulator()
    transport, _radio, _delivered = build(sim)
    transport.send(Message.of_size(1000))
    assert transport.stats.bytes_offered > 1000


def test_rto_timer_cancelled_on_ack():
    """ACKed messages tear their RTO processes down: the queue drains at
    delivery time, not after the exponential-backoff window."""
    sim = Simulator()
    transport, _radio, delivered = build(sim, rto_ms=30.0)
    transport.send(Message.of_size(1000, kind="x"))
    sim.run()  # no `until`: terminates only when the queue truly drains
    assert len(delivered) == 1
    # Delivery takes ~1 ms link latency + tx time; far below the 30 ms RTO.
    assert sim.now < 30.0
    assert transport._rto_timers == {}
    assert not any(
        p.alive and ".rto." in p.name for p in sim._processes
    )


def test_queue_drains_after_last_delivery_under_loss():
    """Even with retransmissions, no timer survives the final ACK."""
    sim = Simulator(seed=3)
    transport, _radio, delivered = build(sim, loss=0.3, rto_ms=20.0)
    for _ in range(30):
        transport.send(Message.of_size(500))
    sim.run()  # would previously idle out the full backoff window
    assert len(delivered) == 30
    assert transport.in_flight() == 0
    assert transport._rto_timers == {}
    assert not any(
        p.alive and ".rto." in p.name for p in sim._processes
    )


def test_resend_does_not_compound_header_overhead():
    """Re-sending the same Message (failover re-dispatch) must not keep
    growing it by the ARQ header."""
    from repro.net.message import RUDP_HEADER_BYTES

    sim = Simulator()
    transport, _radio, _delivered = build(sim)
    other, _radio2, _delivered2 = build(sim)
    msg = Message.of_size(1000)
    transport.send(msg)
    assert msg.size_bytes == 1000
    assert msg.transport_overhead_bytes == RUDP_HEADER_BYTES
    sim.run(until=100.0)
    other.send(msg)  # e.g. re-dispatched to another node's uplink
    sim.run(until=200.0)
    assert msg.size_bytes == 1000
    assert msg.transport_overhead_bytes == RUDP_HEADER_BYTES
    assert msg.framed_bytes == 1000 + RUDP_HEADER_BYTES


def test_transport_state_stays_bounded():
    """Delivered sequence numbers are pruned; history does not accumulate."""
    sim = Simulator(seed=5)
    transport, _radio, delivered = build(sim, loss=0.2, rto_ms=20.0)
    for _ in range(200):
        transport.send(Message.of_size(400))
    sim.run()
    assert len(delivered) == 200
    assert transport.in_flight() == 0
    assert len(transport._unacked) == 0
    assert len(transport._reorder) == 0
    assert len(transport._rto_timers) == 0


def test_route_change_mid_stream():
    """The radio provider is consulted per message (switching support)."""
    sim = Simulator()
    wifi = WirelessInterface(sim, WIFI_80211N)
    from repro.net.interface import BLUETOOTH_CLASSIC

    bt = WirelessInterface(sim, BLUETOOTH_CLASSIC, name="bt")
    wifi_link = NetworkLink(sim, LinkSpec(name="wifi", latency_ms=1.0))
    bt_link = NetworkLink(sim, LinkSpec(name="bluetooth", latency_ms=2.0))
    active = {"radio": wifi}
    delivered = []
    transport = ReliableUdpTransport(sim)
    transport.bind(
        lambda: active["radio"],
        {"wifi": wifi_link, "bluetooth": bt_link},
        lambda m: delivered.append(m),
    )
    transport.send(Message.of_size(100))

    def switch_then_send():
        yield 50.0
        active["radio"] = bt
        transport.send(Message.of_size(100))

    sim.spawn(switch_then_send())
    sim.run(until=5_000.0)
    assert wifi.messages_sent == 1
    assert bt.messages_sent == 1
    assert len(delivered) == 2
