"""Frame digests: stable content hashing and issue/execute bookkeeping."""

from repro.check import DigestLog, command_digest
from repro.gles.commands import make_command


def frame(n_draws=3, tex=4):
    cmds = [make_command("glBindTexture", 0x0DE1, tex)]
    for i in range(n_draws):
        cmds.append(make_command("glDrawArrays", 4, 0, 36 + i))
    return cmds


class TestCommandDigest:
    def test_same_commands_same_digest(self):
        assert command_digest(frame()) == command_digest(frame())

    def test_any_argument_change_changes_the_digest(self):
        assert command_digest(frame(tex=4)) != command_digest(frame(tex=5))

    def test_order_matters(self):
        cmds = frame()
        assert command_digest(cmds) != command_digest(list(reversed(cmds)))

    def test_empty_batch_digest_is_stable(self):
        assert command_digest([]) == command_digest([])
        assert command_digest([]) != command_digest(frame())

    def test_float_arguments_hash_verbatim(self):
        a = [make_command("glUniform1f", 0, 0.25)]
        b = [make_command("glUniform1f", 0, 0.25000001)]
        assert command_digest(a) != command_digest(b)

    def test_foreign_objects_fall_back_to_repr(self):
        # Tests may digest plain tuples; no .key() required.
        assert command_digest([("glFlush",)]) == command_digest([("glFlush",)])


class TestDigestLog:
    def test_faithful_replay_has_no_mismatches(self):
        log = DigestLog()
        for fid in range(5):
            cmds = frame(tex=fid)
            log.record_issue(fid, cmds)
            log.record_execution(fid, cmds, site="shield")
        assert log.fidelity_mismatches() == []
        assert log.duplicate_executions() == []
        assert len(log.stream()) == 5
        assert log.executed_frames() == [0, 1, 2, 3, 4]

    def test_mutated_replay_is_flagged(self):
        log = DigestLog()
        log.record_issue(0, frame(tex=1))
        log.record_execution(0, frame(tex=2), site="shield")
        (bad,) = log.fidelity_mismatches()
        assert bad["frame_id"] == 0
        assert bad["site"] == "shield"
        assert bad["issued"] != bad["executed"]

    def test_phantom_execution_is_flagged(self):
        log = DigestLog()
        log.record_execution(7, frame(), site="shield")
        (bad,) = log.fidelity_mismatches()
        assert bad["frame_id"] == 7
        assert bad["issued"] is None

    def test_failover_to_a_second_site_is_not_a_duplicate(self):
        log = DigestLog()
        cmds = frame()
        log.record_issue(0, cmds)
        log.record_execution(0, cmds, site="shield")
        log.record_execution(0, cmds, site="local")
        assert log.duplicate_executions() == []

    def test_same_site_repeat_is_a_duplicate(self):
        log = DigestLog()
        cmds = frame()
        log.record_issue(0, cmds)
        log.record_execution(0, cmds, site="shield")
        log.record_execution(0, cmds, site="shield")
        assert log.duplicate_executions() == [0]

    def test_summary_counts(self):
        log = DigestLog()
        log.record_issue(0, frame())
        log.record_execution(0, frame(), site="shield")
        log.record_execution(3, frame(), site="shield")   # phantom
        summary = log.summary()
        assert summary["frames_issued"] == 1
        assert summary["frames_executed"] == 2
        assert summary["fidelity_mismatches"] == 1


class TestIntervalDigest:
    """The streaming digest must agree with ``command_digest`` on every
    prefix — it is the replay store's content address."""

    def test_prefix_equality_with_command_digest(self):
        from repro.check import IntervalDigest

        cmds = frame(n_draws=6)
        rolling = IntervalDigest()
        for i, cmd in enumerate(cmds):
            rolling.update(cmd)
            assert rolling.hexdigest() == command_digest(cmds[: i + 1])

    def test_update_sequence_matches_item_updates(self):
        from repro.check import IntervalDigest

        cmds = frame()
        assert (
            IntervalDigest().update_sequence(cmds).hexdigest()
            == command_digest(cmds)
        )

    def test_copy_is_independent(self):
        from repro.check import IntervalDigest

        a = IntervalDigest().update_sequence(frame())
        b = a.copy()
        b.update(make_command("glFlush"))
        assert a.hexdigest() != b.hexdigest()
        assert a.hexdigest() == command_digest(frame())

    def test_empty_digest_matches_empty_batch(self):
        from repro.check import IntervalDigest

        assert IntervalDigest().hexdigest() == command_digest([])
