"""Probe-and-commit plan selection with drift-triggered re-planning.

:class:`SessionPlanner` is the nebullvm-style optimizer loop: enumerate
the candidates the environment offers, probe each on a measured window,
commit to the lowest score.  :class:`ReplanController` watches the
committed plan's *live* frame latency against the probe-time baseline
through its own :class:`~repro.obs.anomaly.ResidualDriftDetector`; a
sustained drift episode triggers a fresh probe cycle (under a cooldown so
a noisy link cannot thrash plans every epoch).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.obs.anomaly import ResidualDriftDetector
from repro.plan.candidates import (
    BACKEND_RADIO,
    PlanCandidate,
    SessionContext,
    enumerate_candidates,
)
from repro.plan.probe import ProbeRunner, ProbeStats


@dataclass
class PlanDecision:
    """One committed plan plus everything that justified it."""

    backend: str
    radio: str
    scores: Dict[str, float]
    probes: Dict[str, ProbeStats]
    rejected: Dict[str, str]          # backend -> why it was not viable
    generation: int = 0               # 0 = initial commit, 1+ = replans

    def to_dict(self) -> Dict:
        return {
            "backend": self.backend,
            "radio": self.radio,
            "generation": self.generation,
            "scores": {
                k: round(self.scores[k], 6) for k in sorted(self.scores)
            },
            "probes": {
                k: self.probes[k].to_dict() for k in sorted(self.probes)
            },
            "rejected": {k: self.rejected[k] for k in sorted(self.rejected)},
        }


class SessionPlanner:
    """Enumerate -> probe -> commit for one session."""

    def __init__(self, ctx: SessionContext, seed: int = 0, sim=None):
        self.ctx = ctx
        self.seed = seed
        self.sim = sim
        self.decision: Optional[PlanDecision] = None
        self.history: List[PlanDecision] = []

    def probe_and_commit(self) -> PlanDecision:
        """Run one full probe cycle and commit the winner.

        Deterministic for a fixed ``(seed, ctx)``: candidate order is
        canonical, probe randomness is namespaced per backend, and ties
        break on the backend name.
        """
        generation = len(self.history)
        runner = ProbeRunner(
            self.ctx,
            seed=self.seed,
            telemetry=self.sim.telemetry if self.sim is not None else None,
        )
        probes: Dict[str, ProbeStats] = {}
        rejected: Dict[str, str] = {}
        for candidate in enumerate_candidates(self.ctx):
            if not candidate.viable:
                rejected[candidate.backend] = candidate.reason
                continue
            probes[candidate.backend] = runner.probe(candidate)
        if not probes:
            raise RuntimeError("no viable plan candidate for this session")
        scores = {b: p.score for b, p in probes.items()}
        backend = min(scores, key=lambda b: (scores[b], b))
        decision = PlanDecision(
            backend=backend,
            radio=BACKEND_RADIO[backend],
            scores=scores,
            probes=probes,
            rejected=rejected,
            generation=generation,
        )
        self.decision = decision
        self.history.append(decision)
        if self.sim is not None:
            self.sim.metrics.counter("plan.commits").inc()
            self.sim.metrics.counter(f"plan.commits.{backend}").inc()
            self.sim.spans.mark(
                "plan", "commit", track="planner",
                backend=backend, generation=generation,
                score=round(scores[backend], 4),
                probed=len(probes),
            )
            if self.sim.causal is not None:
                self.sim.causal.event(
                    "plan", "commit",
                    backend=backend, generation=generation,
                    score=round(scores[backend], 4),
                    probed=len(probes),
                )
            if self.sim.telemetry is not None:
                self.sim.telemetry.observe(
                    "plan.commits", 1.0, agg="count", backend=backend,
                )
        return decision

    @property
    def committed_latency_ms(self) -> float:
        """The committed plan's probe-time mean latency — the drift base."""
        if self.decision is None:
            raise RuntimeError("no plan committed yet")
        return self.decision.probes[self.decision.backend].mean_latency_ms


class ReplanController:
    """Drift watchdog over the committed plan.

    Feed it the measured per-epoch frame latency; it tracks the residual
    against the probe-time baseline with an EWMA drift detector and
    re-plans when a sustained episode fires.  The caller mutates the
    shared :class:`SessionContext` as conditions change (degraded WiFi
    rate, a replay store going warm) so the re-probe sees current truth.
    """

    def __init__(
        self,
        planner: SessionPlanner,
        detector: Optional[ResidualDriftDetector] = None,
        cooldown_epochs: Optional[int] = None,
    ):
        self.planner = planner
        cfg = planner.ctx.config
        # Slow EWMA (alpha) so a step change in live latency stays
        # out-of-band long enough to satisfy ``sustain``; a fast alpha
        # absorbs the step into the baseline before the episode fires.
        self.detector = detector or ResidualDriftDetector(
            z_threshold=3.0, sustain=3, warmup=10, alpha=0.02
        )
        self.cooldown_epochs = (
            cfg.planner_cooldown_epochs
            if cooldown_epochs is None
            else cooldown_epochs
        )
        self._epochs_since_commit = 0
        self.replans = 0
        self.last_residual: Optional[float] = None

    def observe_latency(
        self, measured_ms: float, at_ms: float = 0.0
    ) -> Optional[PlanDecision]:
        """One epoch's measured latency; returns a new decision on replan."""
        if self.planner.decision is None:
            self.planner.probe_and_commit()
            self._epochs_since_commit = 0
            return self.planner.decision
        self._epochs_since_commit += 1
        residual = measured_ms - self.planner.committed_latency_ms
        self.last_residual = residual
        alert = self.detector.update(residual, at_ms=at_ms)
        drifted = alert is not None and alert.severity == "warn"
        if not drifted:
            return None
        if self._epochs_since_commit < self.cooldown_epochs:
            return None
        previous = self.planner.decision.backend
        decision = self.planner.probe_and_commit()
        self._epochs_since_commit = 0
        self.replans += 1
        # A fresh detector episode: the baseline just moved.
        self.detector = ResidualDriftDetector(
            z_threshold=self.detector.z_threshold,
            sustain=self.detector.sustain,
            warmup=self.detector.warmup,
            alpha=self.detector.stats.alpha,
        )
        if self.planner.sim is not None:
            sim = self.planner.sim
            sim.metrics.counter("plan.replans").inc()
            sim.spans.mark(
                "plan", "replan", track="planner",
                from_backend=previous, to_backend=decision.backend,
                measured_ms=round(measured_ms, 3),
            )
            if sim.causal is not None:
                sim.causal.event(
                    "plan", "replan",
                    from_backend=previous, to_backend=decision.backend,
                    measured_ms=round(measured_ms, 3),
                )
            # A replan is the planner declaring its committed world model
            # wrong — exactly the moment a postmortem is worth freezing.
            if sim.flight is not None:
                sim.flight.on_replan(
                    previous, decision.backend,
                    measured_ms=round(measured_ms, 3),
                    committed_ms=round(self.planner.committed_latency_ms, 3),
                )
        return decision
