"""The command-stream egress pipeline: serialize -> cache -> compress.

This is the per-frame data path on the user device (§IV-B + §V-A):
intercepted commands are serialized to wire bytes, repeats are replaced by
LRU cache references, and the residue is LZ4-compressed.  The pipeline
reports exact byte counts at each stage so the traffic-reduction experiment
(C1) can attribute savings to each mechanism, and the ablation benches can
disable stages independently.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple

import hashlib

from repro.codec.command_cache import CachePair
from repro.codec.fusion import FusionStats, fuse_commands
from repro.codec.lz77 import compress
from repro.gles.commands import GLCommand
from repro.gles.serialization import CommandSerializer
from repro.obs.causal import TRACE_WIRE_BYTES, TraceContext
from repro.obs.spans import OpenSpan, SpanRecorder


# Replay-hit frame framing: 2-byte marker + 8-byte interval address +
# 8-byte expected stream digest + 1-byte dynamics-variant index + u16
# patch length.  The header does not grow with interval length — that is
# the whole point of the fast path — so only the patch portion is
# subject to nominal-stream scaling.
REPLAY_HIT_MARKER = b"\xCA\xFD"
REPLAY_HEADER_BYTES = 2 + 8 + 8 + 1 + 2


def _key_digest(key: Tuple) -> bytes:
    """Stable 8-byte digest of a cache key for the wire reference.

    ``hash()`` is randomized per process (PYTHONHASHSEED), which made the
    reference bytes — and every downstream compressed size — differ
    between runs of the same seed.
    """
    return hashlib.blake2b(repr(key).encode(), digest_size=8).digest()


@dataclass
class PipelineConfig:
    """Stage toggles and parameters."""

    cache_enabled: bool = True
    cache_capacity: int = 4096
    #: command-stream "compilation": dedupe/fuse redundant state setters
    #: before serialization (repro.codec.fusion); off by default so every
    #: pre-planner benchmark byte count is unchanged
    fusion_enabled: bool = False
    compression_enabled: bool = True
    compression_max_chain: int = 8
    # Long sessions reuse a measured compression ratio instead of running
    # the byte-level compressor on every frame; ``measure_every`` frames the
    # ratio is re-measured on real bytes to track the stream's drift.
    modelled_compression: bool = False
    measure_every: int = 64
    #: modelled per-command serialization cost, used to size the "encode"
    #: span (the simulator charges this inside the engine's CPU stage)
    serialize_us_per_command: float = 2.2


@dataclass
class FrameEgress:
    """Byte accounting for one frame's command batch."""

    raw_bytes: int            # serialized, before cache/compression
    after_cache_bytes: int
    wire_bytes: int           # what actually hits the transport
    commands: int
    cache_hits: int
    payload: Optional[bytes] = None
    kind: str = "full"        # "full" | "replay_hit"
    #: commands the fusion pass removed before serialization; callers that
    #: extrapolate per-command costs scale by ``commands + fused_dropped``
    fused_dropped: int = 0
    #: wire-header bytes spent carrying the frame's trace context; kept
    #: separate from ``wire_bytes`` because the header is fixed-size —
    #: scaling it by the nominal/emitted stream ratio (the way the client
    #: scales payload bytes) would silently inflate the accounting
    trace_bytes: int = 0


class CommandPipeline:
    """Stateful egress pipeline for one offload session."""

    def __init__(
        self,
        config: Optional[PipelineConfig] = None,
        spans: Optional[SpanRecorder] = None,
        clock: Optional[Callable[[], float]] = None,
    ):
        self.config = config or PipelineConfig()
        self.spans = spans
        self.clock = clock
        self.serializer = CommandSerializer()
        self.cache = CachePair(self.config.cache_capacity)
        self._measured_ratio = 0.30     # refreshed by real measurements
        self._have_measurement = False
        self._frames_since_measure = 0
        self.total_raw = 0
        self.total_after_cache = 0
        self.total_wire = 0
        #: wire-header bytes spent on trace contexts across the session;
        #: included in ``total_wire`` (headers really travel on the uplink)
        self.total_trace = 0
        self.frames = 0
        self.fusion_stats = FusionStats()

    def process_frame(
        self,
        commands: List[GLCommand],
        frame_id: Optional[int] = None,
        parent: Optional[OpenSpan] = None,
        replay_patch: Optional[bytes] = None,
        replay_digest: str = "",
        replay_expect: str = "",
        replay_variant: int = 0,
        trace: Optional[TraceContext] = None,
    ) -> FrameEgress:
        """Run one frame's command batch through the pipeline.

        With ``replay_patch`` set the frame travels as a replay hit: the
        serializer/cache/compressor are bypassed and the wire carries only
        the interval address, the expected stream digest, and the
        dynamic-delta patch (see :mod:`repro.replay`).

        With ``trace`` set the frame carries its causal
        :class:`~repro.obs.causal.TraceContext` in the wire header —
        :data:`~repro.obs.causal.TRACE_WIRE_BYTES` extra bytes, reported
        in ``FrameEgress.trace_bytes`` and charged to the uplink totals.
        """
        if replay_patch is not None:
            return self._emit_replay_hit(
                replay_patch, replay_digest, replay_expect, replay_variant,
                frame_id, parent, trace,
            )
        fused_dropped = 0
        if self.config.fusion_enabled:
            commands, fstats = fuse_commands(commands)
            fused_dropped = fstats.dropped
            self.fusion_stats.merge(fstats)
        wires: List[bytes] = []
        originals: List[GLCommand] = []
        for cmd in commands:
            emitted = self.serializer.feed(cmd)
            wires.extend(emitted)
            originals.extend([cmd] * len(emitted))
        raw_bytes = sum(len(w) for w in wires)

        cache_hits = 0
        batch = bytearray()
        after_cache = 0
        if self.config.cache_enabled:
            for cmd, wire in zip(originals, wires):
                size, hit = self.cache.encode(cmd, wire)
                after_cache += size
                if hit:
                    cache_hits += 1
                    batch += b"\xCA\xFE" + _key_digest(cmd.key())
                else:
                    batch += wire
        else:
            for wire in wires:
                batch += wire
            after_cache = raw_bytes

        if self.config.compression_enabled:
            if self.config.modelled_compression:
                self._frames_since_measure += 1
                due = (
                    self._frames_since_measure >= self.config.measure_every
                    or not self._have_measurement
                )
                if due and batch:
                    compressed = compress(
                        bytes(batch), max_chain=self.config.compression_max_chain
                    )
                    sample = len(compressed) / max(1, len(batch))
                    if self._have_measurement:
                        # EWMA: single frames vary a lot (an upload-heavy
                        # batch compresses far worse than a reference-heavy
                        # one).
                        self._measured_ratio = (
                            0.6 * self._measured_ratio + 0.4 * sample
                        )
                    else:
                        self._measured_ratio = sample
                        self._have_measurement = True
                    self._frames_since_measure = 0
                    # This batch's cost is known exactly, not modelled.
                    wire_bytes = len(compressed)
                else:
                    wire_bytes = max(
                        1, int(len(batch) * self._measured_ratio)
                    )
                payload = None
            else:
                payload = compress(
                    bytes(batch), max_chain=self.config.compression_max_chain
                )
                wire_bytes = len(payload)
        else:
            payload = bytes(batch)
            wire_bytes = len(batch)

        trace_bytes = TRACE_WIRE_BYTES if trace is not None else 0
        self.total_raw += raw_bytes
        self.total_after_cache += after_cache
        self.total_wire += wire_bytes + trace_bytes
        self.total_trace += trace_bytes
        self.frames += 1
        if self.spans is not None:
            # The engine's CPU stage already charged this serialization
            # cost in sim time; the span backdates over that interval so
            # the breakdown attributes it to the encode stage.
            now = self.clock() if self.clock is not None else 0.0
            cost_ms = (
                len(wires) * self.config.serialize_us_per_command / 1000.0
            )
            extra = {"trace_id": trace.trace_id} if trace is not None else {}
            self.spans.add(
                "codec", "encode", now - cost_ms, now,
                track="client", frame_id=frame_id,
                parent=parent.qualified_name if parent is not None else None,
                depth=parent.depth + 1 if parent is not None else 0,
                raw_bytes=raw_bytes, wire_bytes=wire_bytes,
                cache_hits=cache_hits, **extra,
            )
        return FrameEgress(
            raw_bytes=raw_bytes,
            after_cache_bytes=after_cache,
            wire_bytes=wire_bytes,
            commands=len(wires),
            cache_hits=cache_hits,
            payload=payload,
            fused_dropped=fused_dropped,
            trace_bytes=trace_bytes,
        )

    def _emit_replay_hit(
        self,
        patch: bytes,
        digest: str,
        expect: str,
        variant: int,
        frame_id: Optional[int],
        parent: Optional[OpenSpan],
        trace: Optional[TraceContext] = None,
    ) -> FrameEgress:
        header = (
            REPLAY_HIT_MARKER
            + bytes.fromhex(digest)[:8].ljust(8, b"\x00")
            + bytes.fromhex(expect)[:8].ljust(8, b"\x00")
            + (variant & 0xFF).to_bytes(1, "little")
            + len(patch).to_bytes(2, "little")
        )
        if trace is not None:
            header = trace.to_wire() + header
        trace_bytes = TRACE_WIRE_BYTES if trace is not None else 0
        wire_bytes = len(header) + len(patch) - trace_bytes
        self.total_wire += wire_bytes + trace_bytes
        self.total_trace += trace_bytes
        self.frames += 1
        if self.spans is not None:
            now = self.clock() if self.clock is not None else 0.0
            extra = {"trace_id": trace.trace_id} if trace is not None else {}
            self.spans.add(
                "codec", "encode", now, now,
                track="client", frame_id=frame_id,
                parent=parent.qualified_name if parent is not None else None,
                depth=parent.depth + 1 if parent is not None else 0,
                raw_bytes=0, wire_bytes=wire_bytes,
                cache_hits=0, kind="replay_hit", **extra,
            )
        return FrameEgress(
            raw_bytes=0,
            after_cache_bytes=wire_bytes,
            wire_bytes=wire_bytes,
            commands=0,
            cache_hits=0,
            payload=header + patch,
            kind="replay_hit",
            trace_bytes=trace_bytes,
        )

    @property
    def overall_reduction(self) -> float:
        """1 - wire/raw over the whole session."""
        if self.total_raw == 0:
            return 0.0
        return 1.0 - self.total_wire / self.total_raw
