"""The OpenGL ES context state machine.

A context is "essentially a state machine that stores all data related to
the rendering process" (paper §VI-B).  The service device replays forwarded
commands against a context just like a real driver would, so state
consistency across devices is observable: two contexts that received the
same state-mutating prefix must compare equal (``state_digest``).

The implementation covers the ES 2.0 state that the simulated workloads
exercise: buffer and texture objects, shaders and programs, vertex-attribute
bindings (including client-side pointers), uniforms, and the fixed-function
raster state.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.gles import enums as gl
from repro.gles.commands import GLCommand, command_spec


class GLError(Exception):
    """A GL error raised in strict mode; also latched like glGetError."""

    def __init__(self, code: int, message: str):
        super().__init__(f"0x{code:04X}: {message}")
        self.code = code


@dataclass
class BufferObject:
    name: int
    target: int = 0
    size: int = 0
    usage: int = gl.GL_STATIC_DRAW
    data: bytes = b""


@dataclass
class TextureObject:
    name: int
    target: int = 0
    width: int = 0
    height: int = 0
    fmt: int = gl.GL_RGBA
    levels: int = 1
    params: Dict[int, float] = field(default_factory=dict)
    byte_size: int = 0


@dataclass
class ShaderObject:
    name: int
    shader_type: int
    source: str = ""
    compiled: bool = False
    info_log: str = ""


@dataclass
class ProgramObject:
    name: int
    shaders: List[int] = field(default_factory=list)
    linked: bool = False
    attrib_locations: Dict[str, int] = field(default_factory=dict)
    uniform_locations: Dict[str, int] = field(default_factory=dict)
    uniforms: Dict[int, Tuple[Any, ...]] = field(default_factory=dict)
    _next_uniform: int = 0


@dataclass
class VertexAttribState:
    enabled: bool = False
    size: int = 4
    dtype: int = gl.GL_FLOAT
    normalized: bool = False
    stride: int = 0
    pointer: Any = None           # client-side array handle or buffer offset
    buffer_binding: int = 0       # VBO bound when the pointer was set
    generic_value: Tuple[float, float, float, float] = (0.0, 0.0, 0.0, 1.0)

    def element_bytes(self) -> int:
        return self.size * gl.TYPE_SIZES.get(self.dtype, 4)

    def effective_stride(self) -> int:
        return self.stride if self.stride > 0 else self.element_bytes()


MAX_VERTEX_ATTRIBS = 16
MAX_TEXTURE_UNITS = 8


class GLContext:
    """A replayable ES 2.0 state machine.

    ``execute`` applies one command; in strict mode malformed commands raise
    :class:`GLError`, otherwise the error is latched for ``glGetError`` as a
    real driver does.
    """

    def __init__(self, name: str = "ctx", strict: bool = False):
        self.name = name
        self.strict = strict
        self.error = gl.GL_NO_ERROR

        self._next_name = 1
        self.buffers: Dict[int, BufferObject] = {}
        self.textures: Dict[int, TextureObject] = {}
        self.shaders: Dict[int, ShaderObject] = {}
        self.programs: Dict[int, ProgramObject] = {}
        self.framebuffers: Dict[int, dict] = {0: {}}
        self.renderbuffers: Dict[int, dict] = {}

        self.bound_array_buffer = 0
        self.bound_element_buffer = 0
        self.bound_framebuffer = 0
        self.bound_renderbuffer = 0
        self.active_texture_unit = 0
        self.texture_bindings: List[Dict[int, int]] = [
            {gl.GL_TEXTURE_2D: 0, gl.GL_TEXTURE_CUBE_MAP: 0}
            for _ in range(MAX_TEXTURE_UNITS)
        ]
        self.current_program = 0
        self.vertex_attribs: List[VertexAttribState] = [
            VertexAttribState() for _ in range(MAX_VERTEX_ATTRIBS)
        ]

        self.capabilities: Dict[int, bool] = {
            gl.GL_CULL_FACE: False,
            gl.GL_BLEND: False,
            gl.GL_DITHER: True,
            gl.GL_STENCIL_TEST: False,
            gl.GL_DEPTH_TEST: False,
            gl.GL_SCISSOR_TEST: False,
        }
        self.viewport = (0, 0, 0, 0)
        self.scissor = (0, 0, 0, 0)
        self.clear_color = (0.0, 0.0, 0.0, 0.0)
        self.clear_depth = 1.0
        self.clear_stencil = 0
        self.blend_func = (gl.GL_ONE, gl.GL_ZERO)
        self.depth_func = gl.GL_LESS
        self.depth_mask = True
        self.color_mask = (True, True, True, True)
        self.cull_face_mode = 0x0405  # GL_BACK
        self.line_width = 1.0
        self.pixel_store: Dict[int, int] = {}

        # Statistics observable by tests and the GPU cost model.
        self.draw_calls = 0
        self.vertices_submitted = 0
        self.texture_bytes_uploaded = 0
        self.buffer_bytes_uploaded = 0

    # -- error handling -----------------------------------------------------

    def _set_error(self, code: int, message: str) -> None:
        if self.strict:
            raise GLError(code, message)
        if self.error == gl.GL_NO_ERROR:
            self.error = code

    def get_error(self) -> int:
        code, self.error = self.error, gl.GL_NO_ERROR
        return code

    # -- name allocation -----------------------------------------------------

    def _gen_names(self, n: int) -> List[int]:
        names = list(range(self._next_name, self._next_name + n))
        self._next_name += n
        return names

    # -- execution -----------------------------------------------------------

    def execute(self, cmd: GLCommand) -> Any:
        """Apply one command to the state machine; returns any query value."""
        spec = command_spec(cmd.name)  # validates the name
        handler = getattr(self, "_op_" + cmd.name, None)
        if handler is not None:
            return handler(*cmd.args)
        # Entry points with no state effect beyond validation (glFlush,
        # glValidateProgram, hints, ...) are accepted as no-ops.
        if spec.mutates_state:
            # A mutating command we do not model would silently desync
            # replicas; fail loudly instead.
            raise NotImplementedError(
                f"no state handler for mutating command {cmd.name}"
            )
        return None

    def execute_sequence(self, commands: List[GLCommand]) -> None:
        for cmd in commands:
            self.execute(cmd)

    # -- object lifecycle handlers -------------------------------------------

    def _op_glGenBuffers(self, n: int) -> List[int]:
        names = self._gen_names(n)
        for name in names:
            self.buffers[name] = BufferObject(name)
        return names

    def _op_glDeleteBuffers(self, n: int, buffers: Tuple[int, ...]) -> None:
        for name in buffers[:n]:
            self.buffers.pop(name, None)
            if self.bound_array_buffer == name:
                self.bound_array_buffer = 0
            if self.bound_element_buffer == name:
                self.bound_element_buffer = 0

    def _op_glGenTextures(self, n: int) -> List[int]:
        names = self._gen_names(n)
        for name in names:
            self.textures[name] = TextureObject(name)
        return names

    def _op_glDeleteTextures(self, n: int, textures: Tuple[int, ...]) -> None:
        for name in textures[:n]:
            self.textures.pop(name, None)
            for unit in self.texture_bindings:
                for target, bound in list(unit.items()):
                    if bound == name:
                        unit[target] = 0

    def _op_glGenFramebuffers(self, n: int) -> List[int]:
        names = self._gen_names(n)
        for name in names:
            self.framebuffers[name] = {}
        return names

    def _op_glDeleteFramebuffers(self, n: int, fbs: Tuple[int, ...]) -> None:
        for name in fbs[:n]:
            if name != 0:
                self.framebuffers.pop(name, None)
            if self.bound_framebuffer == name:
                self.bound_framebuffer = 0

    def _op_glGenRenderbuffers(self, n: int) -> List[int]:
        names = self._gen_names(n)
        for name in names:
            self.renderbuffers[name] = {}
        return names

    def _op_glDeleteRenderbuffers(self, n: int, rbs: Tuple[int, ...]) -> None:
        for name in rbs[:n]:
            self.renderbuffers.pop(name, None)

    def _op_glCreateShader(self, shader_type: int) -> int:
        if shader_type not in (gl.GL_VERTEX_SHADER, gl.GL_FRAGMENT_SHADER):
            self._set_error(gl.GL_INVALID_ENUM, "bad shader type")
            return 0
        (name,) = self._gen_names(1)
        self.shaders[name] = ShaderObject(name, shader_type)
        return name

    def _op_glDeleteShader(self, shader: int) -> None:
        self.shaders.pop(shader, None)

    def _op_glCreateProgram(self) -> int:
        (name,) = self._gen_names(1)
        self.programs[name] = ProgramObject(name)
        return name

    def _op_glDeleteProgram(self, program: int) -> None:
        self.programs.pop(program, None)
        if self.current_program == program:
            self.current_program = 0

    # -- shader handlers -----------------------------------------------------

    def _op_glShaderSource(self, shader: int, source: str) -> None:
        obj = self.shaders.get(shader)
        if obj is None:
            self._set_error(gl.GL_INVALID_VALUE, f"no shader {shader}")
            return
        obj.source = source
        obj.compiled = False

    def _op_glCompileShader(self, shader: int) -> None:
        obj = self.shaders.get(shader)
        if obj is None:
            self._set_error(gl.GL_INVALID_VALUE, f"no shader {shader}")
            return
        # The simulated "compiler" accepts any non-empty source that contains
        # a main() entry; this is enough for workloads to exercise the error
        # path deliberately.
        obj.compiled = bool(obj.source) and "main" in obj.source
        obj.info_log = "" if obj.compiled else "error: no main() entry point"

    def _op_glAttachShader(self, program: int, shader: int) -> None:
        prog = self.programs.get(program)
        if prog is None or shader not in self.shaders:
            self._set_error(gl.GL_INVALID_VALUE, "bad program/shader")
            return
        if shader in prog.shaders:
            self._set_error(gl.GL_INVALID_OPERATION, "shader already attached")
            return
        prog.shaders.append(shader)

    def _op_glDetachShader(self, program: int, shader: int) -> None:
        prog = self.programs.get(program)
        if prog is None or shader not in prog.shaders:
            self._set_error(gl.GL_INVALID_VALUE, "bad program/shader")
            return
        prog.shaders.remove(shader)

    def _op_glLinkProgram(self, program: int) -> None:
        prog = self.programs.get(program)
        if prog is None:
            self._set_error(gl.GL_INVALID_VALUE, f"no program {program}")
            return
        types = {
            self.shaders[s].shader_type
            for s in prog.shaders
            if s in self.shaders
        }
        compiled = all(
            self.shaders[s].compiled for s in prog.shaders if s in self.shaders
        )
        prog.linked = (
            gl.GL_VERTEX_SHADER in types
            and gl.GL_FRAGMENT_SHADER in types
            and compiled
        )

    def _op_glUseProgram(self, program: int) -> None:
        if program != 0 and program not in self.programs:
            self._set_error(gl.GL_INVALID_VALUE, f"no program {program}")
            return
        if program != 0 and not self.programs[program].linked:
            self._set_error(gl.GL_INVALID_OPERATION, "program not linked")
            return
        self.current_program = program

    def _op_glGetShaderiv(self, shader: int, pname: int) -> int:
        obj = self.shaders.get(shader)
        if obj is None:
            self._set_error(gl.GL_INVALID_VALUE, f"no shader {shader}")
            return 0
        if pname == gl.GL_COMPILE_STATUS:
            return int(obj.compiled)
        return 0

    def _op_glGetProgramiv(self, program: int, pname: int) -> int:
        prog = self.programs.get(program)
        if prog is None:
            self._set_error(gl.GL_INVALID_VALUE, f"no program {program}")
            return 0
        if pname == gl.GL_LINK_STATUS:
            return int(prog.linked)
        return 0

    def _op_glGetShaderInfoLog(self, shader: int) -> str:
        obj = self.shaders.get(shader)
        return obj.info_log if obj else ""

    def _op_glBindAttribLocation(
        self, program: int, index: int, name: str
    ) -> None:
        prog = self.programs.get(program)
        if prog is None:
            self._set_error(gl.GL_INVALID_VALUE, f"no program {program}")
            return
        prog.attrib_locations[name] = index

    def _op_glGetAttribLocation(self, program: int, name: str) -> int:
        prog = self.programs.get(program)
        if prog is None or not prog.linked:
            return -1
        if name not in prog.attrib_locations:
            prog.attrib_locations[name] = len(prog.attrib_locations)
        return prog.attrib_locations[name]

    def _op_glGetUniformLocation(self, program: int, name: str) -> int:
        prog = self.programs.get(program)
        if prog is None or not prog.linked:
            return -1
        if name not in prog.uniform_locations:
            prog.uniform_locations[name] = prog._next_uniform
            prog._next_uniform += 1
        return prog.uniform_locations[name]

    # -- buffer handlers ------------------------------------------------------

    def _binding_for_target(self, target: int) -> Optional[int]:
        if target == gl.GL_ARRAY_BUFFER:
            return self.bound_array_buffer
        if target == gl.GL_ELEMENT_ARRAY_BUFFER:
            return self.bound_element_buffer
        return None

    def _op_glBindBuffer(self, target: int, buffer: int) -> None:
        if buffer != 0 and buffer not in self.buffers:
            # ES 2.0 allows binding unseen names: they spring into existence.
            self.buffers[buffer] = BufferObject(buffer)
        if target == gl.GL_ARRAY_BUFFER:
            self.bound_array_buffer = buffer
        elif target == gl.GL_ELEMENT_ARRAY_BUFFER:
            self.bound_element_buffer = buffer
        else:
            self._set_error(gl.GL_INVALID_ENUM, f"bad buffer target {target}")

    def _op_glBufferData(
        self, target: int, size: int, data: Any, usage: int
    ) -> None:
        bound = self._binding_for_target(target)
        if bound is None:
            self._set_error(gl.GL_INVALID_ENUM, f"bad buffer target {target}")
            return
        if bound == 0:
            self._set_error(gl.GL_INVALID_OPERATION, "no buffer bound")
            return
        if size < 0:
            self._set_error(gl.GL_INVALID_VALUE, f"negative size {size}")
            return
        obj = self.buffers[bound]
        obj.target = target
        obj.size = size
        obj.usage = usage
        obj.data = bytes(data[:size]) if data is not None else bytes(size)
        self.buffer_bytes_uploaded += size

    def _op_glBufferSubData(
        self, target: int, offset: int, size: int, data: Any
    ) -> None:
        bound = self._binding_for_target(target)
        if bound is None or bound == 0:
            self._set_error(gl.GL_INVALID_OPERATION, "no buffer bound")
            return
        obj = self.buffers[bound]
        if offset < 0 or size < 0 or offset + size > obj.size:
            self._set_error(gl.GL_INVALID_VALUE, "range outside buffer store")
            return
        payload = bytes(data[:size]) if data is not None else bytes(size)
        obj.data = obj.data[:offset] + payload + obj.data[offset + size:]
        self.buffer_bytes_uploaded += size

    # -- texture handlers --------------------------------------------------------

    def _op_glActiveTexture(self, texture: int) -> None:
        unit = texture - gl.GL_TEXTURE0
        if not 0 <= unit < MAX_TEXTURE_UNITS:
            self._set_error(gl.GL_INVALID_ENUM, f"bad texture unit {unit}")
            return
        self.active_texture_unit = unit

    def _op_glBindTexture(self, target: int, texture: int) -> None:
        if target not in (gl.GL_TEXTURE_2D, gl.GL_TEXTURE_CUBE_MAP):
            self._set_error(gl.GL_INVALID_ENUM, f"bad texture target {target}")
            return
        if texture != 0 and texture not in self.textures:
            self.textures[texture] = TextureObject(texture)
        if texture != 0:
            self.textures[texture].target = target
        self.texture_bindings[self.active_texture_unit][target] = texture

    def _bound_texture(self, target: int) -> Optional[TextureObject]:
        name = self.texture_bindings[self.active_texture_unit].get(target, 0)
        return self.textures.get(name)

    def _op_glTexImage2D(
        self,
        target: int,
        level: int,
        internalformat: int,
        width: int,
        height: int,
        border: int,
        fmt: int,
        dtype: int,
        pixels: Any,
    ) -> None:
        tex = self._bound_texture(target)
        if tex is None:
            self._set_error(gl.GL_INVALID_OPERATION, "no texture bound")
            return
        if width < 0 or height < 0 or border != 0:
            self._set_error(gl.GL_INVALID_VALUE, "bad texture dimensions")
            return
        channels = gl.FORMAT_CHANNELS.get(fmt, 4)
        nbytes = width * height * channels
        if level == 0:
            tex.width, tex.height, tex.fmt = width, height, fmt
        tex.levels = max(tex.levels, level + 1)
        tex.byte_size += nbytes
        self.texture_bytes_uploaded += nbytes

    def _op_glTexSubImage2D(
        self,
        target: int,
        level: int,
        xoffset: int,
        yoffset: int,
        width: int,
        height: int,
        fmt: int,
        dtype: int,
        pixels: Any,
    ) -> None:
        tex = self._bound_texture(target)
        if tex is None:
            self._set_error(gl.GL_INVALID_OPERATION, "no texture bound")
            return
        if xoffset + width > tex.width or yoffset + height > tex.height:
            self._set_error(gl.GL_INVALID_VALUE, "subimage outside texture")
            return
        channels = gl.FORMAT_CHANNELS.get(fmt, 4)
        self.texture_bytes_uploaded += width * height * channels

    def _op_glCompressedTexImage2D(
        self,
        target: int,
        level: int,
        internalformat: int,
        width: int,
        height: int,
        border: int,
        image_size: int,
        data: Any,
    ) -> None:
        tex = self._bound_texture(target)
        if tex is None:
            self._set_error(gl.GL_INVALID_OPERATION, "no texture bound")
            return
        if level == 0:
            tex.width, tex.height = width, height
        tex.byte_size += image_size
        self.texture_bytes_uploaded += image_size

    def _op_glTexParameteri(self, target: int, pname: int, param: int) -> None:
        tex = self._bound_texture(target)
        if tex is None:
            self._set_error(gl.GL_INVALID_OPERATION, "no texture bound")
            return
        tex.params[pname] = param

    def _op_glTexParameterf(self, target: int, pname: int, param: float) -> None:
        self._op_glTexParameteri(target, pname, param)

    def _op_glGenerateMipmap(self, target: int) -> None:
        tex = self._bound_texture(target)
        if tex is None:
            self._set_error(gl.GL_INVALID_OPERATION, "no texture bound")
            return
        side = max(tex.width, tex.height, 1)
        tex.levels = side.bit_length()

    def _op_glPixelStorei(self, pname: int, param: int) -> None:
        self.pixel_store[pname] = param

    # -- vertex attribute handlers ---------------------------------------------

    def _check_attrib_index(self, index: int) -> bool:
        if not 0 <= index < MAX_VERTEX_ATTRIBS:
            self._set_error(gl.GL_INVALID_VALUE, f"attrib index {index}")
            return False
        return True

    def _op_glEnableVertexAttribArray(self, index: int) -> None:
        if self._check_attrib_index(index):
            self.vertex_attribs[index].enabled = True

    def _op_glDisableVertexAttribArray(self, index: int) -> None:
        if self._check_attrib_index(index):
            self.vertex_attribs[index].enabled = False

    def _op_glVertexAttribPointer(
        self,
        index: int,
        size: int,
        dtype: int,
        normalized: bool,
        stride: int,
        pointer: Any,
    ) -> None:
        if not self._check_attrib_index(index):
            return
        if size not in (1, 2, 3, 4):
            self._set_error(gl.GL_INVALID_VALUE, f"attrib size {size}")
            return
        attrib = self.vertex_attribs[index]
        attrib.size = size
        attrib.dtype = dtype
        attrib.normalized = bool(normalized)
        attrib.stride = stride
        attrib.pointer = pointer
        attrib.buffer_binding = self.bound_array_buffer

    def _op_glVertexAttrib1f(self, index: int, x: float) -> None:
        if self._check_attrib_index(index):
            self.vertex_attribs[index].generic_value = (x, 0.0, 0.0, 1.0)

    def _op_glVertexAttrib2f(self, index: int, x: float, y: float) -> None:
        if self._check_attrib_index(index):
            self.vertex_attribs[index].generic_value = (x, y, 0.0, 1.0)

    def _op_glVertexAttrib3f(
        self, index: int, x: float, y: float, z: float
    ) -> None:
        if self._check_attrib_index(index):
            self.vertex_attribs[index].generic_value = (x, y, z, 1.0)

    def _op_glVertexAttrib4f(
        self, index: int, x: float, y: float, z: float, w: float
    ) -> None:
        if self._check_attrib_index(index):
            self.vertex_attribs[index].generic_value = (x, y, z, w)

    # -- uniform handlers ----------------------------------------------------------

    def _set_uniform(self, location: int, value: Tuple[Any, ...]) -> None:
        if self.current_program == 0:
            self._set_error(gl.GL_INVALID_OPERATION, "no program in use")
            return
        if location < 0:
            return  # silently ignored, as per spec
        self.programs[self.current_program].uniforms[location] = value

    def _op_glUniform1i(self, location: int, v0: int) -> None:
        self._set_uniform(location, (v0,))

    def _op_glUniform2i(self, location: int, v0: int, v1: int) -> None:
        self._set_uniform(location, (v0, v1))

    def _op_glUniform1f(self, location: int, v0: float) -> None:
        self._set_uniform(location, (v0,))

    def _op_glUniform2f(self, location: int, v0: float, v1: float) -> None:
        self._set_uniform(location, (v0, v1))

    def _op_glUniform3f(
        self, location: int, v0: float, v1: float, v2: float
    ) -> None:
        self._set_uniform(location, (v0, v1, v2))

    def _op_glUniform4f(
        self, location: int, v0: float, v1: float, v2: float, v3: float
    ) -> None:
        self._set_uniform(location, (v0, v1, v2, v3))

    def _op_glUniform1fv(self, location: int, count: int, value: Any) -> None:
        self._set_uniform(location, tuple(value[:count]))

    def _op_glUniform2fv(self, location: int, count: int, value: Any) -> None:
        self._set_uniform(location, tuple(value[: 2 * count]))

    def _op_glUniform3fv(self, location: int, count: int, value: Any) -> None:
        self._set_uniform(location, tuple(value[: 3 * count]))

    def _op_glUniform4fv(self, location: int, count: int, value: Any) -> None:
        self._set_uniform(location, tuple(value[: 4 * count]))

    def _op_glUniformMatrix2fv(
        self, location: int, count: int, transpose: bool, value: Any
    ) -> None:
        self._set_uniform(location, tuple(value[: 4 * count]))

    def _op_glUniformMatrix3fv(
        self, location: int, count: int, transpose: bool, value: Any
    ) -> None:
        self._set_uniform(location, tuple(value[: 9 * count]))

    def _op_glUniformMatrix4fv(
        self, location: int, count: int, transpose: bool, value: Any
    ) -> None:
        self._set_uniform(location, tuple(value[: 16 * count]))

    # -- fixed-function state handlers -----------------------------------------------

    def _op_glEnable(self, cap: int) -> None:
        if cap not in self.capabilities:
            self._set_error(gl.GL_INVALID_ENUM, f"bad capability {cap}")
            return
        self.capabilities[cap] = True

    def _op_glDisable(self, cap: int) -> None:
        if cap not in self.capabilities:
            self._set_error(gl.GL_INVALID_ENUM, f"bad capability {cap}")
            return
        self.capabilities[cap] = False

    def _op_glBlendFunc(self, sfactor: int, dfactor: int) -> None:
        self.blend_func = (sfactor, dfactor)

    def _op_glBlendEquation(self, mode: int) -> None:
        pass

    def _op_glDepthFunc(self, func: int) -> None:
        self.depth_func = func

    def _op_glDepthMask(self, flag: bool) -> None:
        self.depth_mask = bool(flag)

    def _op_glDepthRangef(self, near: float, far: float) -> None:
        pass

    def _op_glCullFace(self, mode: int) -> None:
        self.cull_face_mode = mode

    def _op_glFrontFace(self, mode: int) -> None:
        pass

    def _op_glViewport(self, x: int, y: int, width: int, height: int) -> None:
        if width < 0 or height < 0:
            self._set_error(gl.GL_INVALID_VALUE, "negative viewport")
            return
        self.viewport = (x, y, width, height)

    def _op_glScissor(self, x: int, y: int, width: int, height: int) -> None:
        self.scissor = (x, y, width, height)

    def _op_glClearColor(
        self, red: float, green: float, blue: float, alpha: float
    ) -> None:
        clamp = lambda v: min(1.0, max(0.0, v))  # noqa: E731
        self.clear_color = (clamp(red), clamp(green), clamp(blue), clamp(alpha))

    def _op_glClearDepthf(self, depth: float) -> None:
        self.clear_depth = min(1.0, max(0.0, depth))

    def _op_glClearStencil(self, s: int) -> None:
        self.clear_stencil = s

    def _op_glColorMask(self, r: bool, g: bool, b: bool, a: bool) -> None:
        self.color_mask = (bool(r), bool(g), bool(b), bool(a))

    def _op_glStencilFunc(self, func: int, ref: int, mask: int) -> None:
        pass

    def _op_glStencilOp(self, fail: int, zfail: int, zpass: int) -> None:
        pass

    def _op_glStencilMask(self, mask: int) -> None:
        pass

    def _op_glLineWidth(self, width: float) -> None:
        if width <= 0:
            self._set_error(gl.GL_INVALID_VALUE, f"line width {width}")
            return
        self.line_width = width

    def _op_glPolygonOffset(self, factor: float, units: float) -> None:
        pass

    def _op_glSampleCoverage(self, value: float, invert: bool) -> None:
        pass

    def _op_glHint(self, target: int, mode: int) -> None:
        pass

    # -- framebuffer handlers --------------------------------------------------------

    def _op_glBindFramebuffer(self, target: int, framebuffer: int) -> None:
        if framebuffer != 0 and framebuffer not in self.framebuffers:
            self.framebuffers[framebuffer] = {}
        self.bound_framebuffer = framebuffer

    def _op_glBindRenderbuffer(self, target: int, renderbuffer: int) -> None:
        if renderbuffer != 0 and renderbuffer not in self.renderbuffers:
            self.renderbuffers[renderbuffer] = {}
        self.bound_renderbuffer = renderbuffer

    def _op_glFramebufferTexture2D(
        self,
        target: int,
        attachment: int,
        textarget: int,
        texture: int,
        level: int,
    ) -> None:
        self.framebuffers.setdefault(self.bound_framebuffer, {})[attachment] = (
            "texture",
            texture,
            level,
        )

    def _op_glFramebufferRenderbuffer(
        self, target: int, attachment: int, rbtarget: int, renderbuffer: int
    ) -> None:
        self.framebuffers.setdefault(self.bound_framebuffer, {})[attachment] = (
            "renderbuffer",
            renderbuffer,
        )

    def _op_glRenderbufferStorage(
        self, target: int, internalformat: int, width: int, height: int
    ) -> None:
        self.renderbuffers.setdefault(self.bound_renderbuffer, {}).update(
            {"width": width, "height": height, "format": internalformat}
        )

    def _op_glCheckFramebufferStatus(self, target: int) -> int:
        return gl.GL_FRAMEBUFFER_COMPLETE

    # -- drawing handlers ---------------------------------------------------------------

    def _validate_draw(self) -> bool:
        if self.current_program == 0:
            self._set_error(gl.GL_INVALID_OPERATION, "draw with no program")
            return False
        return True

    def _op_glClear(self, mask: int) -> None:
        self.draw_calls += 1

    def _op_glDrawArrays(self, mode: int, first: int, count: int) -> None:
        if count < 0 or first < 0:
            self._set_error(gl.GL_INVALID_VALUE, "negative draw range")
            return
        if not self._validate_draw():
            return
        self.draw_calls += 1
        self.vertices_submitted += count

    def _op_glDrawElements(
        self, mode: int, count: int, dtype: int, indices: Any
    ) -> None:
        if count < 0:
            self._set_error(gl.GL_INVALID_VALUE, "negative index count")
            return
        if not self._validate_draw():
            return
        self.draw_calls += 1
        self.vertices_submitted += count

    # -- queries ---------------------------------------------------------------------------

    def _op_glGetError(self) -> int:
        return self.get_error()

    def _op_glGetString(self, name: int) -> str:
        strings = {
            gl.GL_VENDOR: "GBooster Reproduction",
            gl.GL_RENDERER: "Simulated ES2 Rasterizer",
            gl.GL_VERSION: "OpenGL ES 2.0 (simulated)",
            gl.GL_EXTENSIONS: "",
        }
        return strings.get(name, "")

    def _op_glIsEnabled(self, cap: int) -> bool:
        return self.capabilities.get(cap, False)

    def _op_glIsBuffer(self, buffer: int) -> bool:
        return buffer in self.buffers

    def _op_glIsTexture(self, texture: int) -> bool:
        return texture in self.textures

    def _op_glIsProgram(self, program: int) -> bool:
        return program in self.programs

    def _op_glIsShader(self, shader: int) -> bool:
        return shader in self.shaders

    # -- consistency digest -------------------------------------------------------------------

    def state_digest(self) -> str:
        """A stable hash over all replicable context state.

        Two service devices that received the same state-mutating command
        prefix must produce identical digests (§VI-B); the dispatch tests
        assert this.
        """
        h = hashlib.sha256()

        def norm(part: Any) -> Any:
            # GL hands floats to the GPU as float32; canonicalize so a
            # context fed through the (float32) wire format digests equal
            # to one fed Python doubles directly.
            if isinstance(part, float):
                import struct as _struct

                return _struct.unpack("<f", _struct.pack("<f", part))[0]
            if isinstance(part, (tuple, list)):
                return tuple(norm(p) for p in part)
            return part

        def put(*parts: Any) -> None:
            for part in parts:
                h.update(repr(norm(part)).encode("utf-8"))

        for name in sorted(self.buffers):
            b = self.buffers[name]
            put("buf", name, b.target, b.size, b.usage, b.data)
        for name in sorted(self.textures):
            t = self.textures[name]
            put("tex", name, t.target, t.width, t.height, t.fmt, t.levels,
                sorted(t.params.items()), t.byte_size)
        for name in sorted(self.shaders):
            s = self.shaders[name]
            put("shader", name, s.shader_type, s.source, s.compiled)
        for name in sorted(self.programs):
            p = self.programs[name]
            put("prog", name, sorted(p.shaders), p.linked,
                sorted(p.attrib_locations.items()),
                sorted(p.uniform_locations.items()),
                sorted(p.uniforms.items()))
        put("bind", self.bound_array_buffer, self.bound_element_buffer,
            self.bound_framebuffer, self.active_texture_unit,
            self.current_program)
        for unit in self.texture_bindings:
            put(sorted(unit.items()))
        for a in self.vertex_attribs:
            put(a.enabled, a.size, a.dtype, a.normalized, a.stride,
                a.buffer_binding, a.generic_value)
        put("caps", sorted(self.capabilities.items()))
        put("raster", self.viewport, self.scissor, self.clear_color,
            self.clear_depth, self.clear_stencil, self.blend_func,
            self.depth_func, self.depth_mask, self.color_mask,
            self.cull_face_mode, self.line_width)
        return h.hexdigest()
