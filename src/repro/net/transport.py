"""Reliable transports over the lossy link substrate.

Paper §IV-B: graphics commands must arrive reliably and in order, but TCP's
retransmission machinery carries an inherent delayed-ACK floor of roughly
40 ms, so GBooster implements a lightweight application-layer reliability
mechanism over UDP (after UDT [19]).

:class:`ReliableUdpTransport` models that mechanism: per-message sequence
numbers, in-order delivery at the receiver, and timer-based retransmission
of dropped messages.  :class:`TcpTransport` is the comparison baseline: the
same reliability, plus the protocol's inherent ACK-delay latency.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Generator, List, Optional

from repro.net.interface import WirelessInterface
from repro.net.link import NetworkLink
from repro.net.message import (
    Message,
    RUDP_HEADER_BYTES,
    TCP_IP_HEADER_BYTES,
    UDP_IP_HEADER_BYTES,
)
from repro.sim.kernel import Event, Process, Simulator


@dataclass
class TransportStats:
    messages_sent: int = 0
    messages_delivered: int = 0
    retransmissions: int = 0
    bytes_offered: int = 0
    bytes_delivered: int = 0
    delivery_latencies_ms: List[float] = field(default_factory=list)

    def mean_latency_ms(self) -> float:
        if not self.delivery_latencies_ms:
            return 0.0
        return sum(self.delivery_latencies_ms) / len(self.delivery_latencies_ms)


class Transport:
    """Base class: sequencing + in-order delivery + retransmission.

    The sender path is ``send -> radio queue -> link -> receiver reorder
    buffer -> deliver callback``.  A retransmission timer watches each
    in-flight message; if no delivery confirmation arrives within the RTO
    the message is re-sent through the same radio.  (ACK traffic itself is
    modelled as latency — ACK bytes are negligible against frame data.)
    """

    #: extra protocol latency added to every delivery (TCP's delayed ACK)
    protocol_delay_ms: float = 0.0
    per_packet_header: int = UDP_IP_HEADER_BYTES

    def __init__(
        self,
        sim: Simulator,
        name: str = "transport",
        rto_ms: float = 30.0,
        max_retries: int = 10,
    ):
        self.sim = sim
        self.name = name
        self.rto_ms = rto_ms
        self.max_retries = max_retries
        self.stats = TransportStats()
        self.on_deliver: Optional[Callable[[Message], None]] = None
        self._radio_provider: Optional[Callable[[], WirelessInterface]] = None
        self._link_for_radio: Dict[str, NetworkLink] = {}
        self._next_seq = 0
        self._expected_seq = 0
        self._reorder: Dict[int, Message] = {}
        #: sequence numbers sent but not yet received; unlike the old
        #: ever-growing acked-history dict this stays bounded by the loss
        #: window — delivered sequence numbers are pruned on arrival.
        self._unacked: set = set()
        #: live retransmission-timer process per unacked sequence number,
        #: killed the moment the ACK arrives so no RTO process outlives
        #: delivery (they used to keep ``Simulator.run()`` alive for the
        #: whole exponential-backoff window).
        self._rto_timers: Dict[int, Process] = {}

    # -- wiring -----------------------------------------------------------------

    def bind(
        self,
        radio_provider: Callable[[], WirelessInterface],
        links: Dict[str, NetworkLink],
        on_deliver: Callable[[Message], None],
    ) -> None:
        """Connect the transport to its radios and per-radio links.

        ``radio_provider`` is consulted *per message*, so an interface
        switch mid-stream reroutes subsequent traffic — exactly the
        behaviour the switching controller relies on (§V-B: "configures the
        default route to direct the traffic through the interface").
        """
        self._radio_provider = radio_provider
        self._link_for_radio = dict(links)
        for link in links.values():
            link.set_receiver(self._on_link_receive)
        self.on_deliver = on_deliver

    # -- sending ---------------------------------------------------------------------

    def send(self, message: Message) -> Event:
        """Send reliably; the returned event fires at in-order delivery."""
        if self._radio_provider is None:
            raise RuntimeError(f"{self.name}: transport not bound")
        seq = self._next_seq
        self._next_seq += 1
        message.metadata["seq"] = seq
        message.metadata["transport_send_at"] = self.sim.now
        # Assignment, not accumulation: the same Message object may be
        # re-sent (failover re-dispatch) without compounding the header.
        message.transport_overhead_bytes = self._header_overhead()
        delivered = self.sim.event(name=f"{self.name}.delivered.{seq}")
        message.metadata["delivered_event"] = delivered
        self._unacked.add(seq)
        self.stats.messages_sent += 1
        self.stats.bytes_offered += message.framed_bytes
        self._transmit(message, attempt=0)
        return delivered

    def _header_overhead(self) -> int:
        return RUDP_HEADER_BYTES

    def _transmit(self, message: Message, attempt: int) -> None:
        radio = self._radio_provider()
        # Several transports share each radio (per-node uplinks, the
        # downlink), so the egress link rides on the message rather than on
        # the radio: look it up by the radio's technology name, falling back
        # to the sole bound link.
        link = self._link_for_radio.get(radio.spec.name)
        if link is None and len(self._link_for_radio) == 1:
            link = next(iter(self._link_for_radio.values()))
        radio.send(message, link=link)
        seq = message.metadata["seq"]
        self._rto_timers[seq] = self.sim.spawn(
            self._retransmit_timer(message, attempt),
            name=f"{self.name}.rto.{seq}.{attempt}",
        )

    def _retransmit_timer(self, message: Message, attempt: int) -> Generator:
        yield self.rto_ms * (2 ** min(attempt, 6))
        seq = message.metadata["seq"]
        if seq not in self._unacked:
            self._rto_timers.pop(seq, None)
            return
        if attempt + 1 > self.max_retries:
            self.sim.tracer.record(
                self.sim.now, "transport", "give_up",
                transport=self.name, seq=seq,
            )
            self.sim.metrics.counter("transport.give_ups").inc()
            if self.sim.telemetry is not None:
                self.sim.telemetry.observe(
                    "transport.give_ups", 1.0, agg="count",
                    transport=self.name,
                )
            self._rto_timers.pop(seq, None)
            return
        self.stats.retransmissions += 1
        trace = None
        request = message.metadata.get("request")
        if request is not None:
            trace = request.metadata.get("trace")
        trace_id = trace.trace_id if trace is not None else None
        self.sim.metrics.counter("transport.retransmissions").inc()
        self.sim.metrics.counter(
            "transport.retransmissions", transport=self.name
        ).inc()
        if self.sim.telemetry is not None:
            self.sim.telemetry.observe(
                "transport.retransmissions", 1.0, agg="count",
                trace_id=trace_id,
                transport=self.name,
            )
        self.sim.tracer.record(
            self.sim.now, "transport", "retransmit",
            transport=self.name, seq=seq, attempt=attempt + 1,
            **({"trace_id": trace_id} if trace_id else {}),
        )
        if self.sim.causal is not None and trace is not None:
            self.sim.causal.event(
                "net", "retransmit", trace=trace,
                transport=self.name, seq=seq, attempt=attempt + 1,
            )
        # The retransmission is the same wire message going out again, so
        # it keeps the original's id — trace records of repeated drops
        # all point at one message.
        clone = Message(
            size_bytes=message.size_bytes,
            payload=message.payload,
            kind=message.kind,
            message_id=message.message_id,
            created_at=message.created_at,
            metadata=dict(message.metadata),
            transport_overhead_bytes=message.transport_overhead_bytes,
        )
        self._transmit(clone, attempt=attempt + 1)

    # -- receiving -------------------------------------------------------------------------

    def _on_link_receive(self, message: Message) -> None:
        seq = message.metadata.get("seq")
        if seq is None or seq < self._expected_seq or seq in self._reorder:
            return  # duplicate from a spurious retransmission
        self._unacked.discard(seq)
        # The ACK tears the retransmission timer down immediately — no RTO
        # process survives past delivery to inflate queue lifetime.
        timer = self._rto_timers.pop(seq, None)
        if timer is not None:
            timer.kill()
        self._reorder[seq] = message
        if self.protocol_delay_ms > 0:
            self.sim.spawn(
                self._delayed_flush(), name=f"{self.name}.ackdelay"
            )
        else:
            self._flush_in_order()

    def _delayed_flush(self) -> Generator:
        yield self.protocol_delay_ms
        self._flush_in_order()

    def _flush_in_order(self) -> None:
        while self._expected_seq in self._reorder:
            message = self._reorder.pop(self._expected_seq)
            self._expected_seq += 1
            self.stats.messages_delivered += 1
            self.stats.bytes_delivered += message.framed_bytes
            latency = self.sim.now - message.metadata["transport_send_at"]
            self.stats.delivery_latencies_ms.append(latency)
            if self.sim.telemetry is not None:
                self.sim.telemetry.observe(
                    "transport.delivery_ms", latency, transport=self.name,
                )
            self._record_delivery_span(message)
            delivered: Optional[Event] = message.metadata.get("delivered_event")
            if delivered is not None and not delivered.triggered:
                delivered.trigger(message)
            if self.on_deliver is not None:
                self.on_deliver(message)

    def _record_delivery_span(self, message: Message) -> None:
        """One span per in-order delivery: uplink messages are the frame's
        "transmit" stage, returning encoded frames are its "return" stage."""
        request = message.metadata.get("request")
        frame_id = getattr(request, "frame_id", None)
        parent = None
        depth = 0
        trace = None
        if request is not None:
            root = request.metadata.get("frame_span")
            if root is not None:
                parent = root.qualified_name
                depth = root.depth + 1
            trace = request.metadata.get("trace")
        stage = "return" if message.kind == "frame" else "transmit"
        extra = {"trace_id": trace.trace_id} if trace is not None else {}
        self.sim.spans.add(
            "net",
            stage,
            message.metadata["transport_send_at"],
            self.sim.now,
            track=self.name,
            frame_id=frame_id,
            parent=parent,
            depth=depth,
            bytes=message.framed_bytes,
            kind=message.kind,
            **extra,
        )
        if self.sim.causal is not None and trace is not None:
            self.sim.causal.event(
                "net", stage, trace=trace,
                transport=self.name,
                bytes=message.framed_bytes,
                latency_ms=round(
                    self.sim.now - message.metadata["transport_send_at"], 4
                ),
            )

    # -- introspection -------------------------------------------------------------------------

    def in_flight(self) -> int:
        return len(self._unacked)

    def reorder_held(self) -> int:
        """Messages received but parked awaiting an earlier sequence number."""
        return len(self._reorder)


class ReliableUdpTransport(Transport):
    """GBooster's transport: UDP framing, app-layer ARQ, no ACK-delay floor."""

    protocol_delay_ms = 0.0
    per_packet_header = UDP_IP_HEADER_BYTES


class TcpTransport(Transport):
    """Baseline: reliable and ordered, but with TCP's inherent delay.

    The paper cites ~40 ms as the typical delayed-ACK-induced latency in
    general settings [18]; we charge it on every delivery.
    """

    protocol_delay_ms = 40.0
    per_packet_header = TCP_IP_HEADER_BYTES

    def _header_overhead(self) -> int:
        return 0  # header accounted per packet, no app-layer ARQ header
