"""Structured event tracing.

Substrates emit :class:`TraceRecord` rows into the simulator's tracer; tests
and experiments query them instead of scraping logs.  Recording is cheap and
can be filtered per category to keep long runs bounded.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Set


@dataclass(frozen=True)
class TraceRecord:
    """One traced occurrence."""

    time: float
    category: str
    event: str
    data: Dict[str, Any] = field(default_factory=dict)


class Tracer:
    """Collects trace records, optionally restricted to some categories."""

    def __init__(self, categories: Optional[Iterable[str]] = None):
        self.records: List[TraceRecord] = []
        self._categories: Optional[Set[str]] = (
            set(categories) if categories is not None else None
        )
        self.enabled = True

    def wants(self, category: str) -> bool:
        if not self.enabled:
            return False
        return self._categories is None or category in self._categories

    def record(
        self, time: float, category: str, event: str, **data: Any
    ) -> None:
        if self.wants(category):
            self.records.append(TraceRecord(time, category, event, data))

    def query(
        self, category: Optional[str] = None, event: Optional[str] = None
    ) -> List[TraceRecord]:
        out = self.records
        if category is not None:
            out = [r for r in out if r.category == category]
        if event is not None:
            out = [r for r in out if r.event == event]
        return list(out)

    def count(self, category: Optional[str] = None, event: Optional[str] = None) -> int:
        return len(self.query(category, event))

    def clear(self) -> None:
        self.records.clear()
