"""The SLO harness behind ``python -m repro slo``.

Runs three telemetry-armed scenarios — a clean offload session, the same
session with a mid-run loss burst, and an oversubscribed fleet wave —
evaluates every armed SLO's burn-rate state machine, and writes
``BENCH_SLO.json``: attainments, alert logs, drift-detector state and
per-frame critical-path attribution, all in simulated time so the
artifact is byte-identical across same-seed runs (it carries a sha256
digest over itself).

The harness doubles as the CI perf-regression gate:
``diff_against_baseline`` compares the artifact against the committed
baseline (``benchmarks/baselines/BENCH_SLO.json``) and reports
regressions — frame p99 latency beyond the tolerance, SLO attainment
drops, newly breached objectives — which fail the build.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any, Dict, List, Optional, Tuple

from repro.apps.games import GAMES
from repro.core.config import GBoosterConfig
from repro.core.session import run_offload_session
from repro.devices.profiles import LG_NEXUS_5, NVIDIA_SHIELD
from repro.experiments.fleet import run_fleet_point
from repro.faults.schedule import FaultSchedule
from repro.metrics.spans import dominant_stage, pipeline_critical_path
from repro.obs.telemetry import TelemetryHub, default_fleet_slos
from repro.sim.kernel import Simulator

#: artifact schema identifier, bumped on incompatible changes
BENCH_SLO_SCHEMA = "repro.bench_slo/1"

#: the committed baseline the CI gate diffs against
DEFAULT_BASELINE = "benchmarks/baselines/BENCH_SLO.json"

#: objectives the artifact must always evaluate (acceptance-gated)
REQUIRED_SESSION_SLOS = (
    "frame_p99_latency",
    "fps_floor",
    "switch_flap_rate",
    "retransmission_rate",
)
REQUIRED_FLEET_SLOS = ("admission_reject_rate", "admission_wait")

#: frame p99 latency may grow this fraction over the baseline before the
#: gate fails (plus an absolute 1 ms floor so micro-jitter never trips it)
P99_TOLERANCE = 0.10
P99_FLOOR_MS = 1.0

#: per-SLO attainment may drop this much below the baseline
ATTAINMENT_TOLERANCE = 0.05


# -- scenarios ---------------------------------------------------------------


def _session_scenario(
    duration_ms: float, seed: int, faults: Optional[FaultSchedule] = None
) -> Dict[str, Any]:
    """One telemetry-armed offload session -> deterministic summary."""
    config = GBoosterConfig(telemetry=True, faults=faults)
    result = run_offload_session(
        GAMES["G3"], LG_NEXUS_5, [NVIDIA_SHIELD],
        config=config, duration_ms=duration_ms, seed=seed,
    )
    sim = result.engine.sim
    critical = pipeline_critical_path(sim.spans)
    return {
        "frames_presented": result.fps.frame_count,
        "median_fps": round(result.fps.median_fps, 4),
        "frame_response": sim.metrics.histogram(
            "client.frame_response_ms"
        ).summary(),
        "critical_path": critical,
        "dominant_stage": dominant_stage(critical),
        "telemetry": result.telemetry.report(),
    }


def run_slo_session(duration_ms: float, seed: int) -> Dict[str, Any]:
    """The clean run: every session SLO should hold."""
    return _session_scenario(duration_ms, seed)


def run_slo_faulted(duration_ms: float, seed: int) -> Dict[str, Any]:
    """The same session through a mid-run loss burst.

    The burst inflates retransmissions and frame latency, so the
    burn-rate machines must leave ``ok`` — this scenario is what proves
    the alerting pipeline actually fires, and it shifts critical-path
    attribution toward the network stages.
    """
    faults = FaultSchedule().loss_burst(
        at_ms=duration_ms * 0.4,
        duration_ms=duration_ms * 0.35,
        loss_probability=0.35,
    )
    return _session_scenario(duration_ms, seed, faults=faults)


def run_slo_fleet(
    duration_ms: float,
    seed: int,
    n_sessions: int = 96,
    n_devices: int = 2,
) -> Dict[str, Any]:
    """An oversubscribed fleet wave with the fleet SLOs armed.

    More sessions than the pool can admit, so the reject-rate objective
    sees real rejections and the admission-wait distribution is fed by
    every admitted session.
    """
    sim = Simulator(seed=seed)
    hub = TelemetryHub(sim, slos=default_fleet_slos())
    point, _report = run_fleet_point(
        n_sessions=n_sessions, n_devices=n_devices,
        duration_ms=duration_ms, seed=seed, crash=False, sim=sim,
    )
    hub.finalize()
    return {
        "sessions": n_sessions,
        "devices": n_devices,
        "admitted": point.admitted,
        "rejected": point.rejected,
        "telemetry": hub.report(),
    }


# -- the artifact ------------------------------------------------------------


def run_slo_bench(
    seed: int = 0, smoke: bool = False, workers: int = 1
) -> Dict[str, Any]:
    """Run every scenario and assemble the BENCH_SLO artifact.

    Everything in the artifact is simulated time — no wall-clock section
    — so two same-seed runs produce byte-identical files.  The scenarios
    are self-contained sims, so ``workers > 1`` fans them across
    processes via :func:`~repro.sim.shard.run_parallel_jobs`; results
    come back in job order, so the artifact stays byte-identical for any
    worker count.
    """
    from repro.sim.shard import run_parallel_jobs

    session_ms = 8_000.0 if smoke else 30_000.0
    fleet_ms = 2_500.0 if smoke else 8_000.0
    session, faulted, fleet = run_parallel_jobs(
        [
            (run_slo_session, (session_ms, seed)),
            (run_slo_faulted, (session_ms, seed)),
            (run_slo_fleet, (fleet_ms, seed)),
        ],
        workers=workers,
    )
    bench: Dict[str, Any] = {
        "seed": seed,
        "smoke": smoke,
        "session": session,
        "faulted_session": faulted,
        "fleet": fleet,
    }
    blob = json.dumps(bench, sort_keys=True).encode()
    bench["digest"] = hashlib.sha256(blob).hexdigest()
    return {"schema": BENCH_SLO_SCHEMA, "deterministic": bench}


def validate_bench(bench: Any) -> List[str]:
    """Schema + semantic gate for BENCH_SLO.json; empty list == valid."""
    problems: List[str] = []
    if not isinstance(bench, dict):
        return [f"top level must be an object, got {type(bench).__name__}"]
    if bench.get("schema") != BENCH_SLO_SCHEMA:
        problems.append(f"'schema' must be {BENCH_SLO_SCHEMA!r}")
    det = bench.get("deterministic")
    if not isinstance(det, dict):
        return problems + ["missing 'deterministic' section"]
    if not isinstance(det.get("digest"), str):
        problems.append("missing 'deterministic.digest'")
    for scenario, required in (
        ("session", REQUIRED_SESSION_SLOS),
        ("faulted_session", REQUIRED_SESSION_SLOS),
        ("fleet", REQUIRED_FLEET_SLOS),
    ):
        summary = det.get(scenario)
        if not isinstance(summary, dict):
            problems.append(f"missing scenario {scenario!r}")
            continue
        slos = summary.get("telemetry", {}).get("slos", {})
        for name in required:
            if name not in slos:
                problems.append(f"{scenario}: SLO {name!r} not evaluated")
        if not summary.get("telemetry", {}).get("windows_evaluated"):
            problems.append(f"{scenario}: no windows evaluated")
    faulted = det.get("faulted_session", {})
    if isinstance(faulted, dict):
        telemetry = faulted.get("telemetry", {})
        frame_slo = telemetry.get("slos", {}).get("frame_p99_latency", {})
        if not frame_slo.get("bad"):
            problems.append(
                "faulted_session: loss burst produced no bad frame samples"
            )
        if not telemetry.get("alerts"):
            problems.append("faulted_session: loss burst raised no alerts")
    fleet = det.get("fleet", {})
    if isinstance(fleet, dict) and not fleet.get("rejected"):
        problems.append("fleet: overload wave produced no rejections")
    return problems


# -- the regression gate -----------------------------------------------------


def diff_against_baseline(
    current: Dict[str, Any], baseline: Dict[str, Any]
) -> Tuple[List[str], Optional[str]]:
    """Compare an artifact against the committed baseline.

    Returns ``(regressions, skip_reason)``; a non-``None`` skip reason
    means the artifacts are not comparable (seed or scale mismatch) and
    the gate should be skipped, not failed.
    """
    cur = current.get("deterministic", {})
    base = baseline.get("deterministic", {})
    if baseline.get("schema") != current.get("schema"):
        return [], "baseline schema differs — regenerate the baseline"
    if (cur.get("seed"), cur.get("smoke")) != (
        base.get("seed"), base.get("smoke")
    ):
        return [], (
            f"baseline is seed={base.get('seed')} smoke={base.get('smoke')}, "
            f"run is seed={cur.get('seed')} smoke={cur.get('smoke')} — "
            "not comparable"
        )
    regressions: List[str] = []
    for scenario in ("session", "faulted_session"):
        cur_p99 = cur.get(scenario, {}).get("frame_response", {}).get("p99")
        base_p99 = base.get(scenario, {}).get("frame_response", {}).get("p99")
        if cur_p99 is None or base_p99 is None:
            continue
        limit = base_p99 * (1.0 + P99_TOLERANCE) + P99_FLOOR_MS
        if cur_p99 > limit:
            regressions.append(
                f"{scenario}: frame p99 {cur_p99:.2f} ms exceeds baseline "
                f"{base_p99:.2f} ms by more than {P99_TOLERANCE:.0%}"
            )
    for scenario in ("session", "fleet"):
        cur_slos = cur.get(scenario, {}).get("telemetry", {}).get("slos", {})
        base_slos = base.get(scenario, {}).get("telemetry", {}).get("slos", {})
        for name in sorted(cur_slos):
            if name not in base_slos:
                continue
            cur_att = cur_slos[name].get("attainment", 1.0)
            base_att = base_slos[name].get("attainment", 1.0)
            if cur_att < base_att - ATTAINMENT_TOLERANCE:
                regressions.append(
                    f"{scenario}: SLO {name} attainment fell "
                    f"{base_att:.4f} -> {cur_att:.4f}"
                )
            if (
                cur_slos[name].get("state") == "breached"
                and base_slos[name].get("state") != "breached"
            ):
                regressions.append(
                    f"{scenario}: SLO {name} newly breached "
                    f"(was {base_slos[name].get('state')})"
                )
    return regressions, None


# -- output ------------------------------------------------------------------


def write_bench(path: str, bench: Dict[str, Any]) -> None:
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(bench, fh, indent=1, sort_keys=True)
        fh.write("\n")


def load_bench(path: str) -> Dict[str, Any]:
    with open(path, "r", encoding="utf-8") as fh:
        return json.load(fh)


def format_bench(bench: Dict[str, Any]) -> str:
    """The terminal SLO dashboard: one row per objective per scenario."""
    det = bench["deterministic"]
    lines = [
        f"{'scenario':<16} {'slo':<22} {'state':<9} {'attain':>7} "
        f"{'good':>6} {'bad':>5} {'burn_s':>7} {'burn_l':>7}"
    ]
    for scenario in ("session", "faulted_session", "fleet"):
        summary = det.get(scenario, {})
        telemetry = summary.get("telemetry", {})
        for name in sorted(telemetry.get("slos", {})):
            s = telemetry["slos"][name]
            lines.append(
                f"{scenario:<16} {name:<22} {s['state']:<9} "
                f"{s['attainment']:7.4f} {s['good']:6d} {s['bad']:5d} "
                f"{s['burn_short']:7.2f} {s['burn_long']:7.2f}"
            )
        alerts = telemetry.get("alerts", [])
        pages = sum(1 for a in alerts if a.get("severity") == "page")
        extra = ""
        if "dominant_stage" in summary:
            extra = f"   critical path: {summary['dominant_stage']}"
        lines.append(
            f"{scenario:<16} alerts: {len(alerts)} ({pages} page)"
            f"{extra}"
        )
    lines.append(f"digest: {det['digest'][:16]}…")
    return "\n".join(lines)
