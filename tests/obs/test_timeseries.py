"""Labeled time-series: window folding, aggregations, the bank."""

import pytest

from repro.obs.timeseries import TimeSeries, TimeSeriesBank, series_key


class TestSeriesKey:
    def test_no_labels_is_bare_name(self):
        assert series_key("fps") == "fps"
        assert series_key("fps", {}) == "fps"

    def test_labels_sorted_into_key(self):
        key = series_key("retx", {"transport": "uplink", "dir": "up"})
        assert key == "retx{dir=up,transport=uplink}"


class TestTimeSeries:
    def test_observations_fold_into_windows(self):
        ts = TimeSeries("lat", window_ms=1000.0, agg="mean")
        assert ts.record(0.0, 10.0) == 0
        assert ts.record(999.9, 30.0) == 0
        assert ts.record(1000.0, 5.0) == 1
        assert ts.value_at(0) == pytest.approx(20.0)
        assert ts.value_at(1) == pytest.approx(5.0)
        assert ts.value_at(2) is None
        assert ts.count_at(0) == 2
        assert ts.observations == 3

    @pytest.mark.parametrize(
        "agg,expected",
        [
            ("mean", 20.0),
            ("sum", 60.0),
            ("last", 45.0),
            ("max", 45.0),
            ("min", 5.0),
            ("count", 3.0),
        ],
    )
    def test_aggregations(self, agg, expected):
        ts = TimeSeries("x", window_ms=100.0, agg=agg)
        for v in (10.0, 5.0, 45.0):
            ts.record(50.0, v)
        assert ts.value_at(0) == pytest.approx(expected)

    def test_values_fills_gaps(self):
        ts = TimeSeries("fps", window_ms=1000.0, agg="count")
        ts.record(100.0)
        ts.record(3500.0)
        ts.record(3600.0)
        assert ts.last_window() == 3
        assert ts.values(fill=0.0) == [1.0, 0.0, 0.0, 2.0]
        assert ts.points() == [(0, 1.0), (3, 2.0)]

    def test_rejects_bad_construction(self):
        with pytest.raises(ValueError):
            TimeSeries("x", window_ms=0.0)
        with pytest.raises(ValueError):
            TimeSeries("x", agg="p99")
        with pytest.raises(ValueError):
            TimeSeries("x").record(-1.0, 1.0)

    def test_snapshot_is_deterministic(self):
        ts = TimeSeries("lat", window_ms=500.0, labels={"b": 1, "a": 2})
        ts.record(0.0, 3.33333)
        ts.record(600.0, 1.0)
        snap = ts.snapshot()
        assert list(snap["labels"]) == ["a", "b"]
        assert snap["points"] == [[0, 3.3333], [1, 1.0]]
        assert snap == ts.snapshot()


class TestTimeSeriesBank:
    def test_get_or_create_keyed_by_name_and_labels(self):
        bank = TimeSeriesBank(window_ms=1000.0)
        a = bank.series("retx", agg="count", transport="up")
        b = bank.series("retx", agg="count", transport="down")
        assert a is not b
        assert bank.series("retx", agg="count", transport="up") is a
        assert bank.get("retx", transport="down") is b
        assert bank.get("retx") is None

    def test_agg_mismatch_rejected(self):
        bank = TimeSeriesBank()
        bank.series("lat", agg="mean")
        with pytest.raises(ValueError):
            bank.series("lat", agg="max")

    def test_matching_returns_all_labeled_variants(self):
        bank = TimeSeriesBank()
        bank.series("retx", agg="count", transport="up")
        bank.series("retx", agg="count", transport="down")
        bank.series("other", agg="count")
        keys = [s.key for s in bank.matching("retx")]
        assert keys == ["retx{transport=down}", "retx{transport=up}"]

    def test_snapshot_sorted_by_key(self):
        bank = TimeSeriesBank()
        bank.series("z").record(0.0, 1.0)
        bank.series("a").record(0.0, 2.0)
        assert list(bank.snapshot()) == ["a", "z"]
