"""Video-encoder throughput model (§V-A, §VII-F)."""

import pytest

from repro.codec.video import VideoEncoderModel, X264_ARM, X264_X86


def test_arm_encoder_cannot_keep_up():
    """The paper's point: ~1 MP/s on ARM vs ~7 MP/s of generated frames."""
    assert not X264_ARM.keeps_up(640, 480, 25.0)
    assert X264_ARM.sustainable_fps(640, 480) < 5.0


def test_x86_encoder_keeps_up_at_its_cap():
    assert X264_X86.keeps_up(1280, 720, 30.0)


def test_onlive_cap_is_thirty_fps():
    """§VII-F: the platform's FPS is capped by the encoder settings."""
    assert X264_X86.sustainable_fps(1280, 720) == pytest.approx(30.0)


def test_encode_time_linear_in_pixels():
    t1 = X264_ARM.encode_time_ms(100_000)
    t2 = X264_ARM.encode_time_ms(200_000)
    assert t2 == pytest.approx(2 * t1)


def test_encoded_bytes_respects_ratio():
    model = VideoEncoderModel(name="t", throughput_mp_s=10.0,
                              compression_ratio=100.0)
    assert model.encoded_bytes(1000) == pytest.approx(30, abs=1)


def test_negative_pixels_rejected():
    with pytest.raises(ValueError):
        X264_ARM.encode_time_ms(-1)
