"""Fleet node: serving, priorities, crash stranding."""

import pytest

from repro.devices.profiles import DELL_M4600, NVIDIA_SHIELD
from repro.fleet import FleetConfig, FrameTask, STATE_PRIORITY


def frame(seq, priority=0.0, fill=50.0, session="s0"):
    return FrameTask(
        session_id=session, seq=seq, fill_megapixels=fill,
        commands_nominal=1000, width=1280, height=720,
        priority=priority, issued_at_ms=0.0,
    )


class TestServing:
    def test_serves_a_frame_and_reports_completion(self, make_fleet_node):
        sim, node, done = make_fleet_node()
        task = frame(0)
        node.submit(task)
        sim.run(until=1_000.0)
        assert task.completed
        assert done == [task]
        assert node.stats.frames_served == 1
        assert node.queued_workload_mp == 0.0

    def test_service_time_scales_with_fill(self, make_fleet_node):
        sim, node, _ = make_fleet_node()
        light = node.service_time_ms(frame(0, fill=10.0))
        heavy = node.service_time_ms(frame(1, fill=100.0))
        assert heavy > light

    def test_x86_charges_es_translation(self, make_fleet_node):
        _, shield, _ = make_fleet_node(NVIDIA_SHIELD)
        _, desktop, _ = make_fleet_node(DELL_M4600)
        task = frame(0, fill=0.0)
        task.kind = "state"       # CPU-only path: no render, no encode
        # Same command count; only the x86 box pays the GL-to-ES shim.
        arm_cpu = shield.service_time_ms(task)
        x86_cpu = desktop.service_time_ms(task)
        cfg = FleetConfig()
        expected_extra = (
            task.commands_nominal * cfg.es_translate_us_per_command
            / 1000.0 / DELL_M4600.cpu.perf_index
        )
        base_ratio = shield.spec.cpu.perf_index / DELL_M4600.cpu.perf_index
        assert x86_cpu == pytest.approx(arm_cpu * base_ratio + expected_extra)

    def test_priority_order_action_overtakes_tolerant(self, make_fleet_node):
        sim, node, done = make_fleet_node()
        node.submit(frame(0, priority=2.0))
        sim.run(until=0.5)            # s0 is on the GPU
        # Queue behind it while it renders.
        node.submit(frame(1, priority=2.0, session="tolerant"))
        node.submit(frame(2, priority=0.0, session="action"))
        sim.run(until=5_000.0)
        assert [t.session_id for t in done] == ["s0", "action", "tolerant"]

    def test_state_replay_overtakes_everything(self, make_fleet_node):
        sim, node, done = make_fleet_node()
        node.submit(frame(0, priority=0.0))
        sim.run(until=0.5)            # s0 is on the GPU
        node.submit(frame(1, priority=0.0, session="later"))
        state = frame(2, priority=STATE_PRIORITY, session="migrant")
        state.kind = "state"
        node.submit(state)
        sim.run(until=5_000.0)
        assert [t.session_id for t in done] == ["s0", "migrant", "later"]
        assert state.completed            # served ahead of 'later'
        assert state.completed_at_ms < done[-1].completed_at_ms
        assert node.stats.state_replays == 1


class TestCrash:
    def test_submissions_to_a_dead_node_are_stranded(self, make_fleet_node):
        sim, node, done = make_fleet_node()
        node.fail()
        task = frame(0)
        node.submit(task)
        sim.run(until=2_000.0)
        assert not task.completed
        assert node.strand_all() == [task]

    def test_strand_all_collects_queue_and_current(self, make_fleet_node):
        sim, node, _ = make_fleet_node()
        first, second = frame(0), frame(1)
        node.submit(first)
        node.submit(second)
        sim.run(until=0.5)            # first is on the GPU, second queued
        node.fail()
        stranded = node.strand_all()
        assert set(t.seq for t in stranded) == {0, 1}
        assert node.queued_workload_mp == 0.0

    def test_mid_render_frame_survives_until_detection(self, make_fleet_node):
        """The crash drops the in-flight frame into the stranded list even
        when its service period elapses before anyone calls strand_all."""
        sim, node, done = make_fleet_node()
        task = frame(0)
        node.submit(task)
        sim.run(until=0.5)
        node.fail()
        sim.run(until=5_000.0)        # busy period long over
        assert not task.completed
        assert done == []
        assert node.strand_all() == [task]

    def test_short_glitch_requeues_stranded_work_locally(self, make_fleet_node):
        sim, node, done = make_fleet_node()
        node.fail()
        task = frame(0)
        node.submit(task)
        sim.run(until=100.0)
        node.rejoin()
        sim.run(until=5_000.0)
        assert task.completed
        assert done == [task]

    def test_migrated_task_is_not_double_served(self, make_fleet_node):
        sim, node, done = make_fleet_node()
        task = frame(0)
        node.submit(task)
        sim.run(until=0.5)
        node.fail()
        # Controller rescues and re-homes the task elsewhere.
        stranded = node.strand_all()
        assert stranded == [task]
        task.assigned_node = "elsewhere"
        node.rejoin()
        sim.run(until=5_000.0)
        assert not task.completed     # this node never finished it
        assert done == []
