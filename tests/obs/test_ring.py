"""RingTracer: bounded storage, per-category indexes, Tracer compatibility."""

import pytest

from repro.obs.ring import RingTracer
from repro.sim.kernel import Simulator


def fill(tracer, n, category="cat"):
    for i in range(n):
        tracer.record(float(i), category, "evt", i=i)


class TestRingEviction:
    def test_under_capacity_keeps_everything(self):
        t = RingTracer(capacity=10)
        fill(t, 7)
        assert t.count() == 7
        assert t.dropped == 0

    def test_over_capacity_evicts_oldest_first(self):
        t = RingTracer(capacity=5)
        fill(t, 8)
        assert t.count() == 5
        assert t.dropped == 3
        # Survivors are the newest, still in insertion order.
        assert [r.data["i"] for r in t.records] == [3, 4, 5, 6, 7]

    def test_eviction_updates_category_index(self):
        t = RingTracer(capacity=4)
        for i in range(4):
            t.record(float(i), "a" if i % 2 == 0 else "b", "evt", i=i)
        # Two more "a" records evict i=0 ("a") then i=1 ("b").
        t.record(4.0, "a", "evt", i=4)
        t.record(5.0, "a", "evt", i=5)
        assert [r.data["i"] for r in t.query("a")] == [2, 4, 5]
        assert [r.data["i"] for r in t.query("b")] == [3]

    def test_category_index_removed_when_emptied(self):
        t = RingTracer(capacity=2)
        t.record(0.0, "solo", "evt")
        t.record(1.0, "other", "evt")
        t.record(2.0, "other", "evt")   # evicts the only "solo" record
        assert "solo" not in t.categories()
        assert t.query("solo") == []
        assert t.count("solo") == 0

    def test_global_and_category_counts_agree(self):
        t = RingTracer(capacity=16)
        for i in range(40):
            t.record(float(i), f"c{i % 3}", "evt")
        assert sum(t.count(c) for c in t.categories()) == t.count() == 16

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            RingTracer(capacity=0)


class TestTracerCompatibility:
    def test_query_by_category_and_event(self):
        t = RingTracer()
        t.record(0.0, "net", "send", seq=1)
        t.record(1.0, "net", "recv", seq=1)
        t.record(2.0, "gpu", "submit")
        assert len(t.query("net")) == 2
        assert len(t.query("net", "send")) == 1
        assert len(t.query(event="send")) == 1
        assert t.count("gpu") == 1

    def test_category_filter_via_wants(self):
        t = RingTracer(categories=["net"])
        assert t.wants("net")
        assert not t.wants("gpu")
        t.record(0.0, "gpu", "submit")
        assert t.count() == 0

    def test_disabled_records_nothing(self):
        t = RingTracer()
        t.enabled = False
        t.record(0.0, "net", "send")
        assert t.count() == 0

    def test_clear_resets_dropped(self):
        t = RingTracer(capacity=2)
        fill(t, 5)
        t.clear()
        assert t.count() == 0
        assert t.dropped == 0
        assert t.categories() == []

    def test_simulator_defaults_to_ring_tracer(self):
        sim = Simulator(seed=1)
        assert isinstance(sim.tracer, RingTracer)
        sim.tracer.record(sim.now, "boot", "hello")
        assert sim.tracer.count("boot") == 1


class TestCapacityShrink:
    """Eviction must drain, not step: the capacity-shrink regression.

    The old single-step eviction (``if`` instead of ``while``) held the
    ring invariant only while capacity never moved.  After a shrink —
    the flight recorder resizes the ring to guarantee its pre-trigger
    tail — one record() call must drain every over-capacity record and
    reconcile the per-category indexes, or evicted-due records stay
    queryable and counts disagree with capacity.
    """

    def test_record_after_shrink_drains_to_capacity(self):
        t = RingTracer(capacity=8)
        fill(t, 8)
        t.capacity = 3          # shrink without resize(): next record drains
        t.record(8.0, "cat", "evt", i=8)
        assert t.count() == 3
        assert [r.data["i"] for r in t.records] == [6, 7, 8]
        assert t.dropped == 6

    def test_category_index_consistent_after_shrink(self):
        t = RingTracer(capacity=8)
        for i in range(8):
            t.record(float(i), f"c{i % 2}", "evt", i=i)
        t.capacity = 3
        t.record(8.0, "c0", "evt", i=8)
        # Index totals must agree with the ring — no stale entries.
        assert sum(t.count(c) for c in t.categories()) == t.count() == 3
        for category in t.categories():
            for rec in t.query(category):
                assert rec in t.records

    def test_resize_evicts_immediately(self):
        t = RingTracer(capacity=8)
        fill(t, 8)
        t.resize(3)
        assert t.capacity == 3
        assert t.count() == 3
        assert [r.data["i"] for r in t.records] == [5, 6, 7]

    def test_resize_grow_keeps_records(self):
        t = RingTracer(capacity=4)
        fill(t, 4)
        t.resize(16)
        assert t.count() == 4
        assert t.dropped == 0

    def test_resize_invalid(self):
        with pytest.raises(ValueError):
            RingTracer().resize(0)


class TestTraceIndex:
    def test_query_trace_returns_stamped_records(self):
        t = RingTracer()
        t.record(0.0, "net", "send", trace_id="aa")
        t.record(1.0, "net", "send", trace_id="bb")
        t.record(2.0, "net", "recv", trace_id="aa")
        assert [r.time for r in t.query_trace("aa")] == [0.0, 2.0]
        assert t.query_trace("missing") == []

    def test_trace_index_reconciled_on_eviction(self):
        t = RingTracer(capacity=2)
        t.record(0.0, "net", "send", trace_id="aa")
        t.record(1.0, "net", "send", trace_id="aa")
        t.record(2.0, "net", "send", trace_id="bb")   # evicts the first "aa"
        assert [r.time for r in t.query_trace("aa")] == [1.0]
        t.record(3.0, "net", "send", trace_id="bb")   # evicts the last "aa"
        assert t.query_trace("aa") == []

    def test_tail_returns_newest_oldest_first(self):
        t = RingTracer(capacity=8)
        fill(t, 6)
        assert [r.data["i"] for r in t.tail(3)] == [3, 4, 5]
        assert t.tail(0) == []
        assert len(t.tail(100)) == 6
