"""Merging per-shard observability banks into one fleet-level view.

Each shard of a partitioned fleet run owns a private
:class:`~repro.obs.registry.MetricsRegistry` and
:class:`~repro.obs.spans.SpanRecorder`; after the run the coordinator
merges their pickled snapshots post-hoc.  Merging is deterministic —
inputs are consumed in shard order, keys come out sorted — so merged
banks participate in the same byte-identity digest checks the fleet
report does.

Merge semantics per instrument:

* **counters** — summed (totals are additive across shards);
* **gauges** — high-water merge (max), since a last-written value has no
  meaningful cross-shard "last";
* **histograms** — ``count``/``mean``/``min``/``max`` merge exactly;
  ``p50``/``p95``/``p99`` are count-weighted means of the per-shard
  percentiles, an approximation (exact percentile merge needs the raw
  reservoirs, which stay shard-local by design) clamped monotone into
  ``[min, max]`` — good enough for dashboards, clearly labeled by
  ``"approx": true``;
* **span banks** — per-category and per-name counts summed, along with
  totals and drops;
* **causal banks** — event/drop/trace counts summed and per-component
  counts folded, with contributing sessions listed in sorted
  ``(shard, session)`` order;
* **exemplars** — per-shard exemplar lists are re-offered into one
  bounded reservoir in sorted ``(shard, session)`` order, so the merged
  tail exemplars are invariant to the order shards came back in.
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping, Sequence

from repro.obs.causal import DEFAULT_EXEMPLARS, ExemplarReservoir
from repro.obs.spans import SpanRecorder


def merge_metric_snapshots(
    snapshots: Sequence[Mapping[str, Any]],
) -> Dict[str, Any]:
    """Fold per-shard ``MetricsRegistry.snapshot()`` dicts into one."""
    counters: Dict[str, float] = {}
    gauges: Dict[str, float] = {}
    merged_hists: Dict[str, List[Mapping[str, float]]] = {}
    for snap in snapshots:
        for key, value in snap.get("counters", {}).items():
            counters[key] = round(counters.get(key, 0.0) + value, 4)
        for key, value in snap.get("gauges", {}).items():
            gauges[key] = max(gauges.get(key, float("-inf")), value)
        for key, summary in snap.get("histograms", {}).items():
            merged_hists.setdefault(key, []).append(summary)
    histograms: Dict[str, Dict[str, Any]] = {}
    for key in sorted(merged_hists):
        histograms[key] = _merge_histogram_summaries(merged_hists[key])
    return {
        "counters": {k: counters[k] for k in sorted(counters)},
        "gauges": {k: round(gauges[k], 4) for k in sorted(gauges)},
        "histograms": histograms,
    }


def _merge_histogram_summaries(
    summaries: Sequence[Mapping[str, float]],
) -> Dict[str, Any]:
    populated = [s for s in summaries if s.get("count")]
    if not populated:
        return {
            "count": 0, "mean": 0.0, "p50": 0.0, "p95": 0.0, "p99": 0.0,
            "min": 0.0, "max": 0.0, "approx": True,
        }
    total = sum(s["count"] for s in populated)
    merged: Dict[str, Any] = {
        "count": int(total),
        "mean": round(
            sum(s["mean"] * s["count"] for s in populated) / total, 4
        ),
        "min": round(min(s["min"] for s in populated), 4),
        "max": round(max(s["max"] for s in populated), 4),
        "approx": True,
    }
    # Count-weighted means of per-shard percentiles can come out
    # non-monotone when a skewed shard reports a degenerate summary
    # (reservoir decimation can leave p99 below p50 on tiny counts).
    # Clamp each quantile into [previous quantile, true max] so the
    # merged summary always satisfies min <= p50 <= p95 <= p99 <= max;
    # min/max stay the exact extremes across shards.
    floor = merged["min"]
    for q in ("p50", "p95", "p99"):
        weighted = sum(s[q] * s["count"] for s in populated) / total
        clamped = min(max(weighted, floor), merged["max"])
        merged[q] = round(clamped, 4)
        floor = clamped
    return merged


def span_bank(recorder: SpanRecorder) -> Dict[str, Any]:
    """Compact, picklable summary of one shard's span ring.

    Raw spans stay shard-local (a 1000-session sweep emits millions);
    the bank carries what fleet-level reporting needs: how many spans of
    which kind, and how many the bounded ring had to drop.
    """
    by_category: Dict[str, int] = {}
    by_name: Dict[str, int] = {}
    for span in recorder.spans:
        by_category[span.category] = by_category.get(span.category, 0) + 1
        key = span.qualified_name
        by_name[key] = by_name.get(key, 0) + 1
    return {
        "total": len(recorder.spans),
        "dropped": recorder.dropped,
        "by_category": {k: by_category[k] for k in sorted(by_category)},
        "by_name": {k: by_name[k] for k in sorted(by_name)},
    }


def causal_bank(log: Any, shard: int = 0) -> Dict[str, Any]:
    """Compact, picklable summary of one shard's causal log.

    Raw causal events stay shard-local like raw spans do; the bank
    carries the counts fleet-level reporting needs plus the ``(shard,
    session)`` identity the deterministic merge sorts on.
    """
    summary = log.summary()
    return {
        "shard": shard,
        "session": summary["session"],
        "events": summary["events"],
        "dropped": summary["dropped"],
        "traces": summary["traces"],
        "by_component": summary["by_component"],
    }


def merge_causal_banks(banks: Sequence[Mapping[str, Any]]) -> Dict[str, Any]:
    """Fold per-shard causal banks, sorted by ``(shard, session)``."""
    ordered = sorted(
        banks, key=lambda b: (b.get("shard", 0), b.get("session", ""))
    )
    by_component: Dict[str, int] = {}
    events = dropped = traces = 0
    for bank in ordered:
        events += bank.get("events", 0)
        dropped += bank.get("dropped", 0)
        traces += bank.get("traces", 0)
        for component, count in bank.get("by_component", {}).items():
            by_component[component] = by_component.get(component, 0) + count
    return {
        "sessions": [
            [b.get("shard", 0), b.get("session", "")] for b in ordered
        ],
        "events": events,
        "dropped": dropped,
        "traces": traces,
        "by_component": {k: by_component[k] for k in sorted(by_component)},
    }


def merge_exemplars(
    parts: Sequence[Mapping[str, Any]], bound: int = DEFAULT_EXEMPLARS
) -> List[Dict[str, Any]]:
    """Merge per-shard exemplar lists into one bounded reservoir.

    Each part is ``{"shard": int, "session": str, "exemplars": [...]}``
    where the exemplar list is a :meth:`Histogram.exemplar_summary` /
    :meth:`ExemplarReservoir.exemplars` dump.  Parts are consumed in
    sorted ``(shard, session)`` order so the merged tail is a pure
    function of the per-shard contents — worker count and completion
    order cannot change which trace ids survive.
    """
    reservoir = ExemplarReservoir(bound=bound)
    ordered = sorted(
        parts, key=lambda p: (p.get("shard", 0), p.get("session", ""))
    )
    for part in ordered:
        for exemplar in part.get("exemplars", ()):
            reservoir.offer(exemplar["value"], exemplar["trace_id"])
    return reservoir.exemplars()


def merge_span_banks(banks: Sequence[Mapping[str, Any]]) -> Dict[str, Any]:
    """Sum per-shard span banks into the fleet-wide bank."""
    by_category: Dict[str, int] = {}
    by_name: Dict[str, int] = {}
    total = 0
    dropped = 0
    for bank in banks:
        total += bank.get("total", 0)
        dropped += bank.get("dropped", 0)
        for key, count in bank.get("by_category", {}).items():
            by_category[key] = by_category.get(key, 0) + count
        for key, count in bank.get("by_name", {}).items():
            by_name[key] = by_name.get(key, 0) + count
    return {
        "total": total,
        "dropped": dropped,
        "by_category": {k: by_category[k] for k in sorted(by_category)},
        "by_name": {k: by_name[k] for k in sorted(by_name)},
    }
