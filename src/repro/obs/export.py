"""Chrome trace-event export and schema validation.

``chrome_trace`` renders a :class:`~repro.obs.spans.SpanRecorder`'s spans
as the Trace Event Format consumed by Perfetto / ``chrome://tracing``:
completed spans become ``"X"`` (complete) events, zero-duration marks
become ``"I"`` (instant) events, and every distinct span track gets a
``thread_name`` metadata record so the viewer labels its rows.  Two
optional overlays ride along: telemetry time-series render as ``"C"``
(counter) tracks — one sample per window — and structured SLO/drift
alerts render as instant events on an ``alerts`` track, so Perfetto
shows burn-rate breaches inline with the frame spans that caused them.

Frames carrying a wire-propagated trace context can additionally render
as **flow events** (``"s"``/``"t"``/``"f"``): every span stamped with the
same ``trace_id`` is chained by an arrow in the Perfetto UI, so one tail
frame's path — intercept, encode, transmit, execute, return, present —
reads as a single connected flow across tracks (and, in the merged
multi-shard export, across processes).

``validate_chrome_trace`` is the schema gate CI runs: any drift in the
exported shape (missing keys, bad phase codes, negative durations, lost
categories) comes back as a list of human-readable problems.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterable, List, Optional, Sequence

from repro.obs.spans import Span, SpanRecorder

#: exported schema identifier, bumped on incompatible changes
TRACE_SCHEMA = "repro.chrome_trace/1"

#: keys every emitted trace event must carry
REQUIRED_EVENT_KEYS = ("name", "cat", "ph", "ts", "pid", "tid")

#: phase codes this exporter may legally produce ("s"/"t"/"f" = flow)
ALLOWED_PHASES = {"X", "I", "M", "C", "s", "t", "f"}

#: flow phases, which additionally require a binding "id"
FLOW_PHASES = {"s", "t", "f"}

#: tid carrying counter tracks (Perfetto keys counters by pid+name)
COUNTER_TID = 0


def _counter_events(series_source: Any, pid: int = 1) -> List[Dict[str, Any]]:
    """One ``"C"`` sample per populated window of each time-series.

    Accepts a :class:`~repro.obs.timeseries.TimeSeriesBank` or any
    iterable of :class:`~repro.obs.timeseries.TimeSeries`.
    """
    all_series = (
        series_source.all()
        if hasattr(series_source, "all")
        else list(series_source)
    )
    events: List[Dict[str, Any]] = []
    for series in all_series:
        for window, value in series.points():
            events.append(
                {
                    "name": series.key,
                    "cat": "telemetry",
                    "ph": "C",
                    "ts": round(series.window_start_ms(window) * 1000.0, 3),
                    "pid": pid,
                    "tid": COUNTER_TID,
                    "args": {series.name: round(value, 4)},
                }
            )
    return events


def _alert_events(alerts: Iterable[Any], pid: int = 1) -> List[Dict[str, Any]]:
    """Structured alerts as process-scoped instant events.

    The full alert payload rides in ``args`` — series + label selector +
    exemplar trace ids — so a breach in the Perfetto UI is
    self-describing and its exemplars can be chased into the flow arrows
    without leaving the viewer.
    """
    events: List[Dict[str, Any]] = []
    for alert in alerts:
        args: Dict[str, Any] = {
            "severity": alert.severity,
            "state": alert.state,
            "message": alert.message,
            "burn_short": round(getattr(alert, "burn_short", 0.0), 4),
            "burn_long": round(getattr(alert, "burn_long", 0.0), 4),
            "series": getattr(alert, "series", ""),
        }
        labels = dict(getattr(alert, "labels", ()) or ())
        if labels:
            args["labels"] = {k: labels[k] for k in sorted(labels, key=str)}
        exemplars = list(getattr(alert, "exemplars", ()) or ())
        if exemplars:
            args["exemplars"] = exemplars
        events.append(
            {
                "name": alert.source,
                "cat": "alert",
                "ph": "I",
                "s": "p",                         # process-scoped instant
                "ts": round(alert.at_ms * 1000.0, 3),
                "pid": pid,
                "tid": COUNTER_TID,
                "args": args,
            }
        )
    return events


def _span_events(
    spans: Iterable[Span], tid_for: Dict[str, int], pid: int = 1
) -> List[Dict[str, Any]]:
    events = []
    for span in spans:
        args: Dict[str, Any] = dict(span.args)
        if span.frame_id is not None:
            args["frame_id"] = span.frame_id
        if span.parent is not None:
            args["parent"] = span.parent
        event: Dict[str, Any] = {
            "name": span.name,
            "cat": span.category,
            "ts": round(span.start_ms * 1000.0, 3),   # microseconds
            "pid": pid,
            "tid": tid_for[span.track],
        }
        if span.instant:
            event["ph"] = "I"
            event["s"] = "t"                          # thread-scoped instant
        else:
            event["ph"] = "X"
            event["dur"] = round(span.duration_ms * 1000.0, 3)
        if args:
            event["args"] = args
        events.append(event)
    return events


def _flow_events(
    spans: Iterable[Span], tid_for: Dict[str, int], pid: int = 1
) -> List[Dict[str, Any]]:
    """Flow arrows chaining every span stamped with one ``trace_id``.

    The first span of a trace opens the flow (``"s"``), interior spans
    step it (``"t"``), the last closes it (``"f"`` binding to the
    enclosing slice) — Perfetto draws one arrow path per frame across
    client, codec, transport and server tracks.
    """
    by_trace: Dict[str, List[Span]] = {}
    for span in spans:
        trace_id = span.args.get("trace_id")
        if trace_id and not span.instant:
            by_trace.setdefault(str(trace_id), []).append(span)
    events: List[Dict[str, Any]] = []
    for trace_id in sorted(by_trace):
        chain = sorted(
            by_trace[trace_id],
            key=lambda s: (s.start_ms, s.end_ms, s.qualified_name),
        )
        if len(chain) < 2:
            continue
        for i, span in enumerate(chain):
            if i == 0:
                ph = "s"
            elif i == len(chain) - 1:
                ph = "f"
            else:
                ph = "t"
            event: Dict[str, Any] = {
                "name": "frame_flow",
                "cat": "trace",
                "ph": ph,
                "id": trace_id,
                "ts": round(span.start_ms * 1000.0, 3),
                "pid": pid,
                "tid": tid_for[span.track],
            }
            if ph == "f":
                event["bp"] = "e"         # bind finish to enclosing slice
            events.append(event)
    return events


def chrome_trace(
    spans: SpanRecorder,
    metadata: Optional[Dict[str, Any]] = None,
    series: Optional[Any] = None,
    alerts: Optional[Iterable[Any]] = None,
    pid: int = 1,
    process_name: Optional[str] = None,
    flows: bool = False,
) -> Dict[str, Any]:
    """Render the recorder's spans as a Chrome trace-event JSON object.

    ``series`` (a ``TimeSeriesBank`` or iterable of ``TimeSeries``) adds
    counter tracks; ``alerts`` (``repro.obs.slo.Alert`` objects) adds
    instant alert events.  ``pid``/``process_name`` place the whole
    export under one Perfetto process (the merged multi-shard export
    maps each ``(shard, session)`` to its own pid); ``flows=True`` adds
    trace-id flow arrows (off by default — untraced exports keep their
    exact historical bytes).
    """
    tracks = sorted({s.track for s in spans.spans})
    tid_for = {track: i + 1 for i, track in enumerate(tracks)}
    events: List[Dict[str, Any]] = []
    if process_name is not None:
        events.append(
            {
                "name": "process_name",
                "cat": "__metadata",
                "ph": "M",
                "ts": 0,
                "pid": pid,
                "tid": 0,
                "args": {"name": process_name},
            }
        )
    events.extend(
        {
            "name": "thread_name",
            "cat": "__metadata",
            "ph": "M",
            "ts": 0,
            "pid": pid,
            "tid": tid,
            "args": {"name": track},
        }
        for track, tid in sorted(tid_for.items(), key=lambda kv: kv[1])
    )
    timed = _span_events(spans.spans, tid_for, pid=pid)
    if flows:
        timed.extend(_flow_events(spans.spans, tid_for, pid=pid))
    if series is not None:
        timed.extend(_counter_events(series, pid=pid))
    if alerts is not None:
        timed.extend(_alert_events(alerts, pid=pid))
    events.extend(
        sorted(timed, key=lambda e: (e["ts"], e["tid"], e["name"]))
    )
    other: Dict[str, Any] = {
        "schema": TRACE_SCHEMA,
        "span_count": len(spans),
        "dropped_spans": spans.dropped,
    }
    if metadata:
        other.update(metadata)
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": other,
    }


def merged_chrome_trace(
    parts: Sequence[Dict[str, Any]],
    metadata: Optional[Dict[str, Any]] = None,
    flows: bool = False,
) -> Dict[str, Any]:
    """One Chrome trace spanning many ``(shard, session)`` recorders.

    Each part is ``{"shard": int, "session": str, "spans": SpanRecorder}``
    (plus optional ``"series"``/``"alerts"``).  Parts are assigned pids
    in sorted ``(shard, session)`` order — the merged export is
    deterministic regardless of the order shards came back in — and each
    becomes its own named Perfetto process, so cross-session flows and
    alerts read side by side.
    """
    ordered = sorted(parts, key=lambda p: (p["shard"], p["session"]))
    events: List[Dict[str, Any]] = []
    span_count = 0
    dropped = 0
    for i, part in enumerate(ordered):
        sub = chrome_trace(
            part["spans"],
            series=part.get("series"),
            alerts=part.get("alerts"),
            pid=i + 1,
            process_name=f"shard{part['shard']}/{part['session']}",
            flows=flows,
        )
        events.extend(sub["traceEvents"])
        span_count += sub["otherData"]["span_count"]
        dropped += sub["otherData"]["dropped_spans"]
    other: Dict[str, Any] = {
        "schema": TRACE_SCHEMA,
        "span_count": span_count,
        "dropped_spans": dropped,
        "parts": [
            {"pid": i + 1, "shard": p["shard"], "session": p["session"]}
            for i, p in enumerate(ordered)
        ],
    }
    if metadata:
        other.update(metadata)
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": other,
    }


def trace_categories(trace: Dict[str, Any]) -> List[str]:
    """Distinct span categories present in a trace (metadata excluded)."""
    return sorted(
        {
            e.get("cat")
            for e in trace.get("traceEvents", ())
            if isinstance(e, dict) and e.get("ph") in ("X", "I")
        }
        - {None}
    )


def validate_chrome_trace(trace: Any) -> List[str]:
    """Schema gate: returns a list of problems (empty == valid)."""
    problems: List[str] = []
    if not isinstance(trace, dict):
        return [f"top level must be an object, got {type(trace).__name__}"]
    events = trace.get("traceEvents")
    if not isinstance(events, list):
        problems.append("missing or non-list 'traceEvents'")
        return problems
    if trace.get("displayTimeUnit") != "ms":
        problems.append("'displayTimeUnit' must be 'ms'")
    other = trace.get("otherData")
    if not isinstance(other, dict) or other.get("schema") != TRACE_SCHEMA:
        problems.append(f"'otherData.schema' must be {TRACE_SCHEMA!r}")
    if not events:
        problems.append("'traceEvents' is empty")
    for i, event in enumerate(events):
        if not isinstance(event, dict):
            problems.append(f"event {i}: not an object")
            continue
        missing = [k for k in REQUIRED_EVENT_KEYS if k not in event]
        if missing:
            problems.append(f"event {i}: missing keys {missing}")
            continue
        ph = event["ph"]
        if ph not in ALLOWED_PHASES:
            problems.append(f"event {i}: unknown phase {ph!r}")
        if ph in FLOW_PHASES and not event.get("id"):
            problems.append(f"event {i}: flow event needs a binding 'id'")
        if not isinstance(event["ts"], (int, float)) or event["ts"] < 0:
            problems.append(f"event {i}: bad ts {event['ts']!r}")
        if ph == "X":
            dur = event.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                problems.append(f"event {i}: 'X' event needs dur >= 0")
        if ph == "C":
            args = event.get("args")
            if not isinstance(args, dict) or not args or not all(
                isinstance(v, (int, float)) for v in args.values()
            ):
                problems.append(
                    f"event {i}: 'C' event needs numeric args values"
                )
        if "args" in event and not isinstance(event["args"], dict):
            problems.append(f"event {i}: args must be an object")
    return problems


def write_chrome_trace(
    path: str,
    spans: SpanRecorder,
    metadata: Optional[Dict[str, Any]] = None,
    series: Optional[Any] = None,
    alerts: Optional[Iterable[Any]] = None,
    flows: bool = False,
) -> Dict[str, Any]:
    """Export, validate, and write a trace file; returns the trace object.

    Raises ``ValueError`` on schema drift so callers (the CLI smoke gate)
    fail loudly instead of uploading a broken artifact.
    """
    trace = chrome_trace(
        spans, metadata=metadata, series=series, alerts=alerts, flows=flows
    )
    problems = validate_chrome_trace(trace)
    if problems:
        raise ValueError(
            "chrome trace schema drift: " + "; ".join(problems[:5])
        )
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(trace, fh, indent=1, sort_keys=True)
        fh.write("\n")
    return trace
