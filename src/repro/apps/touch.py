"""Touch-event generation (the MonkeyRunner stand-in).

The paper drives repeatable sessions with scripted input; here a seeded
burst process plays the same role: quiet stretches punctuated by input
bursts whose rate and duration are genre parameters.  Touch timing is the
*cause* that leads the traffic surge by a beat — the signal the ARMAX
exogenous input exploits (§V-B attribute 1, read from /proc/interrupts on
the real system).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Generator, List, Optional

from repro.apps.base import ApplicationSpec
from repro.sim.kernel import Simulator
from repro.sim.random import RandomStream


@dataclass(frozen=True)
class TouchEvent:
    time_ms: float
    x: float
    y: float
    strength: float = 1.0


class TouchGenerator:
    """A simulator process emitting bursts of touch events."""

    def __init__(
        self,
        sim: Simulator,
        spec: ApplicationSpec,
        on_touch: Optional[Callable[[TouchEvent], None]] = None,
        rng: Optional[RandomStream] = None,
    ):
        self.sim = sim
        self.spec = spec
        self.on_touch = on_touch
        self.rng = rng or sim.stream(f"touch.{spec.short_name}")
        self.events: List[TouchEvent] = []
        self._proc = sim.spawn(self._run(), name=f"touch.{spec.short_name}")

    def _run(self) -> Generator:
        spec = self.spec
        while True:
            # Quiet gap until the next burst (exponential around the mean).
            gap_ms = self.rng.exponential(spec.touch_burst_interval_s * 1000.0)
            yield max(50.0, gap_ms)
            # Burst: touches at the in-burst rate for the burst duration.
            duration_ms = max(
                100.0,
                self.rng.normal(
                    spec.touch_burst_duration_s * 1000.0,
                    spec.touch_burst_duration_s * 200.0,
                ),
            )
            burst_end = self.sim.now + duration_ms
            period_ms = 1000.0 / spec.touch_rate_in_burst_hz
            while self.sim.now < burst_end:
                event = TouchEvent(
                    time_ms=self.sim.now,
                    x=self.rng.uniform(0.0, 1.0),
                    y=self.rng.uniform(0.0, 1.0),
                    strength=self.rng.uniform(0.6, 1.0),
                )
                self.events.append(event)
                if self.on_touch is not None:
                    self.on_touch(event)
                yield max(10.0, self.rng.normal(period_ms, period_ms * 0.2))

    def count_in_window(self, start_ms: float, end_ms: float) -> int:
        """Touches observed in [start, end) — the /proc/interrupts signal."""
        return sum(1 for e in self.events if start_ms <= e.time_ms < end_ms)
