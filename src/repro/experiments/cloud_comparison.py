"""Experiment X1: comparison with cloud-based solutions (paper §VII-F).

The paper measures OnLive at a 10 Mbps connection: streams capped at
30 FPS by the platform's video-encoder settings, with an average response
time around 150 ms — roughly five times GBooster's — because every input
crosses the Internet before its effect renders.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.apps.base import ApplicationSpec
from repro.apps.games import GAMES, GTA_SAN_ANDREAS
from repro.baselines.cloud import CloudGamingModel, CloudSessionResult
from repro.core.session import run_offload_session
from repro.devices.profiles import DeviceSpec, LG_NEXUS_5
from repro.sim.random import RandomStream


@dataclass
class CloudComparisonResult:
    cloud_median_fps: float
    cloud_response_ms: float
    gbooster_median_fps: float
    gbooster_response_ms: float

    @property
    def response_ratio(self) -> float:
        """Cloud response over GBooster's (the paper reports ~5x)."""
        if self.gbooster_response_ms <= 0:
            return float("inf")
        return self.cloud_response_ms / self.gbooster_response_ms


def run_cloud_comparison(
    app: ApplicationSpec = GTA_SAN_ANDREAS,
    user_device: DeviceSpec = LG_NEXUS_5,
    duration_ms: float = 120_000.0,
    seed: int = 0,
    cloud: Optional[CloudGamingModel] = None,
) -> CloudComparisonResult:
    cloud = cloud or CloudGamingModel()
    cloud_result = cloud.simulate_session(
        app, duration_s=duration_ms / 1000.0,
        rng=RandomStream(seed, "cloud.session"),
    )
    gbooster = run_offload_session(
        app, user_device, duration_ms=duration_ms, seed=seed
    )
    return CloudComparisonResult(
        cloud_median_fps=cloud_result.median_fps,
        cloud_response_ms=cloud_result.mean_response_ms,
        gbooster_median_fps=gbooster.fps.median_fps,
        gbooster_response_ms=gbooster.response_time_ms,
    )


def run_cloud_platform_average(
    duration_s: float = 120.0, seed: int = 0
) -> CloudSessionResult:
    """The paper tests ten titles on the platform and reports averages;
    we average the model over our game roster."""
    cloud = CloudGamingModel()
    fps: List[float] = []
    resp: List[float] = []
    kbps: List[float] = []
    for idx, app in enumerate(GAMES.values()):
        result = cloud.simulate_session(
            app, duration_s=duration_s,
            rng=RandomStream(seed + idx, f"cloud.{app.short_name}"),
        )
        fps.append(result.median_fps)
        resp.append(result.mean_response_ms)
        kbps.append(result.stream_kbps)
    n = len(fps)
    return CloudSessionResult(
        median_fps=sum(fps) / n,
        mean_response_ms=sum(resp) / n,
        stream_kbps=sum(kbps) / n,
        fps_series=[],
        response_series_ms=[],
    )
