"""FN/FP outcome accounting for threshold forecasts."""

import pytest

from repro.predict.evaluation import (
    PredictionOutcome,
    evaluate_threshold_prediction,
)


class OracleForecaster:
    """Sees the future: should make no errors."""

    def __init__(self, series, horizon):
        self.series = series
        self.horizon = horizon
        self.t = -1

    def observe(self, t, y):
        self.t = t

    def forecast(self, t):
        return list(
            self.series[self.t + 1: self.t + 1 + self.horizon]
        )


class ConstantForecaster:
    def __init__(self, value, horizon):
        self.value = value
        self.horizon = horizon

    def observe(self, t, y):
        pass

    def forecast(self, t):
        return [self.value] * self.horizon


def step_series():
    return [1.0] * 100 + [20.0] * 20 + [1.0] * 100


def test_oracle_has_no_errors():
    series = step_series()
    oracle = OracleForecaster(series, horizon=5)
    outcome = evaluate_threshold_prediction(
        series, 10.0, oracle.forecast, oracle.observe, horizon=5, warmup=10,
        onsets_only=False,
    )
    assert outcome.false_negatives == 0
    assert outcome.false_positives == 0
    assert outcome.true_positives > 0
    assert outcome.true_negatives > 0


def test_always_low_forecaster_all_false_negatives():
    series = step_series()
    model = ConstantForecaster(0.0, horizon=5)
    outcome = evaluate_threshold_prediction(
        series, 10.0, model.forecast, model.observe, horizon=5, warmup=10,
        onsets_only=False,
    )
    assert outcome.fn_rate == 1.0
    assert outcome.false_positives == 0


def test_always_high_forecaster_all_false_positives():
    series = step_series()
    model = ConstantForecaster(100.0, horizon=5)
    outcome = evaluate_threshold_prediction(
        series, 10.0, model.forecast, model.observe, horizon=5, warmup=10,
        onsets_only=False,
    )
    assert outcome.fp_rate == 1.0
    assert outcome.false_negatives == 0


def test_onsets_only_skips_epochs_already_surging():
    series = step_series()
    oracle = OracleForecaster(series, horizon=5)
    all_epochs = evaluate_threshold_prediction(
        series, 10.0, oracle.forecast, oracle.observe, horizon=5, warmup=10,
        onsets_only=False,
    )
    oracle2 = OracleForecaster(series, horizon=5)
    onsets = evaluate_threshold_prediction(
        series, 10.0, oracle2.forecast, oracle2.observe, horizon=5, warmup=10,
        onsets_only=True,
    )
    assert onsets.evaluated < all_epochs.evaluated
    # Onset epochs: the 5 epochs whose horizon reaches the step.
    assert onsets.true_positives == 5


def test_rates_with_no_positives_are_zero():
    outcome = PredictionOutcome(true_negatives=10)
    assert outcome.fn_rate == 0.0
    assert outcome.fp_rate == 0.0
    assert outcome.precision == 0.0


def test_horizon_validation():
    with pytest.raises(ValueError):
        evaluate_threshold_prediction(
            [1.0], 1.0, lambda t: [], lambda t, y: None, horizon=0
        )


def test_short_forecast_rejected():
    series = [1.0] * 50
    with pytest.raises(ValueError):
        evaluate_threshold_prediction(
            series, 10.0,
            lambda t: [0.0],         # shorter than the horizon
            lambda t, y: None,
            horizon=3, warmup=5,
        )


def test_epochs_near_trace_end_not_scored():
    series = [1.0] * 30
    calls = []

    def forecast(t):
        calls.append(t)
        return [0.0] * 5

    evaluate_threshold_prediction(
        series, 10.0, forecast, lambda t, y: None, horizon=5, warmup=10,
        onsets_only=False,
    )
    assert max(calls) <= 24  # t + horizon < len(series)
