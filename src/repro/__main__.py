"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``quickstart``      — local vs GBooster for one game (default G1/Nexus 5)
* ``fig5``            — the acceleration matrix
* ``fig6``            — the energy matrix
* ``fig7``            — the multi-device sweep
* ``fig1``            — the thermal trace
* ``prediction``      — ARMA vs ARMAX rates + AIC selection
* ``multiuser``       — §VIII FCFS vs priority sharing
* ``adaptive``        — discovery + cloud-fallback demo
* ``chaos``           — fault-injection sweep (loss bursts, outages, crashes)
* ``fleet``           — fleet-scaling sweep (sessions over a device pool)
* ``profile``         — pipeline-stage percentiles + hot-path wall-clock
                        benches; writes BENCH_PIPELINE.json and a Chrome
                        trace (BENCH_TRACE.json)
* ``fuzz``            — seeded property fuzzing over codecs, caches,
                        transports, chaos sessions and fleet arrivals;
                        shrinks failures to minimal reproductions
* ``slo``             — telemetry-armed scenarios (clean session, loss
                        burst, fleet overload) with burn-rate SLO
                        evaluation; writes BENCH_SLO.json and diffs it
                        against the committed baseline
* ``replay``          — record-once / replay-many bench: a cold session
                        records intervals into the fleet store, a warm
                        session is delta-served from it; writes
                        BENCH_REPLAY.json and diffs it against the
                        committed baseline
* ``capacity``        — capacity-planning sweep: fleet sizes × arrival
                        curves × genre mixes reduced to SLO-attainment
                        frontier curves; writes BENCH_CAPACITY.json and
                        diffs it against the committed baseline
* ``planner``         — auto-boost planner bench: genre-mix matrix where
                        every static policy loses to probe-and-commit,
                        measured fusion byte reduction, and a drift-
                        triggered replan drill; writes BENCH_PLANNER.json
                        and diffs it against the committed baseline

Each prints the same rows the corresponding benchmark asserts on.
"""

from __future__ import annotations

import argparse
import sys


def _cmd_quickstart(args: argparse.Namespace) -> None:
    from repro import run_local_session, run_offload_session
    from repro.apps.games import GAMES
    from repro.devices.profiles import USER_DEVICES

    app = GAMES[args.game]
    device = USER_DEVICES[args.device]
    local = run_local_session(app, device, duration_ms=args.duration * 1000.0)
    boosted = run_offload_session(app, device,
                                  duration_ms=args.duration * 1000.0)
    print(f"{app.name} on {device.name} ({args.duration:.0f}s)")
    print(f"  local   : {local.fps}")
    print(f"  gbooster: {boosted.fps}")
    print(f"  energy  : {boosted.energy.mean_power_w:.2f} W vs "
          f"{local.energy.mean_power_w:.2f} W "
          f"({boosted.energy.mean_power_w / local.energy.mean_power_w:.0%})")


def _cmd_fig5(args: argparse.Namespace) -> None:
    from repro.experiments.acceleration import format_rows, run_figure5

    rows = run_figure5(duration_ms=args.duration * 1000.0)
    print(format_rows(rows))


def _cmd_fig6(args: argparse.Namespace) -> None:
    from repro.devices.profiles import LG_NEXUS_5
    from repro.experiments.energy import format_rows, run_figure6

    rows = run_figure6(duration_ms=args.duration * 1000.0,
                       devices=[LG_NEXUS_5])
    print(format_rows(rows))


def _cmd_fig7(args: argparse.Namespace) -> None:
    from repro.experiments.multidevice import format_points, run_figure7

    points = run_figure7(duration_ms=args.duration * 1000.0)
    print(format_points(points))


def _cmd_fig1(args: argparse.Namespace) -> None:
    from repro.experiments.thermal import run_figure1

    result = run_figure1()
    for t, freq, temp in result.samples[::120]:
        print(f"t={t/60.0:5.1f} min  freq={freq:6.0f} MHz  temp={temp:5.1f} C")
    print(f"throttled at {result.throttle_time_s / 60.0:.1f} min "
          "(paper: ~10 min)")


def _cmd_prediction(args: argparse.Namespace) -> None:
    from repro.experiments.prediction import (
        ATTRIBUTE_NAMES,
        collect_traffic_trace,
        compare_arma_armax,
        format_comparison,
        run_aic_selection,
    )

    trace = collect_traffic_trace(duration_ms=args.duration * 1000.0)
    print(format_comparison(compare_arma_armax(trace)))
    ranking = run_aic_selection(trace)
    best = ranking[0][0]
    print("AIC winner:", [ATTRIBUTE_NAMES[i] for i in best])


def _cmd_multiuser(args: argparse.Namespace) -> None:
    from repro.apps.games import CANDY_CRUSH, MODERN_COMBAT
    from repro.core.multiuser import run_multiuser_experiment

    results = run_multiuser_experiment(
        MODERN_COMBAT, CANDY_CRUSH, duration_ms=args.duration * 1000.0
    )
    for policy, result in results.items():
        for user in result.users:
            print(f"{policy:9} {user.app.short_name} "
                  f"{user.fps.median_fps:5.1f} FPS "
                  f"{user.mean_response_ms:6.1f} ms")


def _cmd_adaptive(args: argparse.Namespace) -> None:
    from repro.apps.games import GTA_SAN_ANDREAS
    from repro.core.adaptive import run_adaptive_session
    from repro.devices.profiles import NVIDIA_SHIELD

    for label, ambient, internet in (
        ("devices nearby", [NVIDIA_SHIELD], True),
        ("empty LAN, Internet up", [], True),
        ("fully offline", [], False),
    ):
        outcome = run_adaptive_session(
            GTA_SAN_ANDREAS, ambient_devices=ambient,
            internet_available=internet,
            duration_ms=args.duration * 1000.0,
        )
        print(f"{label:24} -> {outcome.mode:9} "
              f"{outcome.median_fps:5.1f} FPS  "
              f"{outcome.response_time_ms:6.1f} ms")


def _cmd_chaos(args: argparse.Namespace) -> None:
    from repro.experiments.chaos import format_points, run_chaos_sweep

    points = run_chaos_sweep(
        loss_levels=args.loss,
        outage_levels_ms=[s * 1000.0 for s in args.outage],
        crash=not args.no_crash,
        duration_ms=args.duration * 1000.0,
    )
    print(format_points(points))
    if any(not p.survived for p in points):
        raise SystemExit("chaos sweep lost frames — robustness regression")


def _cmd_fleet(args: argparse.Namespace) -> None:
    from repro.experiments.fleet import (
        format_points,
        run_fleet_point,
        run_fleet_sweep,
    )

    if args.workers is not None:
        _cmd_fleet_sharded(args)
        return
    if args.smoke:
        # CI gate: one 64-session point on 8 devices, run twice.  Asserts
        # the subsystem's headline invariants rather than printing a table.
        point, _report = run_fleet_point(
            n_sessions=64, n_devices=8, duration_ms=10_000.0,
            seed=args.seed, crash=not args.no_crash,
        )
        again, _ = run_fleet_point(
            n_sessions=64, n_devices=8, duration_ms=10_000.0,
            seed=args.seed, crash=not args.no_crash,
        )
        print(format_points([point]))
        if point.digest != again.digest:
            raise SystemExit("fleet smoke: same seed, different report")
        if point.peak_concurrency < 64:
            raise SystemExit(
                f"fleet smoke: only {point.peak_concurrency} concurrent "
                "sessions (need 64)"
            )
        if not point.zero_loss:
            raise SystemExit(
                f"fleet smoke: {point.frames_lost} frames lost"
            )
        if not args.no_crash and point.crash_migrations < 1:
            raise SystemExit("fleet smoke: crash caused no migrations")
        action = point.tier_response_ms.get("action", 0.0)
        tolerant = point.tier_response_ms.get("tolerant", 0.0)
        if action >= tolerant:
            raise SystemExit(
                f"fleet smoke: action tier ({action:.1f} ms) not faster "
                f"than tolerant tier ({tolerant:.1f} ms)"
            )
        print("fleet smoke: ok")
        return
    points = run_fleet_sweep(
        session_counts=args.sessions,
        n_devices=args.devices,
        duration_ms=args.duration * 1000.0,
        seed=args.seed,
        crash=not args.no_crash,
    )
    print(format_points(points))
    if any(not p.zero_loss for p in points):
        raise SystemExit("fleet sweep lost frames — migration regression")


def _cmd_fleet_sharded(args: argparse.Namespace) -> None:
    """``fleet --workers N``: the sharded kernel path.

    The determinism contract asserted here is the one ``repro.sim.shard``
    guarantees: at fixed ``(seed, shards)``, the merged report digest is
    byte-identical for every worker count — parallelism is transport, not
    semantics.
    """
    from repro.experiments.fleet_shard import (
        format_sharded_points,
        run_sharded_fleet_point,
        run_sharded_fleet_sweep,
    )

    if args.smoke:
        # CI gate (fleet-parallel-smoke): one 64-session point at the
        # requested worker count, diffed byte-for-byte against the same
        # point pushed through a single worker.
        point, report = run_sharded_fleet_point(
            n_sessions=64, n_devices=8, duration_ms=10_000.0,
            seed=args.seed, shards=args.shards, workers=args.workers,
            crash=not args.no_crash, window_ms=args.window * 1000.0,
        )
        serial, serial_report = run_sharded_fleet_point(
            n_sessions=64, n_devices=8, duration_ms=10_000.0,
            seed=args.seed, shards=args.shards, workers=1,
            crash=not args.no_crash, window_ms=args.window * 1000.0,
        )
        print(format_sharded_points([point]))
        if point.digest != serial.digest:
            raise SystemExit(
                f"fleet parallel smoke: workers={args.workers} digest "
                f"{point.digest[:16]} != workers=1 digest "
                f"{serial.digest[:16]}"
            )
        if report["session_digests"] != serial_report["session_digests"]:
            raise SystemExit(
                "fleet parallel smoke: per-session frame digests differ "
                "across worker counts"
            )
        if point.finished < 64:
            raise SystemExit(
                f"fleet parallel smoke: only {point.finished} sessions "
                "finished (need 64)"
            )
        if not point.zero_loss:
            raise SystemExit(
                f"fleet parallel smoke: {point.frames_lost} frames lost"
            )
        if not args.no_crash and point.crash_migrations < 1:
            raise SystemExit(
                "fleet parallel smoke: crash caused no migrations"
            )
        print(
            f"fleet parallel smoke: ok "
            f"(shards={args.shards}, workers={args.workers}, "
            f"digest {point.digest[:16]})"
        )
        return
    points = run_sharded_fleet_sweep(
        session_counts=args.sessions,
        n_devices=args.devices,
        duration_ms=args.duration * 1000.0,
        seed=args.seed,
        shards=args.shards,
        workers=args.workers,
        crash=not args.no_crash,
        window_ms=args.window * 1000.0,
    )
    print(format_sharded_points(points))
    if any(not p.zero_loss for p in points):
        raise SystemExit("fleet sweep lost frames — migration regression")
    if any(p.invariant_violations for p in points):
        raise SystemExit("fleet sweep tripped runtime invariants")


def _cmd_profile(args: argparse.Namespace) -> None:
    from repro.experiments.profiling import (
        format_bench,
        run_profile,
        validate_bench,
        write_bench,
    )

    bench = run_profile(
        seed=args.seed, smoke=args.smoke, trace_path=args.trace_out,
    )
    problems = validate_bench(bench)
    write_bench(args.out, bench)
    print(format_bench(bench))
    print(f"wrote {args.out} and {args.trace_out}")
    if problems:
        raise SystemExit(
            "profile: benchmark schema drift:\n  " + "\n  ".join(problems)
        )
    if args.smoke:
        # CI gate: same seed must reproduce the simulated-time section.
        again = run_profile(
            seed=args.seed, smoke=True, trace_path=args.trace_out,
        )
        if (
            again["deterministic"]["digest"]
            != bench["deterministic"]["digest"]
        ):
            raise SystemExit("profile smoke: same seed, different digest")
        print("profile smoke: ok")


def _cmd_fuzz(args: argparse.Namespace) -> None:
    from repro.check.fuzz import format_summary, run_fuzz

    summary = run_fuzz(
        smoke=args.smoke, seed=args.seed, rounds=args.rounds,
        corpus_dir=args.corpus,
    )
    print(format_summary(summary))
    if summary["total_failures"]:
        raise SystemExit(
            f"fuzz: {summary['total_failures']} properties falsified"
        )
    if args.smoke:
        # CI gate: the whole suite must be deterministic under the seed.
        again = run_fuzz(smoke=True, seed=args.seed, rounds=args.rounds)
        if again["digest"] != summary["digest"]:
            raise SystemExit("fuzz smoke: same seed, different digest")
        print("fuzz smoke: ok")


def _cmd_slo(args: argparse.Namespace) -> None:
    import json
    import os

    from repro.experiments.slo import (
        diff_against_baseline,
        format_bench,
        load_bench,
        run_slo_bench,
        validate_bench,
        write_bench,
    )

    bench = run_slo_bench(
        seed=args.seed, smoke=args.smoke, workers=args.workers
    )
    problems = validate_bench(bench)
    write_bench(args.out, bench)
    print(format_bench(bench))
    print(f"wrote {args.out}")
    if problems:
        raise SystemExit(
            "slo: benchmark schema drift:\n  " + "\n  ".join(problems)
        )
    if args.smoke:
        # CI gate 1: the artifact must be a pure function of the seed —
        # not just the digest, the whole serialized file.  The rerun is
        # always serial, so with --workers > 1 this doubles as the
        # parallel-equals-serial byte-identity check.
        again = run_slo_bench(seed=args.seed, smoke=True, workers=1)
        if json.dumps(again, sort_keys=True) != json.dumps(
            bench, sort_keys=True
        ):
            raise SystemExit("slo smoke: same seed, different artifact")
    if args.baseline and os.path.exists(args.baseline):
        regressions, skip = diff_against_baseline(
            bench, load_bench(args.baseline)
        )
        if skip is not None:
            print(f"baseline diff skipped: {skip}")
        elif regressions:
            raise SystemExit(
                "slo: performance regression vs "
                f"{args.baseline}:\n  " + "\n  ".join(regressions)
            )
        else:
            print(f"baseline diff vs {args.baseline}: ok")
    elif args.baseline:
        print(f"no baseline at {args.baseline} — diff skipped")
    if args.smoke:
        print("slo smoke: ok")


def _cmd_replay(args: argparse.Namespace) -> None:
    import json
    import os

    from repro.experiments.replay import (
        diff_against_baseline,
        format_bench,
        load_bench,
        run_replay_bench,
        validate_bench,
        write_bench,
    )

    bench = run_replay_bench(seed=args.seed, smoke=args.smoke)
    problems = validate_bench(bench)
    write_bench(args.out, bench)
    print(format_bench(bench))
    print(f"wrote {args.out}")
    if problems:
        raise SystemExit(
            "replay: acceptance gate failed:\n  " + "\n  ".join(problems)
        )
    if args.smoke:
        # CI gate 1: the artifact must be a pure function of the seed —
        # the whole serialized file, not just the digest.
        again = run_replay_bench(seed=args.seed, smoke=True)
        if json.dumps(again, sort_keys=True) != json.dumps(
            bench, sort_keys=True
        ):
            raise SystemExit("replay smoke: same seed, different artifact")
    if args.baseline and os.path.exists(args.baseline):
        regressions, skip = diff_against_baseline(
            bench, load_bench(args.baseline)
        )
        if skip is not None:
            print(f"baseline diff skipped: {skip}")
        elif regressions:
            raise SystemExit(
                "replay: performance regression vs "
                f"{args.baseline}:\n  " + "\n  ".join(regressions)
            )
        else:
            print(f"baseline diff vs {args.baseline}: ok")
    elif args.baseline:
        print(f"no baseline at {args.baseline} — diff skipped")
    if args.smoke:
        print("replay smoke: ok")


def _cmd_capacity(args: argparse.Namespace) -> None:
    import json
    import os

    from repro.experiments.capacity import (
        diff_against_baseline,
        format_bench,
        load_bench,
        run_capacity_bench,
        validate_bench,
        write_bench,
    )

    bench = run_capacity_bench(
        seed=args.seed, smoke=args.smoke, workers=args.workers
    )
    problems = validate_bench(bench)
    write_bench(args.out, bench)
    print(format_bench(bench))
    print(f"wrote {args.out}")
    if problems:
        raise SystemExit(
            "capacity: acceptance gate failed:\n  " + "\n  ".join(problems)
        )
    if args.smoke:
        # CI gate 1: the artifact must be a pure function of the seed —
        # the whole serialized file, not just the digest.  The rerun is
        # always serial, so with --workers > 1 this doubles as the
        # parallel-equals-serial byte-identity check.
        again = run_capacity_bench(seed=args.seed, smoke=True, workers=1)
        if json.dumps(again, sort_keys=True) != json.dumps(
            bench, sort_keys=True
        ):
            raise SystemExit("capacity smoke: same seed, different artifact")
    if args.baseline and os.path.exists(args.baseline):
        regressions, skip = diff_against_baseline(
            bench, load_bench(args.baseline)
        )
        if skip is not None:
            print(f"baseline diff skipped: {skip}")
        elif regressions:
            raise SystemExit(
                "capacity: regression vs "
                f"{args.baseline}:\n  " + "\n  ".join(regressions)
            )
        else:
            print(f"baseline diff vs {args.baseline}: ok")
    elif args.baseline:
        print(f"no baseline at {args.baseline} — diff skipped")
    if args.smoke:
        print("capacity smoke: ok")


def _cmd_planner(args: argparse.Namespace) -> None:
    import json
    import os

    from repro.experiments.planner import (
        diff_against_baseline,
        format_bench,
        load_bench,
        run_planner_bench,
        validate_bench,
        write_bench,
    )

    bench = run_planner_bench(
        seed=args.seed, smoke=args.smoke, workers=args.workers
    )
    problems = validate_bench(bench)
    write_bench(args.out, bench)
    print(format_bench(bench))
    print(f"wrote {args.out}")
    if problems:
        raise SystemExit(
            "planner: acceptance gate failed:\n  " + "\n  ".join(problems)
        )
    if args.smoke:
        # CI gate 1: the artifact must be a pure function of the seed —
        # the whole serialized file, not just the digest.  The rerun is
        # always serial, so with --workers > 1 this doubles as the
        # parallel-equals-serial byte-identity check.
        again = run_planner_bench(seed=args.seed, smoke=True, workers=1)
        if json.dumps(again, sort_keys=True) != json.dumps(
            bench, sort_keys=True
        ):
            raise SystemExit("planner smoke: same seed, different artifact")
    if args.baseline and os.path.exists(args.baseline):
        regressions, skip = diff_against_baseline(
            bench, load_bench(args.baseline)
        )
        if skip is not None:
            print(f"baseline diff skipped: {skip}")
        elif regressions:
            raise SystemExit(
                "planner: regression vs "
                f"{args.baseline}:\n  " + "\n  ".join(regressions)
            )
        else:
            print(f"baseline diff vs {args.baseline}: ok")
    elif args.baseline:
        print(f"no baseline at {args.baseline} — diff skipped")
    if args.smoke:
        print("planner smoke: ok")


def _cmd_postmortem(args: argparse.Namespace) -> None:
    import json
    import os

    from repro.experiments.postmortem import (
        diff_against_baseline,
        format_bench,
        load_bench,
        run_postmortem_bench,
        validate_bench,
        write_bench,
        write_bundle,
        write_chrome,
    )

    bench = run_postmortem_bench(
        seed=args.seed, smoke=args.smoke, workers=args.workers
    )
    problems = validate_bench(bench)
    write_bench(args.out, bench)
    write_bundle(args.bundle_out, bench)
    write_chrome(args.trace_out, bench)
    print(format_bench(bench))
    print(f"wrote {args.out}, {args.bundle_out}, {args.trace_out}")
    if problems:
        raise SystemExit(
            "postmortem: acceptance gate failed:\n  " + "\n  ".join(problems)
        )
    if args.smoke:
        # CI gate 1: the artifact must be a pure function of the seed —
        # the whole serialized file, not just the digest.  The rerun is
        # always serial, so with --workers > 1 this doubles as the
        # parallel-equals-serial byte-identity check (the frozen flight
        # bundle rides inside the digest, so bundle bytes are gated too).
        again = run_postmortem_bench(seed=args.seed, smoke=True, workers=1)
        if json.dumps(again, sort_keys=True) != json.dumps(
            bench, sort_keys=True
        ):
            raise SystemExit("postmortem smoke: same seed, different artifact")
    if args.baseline and os.path.exists(args.baseline):
        regressions, skip = diff_against_baseline(
            bench, load_bench(args.baseline)
        )
        if skip is not None:
            print(f"baseline diff skipped: {skip}")
        elif regressions:
            raise SystemExit(
                "postmortem: regression vs "
                f"{args.baseline}:\n  " + "\n  ".join(regressions)
            )
        else:
            print(f"baseline diff vs {args.baseline}: ok")
    elif args.baseline:
        print(f"no baseline at {args.baseline} — diff skipped")
    if args.smoke:
        print("postmortem smoke: ok")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="GBooster reproduction experiment runner",
    )
    parser.add_argument(
        "--duration", type=float, default=60.0,
        help="simulated session length in seconds (default 60)",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    commands = {
        "quickstart": _cmd_quickstart,
        "fig5": _cmd_fig5,
        "fig6": _cmd_fig6,
        "fig7": _cmd_fig7,
        "fig1": _cmd_fig1,
        "prediction": _cmd_prediction,
        "multiuser": _cmd_multiuser,
        "adaptive": _cmd_adaptive,
        "chaos": _cmd_chaos,
        "fleet": _cmd_fleet,
        "profile": _cmd_profile,
        "fuzz": _cmd_fuzz,
        "slo": _cmd_slo,
        "replay": _cmd_replay,
        "capacity": _cmd_capacity,
        "planner": _cmd_planner,
        "postmortem": _cmd_postmortem,
    }
    for name in commands:
        p = sub.add_parser(name)
        if name == "quickstart":
            p.add_argument("--game", default="G1",
                           choices=["G1", "G2", "G3", "G4", "G5", "G6"])
            p.add_argument("--device", default="LG Nexus 5")
        if name == "chaos":
            p.add_argument("--loss", type=float, nargs="+",
                           default=[0.0, 0.3],
                           help="loss-burst probabilities to sweep")
            p.add_argument("--outage", type=float, nargs="+",
                           default=[0.0, 2.0],
                           help="hard-outage durations (seconds) to sweep")
            p.add_argument("--no-crash", action="store_true",
                           help="skip the mid-session node crash")
        if name == "fleet":
            p.add_argument("--sessions", type=int, nargs="+",
                           default=[16, 32, 64, 96],
                           help="session counts to sweep")
            p.add_argument("--devices", type=int, default=8,
                           help="service devices in the pool")
            p.add_argument("--seed", type=int, default=0)
            p.add_argument("--no-crash", action="store_true",
                           help="skip the mid-run device crash")
            p.add_argument("--smoke", action="store_true",
                           help="CI gate: assert fleet invariants on one "
                                "64-session point")
            p.add_argument("--workers", type=int, default=None,
                           help="fan shards across N worker processes "
                                "(enables the sharded kernel; digests are "
                                "byte-identical for any N at fixed "
                                "--shards)")
            p.add_argument("--shards", type=int, default=4,
                           help="kernel shards for --workers runs "
                                "(default 4; 1 reproduces the legacy "
                                "single-kernel digest)")
            p.add_argument("--window", type=float, default=1.0,
                           help="barrier window in simulated seconds for "
                                "--workers runs (default 1.0)")
        if name == "profile":
            p.add_argument("--seed", type=int, default=0)
            p.add_argument("--out", default="BENCH_PIPELINE.json",
                           help="benchmark artifact path")
            p.add_argument("--trace-out", default="BENCH_TRACE.json",
                           help="Chrome trace-event export path")
            p.add_argument("--smoke", action="store_true",
                           help="CI gate: short run + schema validation "
                                "+ same-seed digest check")
        if name == "slo":
            p.add_argument("--seed", type=int, default=0)
            p.add_argument("--out", default="BENCH_SLO.json",
                           help="SLO benchmark artifact path")
            p.add_argument("--baseline",
                           default="benchmarks/baselines/BENCH_SLO.json",
                           help="committed baseline to diff against "
                                "(empty string disables the gate)")
            p.add_argument("--smoke", action="store_true",
                           help="CI gate: short run + schema validation + "
                                "same-seed byte-identity + baseline diff")
            p.add_argument("--workers", type=int, default=1,
                           help="fan the independent scenarios across N "
                                "processes (artifact stays byte-identical "
                                "for any N)")
        if name == "replay":
            p.add_argument("--seed", type=int, default=0)
            p.add_argument("--out", default="BENCH_REPLAY.json",
                           help="replay benchmark artifact path")
            p.add_argument("--baseline",
                           default="benchmarks/baselines/BENCH_REPLAY.json",
                           help="committed baseline to diff against "
                                "(empty string disables the gate)")
            p.add_argument("--smoke", action="store_true",
                           help="CI gate: short run + acceptance gates + "
                                "same-seed byte-identity + baseline diff")
        if name == "capacity":
            p.add_argument("--seed", type=int, default=0)
            p.add_argument("--out", default="BENCH_CAPACITY.json",
                           help="capacity benchmark artifact path")
            p.add_argument("--baseline",
                           default="benchmarks/baselines/"
                                   "BENCH_CAPACITY.json",
                           help="committed baseline to diff against "
                                "(empty string disables the gate)")
            p.add_argument("--smoke", action="store_true",
                           help="CI gate: reduced grid + acceptance gates "
                                "+ same-seed byte-identity + baseline diff")
            p.add_argument("--workers", type=int, default=1,
                           help="fan grid points across N processes "
                                "(artifact stays byte-identical for any N)")
        if name == "planner":
            p.add_argument("--seed", type=int, default=0)
            p.add_argument("--out", default="BENCH_PLANNER.json",
                           help="planner benchmark artifact path")
            p.add_argument("--baseline",
                           default="benchmarks/baselines/"
                                   "BENCH_PLANNER.json",
                           help="committed baseline to diff against "
                                "(empty string disables the gate)")
            p.add_argument("--smoke", action="store_true",
                           help="CI gate: short probes + acceptance gates "
                                "+ same-seed byte-identity + baseline diff")
            p.add_argument("--workers", type=int, default=1,
                           help="fan matrix cells across N processes "
                                "(artifact stays byte-identical for any N)")
        if name == "postmortem":
            p.add_argument("--seed", type=int, default=0)
            p.add_argument("--out", default="BENCH_POSTMORTEM.json",
                           help="postmortem benchmark artifact path")
            p.add_argument("--bundle-out", default="POSTMORTEM_BUNDLE.json",
                           help="frozen flight-bundle artifact path")
            p.add_argument("--trace-out", default="POSTMORTEM_TRACE.json",
                           help="merged Chrome trace (flow events) path")
            p.add_argument("--baseline",
                           default="benchmarks/baselines/"
                                   "BENCH_POSTMORTEM.json",
                           help="committed baseline to diff against "
                                "(empty string disables the gate)")
            p.add_argument("--smoke", action="store_true",
                           help="CI gate: short run + acceptance gates "
                                "+ same-seed byte-identity + baseline diff")
            p.add_argument("--workers", type=int, default=1,
                           help="fan the scenarios across N processes "
                                "(artifact stays byte-identical for any N)")
        if name == "fuzz":
            p.add_argument("--seed", type=int, default=0)
            p.add_argument("--rounds", type=int, default=1,
                           help="case-budget multiplier per property")
            p.add_argument("--corpus", default=None,
                           help="directory to write shrunk failing cases "
                                "into (regression fixtures)")
            p.add_argument("--smoke", action="store_true",
                           help="CI gate: reduced case budget + same-seed "
                                "digest check")
    args = parser.parse_args(argv)
    commands[args.command](args)
    return 0


if __name__ == "__main__":
    sys.exit(main())
