"""Chrome trace-event export and schema validation.

``chrome_trace`` renders a :class:`~repro.obs.spans.SpanRecorder`'s spans
as the Trace Event Format consumed by Perfetto / ``chrome://tracing``:
completed spans become ``"X"`` (complete) events, zero-duration marks
become ``"I"`` (instant) events, and every distinct span track gets a
``thread_name`` metadata record so the viewer labels its rows.  Two
optional overlays ride along: telemetry time-series render as ``"C"``
(counter) tracks — one sample per window — and structured SLO/drift
alerts render as instant events on an ``alerts`` track, so Perfetto
shows burn-rate breaches inline with the frame spans that caused them.

``validate_chrome_trace`` is the schema gate CI runs: any drift in the
exported shape (missing keys, bad phase codes, negative durations, lost
categories) comes back as a list of human-readable problems.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterable, List, Optional

from repro.obs.spans import Span, SpanRecorder

#: exported schema identifier, bumped on incompatible changes
TRACE_SCHEMA = "repro.chrome_trace/1"

#: keys every emitted trace event must carry
REQUIRED_EVENT_KEYS = ("name", "cat", "ph", "ts", "pid", "tid")

#: phase codes this exporter may legally produce
ALLOWED_PHASES = {"X", "I", "M", "C"}

#: tid carrying counter tracks (Perfetto keys counters by pid+name)
COUNTER_TID = 0


def _counter_events(series_source: Any) -> List[Dict[str, Any]]:
    """One ``"C"`` sample per populated window of each time-series.

    Accepts a :class:`~repro.obs.timeseries.TimeSeriesBank` or any
    iterable of :class:`~repro.obs.timeseries.TimeSeries`.
    """
    all_series = (
        series_source.all()
        if hasattr(series_source, "all")
        else list(series_source)
    )
    events: List[Dict[str, Any]] = []
    for series in all_series:
        for window, value in series.points():
            events.append(
                {
                    "name": series.key,
                    "cat": "telemetry",
                    "ph": "C",
                    "ts": round(series.window_start_ms(window) * 1000.0, 3),
                    "pid": 1,
                    "tid": COUNTER_TID,
                    "args": {series.name: round(value, 4)},
                }
            )
    return events


def _alert_events(alerts: Iterable[Any]) -> List[Dict[str, Any]]:
    """Structured alerts as process-scoped instant events."""
    events: List[Dict[str, Any]] = []
    for alert in alerts:
        events.append(
            {
                "name": alert.source,
                "cat": "alert",
                "ph": "I",
                "s": "p",                         # process-scoped instant
                "ts": round(alert.at_ms * 1000.0, 3),
                "pid": 1,
                "tid": COUNTER_TID,
                "args": {
                    "severity": alert.severity,
                    "state": alert.state,
                    "message": alert.message,
                },
            }
        )
    return events


def _span_events(
    spans: Iterable[Span], tid_for: Dict[str, int]
) -> List[Dict[str, Any]]:
    events = []
    for span in spans:
        args: Dict[str, Any] = dict(span.args)
        if span.frame_id is not None:
            args["frame_id"] = span.frame_id
        if span.parent is not None:
            args["parent"] = span.parent
        event: Dict[str, Any] = {
            "name": span.name,
            "cat": span.category,
            "ts": round(span.start_ms * 1000.0, 3),   # microseconds
            "pid": 1,
            "tid": tid_for[span.track],
        }
        if span.instant:
            event["ph"] = "I"
            event["s"] = "t"                          # thread-scoped instant
        else:
            event["ph"] = "X"
            event["dur"] = round(span.duration_ms * 1000.0, 3)
        if args:
            event["args"] = args
        events.append(event)
    return events


def chrome_trace(
    spans: SpanRecorder,
    metadata: Optional[Dict[str, Any]] = None,
    series: Optional[Any] = None,
    alerts: Optional[Iterable[Any]] = None,
) -> Dict[str, Any]:
    """Render the recorder's spans as a Chrome trace-event JSON object.

    ``series`` (a ``TimeSeriesBank`` or iterable of ``TimeSeries``) adds
    counter tracks; ``alerts`` (``repro.obs.slo.Alert`` objects) adds
    instant alert events.
    """
    tracks = sorted({s.track for s in spans.spans})
    tid_for = {track: i + 1 for i, track in enumerate(tracks)}
    events: List[Dict[str, Any]] = [
        {
            "name": "thread_name",
            "cat": "__metadata",
            "ph": "M",
            "ts": 0,
            "pid": 1,
            "tid": tid,
            "args": {"name": track},
        }
        for track, tid in sorted(tid_for.items(), key=lambda kv: kv[1])
    ]
    timed = _span_events(spans.spans, tid_for)
    if series is not None:
        timed.extend(_counter_events(series))
    if alerts is not None:
        timed.extend(_alert_events(alerts))
    events.extend(
        sorted(timed, key=lambda e: (e["ts"], e["tid"], e["name"]))
    )
    other: Dict[str, Any] = {
        "schema": TRACE_SCHEMA,
        "span_count": len(spans),
        "dropped_spans": spans.dropped,
    }
    if metadata:
        other.update(metadata)
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": other,
    }


def trace_categories(trace: Dict[str, Any]) -> List[str]:
    """Distinct span categories present in a trace (metadata excluded)."""
    return sorted(
        {
            e.get("cat")
            for e in trace.get("traceEvents", ())
            if isinstance(e, dict) and e.get("ph") in ("X", "I")
        }
        - {None}
    )


def validate_chrome_trace(trace: Any) -> List[str]:
    """Schema gate: returns a list of problems (empty == valid)."""
    problems: List[str] = []
    if not isinstance(trace, dict):
        return [f"top level must be an object, got {type(trace).__name__}"]
    events = trace.get("traceEvents")
    if not isinstance(events, list):
        problems.append("missing or non-list 'traceEvents'")
        return problems
    if trace.get("displayTimeUnit") != "ms":
        problems.append("'displayTimeUnit' must be 'ms'")
    other = trace.get("otherData")
    if not isinstance(other, dict) or other.get("schema") != TRACE_SCHEMA:
        problems.append(f"'otherData.schema' must be {TRACE_SCHEMA!r}")
    if not events:
        problems.append("'traceEvents' is empty")
    for i, event in enumerate(events):
        if not isinstance(event, dict):
            problems.append(f"event {i}: not an object")
            continue
        missing = [k for k in REQUIRED_EVENT_KEYS if k not in event]
        if missing:
            problems.append(f"event {i}: missing keys {missing}")
            continue
        ph = event["ph"]
        if ph not in ALLOWED_PHASES:
            problems.append(f"event {i}: unknown phase {ph!r}")
        if not isinstance(event["ts"], (int, float)) or event["ts"] < 0:
            problems.append(f"event {i}: bad ts {event['ts']!r}")
        if ph == "X":
            dur = event.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                problems.append(f"event {i}: 'X' event needs dur >= 0")
        if ph == "C":
            args = event.get("args")
            if not isinstance(args, dict) or not args or not all(
                isinstance(v, (int, float)) for v in args.values()
            ):
                problems.append(
                    f"event {i}: 'C' event needs numeric args values"
                )
        if "args" in event and not isinstance(event["args"], dict):
            problems.append(f"event {i}: args must be an object")
    return problems


def write_chrome_trace(
    path: str,
    spans: SpanRecorder,
    metadata: Optional[Dict[str, Any]] = None,
    series: Optional[Any] = None,
    alerts: Optional[Iterable[Any]] = None,
) -> Dict[str, Any]:
    """Export, validate, and write a trace file; returns the trace object.

    Raises ``ValueError`` on schema drift so callers (the CLI smoke gate)
    fail loudly instead of uploading a broken artifact.
    """
    trace = chrome_trace(spans, metadata=metadata, series=series, alerts=alerts)
    problems = validate_chrome_trace(trace)
    if problems:
        raise ValueError(
            "chrome trace schema drift: " + "; ".join(problems[:5])
        )
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(trace, fh, indent=1, sort_keys=True)
        fh.write("\n")
    return trace
