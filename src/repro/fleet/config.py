"""Fleet control-plane configuration.

Every serving-layer policy knob in one dataclass, mirroring the style of
:class:`~repro.core.config.GBoosterConfig`.  The per-frame cost constants
repeat that config's service-daemon calibration so a fleet node's service
time agrees with what a :class:`~repro.core.server.ServiceNode` would
charge for the same frame.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.faults.schedule import FaultSchedule


@dataclass
class FleetConfig:
    # -- registry / liveness -------------------------------------------------
    #: how often a registered device reports its queued workload
    heartbeat_interval_ms: float = 250.0
    #: a device silent for this long is declared lost (3 missed beats)
    heartbeat_timeout_ms: float = 750.0
    #: discovery probe deadline per bootstrap round
    discovery_timeout_ms: float = 500.0
    #: bootstrap probe rounds before serving starts with whatever answered
    discovery_rounds: int = 3

    # -- control loop --------------------------------------------------------
    #: period of the placement/rebalancing sweep
    control_interval_ms: float = 500.0

    # -- admission -----------------------------------------------------------
    #: admitted aggregate demand may exceed aggregate capacity by this
    #: factor (sessions self-throttle through their bounded pipelines, so
    #: moderate oversubscription trades tail latency for throughput,
    #: exactly like an airline selling more seats than the cabin holds)
    admission_oversubscription: float = 3.0
    #: sessions waiting for capacity beyond this are rejected outright
    max_wait_queue: int = 32

    # -- placement / rebalancing --------------------------------------------
    #: max-min committed-utilization gap that triggers a migration
    rebalance_threshold: float = 0.35
    #: migrations per control sweep (bounded to avoid thrash)
    max_moves_per_cycle: int = 2
    #: a session migrated more recently than this is left alone
    migration_cooldown_ms: float = 2_000.0

    # -- session serving model ----------------------------------------------
    #: per-session frame issue rate the fleet guarantees capacity against
    serve_rate_hz: float = 30.0
    #: in-flight frames per session (the rewritten SwapBuffer's bound)
    pipeline_depth: int = 3

    # -- per-frame service costs (mirror GBoosterConfig) ---------------------
    replay_us_per_command: float = 6.0
    decompress_ms: float = 1.0
    remote_render_overhead: float = 1.28
    encode_mp_per_s_arm: float = 90.0
    encode_mp_per_s_x86: float = 300.0
    es_translate_us_per_command: float = 20.0

    # -- live migration ------------------------------------------------------
    #: GL context snapshot replayed on the target node when a session
    #: migrates, as a multiple of the app's nominal per-frame commands
    #: (textures, buffers, programs — a bounded working set)
    migration_state_factor: float = 1.5

    # -- record-once / replay-many (repro.replay) ----------------------------
    #: arm a controller-owned :class:`~repro.replay.ReplayHub`: the first
    #: session of a title records its intervals, every later session of
    #: the same title is served warm from the shared store (replay is
    #: incompatible with kernel sharding — per-shard hubs would break the
    #: content-address invariance — so sharded sweeps leave this off)
    replay: bool = False
    #: per-title store budget for the controller's hub
    replay_store_bytes: int = 4 << 20
    #: fraction of the nominal per-frame command work a warm (replay-served)
    #: session still costs its node; calibrated against the single-session
    #: warm/cold server-time ratio of the R4 bench (~20x cheaper)
    replay_warm_factor: float = 0.05

    # -- plan-aware placement (repro.plan) -----------------------------------
    #: bias Eq. 4 placement by each device's predicted service-stage cost
    #: for the session's title, and advertise served titles in heartbeats
    #: so the planner's multicast candidate can see co-located viewers
    planner: bool = False

    # -- correctness checking (repro.check) ----------------------------------
    #: arm a runtime :class:`~repro.check.InvariantMonitor` on the
    #: controller's simulator (session ownership, frame conservation,
    #: capacity accounting, timer hygiene)
    check: bool = False

    # -- fault injection -----------------------------------------------------
    #: declarative crash/rejoin scenario against the device pool; only
    #: :class:`~repro.faults.schedule.NodeCrash` events apply at fleet
    #: level (link faults act on a single user's radios, which the fleet
    #: abstraction does not model)
    faults: Optional[FaultSchedule] = None

    def validate(self) -> None:
        if self.heartbeat_interval_ms <= 0:
            raise ValueError("heartbeat_interval_ms must be positive")
        if self.heartbeat_timeout_ms < 2 * self.heartbeat_interval_ms:
            raise ValueError(
                "heartbeat_timeout_ms must cover at least two intervals"
            )
        if self.discovery_rounds < 1:
            raise ValueError("discovery_rounds must be at least 1")
        if self.control_interval_ms <= 0:
            raise ValueError("control_interval_ms must be positive")
        if self.admission_oversubscription <= 0:
            raise ValueError("admission_oversubscription must be positive")
        if self.max_wait_queue < 0:
            raise ValueError("max_wait_queue must be non-negative")
        if not 0.0 < self.rebalance_threshold:
            raise ValueError("rebalance_threshold must be positive")
        if self.serve_rate_hz <= 0:
            raise ValueError("serve_rate_hz must be positive")
        if self.pipeline_depth < 1:
            raise ValueError("pipeline_depth must be at least 1")
        if self.migration_state_factor < 0:
            raise ValueError("migration_state_factor must be non-negative")
        if self.replay_store_bytes <= 0:
            raise ValueError("replay_store_bytes must be positive")
        if not 0.0 < self.replay_warm_factor <= 1.0:
            raise ValueError("replay_warm_factor must be in (0, 1]")
        if self.faults is not None:
            self.faults.validate()
