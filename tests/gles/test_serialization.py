"""Wire format round-trips and deferred vertex-pointer handling."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.gles import enums as gl
from repro.gles.commands import COMMANDS, make_command
from repro.gles.serialization import (
    ClientArray,
    CommandSerializer,
    DeferredPointerBuffer,
    SerializationError,
    deserialize_command,
    deserialize_stream,
    serialize_command,
    serialize_stream,
)


def roundtrip(cmd):
    wire = serialize_command(cmd)
    decoded, offset = deserialize_command(wire)
    assert offset == len(wire)
    return decoded


class TestRoundTrip:
    def test_ints_and_enums(self):
        cmd = make_command("glViewport", -5, 0, 1280, 720)
        decoded = roundtrip(cmd)
        assert decoded.name == "glViewport"
        assert decoded.args == (-5, 0, 1280, 720)

    def test_floats(self):
        cmd = make_command("glClearColor", 0.25, 0.5, 0.75, 1.0)
        decoded = roundtrip(cmd)
        assert decoded.args == pytest.approx((0.25, 0.5, 0.75, 1.0))

    def test_bools(self):
        cmd = make_command("glDepthMask", True)
        assert roundtrip(cmd).args == (True,)
        cmd = make_command("glDepthMask", False)
        assert roundtrip(cmd).args == (False,)

    def test_strings(self):
        source = "void main() { gl_Position = vec4(0.0); } // ünïcode"
        cmd = make_command("glShaderSource", 3, source)
        assert roundtrip(cmd).args == (3, source)

    def test_blobs(self):
        payload = bytes(range(256))
        cmd = make_command(
            "glBufferData", gl.GL_ARRAY_BUFFER, len(payload), payload,
            gl.GL_STATIC_DRAW,
        )
        assert roundtrip(cmd).args[2] == payload

    def test_none_blob_becomes_empty(self):
        cmd = make_command(
            "glTexImage2D", gl.GL_TEXTURE_2D, 0, gl.GL_RGBA, 4, 4, 0,
            gl.GL_RGBA, gl.GL_UNSIGNED_BYTE, None,
        )
        assert roundtrip(cmd).args[8] == b""

    def test_int_arrays(self):
        cmd = make_command("glDeleteBuffers", 3, (7, 8, 9))
        assert roundtrip(cmd).args == (3, (7, 8, 9))

    def test_float_arrays(self):
        matrix = tuple(float(i) for i in range(16))
        cmd = make_command("glUniformMatrix4fv", 0, 1, False, matrix)
        assert roundtrip(cmd).args[3] == pytest.approx(matrix)

    def test_stream_roundtrip(self):
        cmds = [
            make_command("glUseProgram", 3),
            make_command("glUniform1f", 0, 0.5),
            make_command("glDrawArrays", gl.GL_TRIANGLES, 0, 6),
        ]
        wire = serialize_stream(cmds)
        decoded = deserialize_stream(wire)
        assert [c.name for c in decoded] == [c.name for c in cmds]
        assert [c.args for c in decoded][0] == (3,)


class TestMalformedWire:
    def test_truncated_header(self):
        with pytest.raises(SerializationError):
            deserialize_command(b"\x42")

    def test_bad_magic(self):
        wire = bytearray(serialize_command(make_command("glFlush")))
        wire[0] ^= 0xFF
        with pytest.raises(SerializationError):
            deserialize_command(bytes(wire))

    def test_truncated_payload(self):
        wire = serialize_command(make_command("glUseProgram", 1))
        with pytest.raises(SerializationError):
            deserialize_command(wire[:-2])

    def test_unknown_opcode(self):
        import struct

        bad = struct.pack("<HHI", 0x4742, 60000, 0)
        with pytest.raises(SerializationError):
            deserialize_command(bad)

    def test_arity_mismatch_rejected_at_serialize(self):
        from repro.gles.commands import GLCommand

        with pytest.raises(SerializationError):
            serialize_command(GLCommand("glViewport", (1, 2)))

    def test_unresolved_deferred_pointer_rejected(self):
        cmd = make_command(
            "glVertexAttribPointer", 0, 3, gl.GL_FLOAT, False, 0,
            ClientArray(b"x" * 100),
        )
        with pytest.raises(SerializationError):
            serialize_command(cmd)


class TestDeferredPointers:
    def test_pointer_held_until_draw(self):
        ser = CommandSerializer()
        pointer_cmd = make_command(
            "glVertexAttribPointer", 0, 3, gl.GL_FLOAT, False, 0,
            ClientArray(bytes(range(256)) * 10),
        )
        out = ser.feed(pointer_cmd)
        assert out == []
        assert ser.pending_deferred == 1
        draw = make_command("glDrawArrays", gl.GL_TRIANGLES, 0, 12)
        out = ser.feed(draw)
        # Pointer flushed first, then the draw — order preserved.
        assert len(out) == 2
        decoded0, _ = deserialize_command(out[0])
        decoded1, _ = deserialize_command(out[1])
        assert decoded0.name == "glVertexAttribPointer"
        assert decoded1.name == "glDrawArrays"
        assert ser.pending_deferred == 0

    def test_flushed_payload_sized_by_vertex_count(self):
        ser = CommandSerializer()
        data = bytes(1000)
        ser.feed(
            make_command(
                "glVertexAttribPointer", 0, 3, gl.GL_FLOAT, False, 0,
                ClientArray(data),
            )
        )
        out = ser.feed(make_command("glDrawArrays", gl.GL_TRIANGLES, 0, 10))
        decoded, _ = deserialize_command(out[0])
        # 10 vertices x 3 floats x 4 bytes = 120 bytes, not the full array.
        assert len(decoded.args[5]) == 120

    def test_stride_respected_in_flush(self):
        ser = CommandSerializer()
        ser.feed(
            make_command(
                "glVertexAttribPointer", 0, 2, gl.GL_FLOAT, False, 32,
                ClientArray(bytes(10_000)),
            )
        )
        out = ser.feed(make_command("glDrawArrays", gl.GL_POINTS, 0, 5))
        decoded, _ = deserialize_command(out[0])
        # stride 32 * 4 gaps + final element 8 bytes = 136
        assert len(decoded.args[5]) == 136

    def test_vbo_offset_pointer_not_deferred(self):
        ser = CommandSerializer()
        out = ser.feed(
            make_command(
                "glVertexAttribPointer", 0, 3, gl.GL_FLOAT, False, 0,
                ClientArray(bytes(100)),
            )
        )
        assert out == []
        # Integer pointers (VBO offsets) resolve to a 4-byte offset blob.
        ser2 = CommandSerializer()
        ser2.feed(
            make_command("glVertexAttribPointer", 1, 3, gl.GL_FLOAT, False,
                         0, 64)
        )
        out = ser2.feed(make_command("glDrawArrays", gl.GL_TRIANGLES, 0, 3))
        decoded, _ = deserialize_command(out[0])
        assert len(decoded.args[5]) == 4

    def test_latest_pointer_per_index_wins(self):
        buf = DeferredPointerBuffer()
        old = make_command(
            "glVertexAttribPointer", 0, 3, gl.GL_FLOAT, False, 0,
            ClientArray(b"A" * 400),
        )
        new = make_command(
            "glVertexAttribPointer", 0, 3, gl.GL_FLOAT, False, 0,
            ClientArray(b"B" * 400),
        )
        buf.hold(old)
        buf.hold(new)
        resolved = buf.flush_for_draw(4)
        assert len(resolved) == 1
        assert resolved[0].args[5] == b"B" * 48

    def test_multiple_attribs_flush_in_index_order(self):
        buf = DeferredPointerBuffer()
        for index in (2, 0, 1):
            buf.hold(
                make_command(
                    "glVertexAttribPointer", index, 2, gl.GL_FLOAT, False, 0,
                    ClientArray(bytes(100)),
                )
            )
        resolved = buf.flush_for_draw(3)
        assert [c.args[0] for c in resolved] == [0, 1, 2]

    def test_hold_rejects_other_commands(self):
        buf = DeferredPointerBuffer()
        with pytest.raises(SerializationError):
            buf.hold(make_command("glFlush"))

    def test_draw_elements_uses_max_index_metadata(self):
        ser = CommandSerializer()
        ser.feed(
            make_command(
                "glVertexAttribPointer", 0, 1, gl.GL_UNSIGNED_BYTE, False, 0,
                ClientArray(bytes(1000)),
            )
        )
        draw = make_command(
            "glDrawElements", gl.GL_TRIANGLES, 6, gl.GL_UNSIGNED_SHORT, None,
            metadata={"max_index": 99},
        )
        out = ser.feed(draw)
        decoded, _ = deserialize_command(out[0])
        assert len(decoded.args[5]) == 100  # vertices 0..99, 1 byte each

    def test_byte_accounting(self):
        ser = CommandSerializer()
        ser.feed(make_command("glUseProgram", 1))
        assert ser.commands_serialized == 1
        assert ser.bytes_serialized > 0


@settings(max_examples=50, deadline=None)
@given(
    x=st.integers(min_value=-(2**31), max_value=2**31 - 1),
    y=st.integers(min_value=-(2**31), max_value=2**31 - 1),
    w=st.integers(min_value=-(2**31), max_value=2**31 - 1),
    h=st.integers(min_value=-(2**31), max_value=2**31 - 1),
)
def test_property_int_roundtrip(x, y, w, h):
    decoded = roundtrip(make_command("glViewport", x, y, w, h))
    assert decoded.args == (x, y, w, h)


@settings(max_examples=50, deadline=None)
@given(payload=st.binary(max_size=4096))
def test_property_blob_roundtrip(payload):
    cmd = make_command(
        "glBufferData", gl.GL_ARRAY_BUFFER, len(payload), payload,
        gl.GL_STATIC_DRAW,
    )
    assert roundtrip(cmd).args[2] == payload


@settings(max_examples=50, deadline=None)
@given(text=st.text(max_size=500))
def test_property_string_roundtrip(text):
    cmd = make_command("glShaderSource", 1, text)
    assert roundtrip(cmd).args[1] == text
