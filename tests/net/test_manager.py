"""Network manager: routing, wake-then-flip, traffic sampling."""

import pytest

from repro.net.manager import NetworkManager
from repro.sim.kernel import Simulator


def test_default_route_is_wifi():
    sim = Simulator()
    manager = NetworkManager(sim)
    assert manager.active is manager.wifi


def test_switch_to_bluetooth_immediate_when_on():
    sim = Simulator()
    manager = NetworkManager(sim)
    manager.use("bluetooth")
    assert manager.active_name == "bluetooth"
    assert manager.switch_log[-1][1] == "bluetooth"


def test_switch_to_sleeping_wifi_flips_after_wake():
    """The paper's sequencing: wake first, flip the route once usable."""
    sim = Simulator()
    manager = NetworkManager(sim)
    manager.use("bluetooth")
    manager.wifi.power_off()

    def proc():
        yield 1_000.0
        manager.use("wifi")

    sim.spawn(proc())
    sim.run(until=1_050.0)
    # Wakeup takes 100 ms; the route must still be bluetooth right after
    # the use() call.
    assert manager.active_name == "bluetooth"
    sim.run(until=2_000.0)
    assert manager.active_name == "wifi"


def test_superseded_route_flip_is_discarded():
    sim = Simulator()
    manager = NetworkManager(sim)
    manager.use("bluetooth")
    manager.wifi.power_off()

    def proc():
        yield 1_000.0
        manager.use("wifi")       # starts the 100 ms wake
        yield 10.0
        manager.use("bluetooth")  # changes mind before WiFi usable

    sim.spawn(proc())
    sim.run(until=5_000.0)
    assert manager.active_name == "bluetooth"


def test_power_down_idle_turns_off_inactive_radio():
    sim = Simulator()
    manager = NetworkManager(sim)
    manager.use("bluetooth")
    manager.power_down_idle()
    assert not manager.wifi.is_on
    assert manager.bluetooth.is_on


def test_traffic_sampling_buckets_bytes():
    sim = Simulator()
    manager = NetworkManager(sim, epoch_ms=100.0)

    def proc():
        for _ in range(10):
            manager.account(12_500)  # 1 Mbps if spread over 100 ms
            yield 100.0

    sim.spawn(proc())
    sim.run(until=1_100.0)
    samples = manager.samples_mbps()
    assert len(samples) >= 10
    assert samples[0] == pytest.approx(1.0)


def test_unknown_interface_rejected():
    sim = Simulator()
    manager = NetworkManager(sim)
    with pytest.raises(ValueError):
        manager.use("lte")


def test_use_same_interface_is_noop():
    sim = Simulator()
    manager = NetworkManager(sim)
    manager.use("wifi")
    assert manager.switch_log == []


def test_energy_sums_both_radios():
    sim = Simulator()
    manager = NetworkManager(sim)
    sim.run(until=10_000.0)
    total = manager.energy_joules()
    assert total == pytest.approx(
        manager.wifi.energy_joules() + manager.bluetooth.energy_joules()
    )
    assert total > 0
