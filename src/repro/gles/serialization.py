"""Wire serialization for forwarded GL commands.

Two concerns from paper §IV-B live here:

* **The wire format.**  Basic types (ints, floats, enums, strings, sized
  blobs) are length-prefixed and byte-exact round-trippable, so the traffic
  volumes measured by the network substrate are real byte counts.

* **Deferred pointers.**  ``glVertexAttribPointer`` takes a client-side
  pointer whose extent is unknown until a later draw call reveals how many
  vertices are read.  :class:`CommandSerializer` therefore *holds back* such
  commands and flushes them, with the now-known payload, immediately before
  the draw that consumes them — the reordering the paper argues is safe as
  long as the pointer command still precedes the draw.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.gles import enums as gl
from repro.gles.commands import (
    COMMANDS,
    GLCommand,
    ParamType,
    command_spec,
)

MAGIC = 0x4742  # ASCII "GB"
_HEADER = struct.Struct("<HHI")    # magic, opcode, payload length

# Stable opcode assignment: alphabetical order of registered entry points.
OPCODES: Dict[str, int] = {
    name: idx for idx, name in enumerate(sorted(COMMANDS))
}
NAMES_BY_OPCODE: Dict[int, str] = {v: k for k, v in OPCODES.items()}


class SerializationError(ValueError):
    """Raised for malformed wire data or unserializable arguments."""


@dataclass
class ClientArray:
    """A client-side vertex array: the thing a deferred pointer points at.

    ``data`` is the full client buffer; how much of it must be shipped is
    only known at draw time.
    """

    data: bytes
    array_id: int = 0

    def __len__(self) -> int:
        return len(self.data)


def _pack_value(kind: ParamType, value: Any, out: bytearray) -> None:
    if kind == ParamType.INT:
        out += struct.pack("<i", int(value))
    elif kind == ParamType.ENUM:
        out += struct.pack("<I", int(value) & 0xFFFFFFFF)
    elif kind == ParamType.BOOL:
        out += struct.pack("<B", 1 if value else 0)
    elif kind == ParamType.FLOAT:
        out += struct.pack("<f", float(value))
    elif kind == ParamType.STRING:
        encoded = str(value).encode("utf-8")
        out += struct.pack("<I", len(encoded))
        out += encoded
    elif kind == ParamType.BLOB:
        data = b"" if value is None else bytes(value)
        out += struct.pack("<I", len(data))
        out += data
    elif kind == ParamType.INT_ARRAY:
        items = tuple(int(v) for v in (value or ()))
        out += struct.pack("<I", len(items))
        out += struct.pack(f"<{len(items)}i", *items)
    elif kind == ParamType.FLOAT_ARRAY:
        items = tuple(float(v) for v in (value or ()))
        out += struct.pack("<I", len(items))
        out += struct.pack(f"<{len(items)}f", *items)
    elif kind == ParamType.DEFERRED_POINTER:
        # By the time a deferred command is serialized its pointer argument
        # must have been resolved to concrete bytes.
        if not isinstance(value, (bytes, bytearray)):
            raise SerializationError(
                "deferred pointer was not resolved before serialization; "
                "route the command through CommandSerializer"
            )
        out += struct.pack("<I", len(value))
        out += bytes(value)
    else:  # pragma: no cover - registry is closed
        raise SerializationError(f"unhandled param kind {kind}")


def _unpack_value(kind: ParamType, buf: bytes, off: int) -> Tuple[Any, int]:
    if kind == ParamType.INT:
        return struct.unpack_from("<i", buf, off)[0], off + 4
    if kind == ParamType.ENUM:
        return struct.unpack_from("<I", buf, off)[0], off + 4
    if kind == ParamType.BOOL:
        return bool(buf[off]), off + 1
    if kind == ParamType.FLOAT:
        return struct.unpack_from("<f", buf, off)[0], off + 4
    if kind == ParamType.STRING:
        (n,) = struct.unpack_from("<I", buf, off)
        off += 4
        return buf[off:off + n].decode("utf-8"), off + n
    if kind in (ParamType.BLOB, ParamType.DEFERRED_POINTER):
        (n,) = struct.unpack_from("<I", buf, off)
        off += 4
        return bytes(buf[off:off + n]), off + n
    if kind == ParamType.INT_ARRAY:
        (n,) = struct.unpack_from("<I", buf, off)
        off += 4
        vals = struct.unpack_from(f"<{n}i", buf, off)
        return tuple(vals), off + 4 * n
    if kind == ParamType.FLOAT_ARRAY:
        (n,) = struct.unpack_from("<I", buf, off)
        off += 4
        vals = struct.unpack_from(f"<{n}f", buf, off)
        return tuple(vals), off + 4 * n
    raise SerializationError(f"unhandled param kind {kind}")  # pragma: no cover


def serialize_command(cmd: GLCommand) -> bytes:
    """Serialize one command to its wire representation."""
    spec = command_spec(cmd.name)
    if len(cmd.args) != spec.arity:
        raise SerializationError(
            f"{cmd.name}: expected {spec.arity} args, got {len(cmd.args)}"
        )
    payload = bytearray()
    for param, value in zip(spec.params, cmd.args):
        try:
            _pack_value(param.kind, value, payload)
        except (struct.error, TypeError, ValueError) as exc:
            raise SerializationError(
                f"{cmd.name}.{param.name}: cannot serialize {value!r} "
                f"as {param.kind.value}"
            ) from exc
    header = _HEADER.pack(MAGIC, OPCODES[cmd.name], len(payload))
    return header + bytes(payload)


def deserialize_command(data: bytes, offset: int = 0) -> Tuple[GLCommand, int]:
    """Decode one command; returns ``(command, next_offset)``."""
    if len(data) - offset < _HEADER.size:
        raise SerializationError("truncated command header")
    magic, opcode, length = _HEADER.unpack_from(data, offset)
    if magic != MAGIC:
        raise SerializationError(f"bad magic 0x{magic:04X}")
    name = NAMES_BY_OPCODE.get(opcode)
    if name is None:
        raise SerializationError(f"unknown opcode {opcode}")
    spec = COMMANDS[name]
    body_start = offset + _HEADER.size
    body_end = body_start + length
    if body_end > len(data):
        raise SerializationError(f"truncated payload for {name}")
    off = body_start
    args: List[Any] = []
    for param in spec.params:
        value, off = _unpack_value(param.kind, data, off)
        args.append(value)
    if off != body_end:
        raise SerializationError(
            f"{name}: payload length mismatch ({off - body_start} != {length})"
        )
    return GLCommand(name=name, args=tuple(args)), body_end


def serialize_stream(commands: List[GLCommand]) -> bytes:
    return b"".join(serialize_command(c) for c in commands)


def deserialize_stream(data: bytes) -> List[GLCommand]:
    out: List[GLCommand] = []
    off = 0
    while off < len(data):
        cmd, off = deserialize_command(data, off)
        out.append(cmd)
    return out


@dataclass
class DeferredPointerBuffer:
    """Holds back vertex-pointer commands until a draw reveals their extent."""

    pending: Dict[int, GLCommand] = field(default_factory=dict)

    def hold(self, cmd: GLCommand) -> None:
        if cmd.name != "glVertexAttribPointer":
            raise SerializationError(f"cannot defer {cmd.name}")
        index = cmd.args[0]
        self.pending[index] = cmd

    def flush_for_draw(self, vertex_count: int) -> List[GLCommand]:
        """Resolve every held pointer for a draw of ``vertex_count`` vertices.

        The resolved commands are returned in attrib-index order so replay is
        deterministic; the paper's observation is that any order is correct
        as long as they precede the draw.
        """
        resolved: List[GLCommand] = []
        for index in sorted(self.pending):
            cmd = self.pending[index]
            _, size, dtype, normalized, stride, pointer = cmd.args
            element = size * gl.TYPE_SIZES.get(dtype, 4)
            step = stride if stride > 0 else element
            needed = 0
            if vertex_count > 0:
                needed = step * (vertex_count - 1) + element
            if isinstance(pointer, ClientArray):
                data = pointer.data[:needed]
            elif isinstance(pointer, (bytes, bytearray)):
                data = bytes(pointer[:needed])
            elif isinstance(pointer, int):
                # A VBO offset: nothing to ship, the data lives server-side.
                data = struct.pack("<I", pointer)
            else:
                raise SerializationError(
                    f"unsupported pointer payload {type(pointer).__name__}"
                )
            resolved.append(
                GLCommand(
                    name=cmd.name,
                    args=(cmd.args[0], size, dtype, normalized, stride, data),
                    metadata=dict(cmd.metadata),
                )
            )
        self.pending.clear()
        return resolved


class CommandSerializer:
    """Stateful serializer implementing the §IV-B forwarding pipeline.

    ``feed`` consumes intercepted commands and returns zero or more
    wire-ready byte strings: deferred-pointer commands produce nothing until
    the next draw call flushes them.
    """

    def __init__(self) -> None:
        self._deferred = DeferredPointerBuffer()
        self.commands_serialized = 0
        self.bytes_serialized = 0
        self.deferrals = 0

    def feed(self, cmd: GLCommand) -> List[bytes]:
        spec = command_spec(cmd.name)
        out: List[bytes] = []
        if cmd.name == "glVertexAttribPointer" and not isinstance(
            cmd.args[5], (bytes, bytearray)
        ):
            self._deferred.hold(cmd)
            self.deferrals += 1
            return out
        if spec.is_draw:
            count = _draw_vertex_count(cmd)
            for resolved in self._deferred.flush_for_draw(count):
                out.append(self._emit(resolved))
        out.append(self._emit(cmd))
        return out

    def _emit(self, cmd: GLCommand) -> bytes:
        wire = serialize_command(cmd)
        self.commands_serialized += 1
        self.bytes_serialized += len(wire)
        return wire

    @property
    def pending_deferred(self) -> int:
        return len(self._deferred.pending)


def _draw_vertex_count(cmd: GLCommand) -> int:
    if cmd.name == "glDrawArrays":
        first, count = cmd.args[1], cmd.args[2]
        return first + count
    if cmd.name == "glDrawElements":
        # Without inspecting index values we conservatively assume the draw
        # touches `count` vertices; workloads annotate the true maximum.
        return cmd.metadata.get("max_index", cmd.args[1] - 1) + 1
    return 0
