"""Sharded parallel simulation: many kernels, one deterministic fleet.

The fleet, SLO and chaos experiments used to funnel every session through
one single-threaded :class:`~repro.sim.kernel.Simulator`, which capped
both wall-clock speed and the believable fleet size.  This module
partitions a fleet run into **K shards** — each with its own kernel, its
own ``(seed, shard_id)``-namespaced random streams and its own event
queue — and fans them across worker processes, in the style of
conservative parallel discrete-event simulation:

* **Partition** — :class:`ShardPlan` assigns sessions and pool devices to
  shards round-robin by index, so the decomposition is a pure function of
  ``(n_sessions, n_devices, shards)`` and never of dict or completion
  order.
* **Free-running windows** — each :class:`ShardWorker` advances its
  kernel independently inside a conservative time window
  (``window_ms`` of simulated time).
* **Control-plane barriers** — at each window boundary every shard
  reports a :class:`BarrierReport` (heartbeats, placements, admission
  pressure); the coordinator merges them **sorted by (shard, session)**
  and broadcasts the next window.  Window length is the only thing the
  coordinator tunes (it stretches windows when the merged report shows
  the launch wave has drained), so merged results are independent of both
  the barrier cadence and the worker count.
* **Transports** — ``workers <= 1`` steps every shard inline in this
  process; ``workers > 1`` hosts shards in ``multiprocessing`` processes
  connected by pipes, exchanging pickled barrier reports and final
  results.  Both transports drive identical worker code with identical
  coordinator decisions, which is what makes ``--workers N`` a pure
  execution detail: same ``(seed, shards)`` in, byte-identical digests
  out, for any N.

``shards=1`` degenerates to exactly the legacy single-kernel run — same
stream derivations, same event interleaving, same report digest — so the
sharded path is a strict superset of the old one.
"""

from __future__ import annotations

import multiprocessing
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Generator, List, Optional, Sequence, Tuple

from repro.sim.kernel import Simulator

#: default conservative window between control-plane barriers (sim ms)
DEFAULT_WINDOW_MS = 1_000.0

#: window stretch applied once the merged barrier shows a drained fleet
IDLE_WINDOW_STRETCH = 4.0

#: hard ceiling on barriers per run — a coordinator bug must fail loudly,
#: not spin forever
MAX_BARRIERS = 100_000


class ShardError(RuntimeError):
    """Raised for shard-plan misuse (bad counts, undrained coordinators)."""


# -- partitioning -------------------------------------------------------------


@dataclass(frozen=True)
class ShardPlan:
    """Deterministic round-robin partition of a fleet into ``shards``."""

    shards: int

    def __post_init__(self) -> None:
        if self.shards < 1:
            raise ShardError(f"need at least one shard, got {self.shards}")

    def shard_of(self, index: int) -> int:
        """Shard owning global session/device ``index``."""
        return index % self.shards

    def indices(self, shard: int, count: int) -> List[int]:
        """Global indices (ascending) owned by ``shard`` out of ``count``."""
        if not 0 <= shard < self.shards:
            raise ShardError(f"shard {shard} outside plan of {self.shards}")
        return list(range(shard, count, self.shards))


# -- job / report / result payloads (all picklable) ---------------------------


@dataclass(frozen=True)
class ShardSessionSpec:
    """One session as assigned to a shard.

    ``wave_index`` is the session's position in the *global* launch wave;
    arrival time stays ``wave_index * gap`` after bootstrap regardless of
    how many shards the wave was split over.  An explicit
    ``arrival_offset_ms`` (an open-ended schedule from
    :mod:`repro.fleet.arrivals` — Poisson, diurnal, flash crowd)
    overrides the uniform wave: the session then arrives exactly that
    many simulated ms after bootstrap, again shard-count independent
    because the offset is computed at plan time from the global index.
    """

    session_id: str
    app_index: int
    wave_index: int
    arrival_offset_ms: Optional[float] = None


@dataclass
class ShardJob:
    """Everything one worker process needs to simulate its shard."""

    shard_id: int
    shards: int
    seed: int
    pool: List[Any]                     # DeviceSpec slice (globally named)
    apps: List[Any]                     # ApplicationSpec cycle
    sessions: List[ShardSessionSpec]
    gap_ms: float
    duration_ms: float
    arrival_spread_ms: float
    #: (at_ms, local_node_index, rejoin_at_ms|None) crash injections that
    #: land on devices owned by this shard
    crashes: List[Tuple[float, int, Optional[float]]] = field(
        default_factory=list
    )
    config: Optional[Any] = None        # FleetConfig; defaulted in-worker


@dataclass
class BarrierReport:
    """What one shard tells the coordinator at a window boundary."""

    shard_id: int
    now_ms: float
    done: bool
    active: int
    finished: int
    admission_queued: int
    committed_mp_per_ms: float
    capacity_mp_per_ms: float
    #: (session_id, frames_answered) for every active session, ascending
    heartbeats: List[Tuple[str, int]] = field(default_factory=list)
    #: (session_id, node_name) for every active session, ascending
    placements: List[Tuple[str, str]] = field(default_factory=list)


@dataclass
class ShardResult:
    """Final pickled payload of one shard."""

    shard_id: int
    report: Dict[str, Any]
    session_digests: Dict[str, str]
    metrics: Dict[str, Any]
    span_bank: Dict[str, Any]
    invariant_violations: int = 0


@dataclass
class MergedBarrier:
    """Coordinator-side deterministic merge of one barrier round."""

    barrier_index: int
    until_ms: float
    active: int
    finished: int
    admission_queued: int
    committed_mp_per_ms: float
    capacity_mp_per_ms: float
    #: (shard, session_id, frames_answered), sorted by (shard, session)
    heartbeats: List[Tuple[int, str, int]] = field(default_factory=list)
    #: (shard, session_id, node), sorted by (shard, session)
    placements: List[Tuple[int, str, str]] = field(default_factory=list)


def merge_barrier(
    reports: Sequence[BarrierReport], barrier_index: int, until_ms: float
) -> MergedBarrier:
    """Merge per-shard barrier reports, sorted by (shard, session).

    Never dict order, never completion order — the merged view is a pure
    function of the reports' contents, so every transport (and every
    worker count) produces the same coordinator inputs.
    """
    ordered = sorted(reports, key=lambda r: r.shard_id)
    heartbeats = [
        (r.shard_id, sid, frames)
        for r in ordered
        for sid, frames in sorted(r.heartbeats)
    ]
    placements = [
        (r.shard_id, sid, node)
        for r in ordered
        for sid, node in sorted(r.placements)
    ]
    return MergedBarrier(
        barrier_index=barrier_index,
        until_ms=until_ms,
        active=sum(r.active for r in ordered),
        finished=sum(r.finished for r in ordered),
        admission_queued=sum(r.admission_queued for r in ordered),
        committed_mp_per_ms=round(
            sum(r.committed_mp_per_ms for r in ordered), 6
        ),
        capacity_mp_per_ms=round(
            sum(r.capacity_mp_per_ms for r in ordered), 6
        ),
        heartbeats=heartbeats,
        placements=placements,
    )


# -- the per-shard worker -----------------------------------------------------


class ShardWorker:
    """One shard: its own kernel, fleet controller and launch wave.

    Mirrors ``repro.experiments.fleet.run_fleet_point`` step for step so a
    one-shard worker replays the legacy single-kernel run exactly: build
    the controller, run to the bootstrap event, spawn the arrival wave,
    then serve until the horizon — except the serving phase is chopped
    into coordinator-driven windows, which a discrete-event kernel cannot
    observe (stopping at ``t`` and resuming changes nothing).
    """

    def __init__(self, job: ShardJob):
        # Imported here, not at module scope: repro.sim must stay
        # importable below repro.fleet in the layer diagram.
        from repro.faults.schedule import FaultSchedule
        from repro.fleet import FleetConfig, FleetController

        self.job = job
        config = job.config if job.config is not None else FleetConfig()
        if job.crashes:
            schedule = FaultSchedule()
            for at_ms, local_node, rejoin_at_ms in job.crashes:
                schedule.crash(
                    at_ms=at_ms, node=local_node, rejoin_at_ms=rejoin_at_ms
                )
            from dataclasses import replace

            config = replace(config, faults=schedule)
        self.sim = Simulator(seed=job.seed, shard_id=job.shard_id)
        self.controller = FleetController(self.sim, job.pool, config)
        self.controller.set_session_duration(job.duration_ms)
        self.sim.run_until_event(self.controller.bootstrapped, limit=60_000.0)
        self._arrivals_done = False
        timed = any(s.arrival_offset_ms is not None for s in job.sessions)
        if timed:
            # Offset schedules must be partition-invariant, and the
            # bootstrap completion time is not: each shard's discovery
            # races only its own devices.  Anchor the wave at a
            # config-derived epoch past the worst-case bootstrap and
            # schedule every arrival at the *absolute* float
            # ``epoch + offset`` (``spawn_at``) — the identical heap key
            # in every shard, immune to per-shard delta accumulation.
            wave_start = (
                config.discovery_rounds * config.discovery_timeout_ms
                + 500.0
            )
            self._pending_arrivals = len(job.sessions)
            for spec in job.sessions:
                self.sim.spawn_at(
                    wave_start + (spec.arrival_offset_ms or 0.0),
                    self._timed_arrival(spec),
                    name=f"fleet.arrivals.{spec.session_id}",
                )
        else:
            wave_start = self.sim.now
            self.sim.spawn(self._arrivals(), name="fleet.arrivals")
        # Same horizon rule as the legacy runner: launch wave, two full
        # session lengths, detection slack.  A quiescent shard stops
        # exactly here, so a one-shard run reports the same state the
        # legacy runner does.
        self.horizon_ms = (
            wave_start
            + job.arrival_spread_ms
            + 2.0 * job.duration_ms
            + 5_000.0
        )
        # Partitioned admission can serialize a shard's sessions far more
        # than the global pool would (a shard that drew the weak devices
        # re-admits its queue one generation at a time), so a shard that
        # still owns active or queued sessions at the horizon keeps
        # serving — bounded by the fully-serialized worst case.
        self.hard_cap_ms = (
            wave_start
            + job.arrival_spread_ms
            + (2.0 + len(job.sessions)) * job.duration_ms
            + 5_000.0
        )

    def _arrivals(self) -> Generator:
        """The shard's slice of the global launch wave.

        Session ``wave_index`` arrives ``wave_index * gap`` after
        bootstrap — the identical absolute schedule the single-kernel wave
        produces, just with the foreign sessions' submits elided.  For a
        one-shard plan this generator is event-for-event the legacy
        ``arrivals()`` loop.
        """
        from repro.fleet import SessionRequest

        previous = 0
        for spec in self.job.sessions:
            delay = (spec.wave_index - previous) * self.job.gap_ms
            previous = spec.wave_index
            if delay > 0:
                yield delay
            self.controller.submit(
                SessionRequest(
                    session_id=spec.session_id,
                    app=self.job.apps[spec.app_index],
                    arrival_ms=self.sim.now,
                )
            )
        self._arrivals_done = True
        yield self.job.gap_ms

    def _timed_arrival(self, spec: ShardSessionSpec) -> Generator:
        """One session's arrival; runs at its ``spawn_at`` epoch slot."""
        from repro.fleet import SessionRequest

        self.controller.submit(
            SessionRequest(
                session_id=spec.session_id,
                app=self.job.apps[spec.app_index],
                arrival_ms=self.sim.now,
            )
        )
        self._pending_arrivals -= 1
        if not self._pending_arrivals:
            self._arrivals_done = True
        return
        yield  # unreachable: marks this function as a generator

    @property
    def quiesced(self) -> bool:
        """Every owned session reached a terminal state."""
        return (
            self._arrivals_done
            and not self.controller.active
            and not len(self.controller.admission)
        )

    @property
    def done(self) -> bool:
        if self.sim.now < self.horizon_ms:
            return False
        return self.quiesced or self.sim.now >= self.hard_cap_ms

    def run_window(self, until_ms: float) -> BarrierReport:
        """Advance freely to ``min(until, horizon)``; report at the barrier.

        Past the horizon, a shard with live sessions keeps going (clamped
        to the hard cap instead); a quiescent one holds at the horizon so
        its final state matches the legacy runner's.
        """
        cap = self.horizon_ms
        if self.sim.now >= self.horizon_ms and not self.done:
            cap = self.hard_cap_ms
        target = min(until_ms, cap)
        if target > self.sim.now:
            self.sim.run(until=target)
        controller = self.controller
        active = sorted(controller.active)
        return BarrierReport(
            shard_id=self.job.shard_id,
            now_ms=self.sim.now,
            done=self.done,
            active=len(active),
            finished=len(controller.finished),
            admission_queued=len(controller.admission),
            committed_mp_per_ms=round(
                controller.total_committed_mp_per_ms, 6
            ),
            capacity_mp_per_ms=round(controller.up_capacity_mp_per_ms, 6),
            heartbeats=[
                (sid, len(controller.active[sid].response_times_ms))
                for sid in active
            ],
            placements=[
                (sid, controller.active[sid].node.name)
                for sid in active
                if controller.active[sid].node is not None
            ],
        )

    def finish(self) -> ShardResult:
        """Seal the shard: final report, digests, banks; tear the sim down."""
        from repro.obs.merge import span_bank

        controller = self.controller
        if controller.monitor is not None:
            controller.monitor.finalize()
        report = controller.report()
        sessions = sorted(
            controller.finished + list(controller.active.values()),
            key=lambda s: s.session_id,
        )
        digests = {s.session_id: s.frame_digest() for s in sessions}
        result = ShardResult(
            shard_id=self.job.shard_id,
            report=report,
            session_digests=digests,
            metrics=self.sim.metrics.snapshot(),
            span_bank=span_bank(self.sim.spans),
            invariant_violations=(
                len(controller.monitor.violations)
                if controller.monitor is not None
                else 0
            ),
        )
        # Reap watchers and close generators: a sweep discards hundreds of
        # kernels and must not accumulate suspended frames.
        self.sim.teardown()
        return result


# -- transports ---------------------------------------------------------------


class InlineShardPool:
    """All shards stepped in this process (``--workers 1``)."""

    def __init__(self, jobs: Sequence[ShardJob]):
        self._workers = [ShardWorker(job) for job in jobs]

    def step(self, until_ms: float) -> List[BarrierReport]:
        return [w.run_window(until_ms) for w in self._workers]

    def finish(self) -> List[ShardResult]:
        return [w.finish() for w in self._workers]

    def close(self) -> None:
        self._workers = []


def _shard_host_main(conn, jobs: List[ShardJob]) -> None:
    """Entry point of one worker process hosting one or more shards."""
    try:
        workers = [ShardWorker(job) for job in jobs]
        conn.send(("ready", [job.shard_id for job in jobs]))
        while True:
            cmd, payload = conn.recv()
            if cmd == "window":
                conn.send(
                    ("reports", [w.run_window(payload) for w in workers])
                )
            elif cmd == "finish":
                conn.send(("results", [w.finish() for w in workers]))
                break
            else:  # pragma: no cover - protocol misuse
                raise ShardError(f"unknown shard-host command {cmd!r}")
    except EOFError:  # coordinator died; exit quietly
        pass
    finally:
        conn.close()


class ProcessShardPool:
    """Shards fanned across ``workers`` OS processes, piped barriers.

    Shard-to-host assignment is round-robin by shard id.  Because hosts
    only ever execute :class:`ShardWorker` code and the coordinator only
    ever sees the concatenation of barrier reports in shard order, the
    number of hosts is invisible to the results.
    """

    def __init__(self, jobs: Sequence[ShardJob], workers: int):
        if workers < 1:
            raise ShardError(f"need at least one worker, got {workers}")
        ctx = multiprocessing.get_context()
        self._hosts: List[Tuple[Any, Any]] = []  # (process, pipe)
        assignments: List[List[ShardJob]] = [
            [] for _ in range(min(workers, len(jobs)))
        ]
        for index, job in enumerate(jobs):
            assignments[index % len(assignments)].append(job)
        for hosted in assignments:
            parent_conn, child_conn = ctx.Pipe()
            proc = ctx.Process(
                target=_shard_host_main, args=(child_conn, hosted),
                daemon=True,
            )
            proc.start()
            child_conn.close()
            self._hosts.append((proc, parent_conn))
        for _proc, conn in self._hosts:
            tag, _shards = conn.recv()
            if tag != "ready":  # pragma: no cover - protocol misuse
                raise ShardError(f"shard host failed to start: {tag!r}")

    def step(self, until_ms: float) -> List[BarrierReport]:
        for _proc, conn in self._hosts:
            conn.send(("window", until_ms))
        reports: List[BarrierReport] = []
        for _proc, conn in self._hosts:
            tag, payload = conn.recv()
            if tag != "reports":  # pragma: no cover - protocol misuse
                raise ShardError(f"expected barrier reports, got {tag!r}")
            reports.extend(payload)
        return sorted(reports, key=lambda r: r.shard_id)

    def finish(self) -> List[ShardResult]:
        for _proc, conn in self._hosts:
            conn.send(("finish", None))
        results: List[ShardResult] = []
        for proc, conn in self._hosts:
            tag, payload = conn.recv()
            if tag != "results":  # pragma: no cover - protocol misuse
                raise ShardError(f"expected shard results, got {tag!r}")
            results.extend(payload)
            proc.join(timeout=30.0)
        return sorted(results, key=lambda r: r.shard_id)

    def close(self) -> None:
        for proc, conn in self._hosts:
            conn.close()
            if proc.is_alive():
                proc.terminate()
            proc.join(timeout=5.0)
        self._hosts = []


# -- the coordinator ----------------------------------------------------------


@dataclass
class CoordinatorSummary:
    """What the barrier protocol observed, for reports and tests."""

    barriers: int
    window_ms: float
    #: max over barriers of fleet-wide concurrently-active sessions; a
    #: lower bound on the true global peak (sampled at barriers only)
    peak_concurrent_observed: int
    final_until_ms: float


def run_shards(
    jobs: Sequence[ShardJob],
    workers: int = 1,
    window_ms: float = DEFAULT_WINDOW_MS,
    on_barrier: Optional[Callable[[MergedBarrier], None]] = None,
) -> Tuple[List[ShardResult], CoordinatorSummary]:
    """Drive every shard window-by-window to completion and collect results.

    The coordinator's only decisions — the barrier cadence and when to
    stop — are pure functions of the deterministically merged barrier
    reports, so results are byte-identical for any ``workers`` at fixed
    ``(seed, shards)``.
    """
    jobs = list(jobs)
    if not jobs:
        raise ShardError("no shard jobs to run")
    ids = [job.shard_id for job in jobs]
    if len(set(ids)) != len(ids):
        raise ShardError(f"duplicate shard ids: {sorted(ids)}")
    if window_ms <= 0:
        raise ShardError(f"window_ms must be positive, got {window_ms}")
    pool: Any
    if workers <= 1 or len(jobs) == 1:
        pool = InlineShardPool(jobs)
    else:
        pool = ProcessShardPool(jobs, workers=workers)
    try:
        until = window_ms
        step = window_ms
        peak = 0
        barriers = 0
        while True:
            reports = pool.step(until)
            merged = merge_barrier(reports, barriers, until)
            barriers += 1
            peak = max(peak, merged.active)
            if on_barrier is not None:
                on_barrier(merged)
            if all(r.done for r in reports):
                break
            if barriers >= MAX_BARRIERS:
                raise ShardError(
                    f"barrier protocol did not converge in {MAX_BARRIERS} "
                    "rounds"
                )
            # Conservative window tuning, broadcast for the next round:
            # while sessions are live the fleet advances one base window
            # at a time; once the merged heartbeat shows the wave fully
            # drained (no active sessions, nothing queued) only control
            # loops remain, so stretch the window to race to the horizon.
            if merged.active == 0 and merged.admission_queued == 0:
                step = window_ms * IDLE_WINDOW_STRETCH
            else:
                step = window_ms
            until += step
        results = pool.finish()
        summary = CoordinatorSummary(
            barriers=barriers,
            window_ms=window_ms,
            peak_concurrent_observed=peak,
            final_until_ms=until,
        )
        return results, summary
    finally:
        pool.close()


# -- generic deterministic job fan-out ---------------------------------------


def _call_job(payload: Tuple[Callable[..., Any], tuple]) -> Any:
    fn, args = payload
    return fn(*args)


def run_parallel_jobs(
    jobs: Sequence[Tuple[Callable[..., Any], tuple]], workers: int = 1
) -> List[Any]:
    """Run independent simulation jobs, results in submission order.

    The coarse-grained sibling of :func:`run_shards` for workloads that
    decompose into self-contained sims (the SLO bench's scenarios): each
    job is a top-level callable plus args, each runs its own kernel, and
    results come back in job order regardless of worker count or
    completion order — so artifacts stay byte-identical for any
    ``workers``.
    """
    jobs = list(jobs)
    if workers <= 1 or len(jobs) <= 1:
        return [fn(*args) for fn, args in jobs]
    ctx = multiprocessing.get_context()
    with ctx.Pool(processes=min(workers, len(jobs))) as pool:
        return pool.map(_call_job, jobs)
