"""LZ77 compressor: round-trip correctness and compression behaviour."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.codec.lz77 import compress, compression_ratio, decompress


class TestRoundTrip:
    def test_empty(self):
        assert decompress(compress(b"")) == b""

    def test_single_byte(self):
        assert decompress(compress(b"a")) == b"a"

    def test_short_literal_only(self):
        data = b"abc"
        assert decompress(compress(data)) == data

    def test_repeated_pattern(self):
        data = b"abcd" * 1000
        assert decompress(compress(data)) == data

    def test_all_same_byte(self):
        data = b"\x00" * 5000
        assert decompress(compress(data)) == data

    def test_overlapping_match(self):
        # 'aaaa...' forces matches whose source overlaps the copy target.
        data = b"a" + b"a" * 300 + b"b"
        assert decompress(compress(data)) == data

    def test_long_literal_runs(self):
        data = bytes(range(256)) * 3  # little redundancy at window start
        assert decompress(compress(data)) == data

    def test_binary_gl_stream(self):
        from repro.gles.commands import make_command
        from repro.gles.serialization import serialize_stream

        cmds = [
            make_command("glUniform1f", i % 4, float(i % 7)) for i in range(200)
        ]
        wire = serialize_stream(cmds)
        assert decompress(compress(wire)) == wire

    def test_max_chain_zero_still_correct(self):
        data = b"hello world " * 50
        assert decompress(compress(data, max_chain=0)) == data


class TestCompressionQuality:
    def test_redundant_data_compresses_well(self):
        data = b"the quick brown fox " * 200
        ratio = compression_ratio(data)
        assert ratio < 0.1

    def test_command_stream_reaches_papers_ballpark(self):
        """LZ4 on command streams: ~70% reduction (paper §V-A)."""
        from repro.gles.commands import make_command
        from repro.gles.serialization import serialize_stream

        # Consecutive frames repeat near-identical sequences.
        frames = []
        for frame in range(30):
            for slot in range(10):
                frames.append(make_command("glBindTexture", 0x0DE1, slot + 4))
                frames.append(
                    make_command("glUniform1f", 0, float(frame % 3))
                )
                frames.append(make_command("glDrawArrays", 4, 0, 36))
        wire = serialize_stream(frames)
        assert compression_ratio(wire) < 0.35

    def test_random_data_does_not_explode(self):
        import random

        rng = random.Random(1)
        data = bytes(rng.getrandbits(8) for _ in range(4000))
        # Worst case bounded: token + extension overhead is small.
        assert len(compress(data)) < len(data) * 1.1

    def test_higher_chain_never_worse_ratio(self):
        data = (b"pattern-one " * 40 + b"pattern-two " * 40) * 5
        weak = len(compress(data, max_chain=1))
        strong = len(compress(data, max_chain=64))
        assert strong <= weak

    def test_ratio_of_empty_is_one(self):
        assert compression_ratio(b"") == 1.0


class TestErrors:
    def test_type_error_on_non_bytes(self):
        with pytest.raises(TypeError):
            compress("string")  # type: ignore[arg-type]

    def test_corrupt_zero_offset(self):
        blob = bytearray(compress(b"abcdabcdabcdabcd" * 10))
        # Find a match offset and zero it out.
        for i in range(len(blob) - 1):
            if blob[i] != 0 or blob[i + 1] != 0:
                continue
        corrupted = bytes([0x04]) + b"abcd" + bytes([0, 0]) + bytes([0])
        with pytest.raises(ValueError):
            decompress(corrupted)


class TestSeededRoundTrip:
    """Deterministic counterpart of the hypothesis properties below —
    the same seeded generator family ``python -m repro fuzz`` uses, so a
    failure here reproduces byte-for-byte on every machine."""

    def test_seeded_random_payloads(self):
        import random

        rng = random.Random(20260806)
        for _ in range(60):
            n = rng.randint(0, 2000)
            data = bytes(rng.randrange(256) for _ in range(n))
            assert decompress(compress(data)) == data

    def test_seeded_repetitive_payloads(self):
        import random

        rng = random.Random(77)
        for _ in range(40):
            motif = bytes(rng.randrange(256)
                          for _ in range(rng.randint(1, 12)))
            data = motif * rng.randint(1, 400)
            assert decompress(compress(data)) == data

    def test_degenerate_sizes(self):
        for data in (b"", b"\x00", b"\xff", b"ab", b"\x00\x00"):
            assert decompress(compress(data)) == data


@settings(max_examples=200, deadline=None)
@given(data=st.binary(max_size=2000))
def test_property_roundtrip(data):
    assert decompress(compress(data)) == data


@settings(max_examples=50, deadline=None)
@given(
    chunk=st.binary(min_size=1, max_size=20),
    repeats=st.integers(min_value=1, max_value=200),
)
def test_property_repetition_roundtrip(chunk, repeats):
    data = chunk * repeats
    assert decompress(compress(data)) == data


@settings(max_examples=50, deadline=None)
@given(data=st.binary(min_size=200, max_size=2000), chain=st.sampled_from([1, 4, 16, 64]))
def test_property_chain_parameter_roundtrip(data, chain):
    assert decompress(compress(data, max_chain=chain)) == data
