"""Command-stream fusion: drop redundant state-setting GLES calls.

The planner's "compiled" transmit path (ROADMAP "auto-boost" item) runs the
per-frame batch through a single left-to-right pass before serialization,
the way nebullvm fuses adjacent model ops.  Two drop rules apply:

* **dedupe** — a state-setter identical to the one that last wrote the same
  state key, with nothing invalidating in between, is a no-op and is
  dropped (e.g. re-binding the already-bound texture, re-issuing the same
  ``glVertexAttribPointer`` every frame).
* **last-write-wins** — a *pure* setter whose key is overwritten later in
  the interval with no reader of that key in between is dead and is
  dropped (e.g. two ``glUniformMatrix4fv`` writes to the same location
  before the draw).

Safety is the whole design.  Commands are never reordered, only dropped,
and every rule is gated on what :mod:`repro.gles.context` actually does:

* Bind calls (``glBindTexture``/``glBindBuffer``/``glBindFramebuffer``/
  ``glBindRenderbuffer``) *create* objects for unseen names and
  ``glUseProgram`` only takes effect for linked programs, so they are
  dedupe-only — never elided by a later write.
* Uniform keys carry a program-epoch token (bumped by every retained
  ``glUseProgram`` and every barrier) because which program a uniform
  lands in is not statically knowable; texture-bind keys carry the active
  unit (a literal once a valid ``glActiveTexture`` is seen, an epoch token
  otherwise); ``glVertexAttribPointer`` keys carry an array-buffer epoch
  because the pointer snapshots the bound buffer.
* Setters whose arguments would raise a GL error (bad capability, negative
  viewport, out-of-range attrib index, ...) are treated as barriers, as is
  every command the tables don't know.
* Draw calls read all pure state, so they pin every pending write; texture
  uploads pin the active-texture unit; queries pin everything.

The one documented divergence: the context's error *latch* may differ for
erroneous streams (a dropped duplicate would have re-raised the same
error).  The latch is not part of ``state_digest`` and the equivalence
property (:func:`render_digest`) is digest-based, so fusion targets
non-strict replay; ``repro fuzz`` exercises exactly this contract.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.gles import enums as gl
from repro.gles.commands import GLCommand, _freeze
from repro.gles.context import (
    GLContext,
    MAX_TEXTURE_UNITS,
    MAX_VERTEX_ATTRIBS,
)


_DRAW_NAMES = frozenset({"glClear", "glDrawArrays", "glDrawElements"})

#: Commands that mutate the *bound texture object* — they read the active
#: unit (pinning any pending ``glActiveTexture``) but touch no pure key.
_TEXTURE_READERS = frozenset({
    "glTexImage2D",
    "glTexSubImage2D",
    "glCompressedTexImage2D",
    "glTexParameteri",
    "glTexParameterf",
    "glGenerateMipmap",
})

#: Read-only queries: they observe state mid-interval, so every pending
#: write becomes permanent, but nothing is invalidated.
_QUERY_NAMES = frozenset({
    "glGetError",
    "glGetString",
    "glGetIntegerv",
    "glGetFloatv",
    "glGetBooleanv",
    "glIsEnabled",
    "glIsBuffer",
    "glIsTexture",
    "glIsProgram",
    "glIsShader",
    "glReadPixels",
    "glCheckFramebufferStatus",
    "glGetShaderiv",
    "glGetProgramiv",
    "glGetShaderInfoLog",
    "glGetProgramInfoLog",
    "glGetAttribLocation",
    "glGetUniformLocation",
})

_VALID_CAPS = frozenset({
    gl.GL_CULL_FACE,
    gl.GL_BLEND,
    gl.GL_DITHER,
    gl.GL_STENCIL_TEST,
    gl.GL_DEPTH_TEST,
    gl.GL_SCISSOR_TEST,
})

_TEXTURE_TARGETS = frozenset({gl.GL_TEXTURE_2D, gl.GL_TEXTURE_CUBE_MAP})
_BUFFER_TARGETS = frozenset({gl.GL_ARRAY_BUFFER, gl.GL_ELEMENT_ARRAY_BUFFER})

#: All ``glUniform*`` entry points write ``uniforms[location]`` wholesale,
#: so any of them fully overwrites any other at the same location.
_UNIFORM_NAMES = frozenset({
    "glUniform1i", "glUniform2i",
    "glUniform1f", "glUniform2f", "glUniform3f", "glUniform4f",
    "glUniform1fv", "glUniform2fv", "glUniform3fv", "glUniform4fv",
    "glUniformMatrix2fv", "glUniformMatrix3fv", "glUniformMatrix4fv",
})

#: Simple fixed-function setters: one state slot each, no argument
#: validation in the context, fully overwritten by the next call.
_SIMPLE_SETTERS = frozenset({
    "glBlendFunc", "glBlendEquation", "glDepthFunc", "glDepthMask",
    "glDepthRangef", "glCullFace", "glFrontFace", "glScissor",
    "glClearColor", "glClearDepthf", "glClearStencil", "glColorMask",
    "glStencilFunc", "glStencilOp", "glStencilMask", "glPolygonOffset",
    "glSampleCoverage",
})

_GENERIC_ATTRIB = frozenset({
    "glVertexAttrib1f", "glVertexAttrib2f",
    "glVertexAttrib3f", "glVertexAttrib4f",
})


@dataclass
class FusionStats:
    """Accounting for one fusion pass (or a running total of many)."""

    commands_in: int = 0
    commands_out: int = 0
    dropped_dedupe: int = 0
    dropped_overwritten: int = 0
    dropped_by_name: Dict[str, int] = field(default_factory=dict)

    @property
    def dropped(self) -> int:
        return self.dropped_dedupe + self.dropped_overwritten

    @property
    def reduction(self) -> float:
        """Fraction of the interval's commands eliminated."""
        if self.commands_in == 0:
            return 0.0
        return self.dropped / self.commands_in

    def merge(self, other: "FusionStats") -> None:
        self.commands_in += other.commands_in
        self.commands_out += other.commands_out
        self.dropped_dedupe += other.dropped_dedupe
        self.dropped_overwritten += other.dropped_overwritten
        for name, n in other.dropped_by_name.items():
            self.dropped_by_name[name] = self.dropped_by_name.get(name, 0) + n


class _Fuser:
    """One left-to-right scan over an interval."""

    def __init__(self, commands: List[GLCommand]):
        self.commands = commands
        #: retained commands; LWW elision nulls an entry after the fact
        self.out: List[Optional[GLCommand]] = []
        #: state key -> (name, frozen args) of the write currently in effect
        self.last_set: Dict[Tuple, Tuple[str, Any]] = {}
        #: state key -> index in ``out`` of a retained pure write that no
        #: reader has observed yet (still elidable)
        self.pending: Dict[Tuple, int] = {}
        # Epoch tokens: a token change makes every key built on it unique,
        # which disables cross-epoch dedupe/elision without any bookkeeping.
        self._epoch = 0
        self.unit_token: Tuple = ("epoch", 0)
        self.prog_token: Tuple = ("epoch", 0)
        self.abuf_token: Tuple = ("epoch", 0)
        self.stats = FusionStats(commands_in=len(commands))

    # -- primitive actions ---------------------------------------------------

    def _retain(self, cmd: GLCommand) -> int:
        self.out.append(cmd)
        return len(self.out) - 1

    def _drop(self, cmd: GLCommand, rule: str) -> None:
        if rule == "dedupe":
            self.stats.dropped_dedupe += 1
        else:
            self.stats.dropped_overwritten += 1
        by = self.stats.dropped_by_name
        by[cmd.name] = by.get(cmd.name, 0) + 1

    def _bump_epoch(self) -> None:
        self._epoch += 1
        token = ("epoch", self._epoch)
        self.unit_token = token
        self.prog_token = token
        self.abuf_token = token

    def _barrier(self, cmd: GLCommand) -> None:
        self._retain(cmd)
        self.pending.clear()
        self.last_set.clear()
        self._bump_epoch()

    def _pin_all(self, cmd: GLCommand) -> None:
        """Readers make every pending write permanent; state keeps."""
        self._retain(cmd)
        self.pending.clear()

    def _pin(self, key: Tuple) -> None:
        self.pending.pop(key, None)

    def _write(
        self, cmd: GLCommand, key: Tuple, elidable: bool = True
    ) -> bool:
        """Apply the dedupe + LWW rules for a setter.  Returns True when
        the command was retained (callers use this for token updates)."""
        ident = (cmd.name, _freeze(cmd.args))
        if self.last_set.get(key) == ident:
            self._drop(cmd, "dedupe")
            return False
        if elidable:
            prev = self.pending.get(key)
            if prev is not None:
                dead = self.out[prev]
                if dead is not None:
                    self.out[prev] = None
                    self._drop(dead, "overwritten")
            idx = self._retain(cmd)
            self.pending[key] = idx
        else:
            self._retain(cmd)
        self.last_set[key] = ident
        return True

    # -- per-command classification -----------------------------------------

    def feed(self, cmd: GLCommand) -> None:
        name = cmd.name
        args = cmd.args
        if name in _DRAW_NAMES:
            self._pin_all(cmd)
            return
        if name in _QUERY_NAMES:
            self._pin_all(cmd)
            return
        if name in _TEXTURE_READERS:
            self._pin(("activetex",))
            self._retain(cmd)
            return
        if name in _UNIFORM_NAMES:
            self._write(cmd, ("uni", self.prog_token, args[0]))
            return
        if name in _SIMPLE_SETTERS:
            self._write(cmd, (name,))
            return
        if name == "glActiveTexture":
            unit = args[0] - gl.GL_TEXTURE0
            if not 0 <= unit < MAX_TEXTURE_UNITS:
                self._barrier(cmd)
                return
            if self._write(cmd, ("activetex",)):
                self.unit_token = ("unit", unit)
            return
        if name == "glUseProgram":
            # Dedupe-only: whether the bind takes effect depends on link
            # state, which this pass cannot see.
            if self._write(cmd, ("useprog",), elidable=False):
                self._epoch += 1
                self.prog_token = ("epoch", self._epoch)
            return
        if name == "glBindTexture":
            if args[0] not in _TEXTURE_TARGETS:
                self._barrier(cmd)
                return
            # The bind reads the active unit: pin any pending switch.
            self._pin(("activetex",))
            self._write(
                cmd, ("texbind", self.unit_token, args[0]), elidable=False
            )
            return
        if name == "glBindBuffer":
            if args[0] not in _BUFFER_TARGETS:
                self._barrier(cmd)
                return
            retained = self._write(cmd, ("bufbind", args[0]), elidable=False)
            if retained and args[0] == gl.GL_ARRAY_BUFFER:
                self._epoch += 1
                self.abuf_token = ("epoch", self._epoch)
            return
        if name == "glBindFramebuffer":
            self._write(cmd, ("fbbind", args[0]), elidable=False)
            return
        if name == "glBindRenderbuffer":
            self._write(cmd, ("rbbind", args[0]), elidable=False)
            return
        if name == "glVertexAttribPointer":
            index, size = args[0], args[1]
            if not 0 <= index < MAX_VERTEX_ATTRIBS or size not in (1, 2, 3, 4):
                self._barrier(cmd)
                return
            self._write(cmd, ("aptr", index, self.abuf_token))
            return
        if name in _GENERIC_ATTRIB:
            if not 0 <= args[0] < MAX_VERTEX_ATTRIBS:
                self._barrier(cmd)
                return
            self._write(cmd, ("agen", args[0]))
            return
        if name in ("glEnableVertexAttribArray", "glDisableVertexAttribArray"):
            if not 0 <= args[0] < MAX_VERTEX_ATTRIBS:
                self._barrier(cmd)
                return
            self._write(cmd, ("aen", args[0]))
            return
        if name in ("glEnable", "glDisable"):
            if args[0] not in _VALID_CAPS:
                self._barrier(cmd)
                return
            self._write(cmd, ("cap", args[0]))
            return
        if name == "glViewport":
            if args[2] < 0 or args[3] < 0:
                self._barrier(cmd)
                return
            self._write(cmd, ("viewport",))
            return
        if name == "glLineWidth":
            if args[0] <= 0:
                self._barrier(cmd)
                return
            self._write(cmd, ("linewidth",))
            return
        if name == "glHint":
            self._write(cmd, ("hint", args[0]))
            return
        if name == "glPixelStorei":
            self._write(cmd, ("pixstore", args[0]))
            return
        # Everything else — object lifecycle, shader/program plumbing,
        # buffer/texture uploads, framebuffer attachment — is a barrier.
        self._barrier(cmd)

    def result(self) -> List[GLCommand]:
        fused = [c for c in self.out if c is not None]
        self.stats.commands_out = len(fused)
        return fused


def fuse_commands(
    commands: List[GLCommand],
) -> Tuple[List[GLCommand], FusionStats]:
    """Fuse one interval.  Returns the retained commands (original order)
    plus drop accounting.  The fused stream executes to the same
    ``state_digest`` at every draw and at the end of the interval."""
    fuser = _Fuser(list(commands))
    for cmd in fuser.commands:
        fuser.feed(cmd)
    return fuser.result(), fuser.stats


def render_digest(commands: List[GLCommand]) -> str:
    """The plan-equivalence oracle: execute on a fresh context and hash the
    full context state at every draw call plus the final state.

    Two streams with equal render digests put identical state in front of
    each rasterization point — the strongest observable-equivalence
    criterion the simulated context offers (the error latch is excluded;
    see the module docstring).
    """
    ctx = GLContext(name="fusion-oracle", strict=False)
    h = hashlib.sha256()
    for cmd in commands:
        ctx.execute(cmd)
        if cmd.spec.is_draw:
            h.update(repr((cmd.name, _freeze(cmd.args))).encode())
            h.update(ctx.state_digest().encode())
    h.update(b"final:")
    h.update(ctx.state_digest().encode())
    return h.hexdigest()
