"""Interface selection policies."""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Callable, List, Optional, Protocol, Sequence

from repro.predict.armax import ARMAXModel

#: Usable Bluetooth application throughput, Mbps (paper: ~21 Mbps link
#: rate; leave headroom for protocol overhead before declaring a surge).
BLUETOOTH_THRESHOLD_MBPS = 16.0


class SwitchDecision(enum.Enum):
    WIFI = "wifi"
    BLUETOOTH = "bluetooth"
    HOLD = "hold"


class SwitchingPolicy(Protocol):
    """Consulted once per traffic epoch."""

    def decide(
        self,
        epoch_mbps: float,
        exogenous: Sequence[float],
        current: str,
    ) -> SwitchDecision:
        ...


class AlwaysWifiPolicy:
    """Optimization disabled: WiFi carries everything (Fig 6(b) baseline)."""

    def decide(
        self, epoch_mbps: float, exogenous: Sequence[float], current: str
    ) -> SwitchDecision:
        return SwitchDecision.WIFI if current != "wifi" else SwitchDecision.HOLD


class AlwaysBluetoothPolicy:
    """Throughput-blind lower bound; surges overflow the BT queue."""

    def decide(
        self, epoch_mbps: float, exogenous: Sequence[float], current: str
    ) -> SwitchDecision:
        return (
            SwitchDecision.BLUETOOTH
            if current != "bluetooth"
            else SwitchDecision.HOLD
        )


class ReactivePolicy:
    """Switch to WiFi only once observed demand already exceeds Bluetooth.

    The wakeup latency (100–500 ms) is paid *during* the surge: packets
    queue behind the waking radio, which is the frame-jitter failure mode
    the paper's predictive design exists to avoid.
    """

    def __init__(
        self,
        threshold_mbps: float = BLUETOOTH_THRESHOLD_MBPS,
        cooldown_epochs: int = 20,
    ):
        self.threshold_mbps = threshold_mbps
        self.cooldown_epochs = cooldown_epochs
        self._quiet_epochs = 0

    def decide(
        self, epoch_mbps: float, exogenous: Sequence[float], current: str
    ) -> SwitchDecision:
        if epoch_mbps > self.threshold_mbps:
            self._quiet_epochs = 0
            return (
                SwitchDecision.WIFI if current != "wifi" else SwitchDecision.HOLD
            )
        self._quiet_epochs += 1
        if current == "wifi" and self._quiet_epochs >= self.cooldown_epochs:
            return SwitchDecision.BLUETOOTH
        return SwitchDecision.HOLD


class PlannerPolicy:
    """Radio selection delegated to a committed execution plan (repro.plan).

    Where the other policies reason about *traffic*, this one reasons
    about the whole plan: a :class:`~repro.plan.planner.SessionPlanner`
    has probed every viable backend and committed to one, and the radio
    follows the committed backend through ``BACKEND_RADIO``.  Each epoch
    the policy feeds the session's measured frame latency (from
    ``latency_source``, typically the telemetry bank's
    ``frame_response_ms`` series) to the plan's drift watchdog; a
    sustained departure from the probe-time baseline re-plans, and the
    radio follows the new commitment on the next epoch.
    """

    def __init__(
        self,
        planner,
        latency_source: Optional[Callable[[], Optional[float]]] = None,
        controller=None,
        epoch_ms: float = 100.0,
    ):
        # Local import: repro.switching stays importable without pulling
        # the planner stack (and its codec/apps dependencies) eagerly.
        from repro.plan.planner import ReplanController

        self.planner = planner
        self.controller = controller or ReplanController(planner)
        self.latency_source = latency_source
        self.epoch_ms = epoch_ms
        self._epochs = 0
        #: latest latency residual vs the committed plan's probed baseline;
        #: the switching controller forwards it to telemetry.track_residual
        self.last_residual: Optional[float] = None

    def decide(
        self, epoch_mbps: float, exogenous: Sequence[float], current: str
    ) -> SwitchDecision:
        self._epochs += 1
        if self.planner.decision is None:
            self.planner.probe_and_commit()
        measured = (
            self.latency_source() if self.latency_source is not None else None
        )
        if measured is not None:
            self.controller.observe_latency(
                measured, at_ms=self._epochs * self.epoch_ms
            )
            self.last_residual = self.controller.last_residual
        radio = self.planner.decision.radio
        if radio == current:
            return SwitchDecision.HOLD
        return (
            SwitchDecision.WIFI
            if radio == "wifi"
            else SwitchDecision.BLUETOOTH
        )


class PredictivePolicy:
    """The paper's ARMAX-driven predictive switcher.

    Each epoch the model ingests the traffic sample plus the selected
    exogenous attributes (touch frequency and textures per frame, the AIC
    winners) and forecasts ``horizon_epochs`` ahead (500 ms at the paper's
    settings).  A forecast surge wakes WiFi before demand arrives; traffic
    falls back to Bluetooth only after both forecast and observation stay
    clear of the threshold for a cooldown.
    """

    def __init__(
        self,
        n_inputs: int = 2,
        threshold_mbps: float = BLUETOOTH_THRESHOLD_MBPS,
        horizon_epochs: int = 5,
        p: int = 3,
        q: int = 2,
        b: int = 2,
        cooldown_epochs: int = 20,
        warmup_epochs: int = 30,
    ):
        self.model = ARMAXModel(p=p, q=q, b=b, n_inputs=n_inputs)
        self.threshold_mbps = threshold_mbps
        self.horizon_epochs = horizon_epochs
        self.cooldown_epochs = cooldown_epochs
        self.warmup_epochs = warmup_epochs
        self._quiet_epochs = 0
        self.forecasts: List[List[float]] = []
        #: latest one-step-ahead RLS residual; the telemetry layer's
        #: drift detector reads this after every epoch
        self.last_residual: Optional[float] = None

    def decide(
        self, epoch_mbps: float, exogenous: Sequence[float], current: str
    ) -> SwitchDecision:
        self.last_residual = self.model.observe(epoch_mbps, list(exogenous))
        if self.model.observations < self.warmup_epochs:
            # Cold model: be conservative, keep WiFi up.
            return (
                SwitchDecision.WIFI if current != "wifi" else SwitchDecision.HOLD
            )
        forecast = self.model.forecast(self.horizon_epochs)
        self.forecasts.append(forecast)
        surge_ahead = any(f > self.threshold_mbps for f in forecast)
        surge_now = epoch_mbps > self.threshold_mbps
        if surge_ahead or surge_now:
            self._quiet_epochs = 0
            return (
                SwitchDecision.WIFI if current != "wifi" else SwitchDecision.HOLD
            )
        self._quiet_epochs += 1
        if current == "wifi" and self._quiet_epochs >= self.cooldown_epochs:
            return SwitchDecision.BLUETOOTH
        return SwitchDecision.HOLD
