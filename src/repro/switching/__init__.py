"""Energy-saving interface switching (paper §V-B).

The controller samples offered traffic each epoch and decides which radio
should carry the stream.  Policies:

* ``AlwaysWifiPolicy`` — the "optimization disabled" comparison of Fig 6(b);
* ``AlwaysBluetoothPolicy`` — a lower bound that sacrifices throughput;
* ``ReactivePolicy`` — switch after demand already exceeds Bluetooth,
  paying the WiFi wakeup latency in queued packets;
* ``PredictivePolicy`` — the paper's design: an online ARMAX forecast over
  a 500 ms horizon wakes WiFi *before* the surge lands;
* ``PlannerPolicy`` — delegates the radio to the committed execution plan
  from :mod:`repro.plan` and feeds its drift watchdog each epoch.
"""

from repro.switching.controller import SwitchingController, SwitchingStats
from repro.switching.policies import (
    AlwaysBluetoothPolicy,
    AlwaysWifiPolicy,
    PlannerPolicy,
    PredictivePolicy,
    ReactivePolicy,
    SwitchDecision,
    SwitchingPolicy,
)

__all__ = [
    "AlwaysBluetoothPolicy",
    "AlwaysWifiPolicy",
    "PlannerPolicy",
    "PredictivePolicy",
    "ReactivePolicy",
    "SwitchDecision",
    "SwitchingController",
    "SwitchingPolicy",
    "SwitchingStats",
]
