"""The GBooster wrapper library.

``build_wrapper_library`` produces a ``libGLESv2.so`` replacement whose
symbols forward every intercepted call to an *interceptor* callback instead
of (or in addition to) the native implementation, covering the three call
routes of §IV-A:

1. **Direct linkage** — the wrapper exports every GL entry point, and being
   preloaded it shadows the native library at resolution time.
2. **eglGetProcAddress** — the wrapper exports its own
   ``eglGetProcAddress`` returning pointers to wrapper functions.
3. **dlopen/dlsym** — the wrapper interposes these so that a dlopen of the
   native soname yields a handle whose dlsym resolves into the wrapper.

The interceptor is any callable ``(GLCommand) -> Any``; GBooster's client
runtime supplies one that serializes and forwards, while tests supply
recorders.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Optional

from repro.gles.commands import COMMANDS, GLCommand, make_command
from repro.linker.library import SharedLibrary
from repro.linker.linker import DynamicLinker

NATIVE_GLES_SONAME = "libGLESv2.so"
NATIVE_EGL_SONAME = "libEGL.so"
WRAPPER_SONAME = "libGBooster.so"


@dataclass
class InterceptionStats:
    """Counters proving every route went through the wrapper."""

    by_route: Dict[str, int] = field(
        default_factory=lambda: {"direct": 0, "getprocaddress": 0, "dlsym": 0}
    )
    by_command: Dict[str, int] = field(default_factory=dict)

    def bump(self, route: str, command: str) -> None:
        self.by_route[route] = self.by_route.get(route, 0) + 1
        self.by_command[command] = self.by_command.get(command, 0) + 1

    @property
    def total(self) -> int:
        return sum(self.by_route.values())


class _WrapperHandle:
    """The fake handle our interposed dlopen returns for GL sonames."""

    def __init__(self, library: SharedLibrary):
        self.library = library


def build_wrapper_library(
    interceptor: Callable[[GLCommand], Any],
    linker: Optional[DynamicLinker] = None,
    stats: Optional[InterceptionStats] = None,
    egl_exports: Optional[Dict[str, Callable[..., Any]]] = None,
    spans: Optional[Any] = None,
) -> SharedLibrary:
    """Create the wrapper library and (optionally) interpose dl* calls.

    ``egl_exports`` lets the client runtime add its rewritten EGL entry
    points (``eglSwapBuffers`` above all, §IV-C/§VI-A) into the same
    library so they shadow the native EGL.

    ``spans`` (a :class:`repro.obs.spans.SpanRecorder`) makes every stub
    call emit an instant "intercept" mark tagged with its call route —
    the per-call view the stage-level intercept span summarizes.
    """
    stats = stats if stats is not None else InterceptionStats()
    wrapper = SharedLibrary(soname=NATIVE_GLES_SONAME)
    wrapper.stats = stats  # type: ignore[attr-defined]

    def make_stub(command_name: str, route: str) -> Callable[..., Any]:
        def stub(*args: Any) -> Any:
            stats.bump(route, command_name)
            if spans is not None:
                spans.mark(
                    "app", "intercept", track="wrapper",
                    command=command_name, route=route,
                )
            return interceptor(make_command(command_name, *args))

        stub.__name__ = command_name
        return stub

    # Route 1: export every registered GL entry point.
    for name in sorted(COMMANDS):
        wrapper.export(name, make_stub(name, "direct"))

    # Route 2: our own eglGetProcAddress hands out wrapper pointers that
    # account their calls separately so tests can verify the route.
    proc_cache: Dict[str, Callable[..., Any]] = {}

    def egl_get_proc_address(name: str) -> Optional[Callable[..., Any]]:
        if name in COMMANDS:
            if name not in proc_cache:
                proc_cache[name] = make_stub(name, "getprocaddress")
            return proc_cache[name]
        if egl_exports and name in egl_exports:
            return egl_exports[name]
        return None

    wrapper.export("eglGetProcAddress", egl_get_proc_address)

    for name, fn in (egl_exports or {}).items():
        if name not in wrapper:
            wrapper.export(name, fn)

    # Route 3: interpose dlopen/dlsym in the process's linker so loads of
    # the native GL sonames come back to us.
    if linker is not None:
        dlsym_cache: Dict[str, Callable[..., Any]] = {}
        native_dlopen = linker._native_dlopen
        native_dlsym = linker._native_dlsym

        def wrapped_dlopen(soname: str) -> Any:
            if soname in (NATIVE_GLES_SONAME, NATIVE_EGL_SONAME):
                return _WrapperHandle(wrapper)
            return native_dlopen(soname)

        def wrapped_dlsym(handle: Any, name: str) -> Any:
            if isinstance(handle, _WrapperHandle):
                if name in COMMANDS:
                    if name not in dlsym_cache:
                        dlsym_cache[name] = make_stub(name, "dlsym")
                    return dlsym_cache[name]
                sym = handle.library.lookup(name)
                if sym is not None:
                    return sym
                raise KeyError(f"dlsym: wrapper has no {name}")
            return native_dlsym(handle, name)

        linker.set_dl_interposers(wrapped_dlopen, wrapped_dlsym)

    return wrapper


def build_native_gles_library(
    executor: Callable[[GLCommand], Any],
    soname: str = NATIVE_GLES_SONAME,
) -> SharedLibrary:
    """The 'genuine' GL library: symbols execute directly on a context.

    Used for local-execution baselines and as the service device's GL
    implementation.
    """
    native = SharedLibrary(soname=soname)

    def make_entry(command_name: str) -> Callable[..., Any]:
        def entry(*args: Any) -> Any:
            return executor(make_command(command_name, *args))

        entry.__name__ = command_name
        return entry

    for name in sorted(COMMANDS):
        native.export(name, make_entry(name))

    def egl_get_proc_address(name: str) -> Optional[Callable[..., Any]]:
        sym = native.lookup(name)
        return sym.fn if sym is not None else None

    native.export("eglGetProcAddress", egl_get_proc_address)
    return native
