"""Hierarchical span tracing for the offload pipeline.

A *span* is a named, categorized time interval — one stage of one frame's
journey through the acceleration pipeline (intercept → encode → transmit →
execute → video_encode → return → present), one fleet task's queue wait,
one migration.  Substrates record spans through the simulator's
:class:`SpanRecorder` (``sim.spans``); the aggregator in
``repro.metrics.spans`` turns them into per-stage percentiles and the
exporter in ``repro.obs.export`` renders them as Chrome trace-event JSON
loadable in Perfetto / ``chrome://tracing``.

Hierarchy is explicit: a stage span opened with ``parent=<handle>`` carries
its parent's qualified name and ``depth + 1``, so tests can assert nesting
and trace viewers can group a frame's stages under its root span.

Storage is a bounded ring (newest kept, ``dropped`` counted) so tracing is
safe to leave on for arbitrarily long sessions.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Deque, Dict, List, Optional

#: default span-ring size; a 60 s offload session emits ~15 k spans
DEFAULT_CAPACITY = 100_000


@dataclass
class Span:
    """One completed, timed pipeline stage."""

    category: str
    name: str
    start_ms: float
    end_ms: float
    track: str = "main"          # trace-viewer row (thread) this span renders on
    frame_id: Optional[int] = None
    parent: Optional[str] = None  # qualified name of the enclosing span
    depth: int = 0
    #: instant occurrences (marks) are points, not latencies — aggregation
    #: skips them, and the exporter renders them as "I" events
    instant: bool = False
    args: Dict[str, Any] = field(default_factory=dict)

    @property
    def duration_ms(self) -> float:
        return self.end_ms - self.start_ms

    @property
    def qualified_name(self) -> str:
        return f"{self.category}.{self.name}"


class OpenSpan:
    """Handle for an in-flight span; ``end()`` seals it into the recorder."""

    __slots__ = (
        "recorder", "category", "name", "start_ms", "track",
        "frame_id", "parent", "depth", "args", "closed",
    )

    def __init__(
        self,
        recorder: "SpanRecorder",
        category: str,
        name: str,
        start_ms: float,
        track: str,
        frame_id: Optional[int],
        parent: Optional["OpenSpan"],
        args: Dict[str, Any],
    ):
        self.recorder = recorder
        self.category = category
        self.name = name
        self.start_ms = start_ms
        self.track = track
        self.frame_id = frame_id
        self.parent = parent
        self.depth = (parent.depth + 1) if parent is not None else 0
        self.args = args
        self.closed = False

    @property
    def qualified_name(self) -> str:
        return f"{self.category}.{self.name}"

    def end(self, at_ms: Optional[float] = None, **args: Any) -> Optional[Span]:
        """Close the span at ``at_ms`` (default: the recorder's clock)."""
        if self.closed:
            return None
        self.closed = True
        merged = dict(self.args)
        merged.update(args)
        return self.recorder.add(
            self.category,
            self.name,
            self.start_ms,
            self.recorder.clock() if at_ms is None else at_ms,
            track=self.track,
            frame_id=self.frame_id,
            parent=self.parent.qualified_name if self.parent else None,
            depth=self.depth,
            **merged,
        )


class SpanRecorder:
    """Bounded store of completed spans, fed by the whole data path."""

    def __init__(
        self,
        clock: Optional[Callable[[], float]] = None,
        capacity: int = DEFAULT_CAPACITY,
    ):
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.clock = clock or (lambda: 0.0)
        self.capacity = capacity
        self.spans: Deque[Span] = deque()
        self.enabled = True
        #: spans evicted once the ring filled (newest are kept)
        self.dropped = 0
        #: instant marks (zero-duration occurrences) ride the same ring

    # -- recording -----------------------------------------------------------

    def add(
        self,
        category: str,
        name: str,
        start_ms: float,
        end_ms: float,
        track: str = "main",
        frame_id: Optional[int] = None,
        parent: Optional[str] = None,
        depth: int = 0,
        instant: bool = False,
        **args: Any,
    ) -> Optional[Span]:
        """Record a completed span with explicit timestamps."""
        if not self.enabled:
            return None
        if end_ms < start_ms:
            start_ms = end_ms
        span = Span(
            category=category,
            name=name,
            start_ms=start_ms,
            end_ms=end_ms,
            track=track,
            frame_id=frame_id,
            parent=parent,
            depth=depth,
            instant=instant,
            args=args,
        )
        self.spans.append(span)
        if len(self.spans) > self.capacity:
            self.spans.popleft()
            self.dropped += 1
        return span

    def begin(
        self,
        category: str,
        name: str,
        track: str = "main",
        frame_id: Optional[int] = None,
        parent: Optional[OpenSpan] = None,
        **args: Any,
    ) -> OpenSpan:
        """Open a span at the current clock; close it with ``handle.end()``."""
        return OpenSpan(
            self, category, name, self.clock(), track, frame_id, parent, args
        )

    def mark(
        self,
        category: str,
        name: str,
        track: str = "main",
        frame_id: Optional[int] = None,
        **args: Any,
    ) -> Optional[Span]:
        """An instant occurrence (zero-duration span) at the current clock."""
        now = self.clock()
        return self.add(
            category, name, now, now, track=track, frame_id=frame_id,
            instant=True, **args,
        )

    # -- queries -------------------------------------------------------------

    def by_name(self, name: str) -> List[Span]:
        return [s for s in self.spans if s.name == name]

    def by_category(self, category: str) -> List[Span]:
        return [s for s in self.spans if s.category == category]

    def categories(self) -> List[str]:
        return sorted({s.category for s in self.spans})

    def stage_names(self) -> List[str]:
        return sorted({s.name for s in self.spans})

    def __len__(self) -> int:
        return len(self.spans)

    def clear(self) -> None:
        self.spans.clear()
        self.dropped = 0
