"""Chrome trace-event export: schema, phases, metadata, round-trip."""

import json

import pytest

from repro.obs.export import (
    TRACE_SCHEMA,
    chrome_trace,
    merged_chrome_trace,
    trace_categories,
    validate_chrome_trace,
    write_chrome_trace,
)
from repro.obs.spans import SpanRecorder


def recorder_with_spans():
    rec = SpanRecorder()
    rec.add("frame", "frame", 0.0, 20.0, track="engine", frame_id=1)
    rec.add("app", "intercept", 0.0, 2.0, track="engine", frame_id=1,
            parent="frame.frame", depth=1)
    rec.add("net", "transmit", 2.0, 6.0, track="uplink", frame_id=1,
            parent="frame.frame", depth=1, bytes=512)
    rec.add("dispatch", "assign", 1.5, 1.5, track="client",
            instant=True, node="shield")
    return rec


class TestExport:
    def test_valid_trace_from_recorded_spans(self):
        trace = chrome_trace(recorder_with_spans())
        assert validate_chrome_trace(trace) == []
        assert trace["otherData"]["schema"] == TRACE_SCHEMA
        assert trace["otherData"]["span_count"] == 4
        assert trace["displayTimeUnit"] == "ms"

    def test_complete_span_becomes_x_event_in_microseconds(self):
        trace = chrome_trace(recorder_with_spans())
        (transmit,) = [
            e for e in trace["traceEvents"] if e["name"] == "transmit"
        ]
        assert transmit["ph"] == "X"
        assert transmit["ts"] == pytest.approx(2000.0)
        assert transmit["dur"] == pytest.approx(4000.0)
        assert transmit["args"]["bytes"] == 512
        assert transmit["args"]["frame_id"] == 1
        assert transmit["args"]["parent"] == "frame.frame"

    def test_mark_becomes_instant_event(self):
        trace = chrome_trace(recorder_with_spans())
        (assign,) = [
            e for e in trace["traceEvents"] if e["name"] == "assign"
        ]
        assert assign["ph"] == "I"
        assert assign["s"] == "t"
        assert "dur" not in assign

    def test_every_track_gets_thread_name_metadata(self):
        trace = chrome_trace(recorder_with_spans())
        meta = [e for e in trace["traceEvents"] if e["ph"] == "M"]
        named = {e["args"]["name"]: e["tid"] for e in meta}
        assert set(named) == {"engine", "uplink", "client"}
        # tids are deterministic: alphabetical track order
        assert named["client"] < named["engine"] < named["uplink"]
        span_tids = {
            e["tid"] for e in trace["traceEvents"] if e["ph"] != "M"
        }
        assert span_tids == set(named.values())

    def test_categories_ignore_metadata_events(self):
        trace = chrome_trace(recorder_with_spans())
        assert trace_categories(trace) == [
            "app", "dispatch", "frame", "net",
        ]

    def test_metadata_merged_into_other_data(self):
        trace = chrome_trace(recorder_with_spans(), metadata={"run": "t1"})
        assert trace["otherData"]["run"] == "t1"


class TestValidation:
    def test_rejects_non_object(self):
        assert validate_chrome_trace([]) != []

    def test_rejects_wrong_schema(self):
        trace = chrome_trace(recorder_with_spans())
        trace["otherData"]["schema"] = "something/else"
        assert any("schema" in p for p in validate_chrome_trace(trace))

    def test_rejects_missing_event_keys(self):
        trace = chrome_trace(recorder_with_spans())
        del trace["traceEvents"][-1]["ts"]
        assert any("missing keys" in p for p in validate_chrome_trace(trace))

    def test_rejects_unknown_phase_and_negative_duration(self):
        trace = chrome_trace(recorder_with_spans())
        events = [e for e in trace["traceEvents"] if e["ph"] == "X"]
        events[0]["ph"] = "B"
        events[1]["dur"] = -1.0
        problems = validate_chrome_trace(trace)
        assert any("unknown phase" in p for p in problems)
        assert any("dur" in p for p in problems)

    def test_rejects_empty_trace(self):
        assert "'traceEvents' is empty" in validate_chrome_trace(
            chrome_trace(SpanRecorder())
        )


class TestWrite:
    def test_round_trip_json(self, tmp_path):
        path = tmp_path / "trace.json"
        written = write_chrome_trace(str(path), recorder_with_spans())
        loaded = json.loads(path.read_text())
        assert loaded == written
        assert validate_chrome_trace(loaded) == []

    def test_write_refuses_invalid_trace(self, tmp_path):
        path = tmp_path / "trace.json"
        with pytest.raises(ValueError):
            write_chrome_trace(str(path), SpanRecorder())
        assert not path.exists()


class TestCounterTracks:
    def bank(self):
        from repro.obs.timeseries import TimeSeriesBank

        bank = TimeSeriesBank(window_ms=1000.0)
        s = bank.series("net.offered_mbps", agg="mean", link="wifi")
        s.record(100.0, 12.0)
        s.record(1500.0, 18.0)
        bank.series("cache.hit_rate", agg="last").record(500.0, 0.75)
        return bank

    def test_series_render_as_counter_events(self):
        trace = chrome_trace(recorder_with_spans(), series=self.bank())
        assert validate_chrome_trace(trace) == []
        counters = [e for e in trace["traceEvents"] if e["ph"] == "C"]
        assert len(counters) == 3
        (hit_rate,) = [
            e for e in counters if e["name"] == "cache.hit_rate"
        ]
        assert hit_rate["cat"] == "telemetry"
        assert hit_rate["args"] == {"cache.hit_rate": 0.75}
        offered = [
            e for e in counters
            if e["name"] == "net.offered_mbps{link=wifi}"
        ]
        assert [e["ts"] for e in offered] == [0.0, 1_000_000.0]
        assert offered[0]["args"]["net.offered_mbps"] == 12.0

    def test_plain_iterable_of_series_accepted(self):
        from repro.obs.timeseries import TimeSeries

        ts = TimeSeries("fps", window_ms=1000.0, agg="count")
        ts.record(100.0)
        trace = chrome_trace(recorder_with_spans(), series=[ts])
        assert any(e["ph"] == "C" for e in trace["traceEvents"])

    def test_counter_event_with_bad_args_rejected(self):
        trace = chrome_trace(recorder_with_spans())
        trace["traceEvents"].append(
            {"name": "bad", "cat": "telemetry", "ph": "C", "ts": 0,
             "pid": 1, "tid": 0, "args": {"v": "not-a-number"}}
        )
        assert validate_chrome_trace(trace)


class TestAlertEvents:
    def test_alerts_render_as_process_instants(self):
        from repro.obs.slo import Alert

        alerts = [
            Alert(at_ms=1000.0, source="frame_p99_latency",
                  severity="page", state="breached", message="burning hot",
                  burn_short=8.0, burn_long=5.0),
            Alert(at_ms=2000.0, source="prediction_drift",
                  severity="warn", state="drifting", message="model off"),
        ]
        trace = chrome_trace(recorder_with_spans(), alerts=alerts)
        assert validate_chrome_trace(trace) == []
        events = [
            e for e in trace["traceEvents"] if e.get("cat") == "alert"
        ]
        assert [e["name"] for e in events] == [
            "frame_p99_latency", "prediction_drift"
        ]
        assert all(e["ph"] == "I" and e["s"] == "p" for e in events)
        assert events[0]["args"]["severity"] == "page"
        assert events[0]["ts"] == 1_000_000.0
        assert "alert" in trace_categories(trace)

    def test_alert_args_carry_full_label_set(self):
        # A breach instant must be self-describing in the Perfetto UI:
        # burn rates, the breached series, label selector, and exemplar
        # trace ids all ride in args.
        from repro.obs.slo import Alert

        alert = Alert(
            at_ms=1500.0, source="frame_p99_latency", severity="page",
            state="breached", message="hot",
            burn_short=8.125, burn_long=5.0,
            series="client.frame_response_ms",
            labels=(("device", "nexus5"), ("backend", "wifi_remote")),
            exemplars=("aabb", "ccdd"),
        )
        trace = chrome_trace(recorder_with_spans(), alerts=[alert])
        assert validate_chrome_trace(trace) == []
        (event,) = [
            e for e in trace["traceEvents"] if e.get("cat") == "alert"
        ]
        assert event["args"] == {
            "severity": "page",
            "state": "breached",
            "message": "hot",
            "burn_short": 8.125,
            "burn_long": 5.0,
            "series": "client.frame_response_ms",
            "labels": {"backend": "wifi_remote", "device": "nexus5"},
            "exemplars": ["aabb", "ccdd"],
        }

    def test_write_round_trip_with_overlays(self, tmp_path):
        from repro.obs.slo import Alert
        from repro.obs.timeseries import TimeSeries

        ts = TimeSeries("fps", window_ms=1000.0, agg="count")
        ts.record(100.0)
        path = tmp_path / "trace.json"
        write_chrome_trace(
            str(path), recorder_with_spans(),
            series=[ts],
            alerts=[Alert(at_ms=1.0, source="s", severity="info",
                          state="ok", message="m")],
        )
        loaded = json.loads(path.read_text())
        assert validate_chrome_trace(loaded) == []
        phases = {e["ph"] for e in loaded["traceEvents"]}
        assert {"X", "I", "M", "C"} <= phases


def recorder_with_traced_frame(trace_id="aa11"):
    """One frame whose spans all carry the same wire trace id."""
    rec = SpanRecorder()
    rec.add("app", "intercept", 0.0, 2.0, track="client",
            frame_id=1, trace_id=trace_id)
    rec.add("net", "transmit", 2.0, 6.0, track="uplink",
            frame_id=1, trace_id=trace_id)
    rec.add("server", "execute", 6.0, 9.0, track="server",
            frame_id=1, trace_id=trace_id)
    rec.add("app", "present", 9.0, 9.5, track="client",
            frame_id=1, trace_id=trace_id)
    return rec


class TestFlowEvents:
    def test_flow_chain_spans_open_step_finish(self):
        trace = chrome_trace(recorder_with_traced_frame(), flows=True)
        assert validate_chrome_trace(trace) == []
        flows = [
            e for e in trace["traceEvents"] if e["ph"] in ("s", "t", "f")
        ]
        # 4 traced spans chain as s, t, t, f in time order.
        assert [e["ph"] for e in sorted(flows, key=lambda e: e["ts"])] == [
            "s", "t", "t", "f",
        ]
        assert all(e["id"] == "aa11" for e in flows)
        assert all(e["name"] == "frame_flow" for e in flows)
        finish = [e for e in flows if e["ph"] == "f"]
        assert finish[0]["bp"] == "e"

    def test_flow_events_require_binding_id(self):
        trace = chrome_trace(recorder_with_traced_frame(), flows=True)
        for event in trace["traceEvents"]:
            if event["ph"] in ("s", "t", "f"):
                event.pop("id", None)
        problems = validate_chrome_trace(trace)
        assert any("binding 'id'" in p for p in problems)

    def test_single_span_trace_emits_no_flow(self):
        rec = SpanRecorder()
        rec.add("app", "intercept", 0.0, 2.0, track="client",
                trace_id="lonely")
        trace = chrome_trace(rec, flows=True)
        assert not any(
            e["ph"] in ("s", "t", "f") for e in trace["traceEvents"]
        )

    def test_flows_off_preserves_historical_bytes(self):
        # flows defaults to False, and the flag must not perturb the
        # untraced export: historical artifacts stay byte-identical.
        rec = recorder_with_spans()
        base = json.dumps(chrome_trace(rec), sort_keys=True)
        off = json.dumps(chrome_trace(rec, flows=False), sort_keys=True)
        assert base == off


class TestMergedTrace:
    def parts(self):
        from repro.obs.slo import Alert

        return [
            {"shard": 1, "session": "s0",
             "spans": recorder_with_traced_frame("bb22")},
            {"shard": 0, "session": "s1",
             "spans": recorder_with_traced_frame("cc33"),
             "alerts": [Alert(at_ms=1.0, source="fps_floor",
                              severity="page", state="breached",
                              message="m", exemplars=("cc33",))]},
            {"shard": 0, "session": "s0",
             "spans": recorder_with_spans()},
        ]

    def test_pids_assigned_in_sorted_shard_session_order(self):
        trace = merged_chrome_trace(self.parts(), flows=True)
        assert validate_chrome_trace(trace) == []
        # Input order is deliberately scrambled; pids follow
        # sorted (shard, session) so shard return order can't matter.
        assert trace["otherData"]["parts"] == [
            {"pid": 1, "shard": 0, "session": "s0"},
            {"pid": 2, "shard": 0, "session": "s1"},
            {"pid": 3, "shard": 1, "session": "s0"},
        ]
        names = {
            e["pid"]: e["args"]["name"]
            for e in trace["traceEvents"]
            if e["ph"] == "M" and e["name"] == "process_name"
        }
        assert names == {
            1: "shard0/s0", 2: "shard0/s1", 3: "shard1/s0",
        }

    def test_merge_order_invariant(self):
        parts = self.parts()
        a = json.dumps(merged_chrome_trace(parts, flows=True),
                       sort_keys=True)
        b = json.dumps(merged_chrome_trace(list(reversed(parts)),
                                           flows=True), sort_keys=True)
        assert a == b

    def test_merged_counts_and_per_part_isolation(self):
        trace = merged_chrome_trace(self.parts(), flows=True)
        assert trace["otherData"]["span_count"] == 12
        # Each part's flow chain stays inside its own pid.
        by_id = {}
        for e in trace["traceEvents"]:
            if e["ph"] in ("s", "t", "f"):
                by_id.setdefault(e["id"], set()).add(e["pid"])
        assert by_id == {"bb22": {3}, "cc33": {2}}
        alert_pids = {
            e["pid"] for e in trace["traceEvents"]
            if e.get("cat") == "alert"
        }
        assert alert_pids == {2}
