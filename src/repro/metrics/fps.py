"""Frame-rate metrics.

The paper's §VII-B metrics, computed from presentation timestamps:

* **median FPS** — median of the per-second instantaneous frame rate; it
  "naturally omits fringe results, for instance 0 FPS or 60 FPS which
  commonly occur during a game's loading screens and menus";
* **FPS stability** — "how much of a game session is played within a 20
  percent range of median FPS";
* **average response time** — issue-to-presentation latency; equals
  1000/FPS for local execution, plus the offload pipeline time otherwise
  (Eq. 5).
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.apps.engine import FrameRecord


@dataclass
class FpsMetrics:
    median_fps: float
    stability: float                # fraction of seconds within +/-20%
    mean_response_ms: float
    frame_count: int
    session_seconds: float
    fps_series: List[float]

    def __str__(self) -> str:  # pragma: no cover - human output
        return (
            f"median {self.median_fps:.1f} FPS, "
            f"stability {self.stability * 100:.0f}%, "
            f"response {self.mean_response_ms:.1f} ms"
        )


def fps_timeline(
    presentation_times_ms: Sequence[float], bucket_ms: float = 1000.0
) -> List[float]:
    """Instantaneous FPS per *full* time bucket.

    The trailing partial bucket is dropped: scaling, say, 3 frames in a
    100 ms remainder as a full 1 s bucket would report 3 FPS and drag the
    median/stability down.  Sessions shorter than one bucket pro-rate
    instead, so a 500 ms burst of 30 frames reads as 60 FPS, not 30.
    """
    if not presentation_times_ms:
        return []
    times = sorted(presentation_times_ms)
    start, end = times[0], times[-1]
    if end <= start:
        return [float(len(times))]
    span = end - start
    scale = 1000.0 / bucket_ms
    n_full = int(span // bucket_ms)
    if n_full == 0:
        # Sub-bucket session: pro-rate over the observed span.
        return [len(times) * 1000.0 / span]
    counts = [0] * n_full
    for t in times:
        idx = int((t - start) // bucket_ms)
        if idx < n_full:
            counts[idx] += 1
    return [c * scale for c in counts]


def stability_within(series: Sequence[float], median: float, band: float = 0.2) -> float:
    """Fraction of buckets inside [median*(1-band), median*(1+band)]."""
    if not series or median <= 0:
        return 0.0
    low, high = median * (1.0 - band), median * (1.0 + band)
    inside = sum(1 for v in series if low <= v <= high)
    return inside / len(series)


def compute_fps_metrics(
    frames: Sequence[FrameRecord], bucket_ms: float = 1000.0
) -> FpsMetrics:
    """Full §VII-B metric set from a session's presented frames."""
    presented = [f for f in frames if f.presented_at is not None]
    if not presented:
        return FpsMetrics(0.0, 0.0, 0.0, 0, 0.0, [])
    times = [f.presented_at for f in presented]
    series = fps_timeline(times, bucket_ms=bucket_ms)
    median = statistics.median(series) if series else 0.0
    stability = stability_within(series, median)
    responses = [
        f.response_time_ms for f in presented if f.response_time_ms is not None
    ]
    mean_response = sum(responses) / len(responses) if responses else 0.0
    session_s = (max(times) - min(times)) / 1000.0
    return FpsMetrics(
        median_fps=median,
        stability=stability,
        mean_response_ms=mean_response,
        frame_count=len(presented),
        session_seconds=session_s,
        fps_series=series,
    )
