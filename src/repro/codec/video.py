"""Video-encoder throughput model (the x264 alternative, §V-A).

The paper measured x264 on the ARM CPUs that populate consoles and TV
boxes: roughly 1 MP/s — an order of magnitude below the ~7 MP/s a game
produces raw frames at, so the encoder cannot keep up in real time.  On
x86 PCs it is fast, which is why cloud platforms like OnLive can use it
(and why their frame rate is capped by the encoder settings, §VII-F).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class VideoEncoderModel:
    """Throughput/ratio model of a video encoder on a given CPU class."""

    name: str
    throughput_mp_s: float       # sustainable encode rate
    compression_ratio: float     # raw bytes : encoded bytes
    max_fps: float = 60.0        # encoder configuration cap

    def encode_time_ms(self, pixels: int) -> float:
        if pixels < 0:
            raise ValueError(f"negative pixel count {pixels}")
        return pixels / (self.throughput_mp_s * 1000.0)

    def encoded_bytes(self, pixels: int) -> int:
        raw = pixels * 3
        return max(1, int(raw / self.compression_ratio))

    def sustainable_fps(self, width: int, height: int) -> float:
        """Frames per second the encoder alone can sustain at a resolution."""
        per_frame_ms = self.encode_time_ms(width * height)
        if per_frame_ms <= 0:
            return self.max_fps
        return min(self.max_fps, 1000.0 / per_frame_ms)

    def keeps_up(self, width: int, height: int, fps: float) -> bool:
        return self.sustainable_fps(width, height) >= fps


X264_ARM = VideoEncoderModel(
    name="x264 (ARM, unoptimized)",
    throughput_mp_s=1.0,
    compression_ratio=120.0,
)

X264_X86 = VideoEncoderModel(
    name="x264 (x86)",
    throughput_mp_s=70.0,
    compression_ratio=120.0,
    max_fps=30.0,   # OnLive's encoder setting caps streams at 30 FPS (§VII-F)
)

X264_DATACENTER = VideoEncoderModel(
    name="x264 (datacenter, hardware-assisted)",
    throughput_mp_s=220.0,
    compression_ratio=120.0,
    max_fps=30.0,   # the platform's stream cap, not a throughput limit
)
