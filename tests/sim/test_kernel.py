"""Kernel tests: events, processes, composite waits, determinism."""

import pytest

from repro.sim.kernel import Event, Interrupt, SimulationError, Simulator


def test_clock_starts_at_zero():
    sim = Simulator()
    assert sim.now == 0.0


def test_simple_delay_advances_clock():
    sim = Simulator()
    log = []

    def proc():
        yield 5.0
        log.append(sim.now)
        yield 2.5
        log.append(sim.now)

    sim.spawn(proc())
    sim.run()
    assert log == [5.0, 7.5]


def test_zero_delay_yield_resumes_same_timestamp():
    sim = Simulator()
    log = []

    def proc():
        yield None
        log.append(sim.now)

    sim.spawn(proc())
    sim.run()
    assert log == [0.0]


def test_negative_delay_rejected():
    sim = Simulator()

    def proc():
        yield -1.0

    sim.spawn(proc())
    with pytest.raises(SimulationError):
        sim.run()


def test_event_wakes_waiter_with_value():
    sim = Simulator()
    evt = sim.event("e")
    got = []

    def waiter():
        value = yield evt
        got.append((sim.now, value))

    def trigger():
        yield 3.0
        evt.trigger("payload")

    sim.spawn(waiter())
    sim.spawn(trigger())
    sim.run()
    assert got == [(3.0, "payload")]


def test_event_triggered_twice_raises():
    sim = Simulator()
    evt = sim.event()
    evt.trigger(1)
    with pytest.raises(SimulationError):
        evt.trigger(2)


def test_waiting_on_already_triggered_event_resumes_immediately():
    sim = Simulator()
    evt = sim.event()
    evt.trigger("early")
    got = []

    def waiter():
        yield 4.0
        value = yield evt
        got.append((sim.now, value))

    sim.spawn(waiter())
    sim.run()
    assert got == [(4.0, "early")]


def test_multiple_waiters_wake_in_fifo_order():
    sim = Simulator()
    evt = sim.event()
    order = []

    def waiter(tag):
        yield evt
        order.append(tag)

    for tag in ("a", "b", "c"):
        sim.spawn(waiter(tag))

    def trigger():
        yield 1.0
        evt.trigger(None)

    sim.spawn(trigger())
    sim.run()
    assert order == ["a", "b", "c"]


def test_process_return_value_propagates():
    sim = Simulator()

    def child():
        yield 2.0
        return 42

    def parent():
        result = yield sim.spawn(child())
        return result * 2

    proc = sim.spawn(parent())
    sim.run()
    assert proc.result == 84


def test_result_before_completion_raises():
    sim = Simulator()

    def proc():
        yield 1.0

    p = sim.spawn(proc())
    with pytest.raises(SimulationError):
        _ = p.result


def test_timeout_event():
    sim = Simulator()
    evt = sim.timeout(10.0, value="done")
    got = []

    def waiter():
        value = yield evt
        got.append((sim.now, value))

    sim.spawn(waiter())
    sim.run()
    assert got == [(10.0, "done")]


def test_any_of_returns_first_winner():
    sim = Simulator()
    slow = sim.timeout(10.0, value="slow")
    fast = sim.timeout(4.0, value="fast")
    combined = sim.any_of([slow, fast])
    got = []

    def waiter():
        value = yield combined
        got.append((sim.now, value))

    sim.spawn(waiter())
    sim.run()
    assert got == [(4.0, (1, "fast"))]


def test_all_of_waits_for_every_event():
    sim = Simulator()
    events = [sim.timeout(t, value=t) for t in (3.0, 9.0, 6.0)]
    combined = sim.all_of(events)
    got = []

    def waiter():
        values = yield combined
        got.append((sim.now, values))

    sim.spawn(waiter())
    sim.run()
    assert got == [(9.0, [3.0, 9.0, 6.0])]


def test_all_of_empty_triggers_immediately():
    sim = Simulator()
    combined = sim.all_of([])
    assert combined.triggered
    assert combined.value == []


def test_interrupt_raises_in_waiting_process():
    sim = Simulator()
    caught = []

    def sleeper():
        try:
            yield 100.0
        except Interrupt as exc:
            caught.append((sim.now, exc.cause))

    proc = sim.spawn(sleeper())

    def interrupter():
        yield 5.0
        proc.interrupt("stop")

    sim.spawn(interrupter())
    sim.run()
    assert caught == [(5.0, "stop")]


def test_interrupt_dead_process_is_noop():
    sim = Simulator()

    def quick():
        yield 1.0

    proc = sim.spawn(quick())
    sim.run()
    proc.interrupt("late")  # must not raise
    assert not proc.alive


def test_kill_waiting_process_detaches_from_event():
    sim = Simulator()
    evt = sim.event("never")
    resumed = []

    def waiter():
        yield evt
        resumed.append(sim.now)

    proc = sim.spawn(waiter())

    def killer():
        yield 5.0
        proc.kill()

    sim.spawn(killer())
    sim.run()
    assert not proc.alive
    assert proc.done.triggered
    assert evt._waiters == []
    assert resumed == []


def test_killed_timer_does_not_advance_clock():
    """A cancelled delay leaves a stale heap entry that must be skipped
    WITHOUT dragging the clock to its expiry time."""
    sim = Simulator()

    def timer():
        yield 1_000.0

    proc = sim.spawn(timer())

    def killer():
        yield 5.0
        proc.kill()

    sim.spawn(killer())
    end = sim.run()
    assert end == 5.0
    assert sim.now == 5.0


def test_kill_is_idempotent_and_safe_when_done():
    sim = Simulator()

    def quick():
        yield 1.0

    proc = sim.spawn(quick())
    sim.run()
    proc.kill()  # already finished: must be a no-op
    proc.kill()
    assert not proc.alive


def test_any_of_cleans_up_loser_watchers():
    """The losing watchers must not wait forever on events that never fire."""
    sim = Simulator()
    never = sim.event("never")
    fast = sim.timeout(4.0, value="fast")
    combined = sim.any_of([never, fast])
    sim.run()
    assert combined.triggered
    assert combined.value == (1, "fast")
    # The watcher parked on the never-firing event has been torn down.
    assert never._waiters == []
    assert not any(
        p.alive and p.name.startswith("_anyof.") for p in sim._processes
    )


def test_run_until_limit_stops_clock():
    sim = Simulator()

    def forever():
        while True:
            yield 10.0

    sim.spawn(forever())
    sim.run(until=35.0)
    assert sim.now == 35.0


def test_run_until_process_stops_at_completion():
    sim = Simulator()

    def background():
        while True:
            yield 1.0

    def main():
        yield 12.0
        return "done"

    sim.spawn(background())
    proc = sim.spawn(main())
    result = sim.run_until_process(proc, limit=1000.0)
    assert result == "done"
    assert sim.now == 12.0  # background did not drag the clock further


def test_call_at_runs_callable():
    sim = Simulator()
    log = []
    sim.call_at(7.0, lambda: log.append(sim.now))
    sim.run()
    assert log == [7.0]


def test_call_at_past_raises():
    sim = Simulator()

    def proc():
        yield 10.0
        sim.call_at(5.0, lambda: None)

    sim.spawn(proc())
    with pytest.raises(SimulationError):
        sim.run()


def test_yielding_garbage_raises():
    sim = Simulator()

    def proc():
        yield "nonsense"

    sim.spawn(proc())
    with pytest.raises(SimulationError):
        sim.run()


def test_deterministic_event_ordering():
    """Two identical runs produce identical interleavings."""

    def run_once():
        sim = Simulator(seed=7)
        log = []

        def worker(tag, delay):
            yield delay
            log.append((sim.now, tag))
            yield delay
            log.append((sim.now, tag))

        for tag in range(10):
            sim.spawn(worker(tag, 1.0 + (tag % 3)))
        sim.run()
        return log

    assert run_once() == run_once()


def test_tie_break_is_spawn_order():
    sim = Simulator()
    log = []

    def worker(tag):
        yield 5.0
        log.append(tag)

    for tag in range(5):
        sim.spawn(worker(tag))
    sim.run()
    assert log == [0, 1, 2, 3, 4]


class TestCancellableTimeouts:
    """Regression tests: timeouts must not keep ``run`` alive after they
    have served their purpose (the transport's old RTO-timer leak class)."""

    def test_externally_triggered_timeout_drains_immediately(self):
        sim = Simulator()
        ack = sim.timeout(10_000.0, name="rto")

        def transport():
            yield 3.0
            ack.trigger("acked")       # data arrived; RTO is now moot

        def waiter():
            value = yield ack
            assert value == "acked"

        sim.spawn(transport())
        sim.spawn(waiter())
        end = sim.run()
        # Pre-fix, the backing _timer slept out the full 10 s delay.
        assert end == pytest.approx(3.0)
        assert not ack.timer.alive

    def test_cancel_abandons_pending_timer(self):
        sim = Simulator()
        evt = sim.timeout(5_000.0)
        evt.cancel()
        end = sim.run()
        assert end == 0.0
        assert not evt.triggered

    def test_self_fired_timeout_still_works(self):
        sim = Simulator()
        log = []

        def proc():
            value = yield sim.timeout(7.0, value="tick")
            log.append((sim.now, value))

        sim.spawn(proc())
        sim.run()
        assert log == [(7.0, "tick")]

    def test_any_of_reaps_losing_timeout(self):
        sim = Simulator()
        log = []

        def proc():
            winner = sim.timeout(5.0, value="fast")
            loser = sim.timeout(60_000.0, value="slow")
            idx, value = yield sim.any_of([winner, loser])
            log.append((sim.now, idx, value))

        sim.spawn(proc())
        end = sim.run()
        assert log == [(5.0, 0, "fast")]
        # Pre-fix, the losing timer kept the queue busy for a minute.
        assert end == pytest.approx(5.0)

    def test_any_of_keeps_timeout_someone_else_awaits(self):
        sim = Simulator()
        log = []
        shared = sim.timeout(50.0, value="shared")

        def racer():
            yield sim.any_of([sim.timeout(5.0), shared])
            log.append(("race", sim.now))

        def other():
            yield shared
            log.append(("other", sim.now))

        sim.spawn(racer())
        sim.spawn(other())
        end = sim.run()
        assert ("race", 5.0) in log
        assert ("other", 50.0) in log
        assert end == pytest.approx(50.0)

    def test_no_residual_timer_processes_after_run(self):
        sim = Simulator()

        def proc():
            evt = sim.timeout(30_000.0)
            sim.call_at(2.0, lambda: evt.trigger())
            yield evt

        sim.spawn(proc())
        sim.run()
        leftovers = [
            p for p in sim._processes
            if p.alive and p.name.startswith("_timer")
        ]
        assert leftovers == []


class TestSpuriousWakeups:
    """Regression tests: interrupting a process that sleeps on a plain
    ``yield delay`` used to leave the original delayed resumption in the
    queue, waking the process a second time with a spurious ``None``."""

    def test_interrupt_delay_sleep_resumes_exactly_once(self):
        sim = Simulator()
        never = sim.event("never")
        resumes = []

        def sleeper():
            try:
                yield 100.0
                resumes.append(("timeout", sim.now))
            except Interrupt as exc:
                resumes.append(("interrupt", sim.now, exc.cause))
            # Park forever: a stale resumption would wake this yield with
            # a spurious None instead of the event's value.
            value = yield never
            resumes.append(("spurious", sim.now, value))

        proc = sim.spawn(sleeper())

        def poker():
            yield 5.0
            proc.interrupt("stop")

        sim.spawn(poker())
        end = sim.run()
        assert resumes == [("interrupt", 5.0, "stop")]
        # The stale entry must neither wake anyone nor drag the clock to
        # the old wake time.
        assert end == 5.0

    def test_interrupted_then_resleeping_process_keeps_clean_timeline(self):
        sim = Simulator()
        log = []

        def sleeper():
            try:
                yield 50.0
            except Interrupt:
                pass
            yield 10.0  # a fresh sleep after the interrupt
            log.append(sim.now)

        proc = sim.spawn(sleeper())
        sim.call_at(5.0, lambda: proc.interrupt())
        sim.run()
        # Pre-fix the stale 50 ms resumption fired mid-second-sleep.
        assert log == [15.0]

    def test_back_to_back_interrupts_deliver_each_once(self):
        sim = Simulator()
        causes = []

        def sleeper():
            while True:
                try:
                    yield 1_000.0
                except Interrupt as exc:
                    causes.append((sim.now, exc.cause))
                    if exc.cause == "second":
                        return

        proc = sim.spawn(sleeper())
        sim.call_at(2.0, lambda: proc.interrupt("first"))
        sim.call_at(4.0, lambda: proc.interrupt("second"))
        end = sim.run()
        assert causes == [(2.0, "first"), (4.0, "second")]
        assert end == 4.0


class TestAllOfReaping:
    """Regression tests: ``all_of`` watchers must be reapable when one of
    the source events never triggers (the leak ``any_of`` already fixed)."""

    def _alive_watchers(self, sim):
        return [
            p for p in sim._processes
            if p.alive and p.name.startswith("_allof.")
        ]

    def test_abandon_reaps_watchers_and_waiter_lists(self):
        sim = Simulator()
        never = sim.event("never")
        fast = sim.timeout(1.0, value="fast")
        combined = sim.all_of([fast, never], name="stuck")
        sim.run()
        assert not combined.triggered
        assert len(self._alive_watchers(sim)) == 1  # parked on `never`
        combined.abandon()
        assert never._waiters == []
        assert self._alive_watchers(sim) == []

    def test_abandon_reaps_orphaned_pending_timeout(self):
        sim = Simulator()
        never = sim.event("never")

        def proc():
            yield 1.0

        sim.spawn(proc())
        combined = sim.all_of([sim.timeout(60_000.0), never])
        combined.abandon()
        end = sim.run()
        # The orphaned 60 s timer was cancelled with its watcher, so the
        # run drains at the last real event.
        assert end == 1.0

    def test_teardown_reaps_pending_all_of_watchers(self):
        sim = Simulator()
        never = sim.event("never")
        other = sim.event("other")
        sim.all_of([never, other], name="leaky")
        sim.run()
        assert len(self._alive_watchers(sim)) == 2
        sim.teardown()
        assert never._waiters == []
        assert other._waiters == []
        assert not any(p.alive for p in sim._processes)
        assert sim._queue == []

    def test_completed_all_of_unaffected_by_teardown(self):
        sim = Simulator()
        events = [sim.timeout(t, value=t) for t in (1.0, 2.0)]
        combined = sim.all_of(events)
        sim.run()
        assert combined.triggered
        assert combined.value == [1.0, 2.0]
        sim.teardown()
        assert combined.value == [1.0, 2.0]

    def test_any_of_composite_abandon_also_reaps(self):
        sim = Simulator()
        never_a = sim.event("never_a")
        never_b = sim.event("never_b")
        combined = sim.any_of([never_a, never_b], name="undecided")
        sim.run()
        combined.abandon()
        assert never_a._waiters == []
        assert never_b._waiters == []
