"""Radio interfaces: serialization time, energy, wake/reassociation."""

import pytest

from repro.net.interface import (
    BLUETOOTH_CLASSIC,
    RadioState,
    WIFI_80211N,
    WirelessInterface,
)
from repro.net.message import Message
from repro.sim.kernel import Simulator


class SinkLink:
    def __init__(self):
        self.received = []

    def deliver(self, message, via=None):
        self.received.append(message)


def test_tx_time_matches_bandwidth():
    # 150 Mbps == 18.75 KB/ms; a ~1.4 KB packet leaves in ~0.077 ms.
    assert WIFI_80211N.tx_time_ms(18750) == pytest.approx(1.0)
    assert BLUETOOTH_CLASSIC.tx_time_ms(2625) == pytest.approx(1.0)


def test_send_delivers_to_link():
    sim = Simulator()
    radio = WirelessInterface(sim, WIFI_80211N)
    link = SinkLink()
    radio.attach_link(link)
    radio.send(Message.of_size(10_000))
    sim.run(until=100.0)
    assert len(link.received) == 1
    assert radio.messages_sent == 1
    assert radio.bytes_sent > 10_000  # per-packet headers added


def test_messages_serialize_fifo():
    sim = Simulator()
    radio = WirelessInterface(sim, BLUETOOTH_CLASSIC)
    link = SinkLink()
    radio.attach_link(link)
    sent_times = []

    def watch(msg):
        evt = radio.send(msg)

        def _w():
            yield evt
            sent_times.append(sim.now)

        sim.spawn(_w())

    for _ in range(3):
        watch(Message.of_size(26_250))  # 10 ms each on BT
    sim.run(until=1000.0)
    assert len(sent_times) == 3
    assert sent_times[1] - sent_times[0] == pytest.approx(10.0, rel=0.05)


def test_energy_charged_for_transmission():
    sim = Simulator()
    radio = WirelessInterface(sim, WIFI_80211N)
    radio.attach_link(SinkLink())
    radio.send(Message.of_size(187_500))  # ~10 ms at 150 Mbps
    sim.run(until=100.0)
    energy = radio.energy_joules()
    # ~10 ms at 2 W plus ~90 ms idle at 0.55 W.
    assert energy == pytest.approx(0.02 + 0.09 * 0.55, rel=0.1)


def test_power_off_stops_draw():
    sim = Simulator()
    radio = WirelessInterface(sim, WIFI_80211N)
    radio.power_off()
    sim.run(until=1000.0)
    assert radio.energy_joules() == pytest.approx(0.0, abs=1e-6)
    assert radio.state == RadioState.OFF


def test_warm_wakeup_latency():
    sim = Simulator()
    radio = WirelessInterface(sim, WIFI_80211N)
    radio.power_off()
    woke = []

    def proc():
        yield 1_000.0     # short sleep: warm path
        usable = radio.power_on()
        yield usable
        woke.append(sim.now)

    sim.spawn(proc())
    sim.run(until=10_000.0)
    assert woke[0] == pytest.approx(1_000.0 + WIFI_80211N.wakeup_ms)


def test_reassociation_after_long_sleep():
    sim = Simulator()
    radio = WirelessInterface(sim, WIFI_80211N)
    radio.power_off()
    woke = []

    def proc():
        yield 10_000.0    # past reassociation_after_ms
        usable = radio.power_on()
        yield usable
        woke.append(sim.now)

    sim.spawn(proc())
    sim.run(until=60_000.0)
    assert woke[0] == pytest.approx(10_000.0 + WIFI_80211N.reassociation_ms)


def test_messages_queue_while_radio_off():
    """Traffic sent at a sleeping radio waits for the wake — the latency
    the predictive switcher avoids."""
    sim = Simulator()
    radio = WirelessInterface(sim, WIFI_80211N)
    link = SinkLink()
    radio.attach_link(link)
    radio.power_off()
    delivered_at = []

    def proc():
        yield 1_000.0
        radio.send(Message.of_size(1_000))
        yield 1.0
        radio.power_on()

    def watcher():
        while not link.received:
            yield 5.0
        delivered_at.append(sim.now)

    sim.spawn(proc())
    sim.spawn(watcher())
    sim.run(until=10_000.0)
    assert delivered_at[0] >= 1_000.0 + WIFI_80211N.wakeup_ms


def test_power_on_when_already_on_is_noop():
    sim = Simulator()
    radio = WirelessInterface(sim, WIFI_80211N)
    usable = radio.power_on()
    assert usable.triggered
    assert radio.wake_count == 0


def test_link_override_per_message():
    sim = Simulator()
    radio = WirelessInterface(sim, WIFI_80211N)
    default, override = SinkLink(), SinkLink()
    radio.attach_link(default)
    radio.send(Message.of_size(100))
    radio.send(Message.of_size(100), link=override)
    radio.send(Message.of_size(100))
    sim.run(until=100.0)
    assert len(default.received) == 2
    assert len(override.received) == 1
