"""Command registry and GLCommand construction."""

import pytest

from repro.gles.commands import (
    COMMANDS,
    GLCommand,
    ParamType,
    command_spec,
    draw_names,
    make_command,
    state_mutating_names,
)


def test_registry_is_substantial():
    # The ES 2.0 core API is ~140 entry points; we model the commonly used
    # majority and must not silently shrink.
    assert len(COMMANDS) >= 90


def test_lookup_known_command():
    spec = command_spec("glDrawArrays")
    assert spec.is_draw
    assert not spec.mutates_state
    assert [p.name for p in spec.params] == ["mode", "first", "count"]


def test_lookup_unknown_command_raises():
    with pytest.raises(KeyError):
        command_spec("glMadeUp")


def test_make_command_validates_arity():
    cmd = make_command("glViewport", 0, 0, 640, 480)
    assert cmd.args == (0, 0, 640, 480)
    with pytest.raises(TypeError):
        make_command("glViewport", 0, 0)


def test_draw_commands_classified():
    draws = draw_names()
    assert "glDrawArrays" in draws
    assert "glDrawElements" in draws
    assert "glClear" in draws


def test_state_mutating_classification():
    mutating = set(state_mutating_names())
    # Anything altering context state must be flagged: these are what
    # multi-device replication distributes (paper §VI-B).
    for name in (
        "glBindTexture",
        "glUseProgram",
        "glBufferData",
        "glEnable",
        "glViewport",
        "glVertexAttribPointer",
        "glUniformMatrix4fv",
    ):
        assert name in mutating, name
    # Draws and pure queries must not be.
    for name in ("glDrawArrays", "glGetError", "glFinish", "glReadPixels"):
        assert name not in mutating, name


def test_vertex_attrib_pointer_has_deferred_param():
    spec = command_spec("glVertexAttribPointer")
    kinds = [p.kind for p in spec.params]
    assert ParamType.DEFERRED_POINTER in kinds


def test_command_key_hashable_and_stable():
    a = make_command("glUniform1f", 3, 0.5)
    b = make_command("glUniform1f", 3, 0.5)
    c = make_command("glUniform1f", 3, 0.6)
    assert a.key() == b.key()
    assert a.key() != c.key()
    {a.key(): 1}  # must be hashable


def test_command_key_freezes_mutable_args():
    cmd = make_command("glDeleteBuffers", 2, [1, 2])
    key = cmd.key()
    hash(key)  # lists converted to tuples


def test_metadata_not_part_of_identity():
    a = make_command("glClear", 0x4000, metadata={"pixels": 100})
    b = make_command("glClear", 0x4000)
    assert a.key() == b.key()


def test_every_spec_has_unique_opcode_material():
    names = list(COMMANDS)
    assert len(names) == len(set(names))
