"""Span aggregation: per-stage latency percentiles from recorded spans.

The observability layer (``repro.obs.spans``) records every pipeline
stage a frame passes through; this module folds those spans into the
per-stage latency distributions the paper's pipeline breakdown reports —
p50/p95/p99 per stage, plus counts and totals, in a deterministic
JSON-able shape shared with ``MetricsRegistry.snapshot()``.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional

from repro.obs.registry import percentile
from repro.obs.spans import Span, SpanRecorder

#: canonical stage order for the offload pipeline breakdown
PIPELINE_STAGES = (
    "intercept",
    "encode",
    "transmit",
    "execute",
    "video_encode",
    "return",
    "present",
)


def _summarize(durations: List[float]) -> Dict[str, float]:
    ordered = sorted(durations)
    total = sum(ordered)
    return {
        "count": len(ordered),
        "p50": round(percentile(ordered, 50.0), 4),
        "p95": round(percentile(ordered, 95.0), 4),
        "p99": round(percentile(ordered, 99.0), 4),
        "mean": round(total / len(ordered), 4) if ordered else 0.0,
        "min": round(ordered[0], 4) if ordered else 0.0,
        "max": round(ordered[-1], 4) if ordered else 0.0,
        "total_ms": round(total, 4),
    }


def aggregate_spans(
    spans: "SpanRecorder | Iterable[Span]",
    by: str = "name",
    category: Optional[str] = None,
) -> Dict[str, Dict[str, float]]:
    """Fold spans into ``{key: {count, p50, p95, p99, mean, ...}}``.

    ``by`` selects the grouping key: ``"name"`` (pipeline stages),
    ``"category"`` (subsystems) or ``"qualified_name"``.  Instant marks
    are excluded — they are occurrences, not latencies; genuine
    zero-duration stages (e.g. an in-order frame spending no time in the
    reorder buffer) do count.
    """
    if by not in ("name", "category", "qualified_name"):
        raise ValueError(f"unknown grouping {by!r}")
    rows = spans.spans if isinstance(spans, SpanRecorder) else spans
    groups: Dict[str, List[float]] = {}
    for span in rows:
        if category is not None and span.category != category:
            continue
        if span.instant:
            continue
        groups.setdefault(getattr(span, by), []).append(span.duration_ms)
    return {key: _summarize(groups[key]) for key in sorted(groups)}


def pipeline_breakdown(
    spans: "SpanRecorder | Iterable[Span]",
) -> Dict[str, Any]:
    """The paper-shaped breakdown: canonical stages first, extras after.

    Stages with no recorded spans are present with ``count: 0`` so the
    benchmark schema is stable across configurations.
    """
    stats = aggregate_spans(spans, by="name")
    breakdown: Dict[str, Any] = {}
    for stage in PIPELINE_STAGES:
        breakdown[stage] = stats.pop(stage, _summarize([]))
    breakdown.update(stats)
    return breakdown
