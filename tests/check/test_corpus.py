"""Replay the committed fuzz corpus: every pinned case must pass.

The corpus holds shrunk reproductions of once-failing inputs plus
hand-pinned edge cases (see ``corpus/README.md``).  A failure here means
a previously-fixed bug has resurfaced.
"""

import json
from pathlib import Path

import pytest

from repro.check.fuzz import CASE_SCHEMA, load_corpus, replay_corpus

CORPUS = Path(__file__).parent / "corpus"


def test_corpus_is_not_empty():
    assert len(load_corpus(CORPUS)) >= 4


def test_every_case_carries_the_schema_and_a_reason():
    for path in sorted(CORPUS.glob("*.json")):
        body = json.loads(path.read_text())
        assert body["schema"] == CASE_SCHEMA, path
        assert body["property"], path
        assert body["message"], path
        assert isinstance(body["case"], dict), path


def test_no_committed_case_regresses():
    failing = replay_corpus(CORPUS)
    assert failing == [], [
        f"{f['property']}: {f['message_now']} ({f['path']})" for f in failing
    ]


def test_unknown_property_in_corpus_is_an_error(tmp_path):
    (tmp_path / "ghost-000000000000.json").write_text(
        json.dumps({"schema": CASE_SCHEMA, "property": "ghost",
                    "case": {}, "message": "m", "shrink_steps": 0,
                    "note": ""})
    )
    with pytest.raises(ValueError):
        replay_corpus(tmp_path)
