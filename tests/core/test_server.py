"""Service-node daemon behaviour in isolation."""

import pytest

from repro.codec.frames import FrameImage
from repro.core.config import GBoosterConfig
from repro.core.server import ServiceNode
from repro.devices.profiles import DELL_OPTIPLEX_9010, NVIDIA_SHIELD
from repro.devices.runtime import ServiceDeviceRuntime
from repro.gpu.model import RenderRequest
from repro.net.message import Message


class FakeDownlink:
    def __init__(self):
        self.sent = []

    def send(self, message):
        self.sent.append(message)


def make_node(sim, spec=NVIDIA_SHIELD, config=None):
    runtime = ServiceDeviceRuntime(sim, spec)
    downlink = FakeDownlink()
    node = ServiceNode(
        sim, runtime, config or GBoosterConfig(), downlink=downlink,
        rtt_ms=3.0,
    )
    return node, downlink


def frame_message(request_id=0, fill=156.5, nominal=900, change=0.2):
    request = RenderRequest(
        request_id=request_id, frame_id=request_id, commands=[],
        fill_megapixels=fill, width=1280, height=720,
    )
    request.metadata["nominal_commands"] = nominal
    msg = Message.of_size(10_000, kind="frame_request")
    msg.metadata["request"] = request
    msg.metadata["frame_desc"] = FrameImage(
        1280, 720, change_fraction=change, detail=0.7
    )
    msg.metadata["nominal_commands"] = nominal
    return msg


def test_frame_rendered_and_returned(sim):
    node, downlink = make_node(sim)
    node.on_frame_message(frame_message())
    sim.run(until=1_000.0)
    assert node.stats.frames_rendered == 1
    assert len(downlink.sent) == 1
    assert downlink.sent[0].kind == "frame"
    assert downlink.sent[0].size_bytes > 0


def test_service_stage_near_calibration(sim):
    """G1 on the Shield: decompress + replay + GPU + encode ~= 25 ms/frame
    at moderate scene change — the stage that bounds Fig 5(a)'s 37 FPS."""
    node, downlink = make_node(sim)
    for i in range(20):
        node.on_frame_message(frame_message(request_id=i, change=0.2))
    sim.run(until=5_000.0)
    assert node.stats.frames_rendered == 20
    # Throughput = 20 frames over total busy time.
    per_frame = sim.now and (
        node.stats.replay_ms_total
        + node.stats.gpu_ms_total
        + node.stats.encode_ms_total
    ) / 20
    assert 15.0 < per_frame < 30.0


def test_predicted_stage_close_to_actual(sim):
    node, _ = make_node(sim)
    msg = frame_message(change=0.2)
    request = msg.metadata["request"]
    predicted = node.predicted_stage_ms(request)
    node.on_frame_message(msg)
    sim.run(until=1_000.0)
    actual = (
        node.stats.replay_ms_total
        + node.stats.gpu_ms_total
        + node.stats.encode_ms_total
    )
    assert predicted == pytest.approx(actual, rel=0.35)


def test_state_batches_replayed_without_rendering(sim):
    node, downlink = make_node(sim)
    msg = Message.of_size(2_000, kind="state", nominal_commands=500)
    msg.metadata["nominal_commands"] = 500
    node.on_state_message(msg)
    sim.run(until=1_000.0)
    assert node.stats.state_batches == 1
    assert node.stats.frames_rendered == 0
    assert downlink.sent == []


def test_fcfs_ordering(sim):
    node, downlink = make_node(sim)
    for i in range(5):
        node.on_frame_message(frame_message(request_id=i))
    sim.run(until=5_000.0)
    returned = [m.metadata["request"].request_id for m in downlink.sent]
    assert returned == [0, 1, 2, 3, 4]


def test_queued_workload_drops_as_frames_finish(sim):
    node, _ = make_node(sim)
    for i in range(4):
        node.on_frame_message(frame_message(request_id=i, fill=100.0))
    # Accepted workload includes the remote-render overhead factor.
    overhead = node.config.remote_render_overhead
    assert node.queued_workload_mp == pytest.approx(400.0 * overhead)
    sim.run(until=10_000.0)
    assert node.queued_workload_mp == pytest.approx(0.0)


def test_x86_node_pays_emulation_but_encodes_faster(sim):
    shield, _ = make_node(sim, NVIDIA_SHIELD)
    pc, _ = make_node(sim, DELL_OPTIPLEX_9010)
    request = frame_message(change=0.9).metadata["request"]
    shield_stage = shield.predicted_stage_ms(request)
    pc_stage = pc.predicted_stage_ms(request)
    # At high change the Shield's ARM encoder dominates; the PC's x86
    # encoder more than pays for the ES-translation tax.
    assert pc_stage < shield_stage


def test_account_downlink_callback(sim):
    runtime = ServiceDeviceRuntime(sim, NVIDIA_SHIELD)
    downlink = FakeDownlink()
    accounted = []
    node = ServiceNode(
        sim, runtime, GBoosterConfig(), downlink=downlink, rtt_ms=3.0,
        account_downlink=lambda n: accounted.append(n),
    )
    node.on_frame_message(frame_message())
    sim.run(until=1_000.0)
    assert accounted and accounted[0] == downlink.sent[0].size_bytes
