"""The six evaluation games (Table II) as calibrated workload models.

Calibration anchors (paper Fig 5, Nexus 5 = Adreno 330 at 3.6 GP/s):

* fill workload  — ``fill_mp_per_frame`` is set so the *local* fill-bound
  frame time matches the paper's local median FPS (G1: 23, G2: 22, puzzle
  games near 50);
* CPU stage — ``cpu_ms_per_frame`` (+ the offload data-path overhead) is
  what caps the *offloaded* frame rate, matching §VI's observation that
  request generation is CPU-constrained; the driver-submission share
  (``driver_ms_per_frame``) disappears when rendering is remote;
* action games are GPU-bound locally (GPU utilization ~1.0, the Fig 6
  energy story), puzzle games are CPU/pacing-bound with the GPU only
  half-busy — which is why offloading saves them much less energy.

All cpu figures are for the Snapdragon 800 reference; the engine divides
by the device CPU's ``perf_index``.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.apps.base import ApplicationSpec

GTA_SAN_ANDREAS = ApplicationSpec(
    name="GTA San Andreas",
    short_name="G1",
    genre="action",
    package_size_gb=2.41,
    fill_mp_per_frame=156.5,          # local on Nexus 5: 43.5 ms -> 23 FPS
    cpu_ms_per_frame=19.6,
    cpu_base_load=0.545,              # background logic: ~2.2 cores of 4
    nominal_commands_per_frame=900,
    emitted_commands_per_frame=36,
    textures_per_frame=14,
    render_width=1280,
    render_height=720,
    base_change_fraction=0.07,
    burst_change_fraction=0.85,
    detail=0.75,
    touch_burst_interval_s=6.5,
    touch_burst_duration_s=1.1,
    touch_rate_in_burst_hz=9.0,
)

MODERN_COMBAT = ApplicationSpec(
    name="Modern Combat 5: Blackout",
    short_name="G2",
    genre="action",
    package_size_gb=0.89,
    fill_mp_per_frame=163.6,          # local on Nexus 5: 45.5 ms -> 22 FPS
    cpu_ms_per_frame=20.5,
    cpu_base_load=0.52,
    nominal_commands_per_frame=700,
    emitted_commands_per_frame=32,
    textures_per_frame=12,
    render_width=1280,
    render_height=720,
    base_change_fraction=0.08,
    burst_change_fraction=0.9,
    detail=0.7,
    touch_burst_interval_s=6.0,
    touch_burst_duration_s=1.0,
    touch_rate_in_burst_hz=8.0,
)

STAR_WARS_KOTOR = ApplicationSpec(
    name="Star Wars: KOTOR",
    short_name="G3",
    genre="roleplaying",
    package_size_gb=2.4,
    fill_mp_per_frame=120.0,          # local on Nexus 5: 33.3 ms -> 30 FPS
    cpu_ms_per_frame=23.5,
    cpu_base_load=0.45,
    nominal_commands_per_frame=700,
    emitted_commands_per_frame=30,
    textures_per_frame=12,
    render_width=1280,
    render_height=720,
    base_change_fraction=0.08,
    burst_change_fraction=0.6,
    detail=0.7,
    touch_burst_interval_s=6.0,
    touch_burst_duration_s=1.2,
    touch_rate_in_burst_hz=5.0,
)

FINAL_FANTASY = ApplicationSpec(
    name="Final Fantasy",
    short_name="G4",
    genre="roleplaying",
    package_size_gb=3.05,
    fill_mp_per_frame=112.5,          # local on Nexus 5: 31.3 ms -> 32 FPS
    cpu_ms_per_frame=22.1,
    cpu_base_load=0.45,
    nominal_commands_per_frame=650,
    emitted_commands_per_frame=30,
    textures_per_frame=11,
    render_width=1280,
    render_height=720,
    base_change_fraction=0.07,
    burst_change_fraction=0.55,
    detail=0.65,
    touch_burst_interval_s=7.0,
    touch_burst_duration_s=1.0,
    touch_rate_in_burst_hz=4.0,
)

CANDY_CRUSH = ApplicationSpec(
    name="Candy Crush Saga",
    short_name="G5",
    genre="puzzle",
    package_size_gb=0.17,
    fill_mp_per_frame=30.0,           # GPU well under half busy at 51 FPS
    cpu_ms_per_frame=16.2,
    cpu_base_load=0.30,
    nominal_commands_per_frame=400,
    emitted_commands_per_frame=24,
    textures_per_frame=8,
    render_width=600,
    render_height=480,
    base_change_fraction=0.05,
    burst_change_fraction=0.35,
    detail=0.45,
    touch_burst_interval_s=2.5,
    touch_burst_duration_s=0.5,
    touch_rate_in_burst_hz=3.0,
)

CUT_THE_ROPE = ApplicationSpec(
    name="Cut the Rope",
    short_name="G6",
    genre="puzzle",
    package_size_gb=0.12,
    fill_mp_per_frame=33.0,
    cpu_ms_per_frame=18.9,
    cpu_base_load=0.28,
    nominal_commands_per_frame=380,
    emitted_commands_per_frame=24,
    textures_per_frame=7,
    render_width=600,
    render_height=480,
    base_change_fraction=0.06,
    burst_change_fraction=0.4,
    detail=0.5,
    touch_burst_interval_s=3.5,
    touch_burst_duration_s=0.7,
    touch_rate_in_burst_hz=4.0,
)

GAMES: Dict[str, ApplicationSpec] = {
    spec.short_name: spec
    for spec in (
        GTA_SAN_ANDREAS,
        MODERN_COMBAT,
        STAR_WARS_KOTOR,
        FINAL_FANTASY,
        CANDY_CRUSH,
        CUT_THE_ROPE,
    )
}

#: Table II rows: (id, name, genre, package size GB)
TABLE_II: Tuple[Tuple[str, str, str, float], ...] = tuple(
    (s.short_name, s.name, s.genre, s.package_size_gb)
    for s in GAMES.values()
)
