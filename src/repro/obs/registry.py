"""Counters, gauges and histograms for the simulation data path.

A tiny, dependency-free metrics registry in the Prometheus shape:

* :class:`Counter` — monotonically increasing totals (retransmissions,
  cache hits, admission outcomes);
* :class:`Gauge` — last-written values (cache hit rate, queue depth);
* :class:`Histogram` — streaming observations with deterministic
  percentile queries (frame response times).

Everything is deterministic: a seeded run produces a byte-identical
``snapshot()`` dict, so registries can participate in same-seed digest
checks the way the fleet report already does.
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping, Optional

#: histograms keep at most this many raw samples (count/sum keep running)
DEFAULT_HISTOGRAM_SAMPLES = 65_536


def metric_key(name: str, labels: Optional[Mapping[str, Any]] = None) -> str:
    """Canonical ``name{k=v,...}`` key with labels sorted by name."""
    if not labels:
        return name
    inner = ",".join(f"{k}={labels[k]}" for k in sorted(labels))
    return f"{name}{{{inner}}}"


def percentile(sorted_values: List[float], q: float) -> float:
    """Linear-interpolated percentile of an already-sorted list.

    Deterministic and dependency-free (no numpy): the same method as
    ``statistics.quantiles(..., method='inclusive')``.
    """
    if not sorted_values:
        return 0.0
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"percentile {q} outside [0, 100]")
    if len(sorted_values) == 1:
        return sorted_values[0]
    rank = (q / 100.0) * (len(sorted_values) - 1)
    lo = int(rank)
    hi = min(lo + 1, len(sorted_values) - 1)
    frac = rank - lo
    return sorted_values[lo] * (1.0 - frac) + sorted_values[hi] * frac


class Counter:
    """A monotonically increasing total."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: Optional[Mapping[str, Any]] = None):
        self.name = name
        self.labels: Dict[str, Any] = dict(labels or {})
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease")
        self.value += amount


class Gauge:
    """A last-written value."""

    __slots__ = ("name", "labels", "value", "updates")

    def __init__(self, name: str, labels: Optional[Mapping[str, Any]] = None):
        self.name = name
        self.labels: Dict[str, Any] = dict(labels or {})
        self.value = 0.0
        self.updates = 0

    def set(self, value: float) -> None:
        self.value = float(value)
        self.updates += 1


class Histogram:
    """Streaming observations with deterministic percentiles.

    The raw-sample reservoir is bounded by deterministic *stride
    decimation*: whenever it fills to ``max_samples`` it is compacted to
    every second sample and the keep-stride doubles, so the retained
    samples always cover the whole run uniformly (observation ordinals
    ``0, k, 2k, ...``).  The old policy kept the *first* N samples and
    dropped everything after, which made long-run percentiles describe
    only the start of the run.  Count and sum keep running regardless,
    so means stay exact; ``dropped`` counts observations not retained in
    the reservoir.
    """

    __slots__ = (
        "name", "labels", "count", "sum", "max_samples", "_samples",
        "_stride", "dropped", "exemplars",
    )

    def __init__(
        self,
        name: str,
        max_samples: int = DEFAULT_HISTOGRAM_SAMPLES,
        labels: Optional[Mapping[str, Any]] = None,
    ):
        if max_samples < 2:
            raise ValueError(f"max_samples must be >= 2, got {max_samples}")
        self.name = name
        self.labels: Dict[str, Any] = dict(labels or {})
        self.count = 0
        self.sum = 0.0
        self.max_samples = max_samples
        self._samples: List[float] = []
        self._stride = 1
        self.dropped = 0
        #: OpenMetrics-style exemplar reservoir (repro.obs.causal), created
        #: lazily on the first trace-stamped observation so untraced runs
        #: pay nothing and their summaries stay byte-identical
        self.exemplars: Optional[Any] = None

    def observe(self, value: float, trace_id: Optional[str] = None) -> None:
        # The reservoir keeps observations whose ordinal is a multiple of
        # the current stride; compaction preserves that invariant, so the
        # retained set is a uniform decimation of the entire stream.
        if self.count % self._stride == 0:
            self._samples.append(float(value))
            if len(self._samples) >= self.max_samples:
                self._samples = self._samples[::2]
                self._stride *= 2
        else:
            self.dropped += 1
        self.count += 1
        self.sum += value
        if trace_id:
            if self.exemplars is None:
                from repro.obs.causal import ExemplarReservoir

                self.exemplars = ExemplarReservoir()
            self.exemplars.offer(value, trace_id)

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def percentile(self, q: float) -> float:
        return percentile(sorted(self._samples), q)

    def summary(self) -> Dict[str, float]:
        ordered = sorted(self._samples)
        return {
            "count": self.count,
            "mean": round(self.mean, 4),
            "p50": round(percentile(ordered, 50.0), 4),
            "p95": round(percentile(ordered, 95.0), 4),
            "p99": round(percentile(ordered, 99.0), 4),
            "min": round(ordered[0], 4) if ordered else 0.0,
            "max": round(ordered[-1], 4) if ordered else 0.0,
        }

    def exemplar_summary(self) -> List[Dict[str, Any]]:
        """Retained tail exemplars (empty when no traced observations).

        Kept out of :meth:`summary` so untraced benchmark artifacts stay
        byte-identical; traced harnesses read exemplars explicitly.
        """
        if self.exemplars is None:
            return []
        return self.exemplars.exemplars()


class MetricsRegistry:
    """Get-or-create registry keyed by metric name + sorted labels.

    ``counter("fleet.admission", outcome="reject")`` and
    ``counter("fleet.admission", outcome="admit")`` are distinct series
    of one metric family; the label set rides into ``snapshot()`` as the
    canonical ``name{k=v,...}`` key.  Label-free calls behave exactly as
    before.
    """

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    def counter(self, name: str, **labels: Any) -> Counter:
        key = metric_key(name, labels)
        if key not in self._counters:
            self._check_free(key, self._counters)
            self._counters[key] = Counter(name, labels=labels)
        return self._counters[key]

    def gauge(self, name: str, **labels: Any) -> Gauge:
        key = metric_key(name, labels)
        if key not in self._gauges:
            self._check_free(key, self._gauges)
            self._gauges[key] = Gauge(name, labels=labels)
        return self._gauges[key]

    def histogram(
        self,
        name: str,
        max_samples: int = DEFAULT_HISTOGRAM_SAMPLES,
        **labels: Any,
    ) -> Histogram:
        key = metric_key(name, labels)
        if key not in self._histograms:
            self._check_free(key, self._histograms)
            self._histograms[key] = Histogram(
                name, max_samples=max_samples, labels=labels
            )
        return self._histograms[key]

    def family(self, name: str) -> List[Any]:
        """Every instrument with this base name, any labels, sorted by key."""
        out = []
        for store in (self._counters, self._gauges, self._histograms):
            out.extend(
                store[key] for key in sorted(store)
                if store[key].name == name
            )
        return out

    def _check_free(self, key: str, own: Dict[str, Any]) -> None:
        for family in (self._counters, self._gauges, self._histograms):
            if family is not own and key in family:
                raise ValueError(
                    f"metric {key!r} already registered with another type"
                )

    def snapshot(self) -> Dict[str, Any]:
        """Deterministic JSON-able dump: sorted names, rounded values."""
        return {
            "counters": {
                name: round(c.value, 4)
                for name, c in sorted(self._counters.items())
            },
            "gauges": {
                name: round(g.value, 4)
                for name, g in sorted(self._gauges.items())
            },
            "histograms": {
                name: h.summary()
                for name, h in sorted(self._histograms.items())
            },
        }
