"""Fleet sessions: one user's ongoing game, placed on a pool device.

A :class:`FleetSession` issues frames at the app's serve rate through a
bounded pipeline (at most ``pipeline_depth`` frames outstanding — the
same back-pressure the rewritten non-blocking SwapBuffer gives a single
client), records per-frame response times, and survives migration: the
controller can re-point it at a new node mid-flight and the next issued
frame lands there.

QoS tiers derive from :data:`repro.core.multiuser.GENRE_PRIORITY`:
action games are tier "action" (priority 0, overtakes every queue),
role-playing "standard" (1), puzzle and non-game apps "tolerant" (2).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, Generator, List, Optional

from repro.apps.base import ApplicationSpec
from repro.core.multiuser import app_priority
from repro.fleet.config import FleetConfig
from repro.fleet.node import FleetNode, FrameTask
from repro.sim.kernel import Event, Simulator

#: GENRE_PRIORITY value -> human-readable QoS tier name
TIER_NAMES = {0.0: "action", 1.0: "standard", 2.0: "tolerant"}


def tier_name(priority: float) -> str:
    return TIER_NAMES.get(priority, "standard")


@dataclass(frozen=True)
class SessionRequest:
    """What a would-be player asks the fleet for."""

    session_id: str
    app: ApplicationSpec
    arrival_ms: float

    @property
    def priority(self) -> float:
        return app_priority(self.app)

    @property
    def tier(self) -> str:
        return tier_name(self.priority)

    def demand_mp_per_ms(self, serve_rate_hz: float) -> float:
        """Steady-state fill demand this session adds to its node."""
        return self.app.fill_mp_per_frame * serve_rate_hz / 1000.0


class FleetSession:
    """An admitted session streaming frames to its assigned node."""

    def __init__(
        self,
        sim: Simulator,
        request: SessionRequest,
        config: FleetConfig,
        duration_ms: float,
    ):
        self.sim = sim
        self.request = request
        self.config = config
        self.duration_ms = duration_ms
        self.session_id = request.session_id
        self.app = request.app
        self.priority = request.priority
        self.tier = request.tier
        self.node: Optional[FleetNode] = None
        self.started_at_ms: Optional[float] = None
        #: set by a replay-enabled controller when an earlier session of
        #: this title already recorded: frames cost the warm factor only
        self.replay_warm = False
        self.migrations = 0
        self.last_migration_ms = -float("inf")
        self.response_times_ms: List[float] = []
        self.frames_issued = 0
        self.frames_lost = 0          # invariant: stays 0 under migration
        self.outstanding: Dict[int, FrameTask] = {}
        self.finished: Event = sim.event(name=f"fleet.{self.session_id}.done")
        self._gate: Optional[Event] = None
        self._seq = 0

    # -- placement -----------------------------------------------------------

    @property
    def demand_mp_per_ms(self) -> float:
        return self.request.demand_mp_per_ms(self.config.serve_rate_hz)

    def set_node(self, node: FleetNode) -> None:
        self.node = node

    def start(self, node: FleetNode) -> None:
        self.node = node
        self.started_at_ms = self.sim.now
        self.sim.spawn(self._run(), name=f"fleet.session.{self.session_id}")

    # -- frame completion (called by whichever node served the frame) --------

    def on_frame_complete(self, task: FrameTask) -> None:
        self.outstanding.pop(task.seq, None)
        self.response_times_ms.append(task.response_ms)
        if self.sim.telemetry is not None:
            # Per-frame response feed for the fleet frame-p99 objective
            # (the capacity planner's headline SLO).
            self.sim.telemetry.observe(
                "fleet.frame_response_ms", task.response_ms, tier=self.tier,
            )
        if self._gate is not None and not self._gate.triggered:
            self._gate.trigger(None)

    # -- migration -----------------------------------------------------------

    def take_over(self, task: FrameTask, node: FleetNode) -> None:
        """Re-dispatch one stranded frame on the session's (new) node."""
        task.redispatches += 1
        node.submit(task)

    # -- the issue loop ------------------------------------------------------

    def _run(self) -> Generator:
        period_ms = 1000.0 / self.config.serve_rate_hz
        end = self.sim.now + self.duration_ms
        while self.sim.now < end:
            while len(self.outstanding) >= self.config.pipeline_depth:
                self._gate = self.sim.event(
                    name=f"fleet.{self.session_id}.gate"
                )
                yield self._gate
                self._gate = None
            commands = self.app.nominal_commands_per_frame
            if self.replay_warm:
                # Delta-served interval: the node patches the recorded
                # skeleton instead of decoding + translating the stream.
                commands = max(
                    1, int(commands * self.config.replay_warm_factor)
                )
            task = FrameTask(
                session_id=self.session_id,
                seq=self._seq,
                fill_megapixels=self.app.fill_mp_per_frame,
                commands_nominal=commands,
                width=self.app.render_width,
                height=self.app.render_height,
                priority=self.priority,
                issued_at_ms=self.sim.now,
            )
            self._seq += 1
            self.frames_issued += 1
            self.outstanding[task.seq] = task
            assert self.node is not None
            self.node.submit(task)
            yield period_ms
        # Drain: wait until every outstanding frame has been answered
        # (possibly by a different node than the one it was issued to).
        while self.outstanding:
            self._gate = self.sim.event(name=f"fleet.{self.session_id}.drain")
            yield self._gate
            self._gate = None
        self.frames_lost = self.frames_issued - len(self.response_times_ms)
        self.finished.trigger(self)

    # -- metrics -------------------------------------------------------------

    @property
    def mean_response_ms(self) -> float:
        if not self.response_times_ms:
            return 0.0
        return sum(self.response_times_ms) / len(self.response_times_ms)

    def frame_digest(self) -> str:
        """Content digest of the session's frame stream.

        Covers what was rendered — identity, tier, frame geometry, command
        volume, the contiguous sequence of issued frames and how many were
        answered — but deliberately *not* when: response times depend on
        pool contention, which the shard-count determinism contract does
        not (and cannot) pin.  Under the sharded kernel this is the
        per-session unit the coordinator merges and the CI parallel-smoke
        job diffs across ``--workers`` counts.
        """
        h = hashlib.sha256()
        h.update(
            f"{self.session_id}|{self.app.short_name}|{self.tier}".encode()
        )
        h.update(
            f"|{self.app.render_width}x{self.app.render_height}"
            f"|{self.app.nominal_commands_per_frame}"
            f"|{self.app.fill_mp_per_frame:.6f}".encode()
        )
        h.update(
            f"|issued={self.frames_issued}"
            f"|answered={len(self.response_times_ms)}"
            f"|lost={self.frames_lost}"
            f"|redispatched={sum(t.redispatches for t in self.outstanding.values())}".encode()
        )
        return h.hexdigest()
