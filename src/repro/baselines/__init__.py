"""Comparison baselines: local execution and cloud remote rendering."""

from repro.baselines.local import LocalBackend
from repro.baselines.cloud import CloudGamingModel, CloudSessionResult

__all__ = ["CloudGamingModel", "CloudSessionResult", "LocalBackend"]
