"""LAN service discovery."""

import pytest

from repro.devices.profiles import (
    DELL_OPTIPLEX_9010,
    MINIX_NEO_U1,
    NVIDIA_SHIELD,
)
from repro.net.discovery import DiscoveryService
from repro.sim.kernel import Simulator


def run_probe(responders, timeout_ms=500.0, seed=0, loss=0.01):
    sim = Simulator(seed=seed)
    service = DiscoveryService(sim, responders, loss_probability=loss)
    done = service.probe(timeout_ms=timeout_ms)
    sim.run_until_event(done, limit=timeout_ms * 4)
    return done.value


def test_all_responders_found():
    result = run_probe([NVIDIA_SHIELD, MINIX_NEO_U1, DELL_OPTIPLEX_9010])
    assert result.found_any
    names = {ad.device.name for ad in result.advertisements}
    assert names == {
        NVIDIA_SHIELD.name, MINIX_NEO_U1.name, DELL_OPTIPLEX_9010.name
    }


def test_empty_lan_finds_nothing():
    result = run_probe([])
    assert not result.found_any


def test_responses_carry_rtt():
    result = run_probe([NVIDIA_SHIELD])
    ad = result.advertisements[0]
    assert ad.rtt_ms > 2.0          # two link traversals + backoff
    assert ad.rtt_ms <= 500.0


def test_ranking_prefers_capable_idle_devices():
    result = run_probe([MINIX_NEO_U1, DELL_OPTIPLEX_9010, NVIDIA_SHIELD])
    ranked = result.ranked()
    # The TV box (4.4 GP/s) must rank below the console and desktop.
    assert ranked[-1].device.name == MINIX_NEO_U1.name


def test_short_timeout_misses_slow_responders():
    full = run_probe([NVIDIA_SHIELD] * 1, timeout_ms=500.0, seed=2)
    rushed = run_probe([NVIDIA_SHIELD] * 1, timeout_ms=2.0, seed=2)
    assert full.found_any
    assert not rushed.found_any


def test_lossy_lan_drops_some_answers():
    found = 0
    for seed in range(20):
        result = run_probe([NVIDIA_SHIELD], seed=seed, loss=0.4)
        found += result.found_any
    assert 0 < found < 20


def test_validation():
    sim = Simulator()
    with pytest.raises(ValueError):
        DiscoveryService(sim, [], loss_probability=1.0)
    service = DiscoveryService(sim, [])
    with pytest.raises(ValueError):
        service.probe(timeout_ms=0.0)


def test_deterministic():
    a = run_probe([NVIDIA_SHIELD, MINIX_NEO_U1], seed=9)
    b = run_probe([NVIDIA_SHIELD, MINIX_NEO_U1], seed=9)
    assert [ad.responded_at_ms for ad in a.advertisements] == [
        ad.responded_at_ms for ad in b.advertisements
    ]


def test_round_completes_early_when_all_answer():
    sim = Simulator(seed=0)
    service = DiscoveryService(
        sim, [NVIDIA_SHIELD, MINIX_NEO_U1], loss_probability=0.0
    )
    done = service.probe(timeout_ms=500.0)
    sim.run_until_event(done, limit=2_000.0)
    result = done.value
    assert len(result.advertisements) == 2
    assert result.completed_early
    # Answers arrive within latency + max backoff + latency, far under 500.
    assert result.completed_at_ms < 100.0
    assert sim.now == result.completed_at_ms


def test_round_completes_early_when_answers_are_lost():
    # Every probe/answer is lost with p ~ 1; the round must still end as
    # soon as the last responder is accounted for, not at the deadline.
    sim = Simulator(seed=3)
    service = DiscoveryService(sim, [NVIDIA_SHIELD], loss_probability=0.99)
    done = service.probe(timeout_ms=500.0)
    sim.run_until_event(done, limit=2_000.0)
    result = done.value
    if not result.found_any:
        assert result.completed_at_ms < 500.0


def test_empty_lan_completes_immediately():
    sim = Simulator(seed=0)
    service = DiscoveryService(sim, [])
    done = service.probe(timeout_ms=500.0)
    sim.run_until_event(done, limit=2_000.0)
    assert done.value.completed_at_ms == 0.0
    assert not done.value.found_any


def test_load_probe_supplies_real_load():
    loads = {NVIDIA_SHIELD.name: 0.7, MINIX_NEO_U1.name: 0.05}
    sim = Simulator(seed=0)
    service = DiscoveryService(
        sim,
        [NVIDIA_SHIELD, MINIX_NEO_U1],
        loss_probability=0.0,
        load_probe=lambda spec: loads[spec.name],
    )
    done = service.probe(timeout_ms=500.0)
    sim.run_until_event(done, limit=2_000.0)
    by_name = {ad.device.name: ad for ad in done.value.advertisements}
    assert by_name[NVIDIA_SHIELD.name].current_load == 0.7
    assert by_name[MINIX_NEO_U1.name].current_load == 0.05


def test_load_probe_values_are_clamped():
    sim = Simulator(seed=0)
    service = DiscoveryService(
        sim, [NVIDIA_SHIELD], loss_probability=0.0,
        load_probe=lambda spec: 3.5,
    )
    done = service.probe(timeout_ms=500.0)
    sim.run_until_event(done, limit=2_000.0)
    assert done.value.advertisements[0].current_load == 1.0


def test_loaded_devices_rank_below_idle_ones():
    # Same hardware, different advertised load: the idle box must win.
    pool = [NVIDIA_SHIELD, MINIX_NEO_U1]
    sim = Simulator(seed=0)
    service = DiscoveryService(
        sim, pool, loss_probability=0.0,
        load_probe=lambda spec: 0.95 if spec.name == NVIDIA_SHIELD.name
        else 0.0,
    )
    done = service.probe(timeout_ms=500.0)
    sim.run_until_event(done, limit=2_000.0)
    ranked = done.value.ranked()
    # 16 GP/s at 95% load is effectively 0.8; the idle 4.4 GP/s box wins.
    assert ranked[0].device.name == MINIX_NEO_U1.name
