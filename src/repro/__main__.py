"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``quickstart``      — local vs GBooster for one game (default G1/Nexus 5)
* ``fig5``            — the acceleration matrix
* ``fig6``            — the energy matrix
* ``fig7``            — the multi-device sweep
* ``fig1``            — the thermal trace
* ``prediction``      — ARMA vs ARMAX rates + AIC selection
* ``multiuser``       — §VIII FCFS vs priority sharing
* ``adaptive``        — discovery + cloud-fallback demo
* ``chaos``           — fault-injection sweep (loss bursts, outages, crashes)

Each prints the same rows the corresponding benchmark asserts on.
"""

from __future__ import annotations

import argparse
import sys


def _cmd_quickstart(args: argparse.Namespace) -> None:
    from repro import run_local_session, run_offload_session
    from repro.apps.games import GAMES
    from repro.devices.profiles import USER_DEVICES

    app = GAMES[args.game]
    device = USER_DEVICES[args.device]
    local = run_local_session(app, device, duration_ms=args.duration * 1000.0)
    boosted = run_offload_session(app, device,
                                  duration_ms=args.duration * 1000.0)
    print(f"{app.name} on {device.name} ({args.duration:.0f}s)")
    print(f"  local   : {local.fps}")
    print(f"  gbooster: {boosted.fps}")
    print(f"  energy  : {boosted.energy.mean_power_w:.2f} W vs "
          f"{local.energy.mean_power_w:.2f} W "
          f"({boosted.energy.mean_power_w / local.energy.mean_power_w:.0%})")


def _cmd_fig5(args: argparse.Namespace) -> None:
    from repro.experiments.acceleration import format_rows, run_figure5

    rows = run_figure5(duration_ms=args.duration * 1000.0)
    print(format_rows(rows))


def _cmd_fig6(args: argparse.Namespace) -> None:
    from repro.devices.profiles import LG_NEXUS_5
    from repro.experiments.energy import format_rows, run_figure6

    rows = run_figure6(duration_ms=args.duration * 1000.0,
                       devices=[LG_NEXUS_5])
    print(format_rows(rows))


def _cmd_fig7(args: argparse.Namespace) -> None:
    from repro.experiments.multidevice import format_points, run_figure7

    points = run_figure7(duration_ms=args.duration * 1000.0)
    print(format_points(points))


def _cmd_fig1(args: argparse.Namespace) -> None:
    from repro.experiments.thermal import run_figure1

    result = run_figure1()
    for t, freq, temp in result.samples[::120]:
        print(f"t={t/60.0:5.1f} min  freq={freq:6.0f} MHz  temp={temp:5.1f} C")
    print(f"throttled at {result.throttle_time_s / 60.0:.1f} min "
          "(paper: ~10 min)")


def _cmd_prediction(args: argparse.Namespace) -> None:
    from repro.experiments.prediction import (
        ATTRIBUTE_NAMES,
        collect_traffic_trace,
        compare_arma_armax,
        format_comparison,
        run_aic_selection,
    )

    trace = collect_traffic_trace(duration_ms=args.duration * 1000.0)
    print(format_comparison(compare_arma_armax(trace)))
    ranking = run_aic_selection(trace)
    best = ranking[0][0]
    print("AIC winner:", [ATTRIBUTE_NAMES[i] for i in best])


def _cmd_multiuser(args: argparse.Namespace) -> None:
    from repro.apps.games import CANDY_CRUSH, MODERN_COMBAT
    from repro.core.multiuser import run_multiuser_experiment

    results = run_multiuser_experiment(
        MODERN_COMBAT, CANDY_CRUSH, duration_ms=args.duration * 1000.0
    )
    for policy, result in results.items():
        for user in result.users:
            print(f"{policy:9} {user.app.short_name} "
                  f"{user.fps.median_fps:5.1f} FPS "
                  f"{user.mean_response_ms:6.1f} ms")


def _cmd_adaptive(args: argparse.Namespace) -> None:
    from repro.apps.games import GTA_SAN_ANDREAS
    from repro.core.adaptive import run_adaptive_session
    from repro.devices.profiles import NVIDIA_SHIELD

    for label, ambient, internet in (
        ("devices nearby", [NVIDIA_SHIELD], True),
        ("empty LAN, Internet up", [], True),
        ("fully offline", [], False),
    ):
        outcome = run_adaptive_session(
            GTA_SAN_ANDREAS, ambient_devices=ambient,
            internet_available=internet,
            duration_ms=args.duration * 1000.0,
        )
        print(f"{label:24} -> {outcome.mode:9} "
              f"{outcome.median_fps:5.1f} FPS  "
              f"{outcome.response_time_ms:6.1f} ms")


def _cmd_chaos(args: argparse.Namespace) -> None:
    from repro.experiments.chaos import format_points, run_chaos_sweep

    points = run_chaos_sweep(
        loss_levels=args.loss,
        outage_levels_ms=[s * 1000.0 for s in args.outage],
        crash=not args.no_crash,
        duration_ms=args.duration * 1000.0,
    )
    print(format_points(points))
    if any(not p.survived for p in points):
        raise SystemExit("chaos sweep lost frames — robustness regression")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="GBooster reproduction experiment runner",
    )
    parser.add_argument(
        "--duration", type=float, default=60.0,
        help="simulated session length in seconds (default 60)",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    commands = {
        "quickstart": _cmd_quickstart,
        "fig5": _cmd_fig5,
        "fig6": _cmd_fig6,
        "fig7": _cmd_fig7,
        "fig1": _cmd_fig1,
        "prediction": _cmd_prediction,
        "multiuser": _cmd_multiuser,
        "adaptive": _cmd_adaptive,
        "chaos": _cmd_chaos,
    }
    for name in commands:
        p = sub.add_parser(name)
        if name == "quickstart":
            p.add_argument("--game", default="G1",
                           choices=["G1", "G2", "G3", "G4", "G5", "G6"])
            p.add_argument("--device", default="LG Nexus 5")
        if name == "chaos":
            p.add_argument("--loss", type=float, nargs="+",
                           default=[0.0, 0.3],
                           help="loss-burst probabilities to sweep")
            p.add_argument("--outage", type=float, nargs="+",
                           default=[0.0, 2.0],
                           help="hard-outage durations (seconds) to sweep")
            p.add_argument("--no-crash", action="store_true",
                           help="skip the mid-session node crash")
    args = parser.parse_args(argv)
    commands[args.command](args)
    return 0


if __name__ == "__main__":
    sys.exit(main())
