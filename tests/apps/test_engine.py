"""Game engine frame loop with the local backend."""

import pytest

from repro.apps.engine import EngineConfig, GameEngine, driver_submit_ms
from repro.apps.games import CANDY_CRUSH, GTA_SAN_ANDREAS
from repro.baselines.local import LocalBackend
from repro.devices.profiles import LG_G5, LG_NEXUS_5
from repro.devices.runtime import UserDeviceRuntime
from repro.sim.kernel import Simulator


def run_local(app, device_spec, duration_ms=20_000.0, seed=0):
    sim = Simulator(seed=seed)
    device = UserDeviceRuntime(
        sim, device_spec, render_width=app.render_width,
        render_height=app.render_height,
    )
    backend = LocalBackend(sim, device)
    engine = GameEngine(
        sim, app, device, backend, EngineConfig(duration_ms=duration_ms)
    )
    sim.run_until_process(engine._proc, limit=duration_ms * 3)
    return engine, device


def test_frames_produced_and_presented():
    engine, _device = run_local(GTA_SAN_ANDREAS, LG_NEXUS_5)
    presented = engine.presented_frames()
    assert len(presented) > 100
    assert all(f.presented_at >= f.issued_at for f in presented)


def test_gpu_bound_game_fps_matches_fillrate():
    engine, _device = run_local(GTA_SAN_ANDREAS, LG_NEXUS_5)
    from repro.metrics.fps import compute_fps_metrics

    metrics = compute_fps_metrics(engine.presented_frames())
    assert metrics.median_fps == pytest.approx(23.0, abs=1.5)


def test_vsync_caps_frame_rate():
    engine, _device = run_local(CANDY_CRUSH, LG_G5)
    from repro.metrics.fps import compute_fps_metrics

    metrics = compute_fps_metrics(engine.presented_frames())
    assert metrics.median_fps <= CANDY_CRUSH.target_fps + 1


def test_frame_records_carry_exogenous_signals():
    engine, _device = run_local(GTA_SAN_ANDREAS, LG_NEXUS_5,
                                duration_ms=30_000.0)
    frames = engine.frames
    assert any(f.touches_since_last > 0 for f in frames)
    assert all(f.texture_count > 0 for f in frames)
    assert any(f.command_diff > 0 for f in frames)


def test_cpu_load_attributed_during_session():
    engine, device = run_local(GTA_SAN_ANDREAS, LG_NEXUS_5)
    # During the paper's G1 local run the Nexus 5 sits around 68%.
    assert 0.55 < device.cpu.mean_utilization() < 0.8


def test_faster_cpu_reduces_stage_time():
    _engine_slow, device_slow = run_local(CANDY_CRUSH, LG_NEXUS_5)
    _engine_fast, device_fast = run_local(CANDY_CRUSH, LG_G5)
    # Same busy work on a faster CPU -> lower mean utilization.
    assert (
        device_fast.cpu.mean_utilization()
        < device_slow.cpu.mean_utilization()
    )


def test_driver_cost_scales_with_commands():
    assert driver_submit_ms(900) > driver_submit_ms(300)


def test_deterministic_sessions():
    a, _ = run_local(GTA_SAN_ANDREAS, LG_NEXUS_5, duration_ms=10_000.0, seed=3)
    b, _ = run_local(GTA_SAN_ANDREAS, LG_NEXUS_5, duration_ms=10_000.0, seed=3)
    assert [f.presented_at for f in a.presented_frames()] == [
        f.presented_at for f in b.presented_frames()
    ]


def test_different_seeds_differ():
    a, _ = run_local(GTA_SAN_ANDREAS, LG_NEXUS_5, duration_ms=10_000.0, seed=1)
    b, _ = run_local(GTA_SAN_ANDREAS, LG_NEXUS_5, duration_ms=10_000.0, seed=2)
    assert [f.presented_at for f in a.presented_frames()] != [
        f.presented_at for f in b.presented_frames()
    ]


def test_engine_finishes_and_drains():
    engine, _ = run_local(GTA_SAN_ANDREAS, LG_NEXUS_5, duration_ms=5_000.0)
    assert engine.finished.triggered
    assert not engine._inflight
