"""Per-frame command-stream digests: the record-and-replay fidelity check.

The offloading design's core promise is that a replayed command stream is
indistinguishable from local execution.  To make that testable the engine
digests every frame's command batch at *issue* time, and each execution
site (a service node's GL replay, or the local backend when it executes
commands) digests the batch it actually ran.  A :class:`DigestLog` holds
both sides keyed by frame id:

* ``issued[frame_id] != executed[frame_id]`` — the pipeline mutated,
  dropped or misrouted commands between interception and replay;
* a frame executed with no issue record — phantom work (duplication, a
  stale retransmission replayed twice);
* comparing two runs' ``stream()`` — the differential-replay equality
  check (local vs offloaded, or two identically-seeded offload runs).

Digests are content digests over the commands' stable keys (name plus
frozen arguments, the same identity the LRU command cache deduplicates
on), so two command lists digest equal iff a GL replayer would execute
the same sequence.
"""

from __future__ import annotations

import hashlib
from typing import Dict, Iterable, List, Optional, Tuple


def command_digest(commands: Iterable) -> str:
    """Stable content digest of one frame's command sequence.

    Keys commands by ``cmd.key()`` (name + frozen args — floats included
    verbatim, so any numeric drift between runs shows up), falling back to
    ``repr`` for foreign objects in tests.
    """
    h = hashlib.blake2b(digest_size=16)
    for cmd in commands:
        key = cmd.key() if hasattr(cmd, "key") else cmd
        h.update(repr(key).encode("utf-8"))
        h.update(b"\x00")
    return h.hexdigest()


class IntervalDigest:
    """Incremental :func:`command_digest` over a growing command interval.

    The replay recorder digests a rolling window of the stream; re-hashing
    the whole window per frame is quadratic in interval length, so this
    streams the same blake2b the batch digest uses.  ``hexdigest()`` is
    non-destructive (it hashes a copy), so the digest after *k* commands
    equals ``command_digest`` of those first *k* commands — the property
    the test suite pins down on every prefix.
    """

    def __init__(self) -> None:
        self._h = hashlib.blake2b(digest_size=16)
        self.count = 0

    def update(self, cmd) -> "IntervalDigest":
        """Feed one command (or a raw key, for foreign test objects)."""
        key = cmd.key() if hasattr(cmd, "key") else cmd
        self._h.update(repr(key).encode("utf-8"))
        self._h.update(b"\x00")
        self.count += 1
        return self

    def update_sequence(self, commands: Iterable) -> "IntervalDigest":
        for cmd in commands:
            self.update(cmd)
        return self

    def hexdigest(self) -> str:
        return self._h.copy().hexdigest()

    def copy(self) -> "IntervalDigest":
        clone = IntervalDigest.__new__(IntervalDigest)
        clone._h = self._h.copy()
        clone.count = self.count
        return clone


class DigestLog:
    """Issue-side and execution-side digests for one session."""

    def __init__(self) -> None:
        #: frame_id -> digest recorded by the engine at issue time
        self.issued: Dict[int, str] = {}
        #: frame_id -> [(site, digest)] recorded at each execution
        self.executed: Dict[int, List[Tuple[str, str]]] = {}

    # -- recording -----------------------------------------------------------

    def record_issue(self, frame_id: int, commands: Iterable) -> str:
        digest = command_digest(commands)
        self.issued[frame_id] = digest
        return digest

    def record_execution(
        self, frame_id: int, commands: Iterable, site: str = ""
    ) -> str:
        digest = command_digest(commands)
        self.executed.setdefault(frame_id, []).append((site, digest))
        return digest

    # -- queries -------------------------------------------------------------

    def stream(self) -> List[str]:
        """Issue digests in frame order — the replay-comparison sequence."""
        return [self.issued[fid] for fid in sorted(self.issued)]

    def executed_frames(self) -> List[int]:
        return sorted(self.executed)

    def fidelity_mismatches(self) -> List[Dict]:
        """Frames where an execution ran something other than what was issued.

        Each entry names the frame, the execution site, and both digests;
        phantom executions (no issue record at all) are included with
        ``issued=None``.
        """
        out: List[Dict] = []
        for frame_id in sorted(self.executed):
            issued = self.issued.get(frame_id)
            for site, digest in self.executed[frame_id]:
                if issued is None or digest != issued:
                    out.append(
                        {
                            "frame_id": frame_id,
                            "site": site,
                            "issued": issued,
                            "executed": digest,
                        }
                    )
        return out

    def duplicate_executions(self) -> List[int]:
        """Frames replayed more than once at the same site — phantom work.

        A re-dispatch after a node failure legitimately executes a frame on
        a *second* site, so only same-site repeats count.
        """
        out: List[int] = []
        for frame_id, entries in sorted(self.executed.items()):
            sites = [site for site, _ in entries]
            if len(sites) != len(set(sites)):
                out.append(frame_id)
        return out

    def summary(self) -> Dict:
        return {
            "frames_issued": len(self.issued),
            "frames_executed": len(self.executed),
            "fidelity_mismatches": len(self.fidelity_mismatches()),
            "duplicate_executions": len(self.duplicate_executions()),
        }
