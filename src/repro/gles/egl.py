"""The EGL layer: displays, surfaces, double buffering and SwapBuffers.

Two EGL behaviours matter to GBooster:

* ``eglSwapBuffers`` marks a frame boundary.  Locally it blocks until the
  GPU finishes the frame (double buffering, paper §IV-C); GBooster rewrites
  it to return immediately so multiple rendering requests can pipeline
  (§VI-A).
* ``eglGetProcAddress`` is one of the three routes applications use to reach
  GL entry points (§IV-A); the wrapper library must interpose it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple


@dataclass
class Frame:
    """One rendered color buffer, as handed to the display system."""

    frame_id: int
    width: int
    height: int
    produced_at: float = 0.0
    source: str = "local"      # "local" | "remote"
    payload: Optional[bytes] = None

    @property
    def pixels(self) -> int:
        return self.width * self.height


@dataclass
class EGLSurface:
    """A double-buffered window surface."""

    width: int
    height: int
    name: str = "surface"
    front: Optional[Frame] = None
    back: Optional[Frame] = None
    swap_count: int = 0
    presented: List[Tuple[float, Frame]] = field(default_factory=list)

    def attach_back(self, frame: Frame) -> None:
        self.back = frame

    def swap(self, now: float) -> Optional[Frame]:
        """Exchange front and back buffers; returns the newly visible frame.

        The display system records every presentation so FPS metrics can be
        computed from presentation timestamps, exactly how the paper's FPS
        instrumentation observes SwapBuffer completions.
        """
        if self.back is None:
            return None
        self.front, self.back = self.back, None
        self.swap_count += 1
        self.presented.append((now, self.front))
        return self.front

    def presentation_times(self) -> List[float]:
        return [t for t, _f in self.presented]


class EGLDisplay:
    """Registry of surfaces plus the eglGetProcAddress resolution table.

    ``get_proc_address`` consults an ordered chain of resolvers; the
    GBooster wrapper prepends its own resolver so applications that fetch
    function pointers still land in the wrapper (§IV-A route 2).
    """

    def __init__(self, name: str = "display"):
        self.name = name
        self.surfaces: Dict[str, EGLSurface] = {}
        self._resolvers: List[Callable[[str], Optional[Callable]]] = []
        self._native_procs: Dict[str, Callable] = {}

    # -- surfaces -------------------------------------------------------------

    def create_window_surface(
        self, width: int, height: int, name: str = "surface"
    ) -> EGLSurface:
        if name in self.surfaces:
            raise ValueError(f"surface {name!r} already exists")
        surface = EGLSurface(width=width, height=height, name=name)
        self.surfaces[name] = surface
        return surface

    def destroy_surface(self, name: str) -> None:
        self.surfaces.pop(name, None)

    # -- proc address resolution ------------------------------------------------

    def register_native(self, name: str, fn: Callable) -> None:
        self._native_procs[name] = fn

    def register_natives(self, procs: Dict[str, Callable]) -> None:
        self._native_procs.update(procs)

    def push_resolver(
        self, resolver: Callable[[str], Optional[Callable]]
    ) -> None:
        """Prepend a resolver; later pushes win, like LD_PRELOAD ordering."""
        self._resolvers.insert(0, resolver)

    def get_proc_address(self, name: str) -> Optional[Callable]:
        for resolver in self._resolvers:
            fn = resolver(name)
            if fn is not None:
                return fn
        return self._native_procs.get(name)
