"""Tests for repro.sim.shard: partitioning, barriers, worker pools."""

import pytest

from repro.sim.shard import (
    BarrierReport,
    ShardError,
    ShardJob,
    ShardPlan,
    ShardSessionSpec,
    merge_barrier,
    run_parallel_jobs,
    run_shards,
)


def _mini_job(shard_id, shards, n_sessions=8, n_devices=4, seed=0,
              duration_ms=2_000.0, crashes=()):
    from repro.apps.games import GAMES
    from repro.experiments.fleet import make_fleet_pool

    plan = ShardPlan(shards)
    pool = make_fleet_pool(n_devices)
    apps = list(GAMES.values())
    sessions = [
        ShardSessionSpec(
            session_id=f"s{i:03d}", app_index=i % len(apps), wave_index=i
        )
        for i in plan.indices(shard_id, n_sessions)
    ]
    devices = plan.indices(shard_id, n_devices)
    return ShardJob(
        shard_id=shard_id,
        shards=shards,
        seed=seed,
        pool=[pool[j] for j in devices],
        apps=apps,
        sessions=sessions,
        gap_ms=1_000.0 / n_sessions,
        duration_ms=duration_ms,
        arrival_spread_ms=1_000.0,
        crashes=list(crashes),
    )


class TestShardPlan:
    def test_round_robin_partition(self):
        plan = ShardPlan(3)
        assert plan.indices(0, 10) == [0, 3, 6, 9]
        assert plan.indices(1, 10) == [1, 4, 7]
        assert plan.indices(2, 10) == [2, 5, 8]

    def test_partition_is_exhaustive_and_disjoint(self):
        plan = ShardPlan(4)
        seen = []
        for shard in range(4):
            seen.extend(plan.indices(shard, 23))
        assert sorted(seen) == list(range(23))

    def test_shard_of_agrees_with_indices(self):
        plan = ShardPlan(5)
        for i in range(40):
            assert i in plan.indices(plan.shard_of(i), 40)

    def test_rejects_nonpositive_shard_count(self):
        with pytest.raises(ShardError):
            ShardPlan(0)


class TestMergeBarrier:
    def _report(self, shard_id, **kw):
        base = dict(
            shard_id=shard_id, now_ms=1_000.0, done=False, active=2,
            finished=1, admission_queued=0, committed_mp_per_ms=1.0,
            capacity_mp_per_ms=4.0,
            heartbeats=[(f"s{shard_id}", 10)],
            placements=[(f"s{shard_id}", f"node{shard_id}")],
        )
        base.update(kw)
        return BarrierReport(**base)

    def test_merge_is_input_order_independent(self):
        reports = [self._report(i) for i in range(4)]
        forward = merge_barrier(reports, barrier_index=0, until_ms=1_000.0)
        backward = merge_barrier(
            list(reversed(reports)), barrier_index=0, until_ms=1_000.0
        )
        assert forward == backward

    def test_merge_totals(self):
        merged = merge_barrier(
            [self._report(1, active=3, finished=2), self._report(0)],
            barrier_index=2, until_ms=2_000.0,
        )
        assert merged.active == 5
        assert merged.finished == 3
        # heartbeats come out in (shard, session) order
        assert merged.heartbeats == [(0, "s0", 10), (1, "s1", 10)]


class TestRunShards:
    def test_single_shard_quiesces(self):
        results, summary = run_shards([_mini_job(0, 1)], workers=1)
        assert len(results) == 1
        assert results[0].report["sessions"]["finished"] == 8
        assert summary.barriers >= 1

    def test_two_shards_cover_all_sessions(self):
        jobs = [_mini_job(i, 2) for i in range(2)]
        results, _ = run_shards(jobs, workers=1)
        sids = sorted(
            sid for r in results for sid in r.session_digests
        )
        assert sids == [f"s{i:03d}" for i in range(8)]

    def test_workers_do_not_change_results(self):
        jobs1 = [_mini_job(i, 2) for i in range(2)]
        jobs2 = [_mini_job(i, 2) for i in range(2)]
        serial, s1 = run_shards(jobs1, workers=1)
        fanned, s2 = run_shards(jobs2, workers=2)
        assert [r.report["digest"] for r in serial] == [
            r.report["digest"] for r in fanned
        ]
        assert [r.session_digests for r in serial] == [
            r.session_digests for r in fanned
        ]
        assert s1 == s2

    def test_window_size_does_not_change_results(self):
        # Barrier windows are transport, not semantics: a DES kernel
        # cannot observe being stopped and resumed.
        a, _ = run_shards([_mini_job(0, 1)], workers=1, window_ms=250.0)
        b, _ = run_shards([_mini_job(0, 1)], workers=1, window_ms=4_000.0)
        assert a[0].report["digest"] == b[0].report["digest"]

    def test_on_barrier_observes_monotonic_windows(self):
        seen = []
        run_shards(
            [_mini_job(0, 1)], workers=1,
            on_barrier=lambda m: seen.append(m.until_ms),
        )
        assert seen == sorted(seen)
        assert len(set(seen)) == len(seen)

    def test_rejects_duplicate_shard_ids(self):
        with pytest.raises(ShardError):
            run_shards([_mini_job(0, 2), _mini_job(0, 2)], workers=1)


def _square(x):
    return x * x


def _fail(x):
    raise ValueError(x)


class TestRunParallelJobs:
    def test_results_in_submission_order(self):
        jobs = [(_square, (i,)) for i in range(6)]
        assert run_parallel_jobs(jobs, workers=1) == [
            0, 1, 4, 9, 16, 25
        ]
        assert run_parallel_jobs(jobs, workers=3) == [
            0, 1, 4, 9, 16, 25
        ]

    def test_serial_propagates_exceptions(self):
        with pytest.raises(ValueError):
            run_parallel_jobs([(_fail, (1,))], workers=1)
