"""Fleet fixtures: one construction recipe per subsystem under test.

These used to be copy-pasted module helpers (each building its own
``Simulator(seed=0)``); they are factories rather than plain fixtures so
tests can still pass :class:`FleetConfig` overrides per case.
"""

import pytest

from repro.devices.profiles import NVIDIA_SHIELD
from repro.experiments.fleet import make_fleet_pool
from repro.fleet import (
    AdmissionController,
    DeviceRegistry,
    FleetConfig,
    FleetController,
    FleetNode,
    SessionPlacer,
)


@pytest.fixture
def make_admission(sim):
    def make(**overrides):
        return sim, AdmissionController(sim, FleetConfig(**overrides))

    return make


@pytest.fixture
def make_fleet_node(sim):
    def make(spec=NVIDIA_SHIELD, **overrides):
        done = []
        node = FleetNode(sim, spec, FleetConfig(**overrides),
                         on_complete=done.append)
        return sim, node, done

    return make


@pytest.fixture
def make_registry(make_sim):
    def make(seed=0, **overrides):
        sim = make_sim(seed)
        return sim, DeviceRegistry(sim, FleetConfig(**overrides))

    return make


@pytest.fixture
def make_world(sim):
    def make(specs, **overrides):
        config = FleetConfig(**overrides)
        nodes = [FleetNode(sim, spec, config) for spec in specs]
        return sim, config, SessionPlacer(sim, config), nodes

    return make


@pytest.fixture
def boot_controller(make_sim):
    """A bootstrapped controller over a fresh pool; returns (sim, controller)."""

    def boot(n_devices=4, seed=0, config=None):
        sim = make_sim(seed)
        controller = FleetController(sim, make_fleet_pool(n_devices),
                                     config or FleetConfig())
        sim.run_until_event(controller.bootstrapped, limit=60_000.0)
        return sim, controller

    return boot
