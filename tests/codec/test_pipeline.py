"""The serialize -> cache -> compress egress pipeline."""

import pytest

from repro.apps.base import CommandBatchBuilder, SceneState
from repro.apps.games import GTA_SAN_ANDREAS
from repro.codec.pipeline import CommandPipeline, PipelineConfig
from repro.gles.commands import make_command
from repro.sim.random import RandomStream


def frame_batch(builder, activity=0.2):
    scene = SceneState(activity=activity)
    return builder.frame_commands(scene)


def make_builder(seed=0):
    return CommandBatchBuilder(GTA_SAN_ANDREAS, RandomStream(seed, "pipe"))


class TestStages:
    def test_all_stages_reduce_bytes(self):
        pipeline = CommandPipeline(
            PipelineConfig(modelled_compression=False)
        )
        builder = make_builder()
        pipeline.process_frame(builder.setup_commands())
        for _ in range(40):
            pipeline.process_frame(frame_batch(builder))
        assert pipeline.total_after_cache < pipeline.total_raw
        assert pipeline.total_wire < pipeline.total_after_cache
        assert pipeline.overall_reduction > 0.4

    def test_cache_disabled_passthrough(self):
        pipeline = CommandPipeline(
            PipelineConfig(cache_enabled=False, compression_enabled=False)
        )
        builder = make_builder()
        builder.setup_commands()
        for _ in range(5):
            egress = pipeline.process_frame(frame_batch(builder))
            assert egress.wire_bytes == egress.raw_bytes
            assert egress.cache_hits == 0

    def test_compression_only(self):
        pipeline = CommandPipeline(
            PipelineConfig(cache_enabled=False, compression_enabled=True,
                           modelled_compression=False)
        )
        builder = make_builder()
        pipeline.process_frame(builder.setup_commands())
        egress = pipeline.process_frame(frame_batch(builder))
        assert egress.wire_bytes < egress.raw_bytes
        assert egress.after_cache_bytes == egress.raw_bytes

    def test_real_compression_payload_decompresses(self):
        from repro.codec.lz77 import decompress

        pipeline = CommandPipeline(
            PipelineConfig(modelled_compression=False)
        )
        builder = make_builder()
        pipeline.process_frame(builder.setup_commands())
        egress = pipeline.process_frame(frame_batch(builder))
        assert egress.payload is not None
        decompress(egress.payload)  # must not raise

    def test_modelled_compression_tracks_real(self):
        real = CommandPipeline(PipelineConfig(modelled_compression=False))
        modelled = CommandPipeline(
            PipelineConfig(modelled_compression=True, measure_every=16)
        )
        b1, b2 = make_builder(3), make_builder(3)
        real.process_frame(b1.setup_commands())
        modelled.process_frame(b2.setup_commands())
        for _ in range(100):
            real.process_frame(frame_batch(b1))
            modelled.process_frame(frame_batch(b2))
        # Within 2x either way: the modelled path smooths per-frame variance
        # with an EWMA so exact per-session agreement is not expected.
        assert 0.5 < modelled.total_wire / real.total_wire < 2.0

    def test_cache_hits_accounted(self):
        pipeline = CommandPipeline(PipelineConfig(modelled_compression=True))
        builder = make_builder()
        pipeline.process_frame(builder.setup_commands())
        pipeline.process_frame(frame_batch(builder, activity=0.0))
        egress = pipeline.process_frame(frame_batch(builder, activity=0.0))
        assert egress.cache_hits > 0

    def test_deferred_pointers_flow_through(self):
        """Vertex pointers defer inside the pipeline's serializer too."""
        pipeline = CommandPipeline(PipelineConfig())
        from repro.gles import enums as gl
        from repro.gles.serialization import ClientArray

        cmds = [
            make_command(
                "glVertexAttribPointer", 0, 3, gl.GL_FLOAT, False, 0,
                ClientArray(bytes(1200)),
            ),
            make_command("glDrawArrays", gl.GL_TRIANGLES, 0, 10),
        ]
        egress = pipeline.process_frame(cmds)
        assert egress.commands == 2  # pointer resolved + draw

    def test_empty_frame(self):
        pipeline = CommandPipeline(PipelineConfig())
        egress = pipeline.process_frame([])
        assert egress.raw_bytes == 0
        assert egress.wire_bytes <= 1
