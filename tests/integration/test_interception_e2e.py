"""End-to-end interception: an unmodified 'app' whose GL calls reach a
remote context through the full wrapper -> serialize -> replay path.

This exercises the §IV mechanism as a whole: the app process links against
the GL soname (or fetches pointers, or dlopens); LD_PRELOAD injects the
wrapper; intercepted commands serialize to wire bytes; the 'service side'
deserializes and replays on its own context; final context state matches a
locally executed run byte for byte (state digests).
"""

import pytest

from repro.gles import enums as gl
from repro.gles.commands import GLCommand
from repro.gles.context import GLContext
from repro.gles.serialization import (
    CommandSerializer,
    deserialize_stream,
)
from repro.linker.linker import ProcessImage
from repro.linker.wrapper import (
    NATIVE_GLES_SONAME,
    build_native_gles_library,
    build_wrapper_library,
)


def unmodified_app_calls(call):
    """A small 'application': pure GL calls, no knowledge of GBooster."""
    call("glViewport", 0, 0, 640, 480)
    call("glClearColor", 0.2, 0.2, 0.2, 1.0)
    call("glEnable", gl.GL_DEPTH_TEST)
    vs = call("glCreateShader", gl.GL_VERTEX_SHADER)
    call("glShaderSource", vs, "void main() {}")
    call("glCompileShader", vs)
    fs = call("glCreateShader", gl.GL_FRAGMENT_SHADER)
    call("glShaderSource", fs, "void main() {}")
    call("glCompileShader", fs)
    prog = call("glCreateProgram")
    call("glAttachShader", prog, vs)
    call("glAttachShader", prog, fs)
    call("glLinkProgram", prog)
    call("glUseProgram", prog)
    call("glClear", gl.GL_COLOR_BUFFER_BIT)
    call("glDrawArrays", gl.GL_TRIANGLES, 0, 3)


class RemotePipeline:
    """Client-side interceptor: serialize, 'transmit', replay remotely.

    Commands returning values (glCreateShader etc.) execute on a local
    shadow context so the app receives its object names, exactly as the
    real client must answer synchronous queries locally.
    """

    def __init__(self):
        self.serializer = CommandSerializer()
        self.wire = bytearray()
        self.shadow = GLContext("shadow")

    def __call__(self, cmd: GLCommand):
        for chunk in self.serializer.feed(cmd):
            self.wire += chunk
        return self.shadow.execute(cmd)

    def replay_remote(self) -> GLContext:
        remote = GLContext("remote")
        for cmd in deserialize_stream(bytes(self.wire)):
            remote.execute(cmd)
        return remote


def test_route1_direct_calls_reach_remote_context():
    pipeline = RemotePipeline()
    proc = ProcessImage("game", env={"LD_PRELOAD": "libGBooster.so"})
    wrapper = build_wrapper_library(pipeline, linker=proc.linker)
    wrapper.soname = "libGBooster.so"
    native_executed = []
    native = build_native_gles_library(lambda c: native_executed.append(c))
    proc.install_library(wrapper)
    proc.install_library(native)
    proc.start([NATIVE_GLES_SONAME])

    unmodified_app_calls(lambda name, *args: proc.call(name, *args))

    assert native_executed == []  # the native library never saw a call
    remote = pipeline.replay_remote()
    assert remote.state_digest() == pipeline.shadow.state_digest()
    assert remote.draw_calls == 2  # glClear + glDrawArrays
    assert remote.current_program != 0


def test_route2_proc_address_reaches_remote_context():
    pipeline = RemotePipeline()
    proc = ProcessImage("game", env={"LD_PRELOAD": "libGBooster.so"})
    wrapper = build_wrapper_library(pipeline, linker=proc.linker)
    wrapper.soname = "libGBooster.so"
    proc.install_library(wrapper)
    proc.install_library(build_native_gles_library(lambda c: None))
    proc.start([NATIVE_GLES_SONAME])

    get_proc = proc.linker.resolve("eglGetProcAddress")

    def call(name, *args):
        fn = get_proc(name)
        assert fn is not None, name
        return fn(*args)

    unmodified_app_calls(call)
    remote = pipeline.replay_remote()
    assert remote.state_digest() == pipeline.shadow.state_digest()
    assert wrapper.stats.by_route["getprocaddress"] > 0


def test_route3_dlopen_reaches_remote_context():
    pipeline = RemotePipeline()
    proc = ProcessImage("game", env={"LD_PRELOAD": "libGBooster.so"})
    wrapper = build_wrapper_library(pipeline, linker=proc.linker)
    wrapper.soname = "libGBooster.so"
    proc.install_library(wrapper)
    proc.install_library(build_native_gles_library(lambda c: None))
    proc.start([NATIVE_GLES_SONAME])

    handle = proc.dlopen(NATIVE_GLES_SONAME)

    def call(name, *args):
        return proc.dlsym(handle, name)(*args)

    unmodified_app_calls(call)
    remote = pipeline.replay_remote()
    assert remote.state_digest() == pipeline.shadow.state_digest()
    assert wrapper.stats.by_route["dlsym"] > 0


def test_mixed_routes_single_stream():
    """Real apps mix routes; the intercepted stream must stay coherent."""
    pipeline = RemotePipeline()
    proc = ProcessImage("game", env={"LD_PRELOAD": "libGBooster.so"})
    wrapper = build_wrapper_library(pipeline, linker=proc.linker)
    wrapper.soname = "libGBooster.so"
    proc.install_library(wrapper)
    proc.install_library(build_native_gles_library(lambda c: None))
    proc.start([NATIVE_GLES_SONAME])
    get_proc = proc.linker.resolve("eglGetProcAddress")
    handle = proc.dlopen(NATIVE_GLES_SONAME)

    proc.call("glViewport", 0, 0, 320, 240)                   # route 1
    get_proc("glEnable")(gl.GL_BLEND)                          # route 2
    proc.dlsym(handle, "glClearColor")(1.0, 0.0, 0.0, 1.0)     # route 3

    remote = pipeline.replay_remote()
    assert remote.viewport == (0, 0, 320, 240)
    assert remote.capabilities[gl.GL_BLEND]
    assert remote.clear_color == (1.0, 0.0, 0.0, 1.0)
    assert wrapper.stats.total == 3
