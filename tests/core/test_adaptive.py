"""Adaptive mode selection (§VIII: no-device and no-Internet scenarios)."""

import pytest

from repro.apps.games import GTA_SAN_ANDREAS
from repro.core.adaptive import run_adaptive_session
from repro.devices.profiles import MINIX_NEO_U1, NVIDIA_SHIELD

DURATION = 20_000.0


def test_devices_present_uses_gbooster():
    outcome = run_adaptive_session(
        GTA_SAN_ANDREAS,
        ambient_devices=[NVIDIA_SHIELD],
        duration_ms=DURATION,
    )
    assert outcome.mode == "gbooster"
    assert outcome.discovery.found_any
    assert outcome.median_fps > 30.0
    assert outcome.session is not None


def test_empty_lan_falls_back_to_cloud():
    outcome = run_adaptive_session(
        GTA_SAN_ANDREAS, ambient_devices=[], duration_ms=DURATION,
    )
    assert outcome.mode == "cloud"
    assert outcome.median_fps <= 31.0         # encoder cap
    assert outcome.response_time_ms > 100.0   # WAN latency


def test_no_lan_no_internet_runs_local():
    outcome = run_adaptive_session(
        GTA_SAN_ANDREAS, ambient_devices=[], internet_available=False,
        duration_ms=DURATION,
    )
    assert outcome.mode == "local"
    assert outcome.median_fps == pytest.approx(23.0, abs=2.0)


def test_gbooster_beats_cloud_on_response():
    nearby = run_adaptive_session(
        GTA_SAN_ANDREAS, ambient_devices=[NVIDIA_SHIELD],
        duration_ms=DURATION,
    )
    remote = run_adaptive_session(
        GTA_SAN_ANDREAS, ambient_devices=[], duration_ms=DURATION,
    )
    assert nearby.response_time_ms < remote.response_time_ms / 2.0


def test_ranked_devices_capped():
    outcome = run_adaptive_session(
        GTA_SAN_ANDREAS,
        ambient_devices=[NVIDIA_SHIELD, MINIX_NEO_U1, NVIDIA_SHIELD,
                         MINIX_NEO_U1, NVIDIA_SHIELD],
        max_service_devices=2,
        duration_ms=DURATION,
    )
    assert outcome.mode == "gbooster"
    assert len(outcome.session.nodes) == 2
