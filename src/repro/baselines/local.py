"""Local execution: the paper's comparison case.

Frames render on the device's own GPU through the native GL library.  The
Android buffer queue double-buffers, so the engine may have two frames in
flight (CPU building frame N+1 while the GPU renders frame N) — which makes
local FPS the max of the CPU and GPU stage rates, as observed on real
devices.  The local GL driver's submission cost stays on the CPU
(``uses_local_driver``), and the thermal governor throttles the session
mid-way on passively cooled phones, producing the paper's FPS instability.
"""

from __future__ import annotations

from typing import Optional

from repro.codec.frames import FrameImage
from repro.devices.runtime import UserDeviceRuntime
from repro.gles.context import GLContext
from repro.gpu.model import RenderRequest
from repro.sim.kernel import Event, Simulator


class LocalBackend:
    """Renders on the user device's own GPU."""

    max_pending = 2          # Android double buffering
    uses_local_driver = True

    def __init__(self, sim: Simulator, device: UserDeviceRuntime,
                 execute_commands: bool = False):
        self.sim = sim
        self.device = device
        self.execute_commands = execute_commands
        self.context: GLContext = device.context
        self.frames_submitted = 0

    def cpu_overhead_ms(self, frame: FrameImage) -> float:
        return 0.0

    def submit(self, request: RenderRequest, frame: FrameImage) -> Event:
        if self.execute_commands:
            # Replay through the real context state machine (tests /
            # short sessions; byte-identical to what a service device sees).
            self.context.execute_sequence(request.commands)
            if self.sim.digests is not None:
                self.sim.digests.record_execution(
                    request.frame_id, request.commands, site="local"
                )
        completion = self.sim.event(name=f"local.done.{request.request_id}")
        request.metadata["completion_event"] = completion
        self.frames_submitted += 1
        self.device.gpu.submit(request)
        # The GPU completion *is* the presentation: the swap that follows a
        # finished render is immediate on the local display path.
        return completion
