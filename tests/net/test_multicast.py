"""UDP multicast fan-out (state replication, §VI-B)."""

import pytest

from repro.net.interface import WIFI_80211N, WirelessInterface
from repro.net.link import LinkSpec, NetworkLink
from repro.net.message import Message
from repro.net.multicast import MulticastGroup
from repro.sim.kernel import Simulator


def build_group(sim, n_members):
    radio = WirelessInterface(sim, WIFI_80211N)
    group = MulticastGroup(sim)
    group.bind_radio(lambda: radio)
    inboxes = []
    for i in range(n_members):
        inbox = []
        link = NetworkLink(
            sim, LinkSpec(name=f"m{i}", latency_ms=1.0, jitter_ms=0.0),
            receiver=(lambda box: lambda m: box.append(m))(inbox),
        )
        group.join(f"node{i}", link)
        inboxes.append(inbox)
    return group, radio, inboxes


def test_every_member_receives_copy():
    sim = Simulator()
    group, _radio, inboxes = build_group(sim, 3)
    group.send(Message.of_size(5_000, kind="state"))
    sim.run(until=1_000.0)
    assert all(len(box) == 1 for box in inboxes)
    members = {box[0].metadata["mcast_member"] for box in inboxes}
    assert members == {"node0", "node1", "node2"}


def test_single_radio_transmission():
    """One send = one airtime charge regardless of member count."""
    sim = Simulator()
    group, radio, _ = build_group(sim, 5)
    group.send(Message.of_size(10_000))
    sim.run(until=1_000.0)
    assert radio.messages_sent == 1
    assert group.multicast_bytes == 10_000
    assert group.unicast_equivalent_bytes == 50_000


def test_bandwidth_saving_grows_with_members():
    sim = Simulator()
    group, _radio, _ = build_group(sim, 4)
    for _ in range(10):
        group.send(Message.of_size(1_000))
    sim.run(until=1_000.0)
    saving = 1 - group.multicast_bytes / group.unicast_equivalent_bytes
    assert saving == pytest.approx(0.75)


def test_empty_group_send_is_noop():
    sim = Simulator()
    radio = WirelessInterface(sim, WIFI_80211N)
    group = MulticastGroup(sim)
    group.bind_radio(lambda: radio)
    evt = group.send(Message.of_size(100))
    assert evt.triggered
    assert radio.messages_sent == 0


def test_join_duplicate_rejected():
    sim = Simulator()
    group, _radio, _ = build_group(sim, 1)
    with pytest.raises(ValueError):
        group.join("node0", None)


def test_leave_removes_member():
    sim = Simulator()
    group, _radio, inboxes = build_group(sim, 2)
    group.leave("node0")
    group.send(Message.of_size(100))
    sim.run(until=100.0)
    assert len(inboxes[0]) == 0
    assert len(inboxes[1]) == 1


def test_unbound_radio_raises():
    sim = Simulator()
    group = MulticastGroup(sim)
    link = NetworkLink(sim, LinkSpec(name="x", latency_ms=1.0))
    group.join("n", link)
    with pytest.raises(RuntimeError):
        group.send(Message.of_size(10))
