"""Local execution backend."""

import pytest

from repro.apps.games import GTA_SAN_ANDREAS
from repro.baselines.local import LocalBackend
from repro.codec.frames import FrameImage
from repro.devices.profiles import LG_NEXUS_5
from repro.devices.runtime import UserDeviceRuntime
from repro.gpu.model import RenderRequest
from repro.sim.kernel import Simulator


def make_backend():
    sim = Simulator()
    device = UserDeviceRuntime(sim, LG_NEXUS_5)
    return sim, device, LocalBackend(sim, device)


def test_double_buffered_pending():
    _sim, _device, backend = make_backend()
    assert backend.max_pending == 2
    assert backend.uses_local_driver


def test_no_offload_cpu_overhead():
    _sim, _device, backend = make_backend()
    frame = FrameImage(640, 480, change_fraction=0.5)
    assert backend.cpu_overhead_ms(frame) == 0.0


def test_submit_renders_on_local_gpu():
    sim, device, backend = make_backend()
    request = RenderRequest(
        request_id=0, frame_id=0, commands=[], fill_megapixels=36.0
    )
    completion = backend.submit(
        request, FrameImage(640, 480, change_fraction=0.1)
    )
    sim.run(until=100.0)
    assert completion.triggered
    assert device.gpu.completed[0].execution_ms == pytest.approx(10.0,
                                                                 rel=0.05)


def test_execute_commands_replays_on_context():
    sim, device, _ = make_backend()
    backend = LocalBackend(sim, device, execute_commands=True)
    from repro.gles.commands import make_command
    from repro.gles import enums as gl

    request = RenderRequest(
        request_id=0, frame_id=0,
        commands=[make_command("glEnable", gl.GL_BLEND)],
        fill_megapixels=1.0,
    )
    backend.submit(request, FrameImage(64, 64, change_fraction=0.0))
    sim.run(until=100.0)
    assert device.context.capabilities[gl.GL_BLEND]
