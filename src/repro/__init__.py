"""GBooster reproduction.

A from-scratch, simulation-based reproduction of

    E. Wen, W. K. G. Seah, B. Ng, X. Liu, J. Cao and X. Liu,
    "GBooster: Towards Acceleration of GPU-Intensive Mobile Applications",
    IEEE ICDCS 2017.

Quick start::

    from repro import run_local_session, run_offload_session
    from repro.apps.games import GTA_SAN_ANDREAS
    from repro.devices.profiles import LG_NEXUS_5

    local = run_local_session(GTA_SAN_ANDREAS, LG_NEXUS_5,
                              duration_ms=120_000)
    boosted = run_offload_session(GTA_SAN_ANDREAS, LG_NEXUS_5,
                                  duration_ms=120_000)
    print(local.fps.median_fps, "->", boosted.fps.median_fps)

See ``DESIGN.md`` for the system inventory and ``EXPERIMENTS.md`` for the
paper-versus-measured record of every table and figure.
"""

from repro.core.adaptive import run_adaptive_session
from repro.core.config import GBoosterConfig
from repro.core.multiuser import run_multiuser_session
from repro.core.session import (
    SessionResult,
    run_local_session,
    run_offload_session,
)
from repro.faults import FaultSchedule
from repro.fleet import FleetConfig, FleetController

__version__ = "1.0.0"

__all__ = [
    "FaultSchedule",
    "FleetConfig",
    "FleetController",
    "GBoosterConfig",
    "SessionResult",
    "run_adaptive_session",
    "run_local_session",
    "run_multiuser_session",
    "run_offload_session",
    "__version__",
]
