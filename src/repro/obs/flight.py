"""The alert-triggered flight recorder: evidence frozen before you need it.

A :class:`FlightRecorder` armed on a simulator (``sim.flight``) keeps no
state of its own until something goes wrong — the *pre-trigger buffer* is
the instrumentation the run already carries (the bounded ring tracer,
the causal log, the metrics registry, the telemetry hub).  The moment a
page-level SLO alert fires, an invariant violation is recorded, or the
planner re-plans mid-session, the recorder freezes a **postmortem
bundle**: the ring-trace tail, a metrics snapshot, the registered
evidence sources (admission ledger, plan decision log, replay store
stats), and the triggering frame's full causal trace.

Bundles are schema-versioned, JSON-able, and byte-identical per seed:
every value is rounded deterministically and every key sorted, and the
bundle carries a sha256 digest over itself so CI can diff it against a
committed baseline (``BENCH_POSTMORTEM.json``).  The bundle count is
bounded — after ``max_bundles`` triggers the recorder counts suppressed
triggers instead of growing without bound.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any, Callable, Dict, List, Optional

#: bundle schema identifier, bumped on incompatible changes
FLIGHT_SCHEMA = "repro.flight_bundle/1"

#: ring-trace records captured behind the trigger point
DEFAULT_TRACE_TAIL = 256

#: bundles kept before suppression kicks in
DEFAULT_MAX_BUNDLES = 4


def _jsonable(value: Any) -> Any:
    """Deterministic JSON projection: floats rounded, unknowns repr'd."""
    if isinstance(value, float):
        return round(value, 4)
    if isinstance(value, (str, int, bool)) or value is None:
        return value
    if isinstance(value, dict):
        return {str(k): _jsonable(value[k]) for k in sorted(value, key=str)}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    return repr(value)


class FlightRecorder:
    """Freezes postmortem bundles on alerts, violations and replans."""

    def __init__(
        self,
        sim,
        session_id: str = "session",
        trace_tail: int = DEFAULT_TRACE_TAIL,
        max_bundles: int = DEFAULT_MAX_BUNDLES,
    ):
        if trace_tail <= 0:
            raise ValueError(f"trace_tail must be positive, got {trace_tail}")
        if max_bundles <= 0:
            raise ValueError(
                f"max_bundles must be positive, got {max_bundles}"
            )
        self.sim = sim
        self.session_id = session_id
        self.trace_tail = trace_tail
        self.max_bundles = max_bundles
        self.bundles: List[Dict[str, Any]] = []
        self.suppressed = 0
        #: named evidence providers sampled at trigger time (admission
        #: ledger, plan decision log, replay store stats, ...)
        self._sources: Dict[str, Callable[[], Any]] = {}
        # Guarantee the pre-trigger buffer actually holds a full tail:
        # a tracer sized below the tail cannot testify about it.
        tracer = sim.tracer
        if hasattr(tracer, "resize") and tracer.capacity < trace_tail:
            tracer.resize(trace_tail)
        sim.flight = self

    # -- evidence sources ----------------------------------------------------

    def add_source(self, name: str, provider: Callable[[], Any]) -> None:
        """Register a named evidence provider, sampled at trigger time."""
        self._sources[name] = provider

    # -- trigger entry points ------------------------------------------------

    def on_alert(self, alert) -> Optional[Dict[str, Any]]:
        """A page-severity SLO alert fired."""
        exemplars = list(getattr(alert, "exemplars", ()) or ())
        return self.trigger(
            "slo_alert",
            source=alert.source,
            trace_id=exemplars[0] if exemplars else "",
            severity=alert.severity,
            state=alert.state,
            burn_short=round(alert.burn_short, 4),
            burn_long=round(alert.burn_long, 4),
            exemplars=exemplars,
        )

    def on_violation(self, violation) -> Optional[Dict[str, Any]]:
        """The invariant monitor recorded a fresh conservation-law break."""
        return self.trigger(
            "invariant_violation",
            source=violation.invariant,
            message=violation.message,
        )

    def on_replan(
        self, from_backend: str, to_backend: str, **detail: Any
    ) -> Optional[Dict[str, Any]]:
        """The planner abandoned its committed backend mid-session."""
        return self.trigger(
            "replan",
            source="planner",
            from_backend=from_backend,
            to_backend=to_backend,
            **detail,
        )

    # -- the freeze ----------------------------------------------------------

    def trigger(
        self, kind: str, source: str, trace_id: str = "", **detail: Any
    ) -> Optional[Dict[str, Any]]:
        """Freeze one postmortem bundle; returns it (or None if suppressed)."""
        if len(self.bundles) >= self.max_bundles:
            self.suppressed += 1
            return None
        sim = self.sim
        causal = getattr(sim, "causal", None)
        if not trace_id and causal is not None and causal.last_trace:
            trace_id = causal.last_trace.trace_id
        bundle: Dict[str, Any] = {
            "schema": FLIGHT_SCHEMA,
            "shard": getattr(sim, "shard_id", 0),
            "session": self.session_id,
            "seed": sim.seed,
            "trigger": {
                "kind": kind,
                "source": source,
                "at_ms": round(sim.now, 4),
                "trace_id": trace_id,
                "detail": _jsonable(detail),
            },
            "ring_tail": [
                {
                    "at_ms": round(r.time, 4),
                    "category": r.category,
                    "event": r.event,
                    "data": _jsonable(dict(r.data)),
                }
                for r in self._tracer_tail()
            ],
            "metrics": sim.metrics.snapshot(),
        }
        if causal is not None:
            bundle["causal"] = causal.summary()
            bundle["causal_trace"] = [
                e.as_dict() for e in causal.trace_of(trace_id)
            ]
            bundle["causal_components"] = causal.components_of(trace_id)
        telemetry = getattr(sim, "telemetry", None)
        if telemetry is not None:
            bundle["slos"] = {
                name: telemetry.trackers[name].summary(
                    telemetry._evaluated_upto
                )
                for name in sorted(telemetry.trackers)
            }
            bundle["alerts"] = [a.as_dict() for a in telemetry.alerts]
        bundle["sources"] = {
            name: _jsonable(self._sources[name]())
            for name in sorted(self._sources)
        }
        blob = json.dumps(bundle, sort_keys=True).encode()
        bundle["digest"] = hashlib.sha256(blob).hexdigest()
        self.bundles.append(bundle)
        sim.spans.mark(
            "flight", "trigger", track="flight",
            kind=kind, source=source, trace_id=trace_id,
        )
        sim.metrics.counter("flight.triggers", kind=kind).inc()
        return bundle

    def _tracer_tail(self):
        tracer = self.sim.tracer
        if hasattr(tracer, "tail"):
            return tracer.tail(self.trace_tail)
        return list(getattr(tracer, "records", ()))[-self.trace_tail:]

    # -- reporting -----------------------------------------------------------

    def summary(self) -> Dict[str, Any]:
        """Deterministic JSON-able digest of the recorder's state."""
        return {
            "bundles": len(self.bundles),
            "suppressed": self.suppressed,
            "triggers": [
                {
                    "kind": b["trigger"]["kind"],
                    "source": b["trigger"]["source"],
                    "at_ms": b["trigger"]["at_ms"],
                    "trace_id": b["trigger"]["trace_id"],
                    "digest": b["digest"],
                }
                for b in self.bundles
            ],
        }


def validate_bundle(bundle: Any) -> List[str]:
    """Schema gate for one flight bundle; empty list == valid."""
    problems: List[str] = []
    if not isinstance(bundle, dict):
        return [f"bundle must be an object, got {type(bundle).__name__}"]
    if bundle.get("schema") != FLIGHT_SCHEMA:
        problems.append(f"'schema' must be {FLIGHT_SCHEMA!r}")
    trigger = bundle.get("trigger")
    if not isinstance(trigger, dict):
        problems.append("missing 'trigger' section")
    else:
        for key in ("kind", "source", "at_ms", "trace_id"):
            if key not in trigger:
                problems.append(f"trigger: missing {key!r}")
    for key in ("ring_tail", "metrics", "sources", "digest"):
        if key not in bundle:
            problems.append(f"missing {key!r}")
    if not isinstance(bundle.get("ring_tail"), list):
        problems.append("'ring_tail' must be a list")
    check = dict(bundle)
    digest = check.pop("digest", None)
    if isinstance(digest, str):
        blob = json.dumps(check, sort_keys=True).encode()
        if hashlib.sha256(blob).hexdigest() != digest:
            problems.append("digest does not match bundle contents")
    return problems
