#!/usr/bin/env python3
"""Transparent GL interception without modifying the application (§IV-A).

Builds a process image for an 'unmodified game', injects the GBooster
wrapper library via LD_PRELOAD, and shows all three call routes landing in
the wrapper: direct linkage, eglGetProcAddress pointers, and dlopen/dlsym.
The intercepted stream is serialized to wire bytes and replayed on a
'remote' GL context whose final state digest matches the local shadow —
byte-for-byte equivalence of local and remote execution.
"""

from repro.gles import enums as gl
from repro.gles.commands import GLCommand
from repro.gles.context import GLContext
from repro.gles.serialization import CommandSerializer, deserialize_stream
from repro.linker.linker import ProcessImage
from repro.linker.wrapper import (
    NATIVE_GLES_SONAME,
    build_native_gles_library,
    build_wrapper_library,
)


class ForwardingInterceptor:
    """Serialize every intercepted command; answer queries from a shadow."""

    def __init__(self) -> None:
        self.serializer = CommandSerializer()
        self.wire = bytearray()
        self.shadow = GLContext("shadow")

    def __call__(self, cmd: GLCommand):
        for chunk in self.serializer.feed(cmd):
            self.wire += chunk
        return self.shadow.execute(cmd)


def main() -> None:
    interceptor = ForwardingInterceptor()

    # The 'phone': a process whose environment preloads the wrapper.
    proc = ProcessImage("game.apk", env={"LD_PRELOAD": "libGBooster.so"})
    wrapper = build_wrapper_library(interceptor, linker=proc.linker)
    wrapper.soname = "libGBooster.so"
    proc.install_library(wrapper)
    proc.install_library(build_native_gles_library(lambda c: None))
    proc.start([NATIVE_GLES_SONAME])

    # Route 1: plain linked calls.
    proc.call("glViewport", 0, 0, 1280, 720)
    proc.call("glClearColor", 0.1, 0.2, 0.3, 1.0)
    proc.call("glEnable", gl.GL_DEPTH_TEST)

    # Route 2: pointers via eglGetProcAddress.
    get_proc = proc.linker.resolve("eglGetProcAddress")
    vs = get_proc("glCreateShader")(gl.GL_VERTEX_SHADER)
    get_proc("glShaderSource")(vs, "void main() {}")
    get_proc("glCompileShader")(vs)
    fs = get_proc("glCreateShader")(gl.GL_FRAGMENT_SHADER)
    get_proc("glShaderSource")(fs, "void main() {}")
    get_proc("glCompileShader")(fs)

    # Route 3: dlopen/dlsym.
    handle = proc.dlopen(NATIVE_GLES_SONAME)
    prog = proc.dlsym(handle, "glCreateProgram")()
    proc.dlsym(handle, "glAttachShader")(prog, vs)
    proc.dlsym(handle, "glAttachShader")(prog, fs)
    proc.dlsym(handle, "glLinkProgram")(prog)
    proc.dlsym(handle, "glUseProgram")(prog)
    proc.dlsym(handle, "glDrawArrays")(gl.GL_TRIANGLES, 0, 3)

    stats = wrapper.stats
    print("interception accounting:")
    for route, count in stats.by_route.items():
        print(f"  {route:16} {count:3d} calls")
    print(f"  total            {stats.total:3d} calls, "
          f"{len(interceptor.wire):,} wire bytes\n")

    # The 'service device': replay the forwarded stream.
    remote = GLContext("remote")
    for cmd in deserialize_stream(bytes(interceptor.wire)):
        remote.execute(cmd)

    local_digest = interceptor.shadow.state_digest()
    remote_digest = remote.state_digest()
    print(f"local shadow digest : {local_digest[:32]}...")
    print(f"remote replay digest: {remote_digest[:32]}...")
    print(f"state identical     : {local_digest == remote_digest}")
    print(f"remote draw calls   : {remote.draw_calls}")


if __name__ == "__main__":
    main()
