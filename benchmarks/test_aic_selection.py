"""P2: §V-B — AIC selection of exogenous attributes.

Paper: of (1) touch frequency, (2) command length, (3) textures per frame,
(4) command diff, the best approximating model uses attributes 1 and 3.
"""

from conftest import print_table

from repro.experiments.prediction import (
    ATTRIBUTE_NAMES,
    collect_traffic_trace,
    run_aic_selection,
)


def test_aic_attribute_selection(run_once):
    def experiment():
        trace = collect_traffic_trace(duration_ms=240_000.0, seed=5)
        return run_aic_selection(trace)

    ranking = run_once(experiment)
    lines = []
    for subset, score in ranking[:8]:
        names = ", ".join(ATTRIBUTE_NAMES[i] for i in subset) or "(none: ARMA)"
        lines.append(f"AIC {score:10.1f}  {{{names}}}")
    print_table(
        "AIC attribute selection (paper: touch + textures win)",
        "", lines,
    )
    best_subset, best_score = ranking[0]
    scores = dict(ranking)
    # Touch frequency (paper attribute 1) must be in the winning subset,
    # and exogenous inputs must beat the exogenous-free model.  (The paper
    # selects {touch, textures}; our AIC at the 500 ms objective finds the
    # leading touch signal carries the predictive weight on its own —
    # see EXPERIMENTS.md P2.)
    assert 0 in best_subset
    assert best_score < scores[()]
    # Every top-4 subset contains the touch attribute.
    for subset, _score in ranking[:4]:
        assert 0 in subset
