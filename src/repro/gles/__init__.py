"""Simulated OpenGL ES 2.0 substrate.

GBooster never looks *inside* the GPU: it observes the OpenGL ES command
stream at the client/server boundary (paper §IV, Fig 3).  This package
models exactly that boundary:

* :mod:`repro.gles.commands` — the entry-point registry: names, typed
  parameter signatures, state-mutation and draw classification.
* :mod:`repro.gles.context` — a faithful GL context state machine (textures,
  buffers, shaders/programs, vertex attributes, uniforms, draw state) that
  validates and applies command streams.
* :mod:`repro.gles.serialization` — the wire format used to forward commands
  to a remote server, including the deferred ``glVertexAttribPointer``
  transmission of §IV-B.
* :mod:`repro.gles.egl` — the EGL layer: surfaces, double buffering,
  ``eglSwapBuffers`` and ``eglGetProcAddress``.
* :mod:`repro.gles.trace_file` — apitrace-style capture/replay containers
  (:class:`TraceFileRecord` rows; distinct from the simulator's
  :class:`repro.sim.trace.TraceRecord` event rows).
"""

from repro.gles.commands import (
    COMMANDS,
    CommandSpec,
    GLCommand,
    ParamSpec,
    ParamType,
    command_spec,
    make_command,
)
from repro.gles.context import GLContext, GLError
from repro.gles.egl import EGLDisplay, EGLSurface
from repro.gles.serialization import (
    CommandSerializer,
    DeferredPointerBuffer,
    SerializationError,
    deserialize_command,
    serialize_command,
)
from repro.gles.trace_file import (
    TraceError,
    TraceFileRecord,
    TraceReader,
    TraceWriter,
    TracingInterceptor,
)

__all__ = [
    "COMMANDS",
    "CommandSerializer",
    "CommandSpec",
    "DeferredPointerBuffer",
    "EGLDisplay",
    "EGLSurface",
    "GLCommand",
    "GLContext",
    "GLError",
    "ParamSpec",
    "ParamType",
    "SerializationError",
    "TraceError",
    "TraceFileRecord",
    "TraceReader",
    "TraceWriter",
    "TracingInterceptor",
    "command_spec",
    "deserialize_command",
    "make_command",
    "serialize_command",
]
